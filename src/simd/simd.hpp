// The portable vector kernel table behind the engine's hot scalar loops.
//
// One struct of function pointers per backend (scalar / SSE4.2 / AVX2),
// selected once per build by runtime dispatch (dispatch.hpp) or pinned by
// EngineTuning::SimdBackend. Call sites hold a `const Kernels*` and stay
// branch-free; the per-function `target` attributes in simd.cpp let one
// binary carry all three tables regardless of its -march.
//
// Every kernel is *bit-exact* against its scalar reference, which is what
// lets the backends swap freely under the engine's decision-preserving
// contract (verdicts are pure functions of FP comparisons, so identical
// floats mean identical verdicts, edges, and stats):
//
//  * sweep_lower_bound and relax_lanes only compare and add -- IEEE adds
//    are deterministic, and the lane order never reassociates a sum;
//  * distances2d is mul/add/sqrt, all correctly rounded per IEEE-754, so
//    vector lanes match scalar evaluation exactly PROVIDED no FMA
//    contraction sneaks into the scalar side -- the build compiles the
//    library with -ffp-contract=off for exactly this reason (see
//    CMakeLists.txt);
//  * match_pairs is integer-only.
//
// Kernels take unaligned pointers (loads are loadu); pair them with
// aligned.hpp storage for the cache-line guarantees, not for correctness.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/types.hpp"
#include "simd/dispatch.hpp"

namespace gsp::simd {

/// Widest block a masked kernel (relax_lanes / match_pairs) accepts per
/// call: results are returned in a uint32_t lane mask.
inline constexpr std::size_t kMaxLanes = 32;

struct Kernels {
    Backend backend = Backend::kScalar;

    /// First index i in [begin, end) with keys[i] >= d, or `end` if none.
    /// `keys` must be nondecreasing and NaN-free on [begin, end) -- the
    /// BatchedProbe far sweep's sorted effective radii. Exactly the index
    /// the scalar cursor `while (i < end && keys[i] < d) ++i;` stops at.
    std::size_t (*sweep_lower_bound)(const double* keys, std::size_t begin,
                                     std::size_t end, double d);

    /// out[i] = sqrt((ax[i]-bx[i])^2 + (ay[i]-by[i])^2) for i in [0, n):
    /// n 2D Euclidean distances per call, bitwise equal to
    /// EuclideanMetric::distance on the same coordinates. Broadcast one
    /// endpoint to batch "one source vs n targets".
    void (*distances2d)(const double* ax, const double* ay, const double* bx,
                        const double* by, std::size_t n, double* out);

    /// Lane mask (bit i) of a[i] == b[i] && a[i] != skip, n <= kMaxLanes.
    /// The BoundSketch way probe: a/b are the two vertices' way-indexed
    /// source arrays, `skip` the empty-slot sentinel.
    std::uint32_t (*match_pairs)(const std::uint32_t* a, const std::uint32_t* b,
                                 std::size_t n, std::uint32_t skip);

    /// The BucketQueue drain's batched relaxation: nd[i] = d + half[i].weight
    /// for i in [0, n), returning the lane mask of nd[i] <= limit
    /// (n <= kMaxLanes). Adds are performed in independent lanes -- no
    /// reassociation -- so nd[i] is bitwise the scalar `d + weight`.
    std::uint32_t (*relax_lanes)(const HalfEdge* half, std::size_t n, double d,
                                 double limit, double* nd);
};

/// The always-available pure-C++ reference table.
[[nodiscard]] const Kernels& scalar_kernels();

/// The table for an explicit backend; widths the build cannot express
/// (non-x86-64) degrade to the scalar table.
[[nodiscard]] const Kernels& kernels_for(Backend b);

/// kernels_for(detect()): the runtime-dispatched table, latched once.
[[nodiscard]] const Kernels& auto_kernels();

/// backend_name of the table's actual backend (after any degrade).
[[nodiscard]] const char* backend_label(const Kernels& k);

}  // namespace gsp::simd
