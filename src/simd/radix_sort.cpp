#include "simd/radix_sort.hpp"

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

namespace gsp::simd {

// The scatter moves candidates by assignment and the final un-ping-pong by
// memcpy; both assume the packed 16-byte layout.
static_assert(sizeof(GreedyCandidate) == 16 &&
                  std::is_trivially_copyable_v<GreedyCandidate>,
              "GreedyCandidate layout drifted: radix scatter assumptions");

namespace {

constexpr std::size_t kDigitBits = 16;
constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
constexpr std::size_t kPasses = 8;  // 128-bit composite key / 16

/// Order-preserving uint64 image of a NaN-free double (sign-magnitude to
/// biased two's-complement); -0.0 canonicalized to +0.0 first so
/// comparator-equal weights share one key.
std::uint64_t weight_key(double w) {
    if (w == 0.0) w = 0.0;  // +0.0 and -0.0 collapse to +0.0's bits
    std::uint64_t bits = std::bit_cast<std::uint64_t>(w);
    if (bits >> 63) {
        bits = ~bits;  // negatives: reverse payload order, below positives
    } else {
        bits |= std::uint64_t{1} << 63;  // nonnegatives: above negatives
    }
    return bits;
}

/// Digit p (16 bits, p = 0 least significant) of the 128-bit composite
/// key wkey(weight) . u . v.
std::uint32_t digit(const GreedyCandidate& c, std::size_t p) {
    switch (p) {
        case 0: return c.v & 0xffffu;
        case 1: return c.v >> 16;
        case 2: return c.u & 0xffffu;
        case 3: return c.u >> 16;
        default:
            return static_cast<std::uint32_t>(
                       weight_key(c.weight) >> ((p - 4) * kDigitBits)) &
                   0xffffu;
    }
}

}  // namespace

GSP_DECISION_PURE void CandidateRadixSorter::sort(std::vector<GreedyCandidate>& v) {
    const std::size_t n = v.size();
    if (n < 2) return;
    if (tmp_.size() < n) tmp_.resize(n);
    hist_.assign(kPasses * kBuckets, 0);

    // One read of the data builds every pass's histogram.
    for (const GreedyCandidate& c : v) {
        for (std::size_t p = 0; p < kPasses; ++p) {
            ++hist_[p * kBuckets + digit(c, p)];
        }
    }

    GreedyCandidate* src = v.data();
    GreedyCandidate* dst = tmp_.data();
    for (std::size_t p = 0; p < kPasses; ++p) {
        std::uint32_t* h = hist_.data() + p * kBuckets;
        // Constant digit => the stable scatter is the identity: skip.
        if (h[digit(*src, p)] == n) continue;
        // Exclusive prefix sum in place: h[b] becomes bucket b's cursor.
        std::uint32_t sum = 0;
        for (std::size_t b = 0; b < kBuckets; ++b) {
            const std::uint32_t count = h[b];
            h[b] = sum;
            sum += count;
        }
        for (std::size_t i = 0; i < n; ++i) {
            dst[h[digit(src[i], p)]++] = src[i];
        }
        std::swap(src, dst);
    }
    if (src != v.data()) {
        std::memcpy(v.data(), src, n * sizeof(GreedyCandidate));
    }
}

std::size_t CandidateRadixSorter::bytes() const {
    return tmp_.capacity() * sizeof(GreedyCandidate) +
           hist_.capacity() * sizeof(std::uint32_t);
}

}  // namespace gsp::simd
