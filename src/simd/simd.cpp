// Kernel tables: one pure-scalar reference plus SSE4.2 / AVX2 editions
// compiled via per-function target attributes, so a baseline -march build
// still carries (and runtime-dispatches to) the wide code paths.
//
// This file is compiled with -ffp-contract=off (project-wide on the gsp
// library): the scalar reference's dx*dx + dy*dy must never be contracted
// into an FMA, or the "bitwise equal to EuclideanMetric::distance"
// contract -- and with it kScalar-vs-kForced bit-identity -- would break
// on FMA-capable -march settings.
#include "simd/simd.hpp"

#include "util/annotations.hpp"

#include <bit>
#include <cmath>
#include <cstddef>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GSP_SIMD_X86 1
#include <immintrin.h>
#else
#define GSP_SIMD_X86 0
#endif

namespace gsp::simd {

// The relax kernel gathers weights as doubles at stride 3 from the
// HalfEdge array; pin the layout it assumes.
static_assert(sizeof(HalfEdge) == 24, "HalfEdge layout drifted: relax gather stride");
static_assert(offsetof(HalfEdge, weight) == 8,
              "HalfEdge layout drifted: relax gather offset");
static_assert(sizeof(Weight) == 8 && sizeof(VertexId) == 4,
              "kernel lane widths assume 8-byte weights and 4-byte vertex ids");

namespace {

// ---------------------------------------------------------------- scalar

GSP_DECISION_PURE GSP_HOT_PATH std::size_t sweep_scalar(
    const double* keys, std::size_t begin, std::size_t end, double d) {
    std::size_t i = begin;
    while (i < end && keys[i] < d) ++i;
    return i;
}

GSP_DECISION_PURE GSP_HOT_PATH void distances2d_scalar(
    const double* ax, const double* ay, const double* bx, const double* by,
    std::size_t n, double* out) {
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = ax[i] - bx[i];
        const double dy = ay[i] - by[i];
        out[i] = std::sqrt(dx * dx + dy * dy);
    }
}

GSP_DECISION_PURE GSP_HOT_PATH std::uint32_t match_scalar(
    const std::uint32_t* a, const std::uint32_t* b, std::size_t n,
    std::uint32_t skip) {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] == b[i] && a[i] != skip) mask |= 1u << i;
    }
    return mask;
}

GSP_DECISION_PURE GSP_HOT_PATH std::uint32_t relax_scalar(
    const HalfEdge* half, std::size_t n, double d,
                           double limit, double* nd) {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double v = d + half[i].weight;
        nd[i] = v;
        if (v <= limit) mask |= 1u << i;
    }
    return mask;
}

constexpr Kernels kScalarTable = {
    Backend::kScalar, &sweep_scalar, &distances2d_scalar, &match_scalar,
    &relax_scalar,
};

#if GSP_SIMD_X86

// ---------------------------------------------------------------- sse4.2
// 128-bit lanes: 2 doubles / 4 u32 per op. Every op here is SSE2-era, but
// the table is gated on (and named for) the SSE4.2 dispatch tier.

GSP_DECISION_PURE GSP_HOT_PATH __attribute__((target("sse4.2"))) std::size_t
sweep_sse42(const double* keys,
                                                          std::size_t begin,
                                                          std::size_t end, double d) {
    std::size_t i = begin;
    const __m128d vd = _mm_set1_pd(d);
    for (; i + 2 <= end; i += 2) {
        const __m128d k = _mm_loadu_pd(keys + i);
        const int m = _mm_movemask_pd(_mm_cmplt_pd(k, vd));
        if (m != 0x3) {
            return i + static_cast<std::size_t>(
                           std::countr_one(static_cast<unsigned>(m)));
        }
    }
    for (; i < end; ++i) {
        if (!(keys[i] < d)) return i;
    }
    return end;
}

GSP_DECISION_PURE GSP_HOT_PATH __attribute__((target("sse4.2"))) void
distances2d_sse42(const double* ax,
                                                         const double* ay,
                                                         const double* bx,
                                                         const double* by,
                                                         std::size_t n, double* out) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d dx = _mm_sub_pd(_mm_loadu_pd(ax + i), _mm_loadu_pd(bx + i));
        const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ay + i), _mm_loadu_pd(by + i));
        const __m128d s = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
        _mm_storeu_pd(out + i, _mm_sqrt_pd(s));
    }
    for (; i < n; ++i) {
        const double dx = ax[i] - bx[i];
        const double dy = ay[i] - by[i];
        out[i] = std::sqrt(dx * dx + dy * dy);
    }
}

GSP_DECISION_PURE GSP_HOT_PATH __attribute__((target("sse4.2"))) std::uint32_t
match_sse42(const std::uint32_t* a,
                                                            const std::uint32_t* b,
                                                            std::size_t n,
                                                            std::uint32_t skip) {
    std::uint32_t mask = 0;
    std::size_t i = 0;
    const __m128i vskip = _mm_set1_epi32(static_cast<int>(skip));
    for (; i + 4 <= n; i += 4) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
        const __m128i ok =
            _mm_andnot_si128(_mm_cmpeq_epi32(va, vskip), _mm_cmpeq_epi32(va, vb));
        mask |= static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(ok)))
                << i;
    }
    for (; i < n; ++i) {
        if (a[i] == b[i] && a[i] != skip) mask |= 1u << i;
    }
    return mask;
}

GSP_DECISION_PURE GSP_HOT_PATH __attribute__((target("sse4.2"))) std::uint32_t
relax_sse42(const HalfEdge* half,
                                                            std::size_t n, double d,
                                                            double limit, double* nd) {
    std::uint32_t mask = 0;
    std::size_t i = 0;
    const __m128d vd = _mm_set1_pd(d);
    const __m128d vlim = _mm_set1_pd(limit);
    for (; i + 2 <= n; i += 2) {
        const __m128d w = _mm_set_pd(half[i + 1].weight, half[i].weight);
        const __m128d vnd = _mm_add_pd(vd, w);
        _mm_storeu_pd(nd + i, vnd);
        mask |= static_cast<std::uint32_t>(
                    _mm_movemask_pd(_mm_cmple_pd(vnd, vlim)))
                << i;
    }
    for (; i < n; ++i) {
        const double v = d + half[i].weight;
        nd[i] = v;
        if (v <= limit) mask |= 1u << i;
    }
    return mask;
}

constexpr Kernels kSse42Table = {
    Backend::kSSE42, &sweep_sse42, &distances2d_sse42, &match_sse42, &relax_sse42,
};

// ----------------------------------------------------------------- avx2
// 256-bit lanes: 4 doubles / 8 u32 per op; weights gathered at
// double-stride 3 straight out of the HalfEdge array.

GSP_DECISION_PURE GSP_HOT_PATH __attribute__((target("avx2"))) std::size_t
sweep_avx2(const double* keys,
                                                       std::size_t begin,
                                                       std::size_t end, double d) {
    std::size_t i = begin;
    const __m256d vd = _mm256_set1_pd(d);
    for (; i + 4 <= end; i += 4) {
        const __m256d k = _mm256_loadu_pd(keys + i);
        const int m = _mm256_movemask_pd(_mm256_cmp_pd(k, vd, _CMP_LT_OQ));
        if (m != 0xf) {
            return i + static_cast<std::size_t>(
                           std::countr_one(static_cast<unsigned>(m)));
        }
    }
    for (; i < end; ++i) {
        if (!(keys[i] < d)) return i;
    }
    return end;
}

GSP_DECISION_PURE GSP_HOT_PATH __attribute__((target("avx2"))) void
distances2d_avx2(const double* ax,
                                                      const double* ay,
                                                      const double* bx,
                                                      const double* by,
                                                      std::size_t n, double* out) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d dx =
            _mm256_sub_pd(_mm256_loadu_pd(ax + i), _mm256_loadu_pd(bx + i));
        const __m256d dy =
            _mm256_sub_pd(_mm256_loadu_pd(ay + i), _mm256_loadu_pd(by + i));
        const __m256d s =
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
        _mm256_storeu_pd(out + i, _mm256_sqrt_pd(s));
    }
    for (; i < n; ++i) {
        const double dx = ax[i] - bx[i];
        const double dy = ay[i] - by[i];
        out[i] = std::sqrt(dx * dx + dy * dy);
    }
}

GSP_DECISION_PURE GSP_HOT_PATH __attribute__((target("avx2"))) std::uint32_t
match_avx2(const std::uint32_t* a,
                                                         const std::uint32_t* b,
                                                         std::size_t n,
                                                         std::uint32_t skip) {
    std::uint32_t mask = 0;
    std::size_t i = 0;
    const __m256i vskip = _mm256_set1_epi32(static_cast<int>(skip));
    for (; i + 8 <= n; i += 8) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i ok = _mm256_andnot_si256(_mm256_cmpeq_epi32(va, vskip),
                                               _mm256_cmpeq_epi32(va, vb));
        mask |= static_cast<std::uint32_t>(
                    _mm256_movemask_ps(_mm256_castsi256_ps(ok)))
                << i;
    }
    for (; i < n; ++i) {
        if (a[i] == b[i] && a[i] != skip) mask |= 1u << i;
    }
    return mask;
}

GSP_DECISION_PURE GSP_HOT_PATH __attribute__((target("avx2"))) std::uint32_t
relax_avx2(const HalfEdge* half,
                                                         std::size_t n, double d,
                                                         double limit, double* nd) {
    std::uint32_t mask = 0;
    std::size_t i = 0;
    const double* base = reinterpret_cast<const double*>(half);
    const __m256d vd = _mm256_set1_pd(d);
    const __m256d vlim = _mm256_set1_pd(limit);
    // weight of edge e lives at double-offset 3e + 1 (static_asserts above).
    const __m128i step = _mm_setr_epi32(1, 4, 7, 10);
    for (; i + 4 <= n; i += 4) {
        const __m128i idx =
            _mm_add_epi32(step, _mm_set1_epi32(static_cast<int>(3 * i)));
        // All-ones-masked gather: same instruction as the plain form, but
        // with an explicit (zero) pass-through source -- GCC's unmasked
        // wrapper feeds the builtin an uninitialized source and trips
        // -Wmaybe-uninitialized.
        const __m256d w = _mm256_mask_i32gather_pd(
            _mm256_setzero_pd(), base, idx,
            _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
        const __m256d vnd = _mm256_add_pd(vd, w);
        _mm256_storeu_pd(nd + i, vnd);
        mask |= static_cast<std::uint32_t>(
                    _mm256_movemask_pd(_mm256_cmp_pd(vnd, vlim, _CMP_LE_OQ)))
                << i;
    }
    for (; i < n; ++i) {
        const double v = d + half[i].weight;
        nd[i] = v;
        if (v <= limit) mask |= 1u << i;
    }
    return mask;
}

constexpr Kernels kAvx2Table = {
    Backend::kAVX2, &sweep_avx2, &distances2d_avx2, &match_avx2, &relax_avx2,
};

#endif  // GSP_SIMD_X86

}  // namespace

const Kernels& scalar_kernels() { return kScalarTable; }

const Kernels& kernels_for(Backend b) {
#if GSP_SIMD_X86
    switch (b) {
        case Backend::kAVX2: return kAvx2Table;
        case Backend::kSSE42: return kSse42Table;
        case Backend::kScalar: break;
    }
#else
    (void)b;
#endif
    return kScalarTable;
}

const Kernels& auto_kernels() {
    static const Kernels& k = kernels_for(detect());
    return k;
}

const char* backend_label(const Kernels& k) { return backend_name(k.backend); }

}  // namespace gsp::simd
