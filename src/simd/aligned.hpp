// Over-aligned allocation for the SoA arrays the vector kernels stream.
//
// The kernels themselves use unaligned loads (the penalty on anything
// post-Nehalem is a cycle when a load splits a cache line, nothing when it
// does not), so alignment is not a correctness requirement -- it is a
// layout guarantee: a 64-byte-aligned array never splits its first vector
// across cache lines and never false-shares its head with a neighboring
// allocation's tail. The probe label arrays and the grid's flat cell
// arrays are written by one worker and scanned by vector sweeps, so both
// properties matter there.
//
// kSoAlign = 64 covers one full cache line (and therefore every vector
// width up to AVX-512); the 32-byte AVX2 requirement mentioned in the
// layer's design is subsumed.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace gsp::simd {

inline constexpr std::size_t kSoAlign = 64;

/// Minimal C++17 allocator handing out storage aligned to `Align` bytes.
/// Propagates nothing, compares equal always (stateless), and rebinding
/// keeps the alignment -- exactly what std::vector needs.
template <class T, std::size_t Align = kSoAlign>
class AlignedAllocator {
    static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
    static_assert(Align >= alignof(T), "alignment must not weaken the type's own");

public:
    using value_type = T;
    using size_type = std::size_t;
    using difference_type = std::ptrdiff_t;

    template <class U>
    struct rebind {
        using other = AlignedAllocator<U, Align>;
    };

    AlignedAllocator() noexcept = default;
    template <class U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

    [[nodiscard]] T* allocate(std::size_t n) {
        if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
            throw std::bad_alloc();
        }
        // operator new with extended alignment: portable (no posix_memalign
        // / _aligned_malloc split) and ASan-instrumented like every other
        // allocation in the codebase.
        return static_cast<T*>(
            ::operator new(n * sizeof(T), std::align_val_t{Align}));
    }

    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{Align});
    }

    friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
        return true;
    }
};

/// The vector type the SoA arrays use: std::vector semantics, cache-line
/// aligned storage.
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace gsp::simd
