// Runtime CPU feature detection for the vector kernel tables.
//
// Dispatch policy (also documented in the README's "SIMD backend"
// section): the widest instruction set the *running* CPU reports wins --
// AVX2, then SSE4.2, then the scalar reference. Detection runs once (the
// first call latches the answer), costs one CPUID tree walk, and never
// consults the compile-time -march: a binary built for baseline x86-64
// still runs the AVX2 table on an AVX2 machine, because the vector
// bodies are compiled with per-function target attributes rather than a
// translation-unit-wide flag.
//
// On non-x86-64 targets (or compilers without __builtin_cpu_supports)
// detection constant-folds to kScalar and the vector tables alias the
// scalar one, so every call site stays unconditional.
#pragma once

namespace gsp::simd {

enum class Backend {
    kScalar,  ///< pure C++ reference implementation (always available)
    kSSE42,   ///< 128-bit lanes: 2 doubles / 4 u32 per op
    kAVX2,    ///< 256-bit lanes: 4 doubles / 8 u32 per op
};

/// Widest backend the running CPU supports. Latched on first call.
[[nodiscard]] Backend detect();

/// Human-readable backend name ("scalar" / "sse4.2" / "avx2") -- the
/// string BuildReport::simd_backend and the bench artifacts record.
[[nodiscard]] const char* backend_name(Backend b);

}  // namespace gsp::simd
