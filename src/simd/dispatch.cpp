#include "simd/dispatch.hpp"

namespace gsp::simd {

namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
Backend detect_once() {
    if (__builtin_cpu_supports("avx2")) return Backend::kAVX2;
    if (__builtin_cpu_supports("sse4.2")) return Backend::kSSE42;
    return Backend::kScalar;
}
#else
Backend detect_once() { return Backend::kScalar; }
#endif

}  // namespace

Backend detect() {
    static const Backend b = detect_once();
    return b;
}

const char* backend_name(Backend b) {
    switch (b) {
        case Backend::kSSE42: return "sse4.2";
        case Backend::kAVX2: return "avx2";
        case Backend::kScalar: break;
    }
    return "scalar";
}

}  // namespace gsp::simd
