// LSD radix sort on (weight, u, v) candidate keys -- the comparison-sort
// replacement for chunk finalization (PR 8 measured sort/harvest at about
// half the build).
//
// Key quantization, and why the ordering is exactly the comparator's:
// the composite sort key is the 128-bit concatenation
//
//     key(c) = wkey(c.weight) . c.u . c.v        (most significant first)
//
// where wkey maps a double to a uint64 such that for NaN-free inputs
// a < b  <=>  wkey(a) < wkey(b) and a == b  <=>  wkey(a) == wkey(b):
// IEEE-754 doubles of equal sign compare like their payload bits, so
// flipping the sign bit (non-negatives) or all bits (negatives) yields a
// total order matching operator<. The one double pair that compares equal
// with different bit patterns, -0.0 == +0.0, is canonicalized to +0.0
// before the map, so comparator-equal weights always share one wkey.
// Candidate weights here are metric distances (nonnegative), but the map
// is order-preserving for the full NaN-free double line regardless.
//
// Lexicographic order on key(c) is then exactly
// std::tie(weight, u, v) < std::tie(...), and LSD radix -- eight stable
// counting passes over 16-bit digits, least significant first -- sorts by
// it while preserving input order of equal keys. Stable + same total
// order means the output permutation is byte-identical to
// std::stable_sort with the chunk comparator (the simd_kernel_test
// asserts this on tie-heavy adversarial inputs).
//
// Passes whose digit is constant across the array (common: v/u high
// halves on small ids, weight tails on quantized grids) are detected from
// the single histogram pre-pass and skipped outright.
#pragma once

#include <vector>

#include "core/candidate_stream.hpp"
#include "util/annotations.hpp"

namespace gsp::simd {

/// Reusable sorter (histogram + ping-pong buffers persist across chunks;
/// the grid stream finalizes thousands of windows per build).
class CandidateRadixSorter {
public:
    /// Sorts `v` by (weight, u, v) ascending; weights must be NaN-free.
    /// Equal elements keep their input order (full stability).
    GSP_DECISION_PURE void sort(std::vector<GreedyCandidate>& v);

    /// Buffer footprint (bytes) for memory accounting.
    [[nodiscard]] std::size_t bytes() const;

private:
    std::vector<GreedyCandidate> tmp_;
    std::vector<std::uint32_t> hist_;  ///< kPasses x 65536 counts
};

}  // namespace gsp::simd
