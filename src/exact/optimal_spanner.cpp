#include "exact/optimal_spanner.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/shortest_paths.hpp"

namespace gsp {

namespace {

/// Per-edge spanner targets: t * delta_G(u, v) for every edge of g.
std::vector<Weight> edge_targets(const Graph& g, double t) {
    const auto apsp = all_pairs_dijkstra(g);
    std::vector<Weight> targets(g.num_edges());
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
        const Edge& e = g.edge(id);
        targets[id] = t * apsp[e.u][e.v];
    }
    return targets;
}

/// Does the subgraph of g keeping `alive` edges t-span every edge of g?
bool feasible(const Graph& g, const std::vector<bool>& alive,
              const std::vector<Weight>& targets, DijkstraWorkspace& ws) {
    Graph h(g.num_vertices());
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
        if (alive[id]) {
            const Edge& e = g.edge(id);
            h.add_edge(e.u, e.v, e.weight);
        }
    }
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
        if (alive[id]) continue;  // kept edges span themselves
        const Edge& e = g.edge(id);
        if (ws.distance(h, e.u, e.v, targets[id]) > targets[id]) return false;
    }
    return true;
}

struct SearchState {
    const Graph& g;
    double t;
    SpannerObjective objective;
    std::vector<Weight> targets;
    std::vector<EdgeId> order;       ///< optional edges, heaviest first
    std::vector<bool> alive;         ///< current candidate (true = kept so far)
    DijkstraWorkspace ws;
    std::size_t nodes = 0;
    std::size_t node_limit;
    bool complete = true;

    double best_cost = 0.0;
    std::vector<bool> best_alive;

    SearchState(const Graph& graph, double stretch, SpannerObjective obj,
                std::size_t limit)
        : g(graph),
          t(stretch),
          objective(obj),
          targets(edge_targets(graph, stretch)),
          alive(graph.num_edges(), true),
          ws(graph.num_vertices()),
          node_limit(limit) {}

    [[nodiscard]] double cost_of(const std::vector<bool>& a) const {
        double edges = 0.0;
        double weight = 0.0;
        for (EdgeId id = 0; id < g.num_edges(); ++id) {
            if (a[id]) {
                edges += 1.0;
                weight += g.edge(id).weight;
            }
        }
        // Min-edges uses weight as an epsilon tiebreak so the reported
        // optimum is canonical.
        return objective == SpannerObjective::kMinEdges
                   ? edges + weight / (1e9 * (1.0 + weight))
                   : weight;
    }

    /// Lower bound for the current partial assignment: edges decided "kept"
    /// among order[0..depth) plus all forced edges are committed; undecided
    /// edges may all be dropped.
    [[nodiscard]] double committed_cost(std::size_t depth) const {
        double edges = 0.0;
        double weight = 0.0;
        // Edges not in `order` are forced-kept; edges in order[0..depth)
        // reflect their decision in `alive`; edges in order[depth..) are
        // optimistically dropped.
        std::vector<bool> undecided(g.num_edges(), false);
        for (std::size_t i = depth; i < order.size(); ++i) undecided[order[i]] = true;
        for (EdgeId id = 0; id < g.num_edges(); ++id) {
            if (alive[id] && !undecided[id]) {
                edges += 1.0;
                weight += g.edge(id).weight;
            }
        }
        return objective == SpannerObjective::kMinEdges ? edges : weight;
    }

    void dfs(std::size_t depth) {
        if (nodes >= node_limit) {
            complete = false;
            return;
        }
        ++nodes;
        if (!best_alive.empty() && committed_cost(depth) >= best_cost) return;
        if (depth == order.size()) {
            const double cost = cost_of(alive);
            if (best_alive.empty() || cost < best_cost) {
                best_cost = cost;
                best_alive = alive;
            }
            return;
        }
        const EdgeId id = order[depth];
        // Exclude-first: good solutions are sparse.
        alive[id] = false;
        if (feasible(g, alive, targets, ws)) dfs(depth + 1);
        alive[id] = true;
        dfs(depth + 1);
    }
};

OptimalSpannerResult finish(const Graph& g, const SearchState& st) {
    OptimalSpannerResult result;
    result.nodes_explored = st.nodes;
    result.proven_optimal = st.complete;
    const std::vector<bool>& pick = st.best_alive.empty() ? st.alive : st.best_alive;
    Graph h(g.num_vertices());
    double weight = 0.0;
    double edges = 0.0;
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
        if (pick[id]) {
            const Edge& e = g.edge(id);
            h.add_edge(e.u, e.v, e.weight);
            weight += e.weight;
            edges += 1.0;
        }
    }
    result.spanner = std::move(h);
    result.objective = st.objective == SpannerObjective::kMinEdges ? edges : weight;
    return result;
}

}  // namespace

OptimalSpannerResult optimal_spanner(const Graph& g, double t, SpannerObjective objective,
                                     std::size_t node_limit) {
    if (t < 1.0) throw std::invalid_argument("optimal_spanner: stretch must be >= 1");
    SearchState st(g, t, objective, node_limit);

    // Forced edges: dropping the edge from the *full* graph already breaks
    // its own constraint, so no subgraph can span it. They never enter the
    // branching order.
    std::vector<EdgeId> optional;
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
        st.alive[id] = false;
        const bool forced = !feasible(g, st.alive, st.targets, st.ws);
        st.alive[id] = true;
        if (!forced) optional.push_back(id);
    }
    // Heaviest first: dropping expensive edges early finds good incumbents.
    std::sort(optional.begin(), optional.end(), [&](EdgeId a, EdgeId b) {
        return g.edge(a).weight > g.edge(b).weight;
    });
    st.order = std::move(optional);

    st.dfs(0);
    return finish(g, st);
}

OptimalSpannerResult optimal_spanner_bruteforce(const Graph& g, double t,
                                                SpannerObjective objective) {
    if (g.num_edges() > 20) {
        throw std::invalid_argument("optimal_spanner_bruteforce: too many edges");
    }
    SearchState st(g, t, objective, /*node_limit=*/std::size_t(-1));
    const std::size_t m = g.num_edges();
    for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
        ++st.nodes;
        for (EdgeId id = 0; id < m; ++id) st.alive[id] = ((mask >> id) & 1u) != 0;
        if (!feasible(st.g, st.alive, st.targets, st.ws)) continue;
        const double cost = st.cost_of(st.alive);
        if (st.best_alive.empty() || cost < st.best_cost) {
            st.best_cost = cost;
            st.best_alive = st.alive;
        }
    }
    std::fill(st.alive.begin(), st.alive.end(), true);
    return finish(g, st);
}

}  // namespace gsp
