// Exact minimum t-spanner by branch and bound (small instances).
//
// The minimum t-spanner problem is NP-hard, but the paper's Figure 1 claims
// an *exact* optimum ("the optimal 3-spanner for G consists of the 9 edges
// of S"), so reproducing the figure honestly requires an exact solver. The
// search branches on edges (exclude-first), prunes a branch as soon as the
// remaining graph cannot t-span some input edge, and bounds with the best
// incumbent. Also the referee for the GAP experiment (greedy vs optimum).
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace gsp {

enum class SpannerObjective {
    kMinEdges,   ///< minimize |H| (ties: lighter weight)
    kMinWeight,  ///< minimize w(H)
};

struct OptimalSpannerResult {
    Graph spanner;
    bool proven_optimal = false;     ///< search ran to completion
    std::size_t nodes_explored = 0;  ///< branch-and-bound tree size
    double objective = 0.0;          ///< |H| or w(H) per the objective
};

/// Find a minimum t-spanner of g. `node_limit` caps the search; when hit,
/// the best incumbent is returned with proven_optimal = false.
/// Spanner condition per the paper's §2: delta_H(u,v) <= t * delta_G(u,v)
/// for every *edge* (u,v) of g (which implies it for all pairs).
OptimalSpannerResult optimal_spanner(const Graph& g, double t,
                                     SpannerObjective objective = SpannerObjective::kMinEdges,
                                     std::size_t node_limit = 50'000'000);

/// Exhaustive reference (2^m subsets); m <= ~18. For testing the B&B.
OptimalSpannerResult optimal_spanner_bruteforce(
    const Graph& g, double t, SpannerObjective objective = SpannerObjective::kMinEdges);

}  // namespace gsp
