#include "geom/uniform_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace gsp {

namespace {

constexpr double kHalfSqrt2 = 0.7071067811865476;  // sqrt(2) / 2

/// Enumerate every unordered pair of occupied cells of `lv` whose
/// min_boxdist falls in [mb_lo, mb_hi), each exactly once (row-major:
/// dy >= 0, and dx > 0 when dy == 0), invoking fn(a, b) with the two cell
/// indices. The row [x_lo, x_hi] of candidate neighbors is contiguous in
/// the sorted key array (y-major packing), so each row costs two binary
/// searches plus a scan of the hits.
template <class Fn>
void scan_cell_pairs(const UniformGrid2D::Level& lv, double mb_lo, double mb_hi, Fn&& fn) {
    if (!(mb_lo < mb_hi)) return;
    const double h = lv.cell_size;
    const auto R = static_cast<std::int64_t>(mb_hi / h) + 1;
    const std::size_t cells = lv.keys.size();
    for (std::size_t a = 0; a < cells; ++a) {
        const std::uint64_t key = lv.keys[a];
        const auto ax = static_cast<std::int64_t>(key & 0xffffffffULL);
        const auto ay = static_cast<std::int64_t>(key >> 32);
        for (std::int64_t dy = 0; dy <= R; ++dy) {
            if (dy > 0 && static_cast<double>(dy - 1) * h >= mb_hi) break;
            const std::int64_t row = ay + dy;
            const std::int64_t x_lo = dy == 0 ? ax + 1 : std::max<std::int64_t>(0, ax - R);
            const std::int64_t x_hi = ax + R;
            if (x_lo > x_hi) continue;
            const std::uint64_t k_lo =
                (static_cast<std::uint64_t>(row) << 32) | static_cast<std::uint64_t>(x_lo);
            const std::uint64_t k_hi =
                (static_cast<std::uint64_t>(row) << 32) | static_cast<std::uint64_t>(x_hi);
            auto it = std::lower_bound(lv.keys.begin(), lv.keys.end(), k_lo);
            const auto end = std::upper_bound(it, lv.keys.end(), k_hi);
            for (; it != end; ++it) {
                const auto bx = static_cast<std::int64_t>(*it & 0xffffffffULL);
                const std::int64_t adx = bx >= ax ? bx - ax : ax - bx;
                const double gx = adx > 0 ? static_cast<double>(adx - 1) * h : 0.0;
                const double gy = dy > 0 ? static_cast<double>(dy - 1) * h : 0.0;
                const double mb = std::hypot(gx, gy);
                if (mb >= mb_lo && mb < mb_hi) {
                    fn(a, static_cast<std::size_t>(it - lv.keys.begin()));
                }
            }
        }
    }
}

}  // namespace

std::uint64_t UniformGrid2D::cell_key(double x, double y, double h) const {
    const auto ix = static_cast<std::uint64_t>(std::max(0.0, std::floor((x - minx_) / h)));
    const auto iy = static_cast<std::uint64_t>(std::max(0.0, std::floor((y - miny_) / h)));
    return (iy << 32) | (ix & 0xffffffffULL);
}

std::size_t UniformGrid2D::find_cell(const Level& level, std::uint64_t key) const {
    const auto it = std::lower_bound(level.keys.begin(), level.keys.end(), key);
    if (it == level.keys.end() || *it != key) {
        throw std::logic_error("UniformGrid2D: point mapped to an unoccupied cell");
    }
    return static_cast<std::size_t>(it - level.keys.begin());
}

UniformGrid2D::UniformGrid2D(const EuclideanMetric& m, double separation)
    : m_(m), separation_(separation) {
    if (m_.dim() != 2) {
        throw std::invalid_argument("UniformGrid2D: metric must be 2-dimensional");
    }
    if (!(separation_ > 4.0)) {
        throw std::invalid_argument(
            "UniformGrid2D: separation must be > 4 for a finite stretch bound");
    }
    const std::size_t n = m_.size();
    if (n == 0) return;

    minx_ = m_.point(0)[0];
    miny_ = m_.point(0)[1];
    double maxx = minx_, maxy = miny_;
    for (std::size_t i = 1; i < n; ++i) {
        const auto p = m_.point(i);
        minx_ = std::min(minx_, p[0]);
        maxx = std::max(maxx, p[0]);
        miny_ = std::min(miny_, p[1]);
        maxy = std::max(maxy, p[1]);
    }
    const double span = std::max(maxx - minx_, maxy - miny_);
    dmax_ = std::hypot(maxx - minx_, maxy - miny_);

    // Level-0 granularity: ~1-2 points per occupied cell on uniform data
    // (power-of-two cells per axis nearest sqrt(n)).
    double axis = std::exp2(std::round(std::log2(std::sqrt(static_cast<double>(n)))));
    if (axis < 1.0) axis = 1.0;
    double h0 = span > 0.0 ? span / axis : 1.0;
    if (!(h0 > 0.0)) h0 = 1.0;
    near_cutoff_ = separation_ * h0 * kHalfSqrt2;

    const auto build_level = [&](double h) {
        Level lv;
        lv.cell_size = h;
        lv.radius = h * kHalfSqrt2;
        std::vector<std::pair<std::uint64_t, VertexId>> order(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto p = m_.point(i);
            order[i] = {cell_key(p[0], p[1], h), static_cast<VertexId>(i)};
        }
        std::sort(order.begin(), order.end());  // (key, id): ids ascending per cell
        lv.ids.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (i == 0 || order[i].first != order[i - 1].first) {
                lv.keys.push_back(order[i].first);
                lv.cell_start.push_back(static_cast<std::uint32_t>(i));
                lv.rep.push_back(order[i].second);
            }
            lv.ids[i] = order[i].second;
        }
        lv.cell_start.push_back(static_cast<std::uint32_t>(n));
        return lv;
    };

    levels_.push_back(build_level(h0));
    double h = h0;
    while (levels_.back().keys.size() > 1) {
        h *= 2.0;
        // Level l only serves pairs with d >= s * r_l; none exist past
        // the diagonal. And once a level holds a single occupied cell,
        // every pair it could see is within 2 r < s r of itself -- no
        // assignment there or coarser.
        if (separation_ * h * kHalfSqrt2 > dmax_) break;
        levels_.push_back(build_level(h));
    }
}

void UniformGrid2D::collect_window(double lo, double hi, std::vector<GreedyCandidate>* out,
                                   std::size_t* count) const {
    if (levels_.empty() || !(lo < hi)) return;
    const auto emit = [&](VertexId u, VertexId v, double w) {
        if (out != nullptr) {
            out->push_back(GreedyCandidate{u, v, w});
        } else {
            ++*count;
        }
    };

    // Candidate weights are computed in batches: pairs queue their
    // endpoint coordinates, one distances2d kernel call evaluates up to
    // kPairBatch of them, and the consumer filter runs over the results in
    // queue order. The kernel is bitwise equal to m_.distance, so the
    // emitted candidates -- and the count-mode tallies -- are identical to
    // the per-pair evaluation at any backend.
    constexpr std::size_t kPairBatch = 8;
    struct {
        double ax[kPairBatch], ay[kPairBatch], bx[kPairBatch], by[kPairBatch];
        VertexId u[kPairBatch], v[kPairBatch];
        std::size_t n = 0;
    } pend;
    double dist[kPairBatch];
    const auto flush = [&](auto&& consume) {
        if (pend.n == 0) return;
        simd_->distances2d(pend.ax, pend.ay, pend.bx, pend.by, pend.n, dist);
        for (std::size_t i = 0; i < pend.n; ++i) consume(pend.u[i], pend.v[i], dist[i]);
        pend.n = 0;
    };
    const auto push_pair = [&](VertexId a, VertexId b, auto&& consume) {
        const VertexId u = std::min(a, b);
        const VertexId v = std::max(a, b);
        const auto pu = m_.point(u);
        const auto pv = m_.point(v);
        pend.ax[pend.n] = pu[0];
        pend.ay[pend.n] = pu[1];
        pend.bx[pend.n] = pv[0];
        pend.by[pend.n] = pv[1];
        pend.u[pend.n] = u;
        pend.v[pend.n] = v;
        if (++pend.n == kPairBatch) flush(consume);
    };

    // Near pairs: exact point-pair enumeration at level 0. A pair at
    // distance d lies in cells with min_boxdist <= d <= min_boxdist +
    // 4 r_0, so only cell pairs with min_boxdist in the clamped band can
    // contribute to this window.
    {
        const Level& l0 = levels_.front();
        const double band_lo = std::max(0.0, lo - 4.0 * l0.radius);
        const double band_hi = std::min(near_cutoff_, hi);
        if (band_lo < band_hi) {
            const auto consume_near = [&](VertexId u, VertexId v, double d) {
                if (d < near_cutoff_ && d >= lo && d < hi) emit(u, v, d);
            };
            const auto emit_near = [&](VertexId a, VertexId b) {
                push_pair(a, b, consume_near);
            };
            if (band_lo == 0.0) {  // same-cell pairs have min_boxdist 0
                for (std::size_t c = 0; c + 1 < l0.cell_start.size(); ++c) {
                    for (std::uint32_t p = l0.cell_start[c]; p < l0.cell_start[c + 1]; ++p) {
                        for (std::uint32_t q = p + 1; q < l0.cell_start[c + 1]; ++q) {
                            emit_near(l0.ids[p], l0.ids[q]);
                        }
                    }
                }
            }
            scan_cell_pairs(l0, band_lo, band_hi, [&](std::size_t a, std::size_t b) {
                for (std::uint32_t p = l0.cell_start[a]; p < l0.cell_start[a + 1]; ++p) {
                    for (std::uint32_t q = l0.cell_start[b]; q < l0.cell_start[b + 1]; ++q) {
                        emit_near(l0.ids[p], l0.ids[q]);
                    }
                }
            });
            flush(consume_near);  // the filter changes below: drain first
        }
    }

    // Far pairs: one representative candidate per ring cell pair, every
    // level. The ring [(s - 4) r, 2 s r) is where a level's assigned
    // pairs can live; the window narrows it further through the same
    // weight-vs-boxdist slack (w <= mb + 4 r).
    const auto consume_far = [&](VertexId u, VertexId v, double w) {
        if (w >= lo && w < hi) emit(u, v, w);
    };
    for (const Level& lv : levels_) {
        const double rl = lv.radius;
        const double band_lo = std::max((separation_ - 4.0) * rl, lo - 4.0 * rl);
        const double band_hi = std::min(2.0 * separation_ * rl, hi);
        if (!(band_lo < band_hi)) continue;
        scan_cell_pairs(lv, band_lo, band_hi, [&](std::size_t a, std::size_t b) {
            push_pair(lv.rep[a], lv.rep[b], consume_far);
        });
    }
    flush(consume_far);  // one filter across levels: drain once at the end
}

GreedyCandidate UniformGrid2D::covering_candidate(VertexId i, VertexId j) const {
    const VertexId u = std::min(i, j);
    const VertexId v = std::max(i, j);
    const double d = m_.distance(u, v);
    if (d < near_cutoff_) return GreedyCandidate{u, v, d};
    const auto level = static_cast<std::size_t>(std::floor(std::log2(d / near_cutoff_)));
    const Level& lv = levels_.at(level);  // construction guarantees existence
    const auto pu = m_.point(u);
    const auto pv = m_.point(v);
    const std::size_t cu = find_cell(lv, cell_key(pu[0], pu[1], lv.cell_size));
    const std::size_t cv = find_cell(lv, cell_key(pv[0], pv[1], lv.cell_size));
    if (cu == cv) {
        throw std::logic_error("UniformGrid2D: assigned pair landed in one cell");
    }
    const VertexId ru = std::min(lv.rep[cu], lv.rep[cv]);
    const VertexId rv = std::max(lv.rep[cu], lv.rep[cv]);
    return GreedyCandidate{ru, rv, m_.distance(ru, rv)};
}

GridChunkSource::GridChunkSource(const UniformGrid2D& grid, std::size_t soft_cap_hint)
    : grid_(&grid),
      cap_(std::max<std::size_t>(4 * soft_cap_hint, std::size_t{1} << 18)) {
    window_floor_ = grid.near_cutoff() > 0.0 ? grid.near_cutoff() * 0x1p-20 : 1.0;
    boundary_ = window_floor_;
    done_ = grid.levels().empty();
}

bool GridChunkSource::advance_window() {
    while (!done_) {
        if (lo_ > 0.0 && lo_ > grid_->max_distance_bound()) {
            done_ = true;
            break;
        }
        // Split the geometric window until its candidate count fits the
        // memory cap (arithmetic midpoint: deterministic, and the sweep
        // stays an exact partition of the weight axis). A sliver that
        // cannot shrink further is an equal-weight mass; serve it whole.
        double hi = boundary_;
        for (;;) {
            std::size_t count = 0;
            grid_->collect_window(lo_, hi, nullptr, &count);
            if (count <= cap_) break;
            if (hi - lo_ <= std::max(lo_, window_floor_) * 1e-12) break;
            hi = lo_ + (hi - lo_) * 0.5;
        }
        scratch_.clear();
        served_ = 0;
        grid_->collect_window(lo_, hi, &scratch_, nullptr);
        // Chunk finalization: LSD radix on the (weight, u, v) key --
        // byte-identical ordering to the comparison sort it replaced
        // (simd/radix_sort.hpp carries the proof sketch), at O(n) instead
        // of O(n log n) comparisons on windows that run to 2^18 entries.
        sorter_.sort(scratch_);
        // Duplicates (a pair covered by several rings, or a near pair
        // doubling as a representative pair) share their weight, hence
        // their window: adjacent after the sort, removed completely here.
        scratch_.erase(std::unique(scratch_.begin(), scratch_.end(),
                                   [](const GreedyCandidate& a, const GreedyCandidate& b) {
                                       return a.weight == b.weight && a.u == b.u &&
                                              a.v == b.v;
                                   }),
                       scratch_.end());
        lo_ = hi;
        if (lo_ >= boundary_) boundary_ *= 2.0;
        if (!scratch_.empty()) return true;
    }
    return false;
}

bool GridChunkSource::next_chunk(std::size_t soft_cap, std::vector<GreedyCandidate>& out) {
    while (served_ >= scratch_.size()) {
        if (!advance_window()) return false;
    }
    const std::size_t take =
        std::min(std::max<std::size_t>(soft_cap, 1), scratch_.size() - served_);
    const std::size_t end = served_ + take;
    out.insert(out.end(), scratch_.begin() + static_cast<std::ptrdiff_t>(served_),
               scratch_.begin() + static_cast<std::ptrdiff_t>(end));
    served_ = end;
    return true;
}

}  // namespace gsp
