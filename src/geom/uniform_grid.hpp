// Grid-pruned geometric candidate generation.
//
// The WSPD source already gets the greedy candidate count down to O(n) --
// but its quadtree + dumbbell-pair machinery carries real constants, and
// its chunked mode still holds every representative pair at once. For the
// common Euclidean workload there is a simpler linear-space scheme built
// on a hierarchy of uniform grids:
//
//   level l partitions the bounding box into cells of side h_0 * 2^l
//   (enclosing radius r_l = h_l * sqrt(2) / 2, so any two points in one
//   cell are within 2 r_l of each other);
//
//   a point pair at distance d is *assigned* to the unique level with
//   s * r_l <= d < 2 s * r_l; pairs closer than s * r_0 are "near" pairs,
//   enumerated exactly (point by point) at level 0;
//
//   an assigned pair's two cells are distinct (same cell would force
//   d <= 2 r_l < s r_l) and their index distance lands in a thin ring:
//   min_boxdist in [(s - 4) r_l, 2 s r_l). Emitting one candidate per
//   occupied cell pair in that ring -- the minimum-id representative of
//   each cell, at the representatives' exact distance -- therefore covers
//   every assigned pair. The ring test is conservative (no per-pair
//   existence check), so some cell pairs with no assigned pair also emit;
//   the extra candidates are harmless (greedy rejects them cheaply) and
//   the count stays O(s^2) per occupied cell per level.
//
// Covered pairs satisfy exactly the dumbbell premises of the WSPD bound
// (points within 2 r_l of their representative, d >= s * r_l), so greedy
// over these candidates with engine stretch t spans the whole metric with
// stretch wspd_greedy_stretch_bound(t, s) = t (s + 4) / (s - 4), s > 4.
//
// Ordered, memory-bounded emission (GridChunkSource): sweep geometric
// weight windows [lo, hi) from below the smallest near distance to past
// the bounding-box diagonal. Per window, every level enumerates only the
// cell pairs whose min_boxdist could place a candidate weight inside the
// window (weight w of a cell pair obeys mb <= w <= mb + 4 r_l); the
// window's candidates are sorted by the source tie rule (weight, u, v),
// deduplicated, and served in soft_cap slices. A window whose candidate
// count would blow the memory cap is halved (deterministically, by
// arithmetic midpoint) until it fits -- peak candidate memory is bounded
// by the cap regardless of how weights cluster. Nothing outside the
// current window is ever resident, and far pairs are never touched at
// all: the whole structure is O(n) ids + O(occupied cells) per level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/candidate_stream.hpp"
#include "graph/types.hpp"
#include "metric/euclidean.hpp"
#include "simd/aligned.hpp"
#include "simd/radix_sort.hpp"
#include "simd/simd.hpp"

namespace gsp {

/// The hierarchy of sparse uniform grids over a 2D Euclidean point set.
/// Struct-of-arrays per level: sorted packed cell keys, a prefix into the
/// cell-grouped point ids, and the per-cell representative (minimum id) --
/// flat cell arrays on the cache-line-aligned allocator (they are the
/// sweep operands of every window scan). Construction is O(n log n) per
/// level and the level count is O(log(diameter / h_0)), truncated as soon
/// as a level has at most one occupied cell (no far pair can need it or
/// any coarser level).
class UniformGrid2D {
public:
    struct Level {
        double cell_size = 0.0;  ///< h_l
        double radius = 0.0;     ///< r_l = h_l * sqrt(2) / 2
        simd::AlignedVector<std::uint64_t> keys;  ///< sorted (iy << 32) | ix per occupied cell
        simd::AlignedVector<std::uint32_t> cell_start;  ///< prefix into ids (keys.size() + 1)
        simd::AlignedVector<VertexId> ids;  ///< point ids grouped by cell, ascending within a cell
        simd::AlignedVector<VertexId> rep;  ///< ids[cell_start[c]]: the minimum id in cell c
    };

    /// `m` must be 2-dimensional; `separation` must be > 4 (the finite-
    /// stretch regime of the dumbbell bound).
    UniformGrid2D(const EuclideanMetric& m, double separation);

    [[nodiscard]] const EuclideanMetric& metric() const { return m_; }
    [[nodiscard]] double separation() const { return separation_; }
    [[nodiscard]] const std::vector<Level>& levels() const { return levels_; }

    /// Pairs strictly closer than this are enumerated exactly (s * r_0).
    [[nodiscard]] double near_cutoff() const { return near_cutoff_; }

    /// Upper bound on any pairwise distance (the bounding-box diagonal).
    [[nodiscard]] double max_distance_bound() const { return dmax_; }

    /// Vector kernel table for the batched candidate-weight evaluation in
    /// collect_window (one distances2d call per 8 pairs, bitwise equal to
    /// per-pair metric().distance); nullptr restores the runtime default.
    void set_kernels(const simd::Kernels* k) {
        simd_ = k != nullptr ? k : &simd::auto_kernels();
    }

    /// Append every candidate of the window [lo, hi) -- near point pairs
    /// and ring representative pairs with weight in the window, duplicates
    /// and all, unsorted. With `out` null, only counts into `*count`
    /// (the splitting pre-pass). The two modes enumerate identically.
    void collect_window(double lo, double hi, std::vector<GreedyCandidate>* out,
                        std::size_t* count) const;

    /// The candidate guaranteed to cover pair (i, j): the pair itself when
    /// near, otherwise its assigned level's representative pair. The
    /// emitted stream provably contains this exact (u, v, weight) triple
    /// -- the O(n^2) coverage oracle the tests replay against.
    [[nodiscard]] GreedyCandidate covering_candidate(VertexId i, VertexId j) const;

private:
    friend class GridChunkSource;

    [[nodiscard]] std::uint64_t cell_key(double x, double y, double h) const;
    [[nodiscard]] std::size_t find_cell(const Level& level, std::uint64_t key) const;

    const EuclideanMetric& m_;
    double separation_;
    double minx_ = 0.0, miny_ = 0.0;
    double dmax_ = 0.0;          ///< bounding-box diagonal
    double near_cutoff_ = 0.0;   ///< s * r_0
    std::vector<Level> levels_;
    const simd::Kernels* simd_ = &simd::auto_kernels();
};

/// The pull-based generator over a grid: the window sweep described in
/// the header comment, honoring the CandidateChunkSource contract
/// (non-decreasing weight across chunks, concatenation identical to a
/// full materialization, caller-owned output buffer).
class GridChunkSource final : public CandidateChunkSource {
public:
    /// `soft_cap_hint` scales the window-splitting memory cap; the cap is
    /// max(4 * hint, 2^18) candidates so tiny hints cannot degrade the
    /// sweep into per-candidate windows.
    explicit GridChunkSource(const UniformGrid2D& grid, std::size_t soft_cap_hint = 0);

    bool next_chunk(std::size_t soft_cap, std::vector<GreedyCandidate>& out) override;

private:
    bool advance_window();  ///< fill scratch_ with the next non-empty window

    const UniformGrid2D* grid_;
    std::size_t cap_;
    double window_floor_;  ///< first geometric boundary above the zero window
    double lo_ = 0.0;
    double boundary_;      ///< next geometric boundary (floor * 2^k)
    bool done_ = false;
    std::vector<GreedyCandidate> scratch_;  ///< the one resident window
    std::size_t served_ = 0;
    simd::CandidateRadixSorter sorter_;  ///< chunk finalization (vs std::sort)
};

}  // namespace gsp
