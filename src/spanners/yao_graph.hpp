// Yao-graph spanner for 2D Euclidean point sets.
//
// Like the theta graph, but each cone connects to the *nearest* point (by
// Euclidean distance) instead of the smallest bisector projection.
// Stretch <= 1 / (1 - 2 sin(theta/2)) for theta = 2*pi/k < pi/3.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "metric/euclidean.hpp"

namespace gsp {

/// Yao graph with k cones; requires a 2D metric and k >= 4. O(n^2).
Graph yao_graph(const EuclideanMetric& m, std::size_t cones);

/// The guaranteed stretch factor of a k-cone Yao graph.
[[nodiscard]] double yao_graph_stretch_bound(std::size_t cones);

}  // namespace gsp
