// Bounded-degree (1+eps)-spanner for doubling metrics (the paper's
// Theorem 2 substrate, after [CGMZ05, GR08c]).
//
// Construction: build the net hierarchy, then
//   * parent edges  -- each point to its parent at every level;
//   * cross edges   -- every pair of level-l net points within gamma * r_l,
//                      gamma = 2 + 4/eps (the standard "wide neighborhood"
//                      that makes net-point detours absorbable in eps);
//   * degree reduction -- edges are replayed from heaviest to lightest;
//     when an endpoint's degree exceeds `degree_cap`, the edge is delegated
//     to a descendant of that endpoint a few net levels down (distance to
//     the delegate is O(eps) * edge length, so stretch survives). This is
//     the CGMZ-style rerouting that turns the net-tree spanner into a
//     bounded-degree one; see DESIGN.md §2.3 for the exact claim we test.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "metric/metric_space.hpp"
#include "nets/net_hierarchy.hpp"

namespace gsp {

struct NetSpannerOptions {
    double epsilon = 0.5;        ///< target stretch 1 + epsilon
    /// Per-vertex degree budget before delegation kicks in; 0 = no
    /// delegation (raw net-tree spanner, unbounded degree).
    std::size_t degree_cap = 64;
    /// Cross-edge radius multiplier gamma; 0 = the guaranteed worst-case
    /// formula 4 + 8/eps. The worst-case constant is what the proof needs,
    /// but it makes the eps^{-O(ddim)} size/degree "constants" so large that
    /// their n-independence only shows past laptop scale; experiments may
    /// override with a practical gamma and report the *measured* stretch.
    double gamma_override = 0.0;
};

/// Build the spanner over metric m. Returns a graph whose edge weights are
/// exact metric distances. Requires 0 < epsilon <= 1.
Graph net_spanner(const MetricSpace& m, const NetSpannerOptions& options);

/// Convenience overload.
inline Graph net_spanner(const MetricSpace& m, double epsilon) {
    return net_spanner(m, NetSpannerOptions{.epsilon = epsilon});
}

}  // namespace gsp
