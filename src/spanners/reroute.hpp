// The combination transform from the paper's closing Remark (end of §5):
// given a light spanner H1 and a bounded-degree spanner H2 of the same
// metric, build a spanner H by replacing every edge of H1 with a shortest
// path in H2 between its endpoints.
//
// Properties (all measured by the tests/bench):
//   * H is a subgraph of H2, so deg(H) <= deg(H2);
//   * stretch(H) <= stretch(H1) * stretch(H2) (each H1 edge is detoured by
//     at most stretch(H2));
//   * w(H) <= sum over H1 edges of their H2-path weights -- but shared path
//     segments are counted once, which is why the measured weight is often
//     much better than that bound.
//
// The Remark's point is that this transform is *expensive to compute* and
// that approximate-greedy makes it unnecessary; having it executable lets
// bench_ablation quantify both halves of that claim.
#pragma once

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace gsp {

/// Union of H2-shortest paths between the endpoints of every H1 edge.
/// Requires matching vertex counts; throws if some H1 edge's endpoints are
/// disconnected in H2. The workspace-taking overload reuses the caller's
/// DijkstraWorkspace (no O(n) allocation per call -- for loops that reroute
/// repeatedly); the pool-taking overload borrows workspace 0 of a
/// DijkstraWorkspacePool (pass SpannerSession::workspace_pool() so reroutes
/// between builds share the session's arenas); the plain overload
/// allocates a local workspace and delegates.
Graph reroute_through(const Graph& h1, const Graph& h2, DijkstraWorkspace& ws);
Graph reroute_through(const Graph& h1, const Graph& h2, DijkstraWorkspacePool& pool);
Graph reroute_through(const Graph& h1, const Graph& h2);

}  // namespace gsp
