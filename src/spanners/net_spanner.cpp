#include "spanners/net_spanner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace gsp {

namespace {

struct CandidateEdge {
    VertexId u;
    VertexId v;
    double length;
    std::size_t level;
};

}  // namespace

Graph net_spanner(const MetricSpace& m, const NetSpannerOptions& options) {
    const double eps = options.epsilon;
    if (!(eps > 0.0) || eps > 1.0) {
        throw std::invalid_argument("net_spanner: epsilon must be in (0, 1]");
    }
    const std::size_t n = m.size();
    Graph h(n);
    if (n <= 1) return h;

    const NetHierarchy nets(m);
    const double gamma =
        options.gamma_override > 0.0 ? options.gamma_override : 4.0 + 8.0 / eps;

    // Collect candidate edges: cross edges per level + parent edges. A pair
    // only enters at (roughly) its critical level -- the one where the cross
    // radius first reaches it; including it again at every higher level
    // would change nothing after dedup but costs enumeration time.
    std::vector<CandidateEdge> candidates;
    for (std::size_t l = 0; l < nets.num_levels(); ++l) {
        const double radius = gamma * nets.scale(l);
        const double annulus_lo = l == 0 ? 0.0 : radius / 2.0;
        nets.for_each_near_pair(l, radius, [&](VertexId a, VertexId b, double d) {
            if (d > annulus_lo) candidates.push_back({a, b, d, l});
        });
    }
    for (std::size_t l = 0; l + 1 < nets.num_levels(); ++l) {
        for (VertexId p : nets.level(l)) {
            const VertexId par = nets.parent(l, p);
            if (par != p) candidates.push_back({p, par, m.distance(p, par), l});
        }
    }

    // Deduplicate: the same pair typically appears at several levels (the
    // cross radius grows faster than the packing); keep the lowest level.
    std::sort(candidates.begin(), candidates.end(),
              [](const CandidateEdge& a, const CandidateEdge& b) {
                  return std::tie(a.u, a.v, a.level) < std::tie(b.u, b.v, b.level);
              });
    candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                 [](const CandidateEdge& a, const CandidateEdge& b) {
                                     return a.u == b.u && a.v == b.v;
                                 }),
                     candidates.end());

    // Degree-reduction replay: heaviest first, so the long edges (the ones
    // that can afford an O(eps * length) delegation detour) move out of the
    // way of hub vertices before the short edges claim their slots.
    std::sort(candidates.begin(), candidates.end(),
              [](const CandidateEdge& a, const CandidateEdge& b) {
                  return a.length > b.length;
              });

    std::vector<std::size_t> degree(n, 0);
    const std::size_t cap = options.degree_cap;

    // Delegate x downward: descend `drop` levels through least-loaded
    // children, then keep descending while x stays overloaded. Total detour
    // is a geometric sum <= 2 * scale(start_level - drop + 1), which the
    // drop of ~log2(8/eps) levels makes <= (eps/2) * scale(start_level)
    // <= (eps/2) * edge length.
    const auto drop = static_cast<std::size_t>(std::ceil(std::log2(32.0 / eps)));
    auto delegate = [&](VertexId x, std::size_t from_level) -> VertexId {
        // Descent is only meaningful from levels where x actually is a net
        // member (parent edges name an endpoint one level above the edge's
        // own level, and hubs are members far above it).
        std::size_t l = std::min(from_level, nets.top_level(x));
        auto descend = [&](VertexId y, std::size_t lev) -> VertexId {
            if (lev == 0) return y;
            const auto& kids = nets.children(lev - 1, y);
            VertexId best = y;  // y is its own child when still a member below
            std::size_t best_deg = degree[y];
            for (VertexId k : kids) {
                if (k != y && degree[k] < best_deg) {
                    best = k;
                    best_deg = degree[k];
                }
            }
            return best;
        };
        for (std::size_t step = 0; step < drop && l > 0; ++step) {
            x = descend(x, l);
            --l;
        }
        while (cap != 0 && degree[x] >= cap && l > 0) {
            const VertexId next = descend(x, l);
            if (next == x) break;  // no distinct descendant to offload onto
            x = next;
            --l;
        }
        return x;
    };

    for (const CandidateEdge& c : candidates) {
        VertexId u = c.u;
        VertexId v = c.v;
        if (cap != 0) {
            if (degree[u] >= cap) u = delegate(u, c.level);
            if (degree[v] >= cap) v = delegate(v, c.level);
        }
        if (u == v) continue;
        if (!h.has_edge(u, v)) {
            h.add_edge(u, v, m.distance(u, v));
            ++degree[u];
            ++degree[v];
        }
    }
    return h;
}

}  // namespace gsp
