#include "spanners/wspd_spanner.hpp"

#include <stdexcept>

#include "wspd/wspd.hpp"

namespace gsp {

Graph wspd_spanner_with_separation(const EuclideanMetric& m, double separation) {
    Graph h(m.size());
    if (m.size() <= 1) return h;
    const QuadTree tree(m);
    for (const WspdPair& pr : well_separated_pairs(tree, separation)) {
        const VertexId a = tree.node(pr.a).representative;
        const VertexId b = tree.node(pr.b).representative;
        if (!h.has_edge(a, b)) h.add_edge(a, b, m.distance(a, b));
    }
    return h;
}

Graph wspd_spanner(const EuclideanMetric& m, double epsilon) {
    if (!(epsilon > 0.0)) throw std::invalid_argument("wspd_spanner: epsilon must be > 0");
    return wspd_spanner_with_separation(m, 4.0 + 8.0 / epsilon);
}

}  // namespace gsp
