#include "spanners/baswana_sen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/random.hpp"

namespace gsp {

namespace {

/// Active edge incident to a vertex during the clustering rounds.
struct ActiveEdge {
    VertexId to;
    Weight weight;
};

}  // namespace

Graph baswana_sen_spanner(const Graph& g, unsigned k, std::uint64_t seed) {
    if (k < 1) throw std::invalid_argument("baswana_sen_spanner: k must be >= 1");
    const std::size_t n = g.num_vertices();
    Graph h(n);
    if (n == 0 || g.num_edges() == 0) return h;

    Rng rng(seed);
    const double sample_p = std::pow(static_cast<double>(n), -1.0 / static_cast<double>(k));

    // Active adjacency (both directions), pruned as the algorithm discards
    // edges. Parallel edges are collapsed to the lightest up front.
    std::vector<std::unordered_map<VertexId, Weight>> lightest(n);
    for (const Edge& e : g.edges()) {
        auto relax = [&](VertexId a, VertexId b) {
            auto [it, inserted] = lightest[a].try_emplace(b, e.weight);
            if (!inserted && e.weight < it->second) it->second = e.weight;
        };
        relax(e.u, e.v);
        relax(e.v, e.u);
    }
    std::vector<std::vector<ActiveEdge>> adj(n);
    for (VertexId v = 0; v < n; ++v) {
        adj[v].reserve(lightest[v].size());
        for (const auto& [to, w] : lightest[v]) adj[v].push_back({to, w});
    }

    // cluster[v]: center of v's current cluster, or kNoVertex once v has
    // been discarded from the clustering.
    std::vector<VertexId> cluster(n);
    for (VertexId v = 0; v < n; ++v) cluster[v] = v;

    auto add_spanner_edge = [&](VertexId a, VertexId b, Weight w) {
        if (!h.has_edge(a, b)) h.add_edge(a, b, w);
    };

    for (unsigned round = 1; round < k; ++round) {
        // 1. Sample cluster centers.
        std::unordered_set<VertexId> sampled;
        {
            std::unordered_set<VertexId> centers;
            for (VertexId v = 0; v < n; ++v) {
                if (cluster[v] != kNoVertex) centers.insert(cluster[v]);
            }
            for (VertexId c : centers) {
                if (rng.uniform01() < sample_p) sampled.insert(c);
            }
        }

        std::vector<VertexId> next_cluster(cluster);

        // 2. Each clustered vertex outside every sampled cluster picks edges.
        for (VertexId v = 0; v < n; ++v) {
            if (cluster[v] == kNoVertex) continue;
            if (sampled.contains(cluster[v])) continue;

            // Lightest incident edge per adjacent cluster.
            std::unordered_map<VertexId, ActiveEdge> best;  // cluster center -> edge
            for (const ActiveEdge& e : adj[v]) {
                const VertexId c = cluster[e.to];
                if (c == kNoVertex || c == cluster[v]) continue;
                auto [it, inserted] = best.try_emplace(c, e);
                if (!inserted && e.weight < it->second.weight) it->second = e;
            }

            // Lightest edge into a *sampled* adjacent cluster, if any.
            bool have_sampled = false;
            VertexId join_center = kNoVertex;
            ActiveEdge join_edge{kNoVertex, kInfiniteWeight};
            for (const auto& [c, e] : best) {
                if (sampled.contains(c) &&
                    (!have_sampled || e.weight < join_edge.weight)) {
                    have_sampled = true;
                    join_center = c;
                    join_edge = e;
                }
            }

            if (!have_sampled) {
                // Discarded: keep one lightest edge per adjacent cluster,
                // then leave the clustering for good.
                for (const auto& [c, e] : best) add_spanner_edge(v, e.to, e.weight);
                next_cluster[v] = kNoVertex;
                adj[v].clear();
            } else {
                // Join the sampled cluster; keep the joining edge plus one
                // lightest edge to every strictly lighter adjacent cluster.
                add_spanner_edge(v, join_edge.to, join_edge.weight);
                next_cluster[v] = join_center;
                std::unordered_set<VertexId> dropped_clusters;
                for (const auto& [c, e] : best) {
                    if (c == join_center) continue;
                    if (e.weight < join_edge.weight) {
                        add_spanner_edge(v, e.to, e.weight);
                        dropped_clusters.insert(c);
                    }
                }
                dropped_clusters.insert(join_center);
                // Remove v's edges into dropped clusters (spanner paths for
                // them are now certified through the kept edges).
                std::erase_if(adj[v], [&](const ActiveEdge& e) {
                    const VertexId c = cluster[e.to];
                    return c != kNoVertex && dropped_clusters.contains(c);
                });
            }
        }

        cluster = std::move(next_cluster);

        // 3. Drop edges internal to the new clusters and edges into
        // discarded vertices (mirror lists may still hold them).
        for (VertexId v = 0; v < n; ++v) {
            if (cluster[v] == kNoVertex) {
                adj[v].clear();
                continue;
            }
            std::erase_if(adj[v], [&](const ActiveEdge& e) {
                return cluster[e.to] == kNoVertex || cluster[e.to] == cluster[v];
            });
        }
    }

    // Phase 2: vertex-to-cluster joining on whatever survived.
    for (VertexId v = 0; v < n; ++v) {
        std::unordered_map<VertexId, ActiveEdge> best;
        for (const ActiveEdge& e : adj[v]) {
            const VertexId c = cluster[e.to];
            if (c == kNoVertex || (cluster[v] != kNoVertex && c == cluster[v])) continue;
            auto [it, inserted] = best.try_emplace(c, e);
            if (!inserted && e.weight < it->second.weight) it->second = e;
        }
        for (const auto& [c, e] : best) add_spanner_edge(v, e.to, e.weight);
    }

    return h;
}

}  // namespace gsp
