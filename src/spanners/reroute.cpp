#include "spanners/reroute.hpp"

#include <stdexcept>
#include <vector>

#include "graph/dijkstra.hpp"

namespace gsp {

Graph reroute_through(const Graph& h1, const Graph& h2, DijkstraWorkspace& ws) {
    if (h1.num_vertices() != h2.num_vertices()) {
        throw std::invalid_argument("reroute_through: vertex count mismatch");
    }
    const std::size_t n = h2.num_vertices();
    std::vector<bool> keep(h2.num_edges(), false);

    // Group H1 queries by source so one shortest-path tree serves them all.
    std::vector<std::vector<VertexId>> targets(n);
    for (const Edge& e : h1.edges()) targets[e.u].push_back(e.v);

    ws.resize(n);
    for (VertexId s = 0; s < n; ++s) {
        if (targets[s].empty()) continue;
        const auto& dist = ws.all_distances(h2, s, kInfiniteWeight);
        const auto& pred = ws.predecessors();
        const auto& pred_edge = ws.predecessor_edges();
        for (VertexId t : targets[s]) {
            if (dist[t] == kInfiniteWeight) {
                throw std::invalid_argument("reroute_through: H2 disconnects an H1 edge");
            }
            for (VertexId cur = t; pred[cur] != kNoVertex; cur = pred[cur]) {
                keep[pred_edge[cur]] = true;
            }
        }
    }

    Graph h(n);
    for (EdgeId id = 0; id < h2.num_edges(); ++id) {
        if (keep[id]) {
            const Edge& e = h2.edge(id);
            h.add_edge(e.u, e.v, e.weight);
        }
    }
    return h;
}

Graph reroute_through(const Graph& h1, const Graph& h2, DijkstraWorkspacePool& pool) {
    pool.configure(1, h2.num_vertices());
    return reroute_through(h1, h2, pool.at(0));
}

Graph reroute_through(const Graph& h1, const Graph& h2) {
    DijkstraWorkspace ws(h2.num_vertices());
    return reroute_through(h1, h2, ws);
}

}  // namespace gsp
