#include "spanners/theta_graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace gsp {

double theta_graph_stretch_bound(std::size_t cones) {
    const double theta = 2.0 * std::numbers::pi / static_cast<double>(cones);
    const double denom = std::cos(theta) - std::sin(theta);
    // Treat floating-point dust around the theta = pi/4 boundary as "no
    // guarantee" rather than an astronomically large finite bound.
    return denom > 1e-9 ? 1.0 / denom : kInfiniteWeight;
}

Graph theta_graph(const EuclideanMetric& m, std::size_t cones) {
    if (m.dim() != 2) throw std::invalid_argument("theta_graph: 2D points required");
    if (cones < 4) throw std::invalid_argument("theta_graph: need >= 4 cones");
    const std::size_t n = m.size();
    Graph h(n);
    if (n <= 1) return h;

    const double theta = 2.0 * std::numbers::pi / static_cast<double>(cones);

    // best[p * cones + c]: the neighbor with minimal bisector projection in
    // cone c of p, and that projection value.
    std::vector<VertexId> best(n * cones, kNoVertex);
    std::vector<double> best_proj(n * cones, kInfiniteWeight);

    for (VertexId p = 0; p < n; ++p) {
        const auto pp = m.point(p);
        for (VertexId q = 0; q < n; ++q) {
            if (q == p) continue;
            const auto qq = m.point(q);
            const double dx = qq[0] - pp[0];
            const double dy = qq[1] - pp[1];
            double ang = std::atan2(dy, dx);
            if (ang < 0) ang += 2.0 * std::numbers::pi;
            auto c = static_cast<std::size_t>(ang / theta);
            if (c >= cones) c = cones - 1;  // guard atan2 == 2*pi edge case
            const double bisector = (static_cast<double>(c) + 0.5) * theta;
            const double proj = dx * std::cos(bisector) + dy * std::sin(bisector);
            const std::size_t slot = p * cones + c;
            if (proj < best_proj[slot]) {
                best_proj[slot] = proj;
                best[slot] = q;
            }
        }
    }
    for (VertexId p = 0; p < n; ++p) {
        for (std::size_t c = 0; c < cones; ++c) {
            const VertexId q = best[p * cones + c];
            if (q != kNoVertex && !h.has_edge(p, q)) {
                h.add_edge(p, q, m.distance(p, q));
            }
        }
    }
    return h;
}

Graph theta_graph_sweep(const EuclideanMetric& m, std::size_t cones) {
    if (m.dim() != 2) throw std::invalid_argument("theta_graph_sweep: 2D points required");
    if (cones < 4) throw std::invalid_argument("theta_graph_sweep: need >= 4 cones");
    const std::size_t n = m.size();
    Graph h(n);
    if (n <= 1) return h;

    const double theta = 2.0 * std::numbers::pi / static_cast<double>(cones);
    const double half_tan = std::tan(theta / 2.0);

    std::vector<double> a(n), b(n), proj(n);
    std::vector<VertexId> order(n);

    for (std::size_t c = 0; c < cones; ++c) {
        // Rotate so this cone's bisector lies along +x. In the rotated
        // frame, q is in p's cone iff a_q <= a_p and b_q >= b_p, and the
        // theta rule picks the q minimizing x' (the bisector projection).
        const double phi = (static_cast<double>(c) + 0.5) * theta;
        const double cos_phi = std::cos(phi);
        const double sin_phi = std::sin(phi);
        for (VertexId p = 0; p < n; ++p) {
            const auto pt = m.point(p);
            const double xr = pt[0] * cos_phi + pt[1] * sin_phi;
            const double yr = -pt[0] * sin_phi + pt[1] * cos_phi;
            proj[p] = xr;
            a[p] = yr - half_tan * xr;
            b[p] = yr + half_tan * xr;
            order[p] = p;
        }
        std::sort(order.begin(), order.end(), [&](VertexId x, VertexId y) {
            return a[x] != a[y] ? a[x] < a[y] : x < y;
        });

        // Pareto staircase keyed by b: entries keep b and proj both strictly
        // increasing, so the suffix-minimum of proj over b >= b_p is simply
        // the first entry at or after b_p.
        std::map<double, std::pair<double, VertexId>> staircase;
        for (VertexId p : order) {
            const auto it = staircase.lower_bound(b[p]);
            if (it != staircase.end()) {
                const VertexId q = it->second.second;
                if (q != p && !h.has_edge(p, q)) h.add_edge(p, q, m.distance(p, q));
            }
            // Insert p unless dominated (someone with b' >= b_p and
            // proj' <= proj_p already answers every query p could).
            const auto dom = staircase.lower_bound(b[p]);
            if (dom != staircase.end() && dom->second.first <= proj[p]) continue;
            // Remove entries p dominates (b' <= b_p with proj' >= proj_p).
            auto rit = staircase.lower_bound(b[p]);
            while (rit != staircase.begin()) {
                auto prev = std::prev(rit);
                if (prev->second.first >= proj[p]) {
                    rit = staircase.erase(prev);
                } else {
                    break;
                }
            }
            staircase[b[p]] = {proj[p], p};
        }
    }
    return h;
}

}  // namespace gsp
