// Theta-graph spanner for 2D Euclidean point sets.
//
// Classic cone construction [Clarkson/Keil; see NS07 Ch. 4]: partition the
// plane around each point p into k equal-angle cones; in each cone connect
// p to the point whose *projection onto the cone bisector* is smallest.
// Stretch <= 1 / (cos(theta) - sin(theta)) for theta = 2*pi/k < pi/4.
// One of the baseline constructions for the paper's [FG05] comparison
// experiment.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "metric/euclidean.hpp"

namespace gsp {

/// Theta-graph with k cones; requires a 2D metric and k >= 4.
/// O(n^2) construction (per-pair cone classification). Reference
/// implementation; theta_graph_sweep computes the same graph in
/// O(k n log n).
Graph theta_graph(const EuclideanMetric& m, std::size_t cones);

/// The classic sweep construction [NS07 Ch. 4]: per cone, transform to the
/// wedge coordinates (a, b) = (y' -/+ tan(theta/2) x'), sort by a, and
/// maintain a Pareto staircase over b answering "min projection among
/// already-seen points with b >= b_p" in O(log n). Same output as
/// theta_graph up to ties in projections (measure-zero for random inputs).
Graph theta_graph_sweep(const EuclideanMetric& m, std::size_t cones);

/// The guaranteed stretch factor of a k-cone theta graph (infinite when the
/// cone angle is too wide for the classical bound to apply).
[[nodiscard]] double theta_graph_stretch_bound(std::size_t cones);

}  // namespace gsp
