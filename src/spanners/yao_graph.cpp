#include "spanners/yao_graph.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace gsp {

double yao_graph_stretch_bound(std::size_t cones) {
    const double theta = 2.0 * std::numbers::pi / static_cast<double>(cones);
    const double denom = 1.0 - 2.0 * std::sin(theta / 2.0);
    // Same boundary guard as the theta graph: theta = pi/3 gives denom ~ 0.
    return denom > 1e-9 ? 1.0 / denom : kInfiniteWeight;
}

Graph yao_graph(const EuclideanMetric& m, std::size_t cones) {
    if (m.dim() != 2) throw std::invalid_argument("yao_graph: 2D points required");
    if (cones < 4) throw std::invalid_argument("yao_graph: need >= 4 cones");
    const std::size_t n = m.size();
    Graph h(n);
    if (n <= 1) return h;

    const double theta = 2.0 * std::numbers::pi / static_cast<double>(cones);
    std::vector<VertexId> best(n * cones, kNoVertex);
    std::vector<double> best_dist(n * cones, kInfiniteWeight);

    for (VertexId p = 0; p < n; ++p) {
        const auto pp = m.point(p);
        for (VertexId q = 0; q < n; ++q) {
            if (q == p) continue;
            const auto qq = m.point(q);
            const double dx = qq[0] - pp[0];
            const double dy = qq[1] - pp[1];
            double ang = std::atan2(dy, dx);
            if (ang < 0) ang += 2.0 * std::numbers::pi;
            auto c = static_cast<std::size_t>(ang / theta);
            if (c >= cones) c = cones - 1;
            const double d2 = dx * dx + dy * dy;
            const std::size_t slot = p * cones + c;
            if (d2 < best_dist[slot]) {
                best_dist[slot] = d2;
                best[slot] = q;
            }
        }
    }
    for (VertexId p = 0; p < n; ++p) {
        for (std::size_t c = 0; c < cones; ++c) {
            const VertexId q = best[p * cones + c];
            if (q != kNoVertex && !h.has_edge(p, q)) {
                h.add_edge(p, q, m.distance(p, q));
            }
        }
    }
    return h;
}

}  // namespace gsp
