// Baswana-Sen randomized (2k-1)-spanner for weighted graphs.
//
// The classic linear-time clustering construction [Baswana & Sen, 2007]:
// k-1 rounds of cluster sampling at rate n^{-1/k} followed by a
// vertex-to-cluster joining round. Expected size O(k * n^{1+1/k});
// stretch <= 2k-1 always. This is the standard practical comparator for
// the greedy spanner on general graphs (e.g., networkx ships it), so it
// anchors the paper's existential-optimality claims empirically.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace gsp {

/// Compute a (2k-1)-spanner of g. Requires k >= 1; k = 1 returns g with
/// parallel edges deduplicated to the lightest. Randomized: pass a seed.
Graph baswana_sen_spanner(const Graph& g, unsigned k, std::uint64_t seed);

}  // namespace gsp
