// WSPD spanner: one edge per well-separated pair.
//
// For an s-WSPD, connecting an arbitrary representative pair per dumbbell
// yields a t-spanner with t = (s + 4)/(s - 4) (s > 4); inversely, stretch
// 1 + eps needs s = 4 + 8/eps + sqrt((4 + 8/eps)^2 - 16)/... -- we expose
// the standard choice s = 8/eps + 4 which guarantees t <= 1 + eps for
// eps <= 4. Baseline construction for the comparison experiment.
#pragma once

#include "graph/graph.hpp"
#include "metric/euclidean.hpp"

namespace gsp {

/// Spanner from an s-WSPD with the given separation (must be > 4 for a
/// finite stretch guarantee, > 0 to build at all).
Graph wspd_spanner_with_separation(const EuclideanMetric& m, double separation);

/// Spanner with stretch <= 1 + eps via separation s = 4 + 8/eps.
Graph wspd_spanner(const EuclideanMetric& m, double epsilon);

}  // namespace gsp
