// Incremental gap-buffered CSR adjacency.
//
// CsrOverlayView (csr_view.hpp) freezes the adjacency once per batch and
// chains a per-vertex overlay: refreshing it is a full O(n + m) rebuild, so
// the greedy engine could only afford one per batch, and stage-2 "far at
// snapshot" certificates died whenever a batch inserted anything.
// IncrementalCsrView removes that refreeze entirely: each vertex owns a
// *gap-buffered run* inside one arena -- a contiguous slice with slack
// capacity after its live entries -- so mirroring one inserted edge is an
// O(1) append into the gap (O(degree) when the gap is exhausted and the run
// relocates to the arena tail with doubled capacity). Relocations abandon
// dead slots; when dead slots occupy a third of the arena, one amortized
// merge-on-threshold compaction rebuilds the arena with fresh slack.
// The view is therefore *always exact* on the mirrored graph at per-insert
// cost amortized O(1), and `neighbors` stays a single contiguous span --
// the property the Dijkstra kernel's scan loop is built around.
//
// Thread-safety matches CsrOverlayView: all const members read only
// immutable-between-mutations state, so any number of threads may query
// concurrently as long as no thread is inside `refresh`/`add_edge`. The
// greedy engine's parallel prefilter stage fans read-only probes over the
// view and runs the (only-writer) insertion loop strictly after the join.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

/// One edge recorded by the view's insertion log (see `inserts_since`).
struct LoggedInsert {
    VertexId u = kNoVertex;
    VertexId v = kNoVertex;
    Weight weight = 0.0;
};

/// Gap-buffered CSR mirror of a growing Graph. Call `refresh(g)` at a sync
/// point (full rebuild only if the mirror drifted -- a no-op on the hot
/// path) and `add_edge` for every edge appended to g afterwards.
class IncrementalCsrView {
public:
    IncrementalCsrView() = default;

    /// Synchronize with g: a full O(n + m) rebuild with fresh slack when
    /// the mirror does not match g's vertex/edge counts (first use, engine
    /// reuse across runs), an O(1) no-op otherwise. Returns true iff a
    /// full rebuild happened.
    bool refresh(const Graph& g);

    /// Mirror one undirected edge appended to the underlying graph since
    /// the last refresh (id must be the Graph edge id so predecessor-edge
    /// reporting agrees across views). Amortized O(1); worst case
    /// O(degree) for a run relocation plus an amortized arena compaction.
    void add_edge(VertexId u, VertexId v, Weight w, EdgeId id);

    [[nodiscard]] std::size_t num_vertices() const { return start_.size(); }
    [[nodiscard]] std::size_t num_half_edges() const { return live_half_edges_; }

    [[nodiscard]] std::span<const HalfEdge> neighbors(VertexId v) const {
        return {arena_.data() + start_[v], len_[v]};
    }

    // --- edges-since-epoch iteration (the phase-B repair feed) ---
    /// Enable/disable the insertion log (off by default: consumers that
    /// never repair should not pay a push_back per mirrored edge).
    /// Disabling clears it.
    void set_log_inserts(bool on) {
        log_inserts_ = on;
        if (!on) insert_log_.clear();
    }

    /// Drop all logged entries, keeping capacity (the engine truncates at
    /// batch boundaries: entries before the current snapshot mark are
    /// never read again, so the log stays O(accepts per batch)).
    void clear_insert_log() { insert_log_.clear(); }

    /// Monotone insertion-log position: every add_edge since the last
    /// full rebuild (or clear) appends one entry while logging is on.
    /// Capture it at a snapshot boundary and hand it back to
    /// `inserts_since` to enumerate exactly the edges the snapshot has
    /// not seen -- the only edges a stale distance certificate can have
    /// been invalidated by.
    [[nodiscard]] std::size_t insert_log_size() const { return insert_log_.size(); }

    /// The edges mirrored since log position `mark` (<= insert_log_size()),
    /// oldest first. Valid until the next add_edge/refresh.
    [[nodiscard]] std::span<const LoggedInsert> inserts_since(std::size_t mark) const {
        return {insert_log_.data() + mark, insert_log_.size() - mark};
    }

    // --- storage telemetry (the engine's csr_* stats) ---
    /// Full O(n + m) rebuilds performed by refresh().
    [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }
    /// Amortized merge-on-threshold arena compactions.
    [[nodiscard]] std::size_t compactions() const { return compactions_; }
    /// Per-vertex run relocations (gap exhausted, run moved to the tail).
    [[nodiscard]] std::size_t relocations() const { return relocations_; }
    /// Current arena footprint in bytes (live + gaps + dead slots).
    [[nodiscard]] std::size_t arena_bytes() const {
        return arena_.capacity() * sizeof(HalfEdge);
    }

private:
    /// Slack appended to a vertex run at (re)build time: absorbs the next
    /// few insertions without a relocation.
    static std::uint32_t slack(std::uint32_t live) {
        const std::uint32_t rel = live / 4;
        return rel < 2 ? 2 : rel;
    }

    void append_half(VertexId v, const HalfEdge& h);
    void relocate(VertexId v, std::uint32_t min_cap);
    void compact();

    std::vector<std::uint32_t> start_;  ///< vertex -> first arena slot of its run
    std::vector<std::uint32_t> len_;    ///< vertex -> live entries in its run
    std::vector<std::uint32_t> cap_;    ///< vertex -> run capacity (len + gap)
    std::vector<HalfEdge> arena_;       ///< all runs, relocations append at the tail
    std::vector<LoggedInsert> insert_log_;  ///< edges mirrored since the last
                                            ///< rebuild/clear (when enabled)
    bool log_inserts_ = false;
    std::size_t dead_ = 0;              ///< slots abandoned by relocations
    std::size_t live_half_edges_ = 0;
    std::size_t mirrored_edges_ = 0;    ///< edge count of the mirrored graph
    Edge last_edge_;                    ///< fingerprint of the newest mirrored edge
    bool built_ = false;

    std::size_t rebuilds_ = 0;
    std::size_t compactions_ = 0;
    std::size_t relocations_ = 0;
};

}  // namespace gsp
