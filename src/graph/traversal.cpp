#include "graph/traversal.hpp"

#include <limits>
#include <queue>

namespace gsp {

std::vector<std::uint32_t> bfs_hops(const Graph& g, VertexId s) {
    constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> hops(g.num_vertices(), kUnreached);
    std::queue<VertexId> frontier;
    hops.at(s) = 0;
    frontier.push(s);
    while (!frontier.empty()) {
        const VertexId u = frontier.front();
        frontier.pop();
        for (const HalfEdge& h : g.neighbors(u)) {
            if (hops[h.to] == kUnreached) {
                hops[h.to] = hops[u] + 1;
                frontier.push(h.to);
            }
        }
    }
    return hops;
}

bool is_connected(const Graph& g) {
    if (g.num_vertices() <= 1) return true;
    const auto hops = bfs_hops(g, 0);
    for (std::uint32_t h : hops) {
        if (h == std::numeric_limits<std::uint32_t>::max()) return false;
    }
    return true;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
    constexpr auto kUnlabeled = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> label(g.num_vertices(), kUnlabeled);
    std::uint32_t next = 0;
    std::queue<VertexId> frontier;
    for (VertexId root = 0; root < g.num_vertices(); ++root) {
        if (label[root] != kUnlabeled) continue;
        label[root] = next;
        frontier.push(root);
        while (!frontier.empty()) {
            const VertexId u = frontier.front();
            frontier.pop();
            for (const HalfEdge& h : g.neighbors(u)) {
                if (label[h.to] == kUnlabeled) {
                    label[h.to] = next;
                    frontier.push(h.to);
                }
            }
        }
        ++next;
    }
    return label;
}

}  // namespace gsp
