// Undirected weighted graph with incremental edge insertion.
//
// This is the substrate type of the whole library: the greedy spanner is a
// loop that *grows* a graph while running shortest-path queries on the
// partial result, so the representation is adjacency lists (cheap append)
// rather than CSR (cheap scan, expensive append).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace gsp {

/// Undirected graph with positive edge weights.
///
/// Invariants:
///  * every edge has weight > 0 and distinct endpoints within range;
///  * parallel edges are permitted by the representation (some intermediate
///    constructions use them) but `add_edge_unique` offers checked insertion.
class Graph {
public:
    Graph() = default;

    /// An edgeless graph on n vertices.
    explicit Graph(std::size_t n) : adjacency_(n) {}

    /// Build from an explicit edge list over n vertices.
    Graph(std::size_t n, std::span<const Edge> edges);

    [[nodiscard]] std::size_t num_vertices() const { return adjacency_.size(); }
    [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
    [[nodiscard]] bool empty() const { return edges_.empty(); }

    /// Append one undirected edge; returns its id. Throws on self-loops,
    /// out-of-range endpoints, or non-positive / non-finite weight.
    EdgeId add_edge(VertexId u, VertexId v, Weight w);

    /// As add_edge, but throws if (u, v) is already present.
    EdgeId add_edge_unique(VertexId u, VertexId v, Weight w);

    /// True iff some edge joins u and v (linear in deg(u)).
    [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

    /// The edge with the given id.
    [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_.at(id); }

    /// All edges in insertion order.
    [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

    /// Adjacency of u.
    [[nodiscard]] std::span<const HalfEdge> neighbors(VertexId u) const {
        return adjacency_.at(u);
    }

    [[nodiscard]] std::size_t degree(VertexId u) const { return adjacency_.at(u).size(); }

    /// Maximum degree over all vertices (0 for the empty graph).
    [[nodiscard]] std::size_t max_degree() const;

    /// Sum of all edge weights, w(G).
    [[nodiscard]] Weight total_weight() const;

    /// Subgraph on the same vertex set containing exactly the edges whose
    /// ids are listed (ids refer to this graph's edge list).
    [[nodiscard]] Graph edge_subgraph(std::span<const EdgeId> ids) const;

    /// Human-readable one-line summary (for logs and examples).
    [[nodiscard]] std::string summary() const;

private:
    void check_endpoints(VertexId u, VertexId v, Weight w) const;

    std::vector<Edge> edges_;
    std::vector<std::vector<HalfEdge>> adjacency_;
};

/// Structural equality as *edge sets* (order-insensitive, canonical
/// orientation, exact weight match). Both graphs must have the same vertex
/// count. Used by the Lemma-3 fixpoint tests (greedy(greedy(G)) == greedy(G)).
[[nodiscard]] bool same_edge_set(const Graph& a, const Graph& b);

}  // namespace gsp
