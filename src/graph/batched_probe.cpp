#include "graph/batched_probe.hpp"

namespace gsp {

void BatchedProbe::resize(std::size_t n) {
    if (n <= dist_.size()) return;
    dist_.resize(n, kInfiniteWeight);
    parent_.resize(n, kNoVertex);
    stamp_.resize(n, 0);
    tgt_stamp_.resize(n, 0);
    tgt_head_.resize(n, kNoSlot);
}

}  // namespace gsp
