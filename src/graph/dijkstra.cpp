#include "graph/dijkstra.hpp"

#include <algorithm>
#include <stdexcept>

namespace gsp {

DijkstraWorkspace::DijkstraWorkspace(std::size_t n) { resize(n); }

void DijkstraWorkspace::resize(std::size_t n) {
    if (n <= dist_.size()) return;
    dist_.resize(n, kInfiniteWeight);
    pred_.resize(n, kNoVertex);
    pred_edge_.resize(n, kNoEdge);
    stamp_.resize(n, 0);
    dist_b_.resize(n, kInfiniteWeight);
    stamp_b_.resize(n, 0);
}

void DijkstraWorkspace::begin_query() {
    ++current_;
    // Reset *all* per-query scratch here, not just what the next query kind
    // reads: ball() used to leave heap_b_ untouched and the bidirectional
    // query left ball_ populated, so interleaving query kinds on one
    // workspace (the normal life of a pooled per-thread workspace) could
    // observe a previous query's state.
    heap_.clear();
    heap_b_.clear();
    ball_.clear();
    ball_b_.clear();
    last_work_ = 0;
    // Pre-size to the historical peak so tight query loops never pay
    // reallocation churn mid-search (clear() keeps capacity, so this only
    // costs anything on fresh or recently grown workspaces).
    if (heap_.capacity() < peak_hint_) heap_.reserve(peak_hint_);
}

const std::vector<Weight>& DijkstraWorkspace::all_distances(const Graph& g, VertexId s,
                                                            Weight limit) {
    resize(g.num_vertices());
    if (s >= g.num_vertices()) {
        throw std::out_of_range("DijkstraWorkspace::all_distances: vertex out of range");
    }
    begin_query();

    // This entry point hands the dist_ vector to the caller, so unreached
    // entries must actually hold +infinity rather than stale values.
    std::fill(dist_.begin(), dist_.begin() + static_cast<std::ptrdiff_t>(g.num_vertices()),
              kInfiniteWeight);
    std::fill(pred_.begin(), pred_.begin() + static_cast<std::ptrdiff_t>(g.num_vertices()),
              kNoVertex);
    std::fill(pred_edge_.begin(),
              pred_edge_.begin() + static_cast<std::ptrdiff_t>(g.num_vertices()), kNoEdge);

    dist_[s] = 0.0;
    stamp_[s] = current_;
    push_fwd(0.0, s);

    while (!heap_.empty()) {
        const QueueItem top = heap_.pop_min();
        if (top.dist > dist_[top.vertex]) continue;
        for (const HalfEdge& h : g.neighbors(top.vertex)) {
            const Weight nd = top.dist + h.weight;
            if (nd > limit) continue;
            if (nd < dist_[h.to]) {
                stamp_[h.to] = current_;
                dist_[h.to] = nd;
                pred_[h.to] = top.vertex;
                pred_edge_[h.to] = h.edge;
                push_fwd(nd, h.to);
            }
        }
    }
    return dist_;
}

void DijkstraWorkspacePool::configure(std::size_t workers, std::size_t n) {
    while (pool_.size() < workers) {
        pool_.push_back(std::make_unique<DijkstraWorkspace>());
        ++created_;
    }
    for (auto& ws : pool_) ws->resize(n);
}

std::size_t DijkstraWorkspacePool::total_meet_events() const {
    std::size_t total = 0;
    for (const auto& ws : pool_) total += ws->meet_events();
    return total;
}

Weight dijkstra_distance(const Graph& g, VertexId s, VertexId t, Weight limit) {
    DijkstraWorkspace ws(g.num_vertices());
    return ws.distance(g, s, t, limit);
}

std::vector<Weight> dijkstra_all(const Graph& g, VertexId s, Weight limit) {
    DijkstraWorkspace ws(g.num_vertices());
    return ws.all_distances(g, s, limit);
}

std::vector<VertexId> shortest_path(const Graph& g, VertexId s, VertexId t) {
    DijkstraWorkspace ws(g.num_vertices());
    const auto& dist = ws.all_distances(g, s, kInfiniteWeight);
    if (dist[t] == kInfiniteWeight) return {};
    std::vector<VertexId> path;
    for (VertexId cur = t; cur != kNoVertex; cur = ws.predecessors()[cur]) {
        path.push_back(cur);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

}  // namespace gsp
