// Girth computation.
//
// The size guarantee of the greedy (2k-1)-spanner is certified by a girth
// property: the greedy t-spanner contains no cycle of total weight
// <= (t+1) * (its lightest edge)'s ... in the unit-weight case this is
// simply girth > t + 1. High-girth graphs are also the lower-bound family
// for the "existential" part of the paper, so we need to *measure* girth on
// the generated instances (Petersen, incidence graphs).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

/// Unweighted girth: length (edge count) of a shortest cycle, or
/// UINT32_MAX if the graph is acyclic. BFS from every vertex, O(nm).
/// Note: parallel edges count as a 2-cycle.
[[nodiscard]] std::uint32_t unweighted_girth(const Graph& g);

/// Weighted girth: minimum total weight of any cycle, or +infinity if the
/// graph is acyclic. For every edge e=(u,v): w(e) + shortest u-v path
/// avoiding e; O(m * Dijkstra). Intended for the modest instance sizes of
/// the girth experiments.
[[nodiscard]] Weight weighted_girth(const Graph& g);

}  // namespace gsp
