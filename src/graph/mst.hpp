// Minimum spanning trees / forests.
//
// Lightness -- the headline quantity of the paper -- is w(H) / w(MST(G)),
// so the MST is computed by every experiment. Kruskal is the workhorse;
// Prim exists as an independent cross-check.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

struct MstResult {
    std::vector<EdgeId> edges;  ///< ids into the input graph's edge list
    Weight weight = 0.0;        ///< total weight of the forest
    bool spanning = false;      ///< true iff the input graph was connected
};

/// Minimum spanning forest by Kruskal. Ties are broken deterministically by
/// (weight, min endpoint, max endpoint, edge id), which pins down a unique
/// MST even with repeated weights -- tests rely on this.
MstResult kruskal_mst(const Graph& g);

/// Minimum spanning forest by Prim with a binary heap (cross-check).
MstResult prim_mst(const Graph& g);

/// w(MST(G)); throws std::invalid_argument if g is disconnected, because
/// lightness is undefined there.
Weight mst_weight(const Graph& g);

}  // namespace gsp
