// Dijkstra shortest paths, tuned for the greedy spanner's query pattern.
//
// The greedy algorithm runs one point-to-point distance query per candidate
// edge, on a graph that only ever grows, and it never cares about distances
// larger than t*w(e). Three things make that affordable:
//   1. a *distance limit*: the search never settles vertices beyond the
//      limit, so queries on a sparse spanner touch a small ball;
//   2. a reusable workspace with timestamped initialization, so a query
//      costs O(touched) instead of O(n) to reset;
//   3. a *bidirectional* variant that grows two frontiers meeting near
//      limit/2 -- on bounded-growth instances the settled ball shrinks
//      superlinearly versus the one-sided search.
//
// The query methods are templated over the adjacency view so the same code
// runs on the mutable `Graph`, on frozen `CsrOverlayView` snapshots, and on
// the engine's gap-buffered `IncrementalCsrView` (the probe entry points the
// greedy pipeline feeds them). A view must provide `num_vertices()` and
// `neighbors(v)` yielding a range of `HalfEdge`.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/batched_probe.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "util/dary_heap.hpp"

namespace gsp {

/// One seed of a repair-scoped probe (`DijkstraWorkspace::distance_seeded`):
/// vertex `v` starts labeled with `key`, the length of an already-known
/// realizable path ending at v.
struct RepairSeed {
    VertexId v = kNoVertex;
    Weight key = 0.0;
};

/// Reusable state for repeated Dijkstra runs over graphs with the same
/// vertex count. Not thread-safe; use one workspace per thread (the
/// `DijkstraWorkspacePool` below hands the greedy engine's worker pool one
/// workspace each).
class DijkstraWorkspace {
public:
    DijkstraWorkspace() = default;
    explicit DijkstraWorkspace(std::size_t n);

    /// Grow to accommodate n vertices (keeps amortized O(1) resets).
    void resize(std::size_t n);

    /// Distance from s to target in g, or +infinity if it exceeds `limit`
    /// (or target is unreachable). Settles only vertices at distance <= limit
    /// and stops as soon as `target` is settled.
    template <class G>
    Weight distance(const G& g, VertexId s, VertexId target, Weight limit);

    /// As `distance`, but grows forward and backward frontiers that meet in
    /// the middle: each side settles a ball of radius ~limit/2, which is a
    /// superlinear shrink of the touched set on bounded-growth instances.
    /// Caveat: the returned value sums the two half-path lengths, which may
    /// reassociate floating-point addition relative to the one-sided sweep
    /// (differences are confined to the last ulp).
    ///
    /// With `collect_frontiers` set, the query additionally records BOTH
    /// settled frontiers -- settled_forward() around s and
    /// settled_backward() around target, each with a completeness radius
    /// (forward_settled_radius() / backward_settled_radius()): every
    /// vertex within a side's radius appears in that side's list with its
    /// exact distance, absence certifies distance > radius. That is the
    /// certificate contract of the speculative repair path, published
    /// two-sided: neither half-frontier alone covers the threshold, but
    /// their radii sum to (just short of) the exit bound, which is what
    /// the engine's two-sided repair combine needs. Off by default -- the
    /// pushes are free but the frontier copies are not.
    template <class G>
    Weight distance_bidirectional(const G& g, VertexId s, VertexId target, Weight limit,
                                  bool collect_frontiers = false);

    /// As `distance`, but goal-directed (A*): the heap is keyed by
    /// g(v) + h(v) where `h(v)` must lower-bound the graph distance from v
    /// to `target` and satisfy h(target) == 0. When h is additionally
    /// consistent (|h(x) - h(y)| <= w(x, y) for every edge -- automatic
    /// when h is a metric distance and edge weights dominate the metric),
    /// the returned distance is exact, computed by the same path-order
    /// additions as the one-sided sweep. The search only labels vertices
    /// whose f-key fits under `limit`, so on geometric instances it
    /// explores the (s, target)-ellipse instead of the full disc.
    /// Caveat: the f-key prune adds h in floating point, so a witness
    /// path within an ulp of `limit` may be pruned where the blind sweep
    /// would keep it (the same last-ulp class as the bidirectional
    /// reassociation caveat above).
    template <class G, class H>
    Weight distance_goal_directed(const G& g, VertexId s, VertexId target, Weight limit,
                                  H&& h);

    /// The repair-scoped bounded probe of the speculative accept path: a
    /// one-sided limited Dijkstra whose frontier starts from `seeds`
    /// instead of one source. Each seed's key must be the length of a
    /// realizable path (from some implicit origin) ending at the seed
    /// vertex; the returned value is then the exact minimum, over all
    /// origin paths passing through a seed, of the path length to
    /// `target` -- or +infinity if it exceeds `limit`. The greedy engine
    /// seeds the endpoints of edges inserted since a certificate's
    /// snapshot with (certified snapshot distance + edge weight), so the
    /// probe explores only the region those insertions can have improved,
    /// not the whole ball around the origin.
    template <class G>
    Weight distance_seeded(const G& g, std::span<const RepairSeed> seeds, VertexId target,
                           Weight limit);

    /// Single-source distances to every vertex within `limit`; entries beyond
    /// the limit (or unreachable) are +infinity. The result is valid until
    /// the next call on this workspace.
    const std::vector<Weight>& all_distances(const Graph& g, VertexId s, Weight limit);

    /// After all_distances: predecessor vertex on a shortest path tree
    /// (kNoVertex for the source and unreached vertices).
    [[nodiscard]] const std::vector<VertexId>& predecessors() const { return pred_; }

    /// After all_distances: the edge id used to reach each vertex in the
    /// shortest path tree (kNoEdge for the source and unreached vertices).
    [[nodiscard]] const std::vector<EdgeId>& predecessor_edges() const { return pred_edge_; }

    /// Settled vertices and exact distances of the ball of radius `limit`
    /// around s. Costs O(|ball| log |ball|), *not* O(n): no dense reset.
    /// The returned reference is valid until the next call on this workspace.
    template <class G>
    const std::vector<std::pair<VertexId, Weight>>& ball(const G& g, VertexId s,
                                                         Weight limit);

    /// As `ball`, but abandons the query (returning nullptr) once it has
    /// performed more than `max_work` heap pushes or settled more than
    /// `max_settled` vertices. Both abort conditions depend only on
    /// (g, s, limit, max_work, max_settled), so callers that must be
    /// schedule-independent (the certificate-mode prefilter) can rely on
    /// them. After an abort the workspace holds partial state: do not
    /// consult settled_distance()/last_forward_bound() until the next
    /// query.
    template <class G>
    const std::vector<std::pair<VertexId, Weight>>* ball_bounded(const G& g, VertexId s,
                                                                 Weight limit,
                                                                 std::size_t max_work,
                                                                 std::size_t max_settled);

    /// Valid immediately after ball() or all_distances(): the exact distance
    /// to v from that query's source if v was settled, +infinity otherwise.
    /// (A drained limited Dijkstra settles exactly the vertices within the
    /// limit, so "seen" implies exact.) Not meaningful after the early-exit
    /// point-to-point queries.
    [[nodiscard]] Weight settled_distance(VertexId v) const {
        return stamp_[v] == current_ ? dist_[v] : kInfiniteWeight;
    }

    /// Valid right after any query: an *upper bound* on the distance from
    /// the last query's (forward) source to x -- Dijkstra labels are lengths
    /// of realizable paths even before x settles. +infinity if untouched.
    [[nodiscard]] Weight last_forward_bound(VertexId x) const {
        return stamp_[x] == current_ ? dist_[x] : kInfiniteWeight;
    }

    /// Valid right after distance_bidirectional: an upper bound on the
    /// distance from the last query's *target* to x (the backward search's
    /// labels). +infinity if untouched.
    [[nodiscard]] Weight last_backward_bound(VertexId x) const {
        return stamp_b_[x] == current_ ? dist_b_[x] : kInfiniteWeight;
    }

    /// After distance_bidirectional(collect_frontiers=true): the settled
    /// forward frontier (exact distances from s, complete out to
    /// forward_settled_radius()).
    [[nodiscard]] const std::vector<std::pair<VertexId, Weight>>& settled_forward() const {
        return ball_;
    }
    /// The backward counterpart: exact distances from the target, complete
    /// out to backward_settled_radius().
    [[nodiscard]] const std::vector<std::pair<VertexId, Weight>>& settled_backward() const {
        return ball_b_;
    }
    [[nodiscard]] Weight forward_settled_radius() const { return fwd_settled_radius_; }
    [[nodiscard]] Weight backward_settled_radius() const { return bwd_settled_radius_; }

    /// The multi-target group-probe kernel riding on this workspace (one
    /// per worker, like the rest of the scratch). State is independent of
    /// the point-query scratch above; it resizes itself per run.
    [[nodiscard]] BatchedProbe& batched() { return batched_; }

    /// Cumulative count of improving frontier-meet events observed by
    /// distance_bidirectional on this workspace (for GreedyStats).
    [[nodiscard]] std::size_t meet_events() const { return meets_; }

    /// Heap pushes performed by the last query -- the work proxy the greedy
    /// engine's adaptive ball-vs-point gate consumes (pushes capture both
    /// the labeled set and the relaxation churn of dense regions).
    [[nodiscard]] std::size_t last_work() const { return last_work_; }

private:
    // The single reset path of every query entry point. Each query kind
    // used to clear its own subset of the scratch (ball_ here, heap_b_
    // there), which left a workspace reused across *different* query kinds
    // with stale state -- exactly the hazard a per-thread workspace pool
    // cannot tolerate. begin_query resets everything a query may read.
    void begin_query();
    [[nodiscard]] bool seen(VertexId v) const { return stamp_[v] == current_; }
    [[nodiscard]] bool seen_b(VertexId v) const { return stamp_b_[v] == current_; }

    struct QueueItem {
        Weight dist;
        VertexId vertex;
        friend bool operator>(const QueueItem& a, const QueueItem& b) {
            return a.dist > b.dist;
        }
    };

    void push_fwd(Weight d, VertexId v) {
        heap_.push({d, v});
        peak_hint_ = std::max(peak_hint_, heap_.size());
        ++last_work_;
    }
    void push_bwd(Weight d, VertexId v) {
        heap_b_.push({d, v});
        peak_hint_ = std::max(peak_hint_, heap_b_.size());
        ++last_work_;
    }

    // Forward-search state (the only set used by one-sided queries).
    std::vector<Weight> dist_;
    std::vector<VertexId> pred_;
    std::vector<EdgeId> pred_edge_;
    std::vector<std::uint64_t> stamp_;
    // Backward-search state for distance_bidirectional.
    std::vector<Weight> dist_b_;
    std::vector<std::uint64_t> stamp_b_;

    std::uint64_t current_ = 0;
    DaryHeap<QueueItem, 4> heap_;
    DaryHeap<QueueItem, 4> heap_b_;
    std::size_t peak_hint_ = 0;  ///< max heap occupancy seen; reserve() hint
    std::size_t meets_ = 0;
    std::size_t last_work_ = 0;
    std::vector<std::pair<VertexId, Weight>> ball_;
    std::vector<std::pair<VertexId, Weight>> ball_b_;  ///< backward frontier
    Weight fwd_settled_radius_ = 0.0;
    Weight bwd_settled_radius_ = 0.0;
    BatchedProbe batched_;
};

/// A fixed set of workspaces, one per worker of a thread pool. Workspaces
/// are heap-allocated so references stay stable across configure() calls,
/// and each worker touches only its own entry (no sharing, no locks).
class DijkstraWorkspacePool {
public:
    /// Ensure the pool holds at least `workers` workspaces, each sized for
    /// n vertices. Existing workspaces are grown in place, keeping their
    /// amortized-reset state warm across buckets and runs.
    void configure(std::size_t workers, std::size_t n);

    [[nodiscard]] std::size_t size() const { return pool_.size(); }

    [[nodiscard]] DijkstraWorkspace& at(std::size_t worker) { return *pool_.at(worker); }

    /// Sum of meet_events() over all workspaces (stats aggregation).
    [[nodiscard]] std::size_t total_meet_events() const;

    /// Workspaces constructed over this pool's lifetime. configure() only
    /// ever grows the pool, so on a warm pool (a SpannerSession reused
    /// across builds) this stays flat -- the counter the session-reuse
    /// bench probe certifies.
    [[nodiscard]] std::size_t created() const { return created_; }

private:
    std::vector<std::unique_ptr<DijkstraWorkspace>> pool_;
    std::size_t created_ = 0;
};

template <class G>
Weight DijkstraWorkspace::distance(const G& g, VertexId s, VertexId target,
                                   Weight limit) {
    resize(g.num_vertices());
    if (s >= g.num_vertices() || target >= g.num_vertices()) {
        throw std::out_of_range("DijkstraWorkspace::distance: vertex out of range");
    }
    if (s == target) return 0.0;
    begin_query();

    dist_[s] = 0.0;
    stamp_[s] = current_;
    push_fwd(0.0, s);

    while (!heap_.empty()) {
        const QueueItem top = heap_.pop_min();
        if (top.dist > dist_[top.vertex]) continue;  // stale entry
        if (top.vertex == target) return top.dist;
        for (const HalfEdge& h : g.neighbors(top.vertex)) {
            const Weight nd = top.dist + h.weight;
            if (nd > limit) continue;
            const bool fresh = !seen(h.to);
            if (fresh || nd < dist_[h.to]) {
                if (fresh) {
                    stamp_[h.to] = current_;
                }
                dist_[h.to] = nd;
                push_fwd(nd, h.to);
            }
        }
    }
    return kInfiniteWeight;
}

template <class G>
Weight DijkstraWorkspace::distance_bidirectional(const G& g, VertexId s, VertexId target,
                                                 Weight limit, bool collect_frontiers) {
    resize(g.num_vertices());
    if (s >= g.num_vertices() || target >= g.num_vertices()) {
        throw std::out_of_range(
            "DijkstraWorkspace::distance_bidirectional: vertex out of range");
    }
    if (s == target) return 0.0;
    begin_query();

    dist_[s] = 0.0;
    stamp_[s] = current_;
    dist_b_[target] = 0.0;
    stamp_b_[target] = current_;
    push_fwd(0.0, s);
    push_bwd(0.0, target);

    Weight best = kInfiniteWeight;
    // Expand the side with the smaller tentative radius; stop once the two
    // radii certify that no undiscovered path can beat `best` (Nicholson's
    // criterion) or fit under `limit`.
    while (!heap_.empty() && !heap_b_.empty()) {
        const Weight tf = heap_.min().dist;
        const Weight tb = heap_b_.min().dist;
        if (tf + tb >= best || tf + tb > limit) break;
        if (tf <= tb) {
            const QueueItem top = heap_.pop_min();
            if (top.dist > dist_[top.vertex]) continue;  // stale
            if (collect_frontiers) ball_.push_back({top.vertex, top.dist});
            if (seen_b(top.vertex)) {
                const Weight through = top.dist + dist_b_[top.vertex];
                if (through < best) {
                    best = through;
                    ++meets_;
                }
            }
            for (const HalfEdge& h : g.neighbors(top.vertex)) {
                const Weight nd = top.dist + h.weight;
                if (nd > limit) continue;
                const bool fresh = !seen(h.to);
                if (fresh || nd < dist_[h.to]) {
                    if (fresh) {
                        stamp_[h.to] = current_;
                    }
                    dist_[h.to] = nd;
                    push_fwd(nd, h.to);
                    if (seen_b(h.to)) {
                        const Weight through = nd + dist_b_[h.to];
                        if (through < best) {
                            best = through;
                            ++meets_;
                        }
                    }
                }
            }
        } else {
            const QueueItem top = heap_b_.pop_min();
            if (top.dist > dist_b_[top.vertex]) continue;  // stale
            if (collect_frontiers) ball_b_.push_back({top.vertex, top.dist});
            if (seen(top.vertex)) {
                const Weight through = top.dist + dist_[top.vertex];
                if (through < best) {
                    best = through;
                    ++meets_;
                }
            }
            for (const HalfEdge& h : g.neighbors(top.vertex)) {
                const Weight nd = top.dist + h.weight;
                if (nd > limit) continue;
                const bool fresh = !seen_b(h.to);
                if (fresh || nd < dist_b_[h.to]) {
                    if (fresh) {
                        stamp_b_[h.to] = current_;
                    }
                    dist_b_[h.to] = nd;
                    push_bwd(nd, h.to);
                    if (seen(h.to)) {
                        const Weight through = nd + dist_[h.to];
                        if (through < best) {
                            best = through;
                            ++meets_;
                        }
                    }
                }
            }
        }
    }
    if (collect_frontiers) {
        // A side's settled set is complete below its heap's minimum key:
        // pops are monotone per side, so every vertex with true distance
        // under the (possibly stale) minimum was already popped non-stale.
        // An exhausted side drained its whole <= limit ball. Keys never
        // exceed the limit (relaxation prunes above it), so the nextafter
        // stays within [0, limit].
        const auto side_radius = [limit](const DaryHeap<QueueItem, 4>& heap) {
            if (heap.empty()) return limit;
            const Weight r = std::nextafter(
                heap.min().dist, -std::numeric_limits<Weight>::infinity());
            return r < 0.0 ? 0.0 : r;
        };
        fwd_settled_radius_ = side_radius(heap_);
        bwd_settled_radius_ = side_radius(heap_b_);
    }
    return best <= limit ? best : kInfiniteWeight;
}

template <class G, class H>
Weight DijkstraWorkspace::distance_goal_directed(const G& g, VertexId s, VertexId target,
                                                 Weight limit, H&& h) {
    resize(g.num_vertices());
    if (s >= g.num_vertices() || target >= g.num_vertices()) {
        throw std::out_of_range(
            "DijkstraWorkspace::distance_goal_directed: vertex out of range");
    }
    if (s == target) return 0.0;
    begin_query();

    dist_[s] = 0.0;
    stamp_[s] = current_;
    push_fwd(h(s), s);

    // dist_ holds g (exact-so-far path lengths, so last_forward_bound
    // stays sound); heap keys hold f = g + h. A popped item is stale iff
    // its g component was improved after the push; h is fixed per vertex,
    // so comparing f-keys detects that without storing g in the item.
    while (!heap_.empty()) {
        const QueueItem top = heap_.pop_min();
        const VertexId v = top.vertex;
        if (v == target) {
            // h(target) == 0: the key *is* g, exact under a consistent h.
            if (top.dist > dist_[v]) continue;  // stale
            return dist_[v];
        }
        if (top.dist > dist_[v] + h(v)) continue;  // stale
        const Weight gd = dist_[v];
        for (const HalfEdge& e : g.neighbors(v)) {
            const Weight nd = gd + e.weight;
            if (nd > limit) continue;
            const bool fresh = !seen(e.to);
            if (fresh || nd < dist_[e.to]) {
                const Weight f = nd + h(e.to);
                if (f > limit) continue;  // no <= limit path through e.to
                if (fresh) {
                    stamp_[e.to] = current_;
                }
                dist_[e.to] = nd;
                push_fwd(f, e.to);
            }
        }
    }
    return kInfiniteWeight;
}

template <class G>
Weight DijkstraWorkspace::distance_seeded(const G& g, std::span<const RepairSeed> seeds,
                                          VertexId target, Weight limit) {
    resize(g.num_vertices());
    if (target >= g.num_vertices()) {
        throw std::out_of_range("DijkstraWorkspace::distance_seeded: vertex out of range");
    }
    begin_query();

    for (const RepairSeed& s : seeds) {
        if (s.v >= g.num_vertices()) {
            throw std::out_of_range(
                "DijkstraWorkspace::distance_seeded: seed out of range");
        }
        if (s.key > limit) continue;
        const bool fresh = !seen(s.v);
        if (fresh || s.key < dist_[s.v]) {
            if (fresh) stamp_[s.v] = current_;
            dist_[s.v] = s.key;
            push_fwd(s.key, s.v);
        }
    }

    while (!heap_.empty()) {
        const QueueItem top = heap_.pop_min();
        if (top.dist > dist_[top.vertex]) continue;  // stale entry
        if (top.vertex == target) return top.dist;
        for (const HalfEdge& h : g.neighbors(top.vertex)) {
            const Weight nd = top.dist + h.weight;
            if (nd > limit) continue;
            const bool fresh = !seen(h.to);
            if (fresh || nd < dist_[h.to]) {
                if (fresh) {
                    stamp_[h.to] = current_;
                }
                dist_[h.to] = nd;
                push_fwd(nd, h.to);
            }
        }
    }
    return kInfiniteWeight;
}

template <class G>
const std::vector<std::pair<VertexId, Weight>>& DijkstraWorkspace::ball(const G& g,
                                                                        VertexId s,
                                                                        Weight limit) {
    resize(g.num_vertices());
    if (s >= g.num_vertices()) {
        throw std::out_of_range("DijkstraWorkspace::ball: vertex out of range");
    }
    begin_query();

    dist_[s] = 0.0;
    stamp_[s] = current_;
    push_fwd(0.0, s);

    while (!heap_.empty()) {
        const QueueItem top = heap_.pop_min();
        if (top.dist > dist_[top.vertex]) continue;  // stale
        ball_.push_back({top.vertex, top.dist});     // settled: distance is final
        for (const HalfEdge& h : g.neighbors(top.vertex)) {
            const Weight nd = top.dist + h.weight;
            if (nd > limit) continue;
            const bool fresh = !seen(h.to);
            if (fresh || nd < dist_[h.to]) {
                if (fresh) {
                    stamp_[h.to] = current_;
                }
                dist_[h.to] = nd;
                push_fwd(nd, h.to);
            }
        }
    }
    return ball_;
}

template <class G>
const std::vector<std::pair<VertexId, Weight>>* DijkstraWorkspace::ball_bounded(
    const G& g, VertexId s, Weight limit, std::size_t max_work,
    std::size_t max_settled) {
    resize(g.num_vertices());
    if (s >= g.num_vertices()) {
        throw std::out_of_range("DijkstraWorkspace::ball_bounded: vertex out of range");
    }
    begin_query();

    dist_[s] = 0.0;
    stamp_[s] = current_;
    push_fwd(0.0, s);

    while (!heap_.empty()) {
        const QueueItem top = heap_.pop_min();
        if (top.dist > dist_[top.vertex]) continue;  // stale
        if (last_work_ > max_work || ball_.size() >= max_settled) {
            return nullptr;  // the frontier blew its budget
        }
        ball_.push_back({top.vertex, top.dist});  // settled: distance is final
        for (const HalfEdge& h : g.neighbors(top.vertex)) {
            const Weight nd = top.dist + h.weight;
            if (nd > limit) continue;
            const bool fresh = !seen(h.to);
            if (fresh || nd < dist_[h.to]) {
                if (fresh) {
                    stamp_[h.to] = current_;
                }
                dist_[h.to] = nd;
                push_fwd(nd, h.to);
            }
        }
    }
    return &ball_;
}

/// Convenience wrappers (allocate a fresh workspace; fine for one-off use).
Weight dijkstra_distance(const Graph& g, VertexId s, VertexId t,
                         Weight limit = kInfiniteWeight);
std::vector<Weight> dijkstra_all(const Graph& g, VertexId s,
                                 Weight limit = kInfiniteWeight);

/// Vertex sequence (s, ..., t) of a shortest path, or empty if unreachable.
std::vector<VertexId> shortest_path(const Graph& g, VertexId s, VertexId t);

}  // namespace gsp
