// Dijkstra shortest paths, tuned for the greedy spanner's query pattern.
//
// The greedy algorithm runs one point-to-point distance query per candidate
// edge, on a graph that only ever grows, and it never cares about distances
// larger than t*w(e). Two things make that affordable:
//   1. a *distance limit*: the search never settles vertices beyond the
//      limit, so queries on a sparse spanner touch a small ball;
//   2. a reusable workspace with timestamped initialization, so a query
//      costs O(touched) instead of O(n) to reset.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

/// Reusable state for repeated Dijkstra runs over graphs with the same
/// vertex count. Not thread-safe; use one workspace per thread.
class DijkstraWorkspace {
public:
    explicit DijkstraWorkspace(std::size_t n);

    /// Grow to accommodate n vertices (keeps amortized O(1) resets).
    void resize(std::size_t n);

    /// Distance from s to target in g, or +infinity if it exceeds `limit`
    /// (or target is unreachable). Settles only vertices at distance <= limit
    /// and stops as soon as `target` is settled.
    Weight distance(const Graph& g, VertexId s, VertexId target, Weight limit);

    /// Single-source distances to every vertex within `limit`; entries beyond
    /// the limit (or unreachable) are +infinity. The result is valid until
    /// the next call on this workspace.
    const std::vector<Weight>& all_distances(const Graph& g, VertexId s, Weight limit);

    /// After all_distances: predecessor vertex on a shortest path tree
    /// (kNoVertex for the source and unreached vertices).
    [[nodiscard]] const std::vector<VertexId>& predecessors() const { return pred_; }

    /// After all_distances: the edge id used to reach each vertex in the
    /// shortest path tree (kNoEdge for the source and unreached vertices).
    [[nodiscard]] const std::vector<EdgeId>& predecessor_edges() const { return pred_edge_; }

    /// Settled vertices and exact distances of the ball of radius `limit`
    /// around s. Costs O(|ball| log |ball|), *not* O(n): no dense reset.
    /// The returned reference is valid until the next call on this workspace.
    const std::vector<std::pair<VertexId, Weight>>& ball(const Graph& g, VertexId s,
                                                         Weight limit);

private:
    void begin_query();
    [[nodiscard]] bool seen(VertexId v) const { return stamp_[v] == current_; }

    struct QueueItem {
        Weight dist;
        VertexId vertex;
        friend bool operator>(const QueueItem& a, const QueueItem& b) {
            return a.dist > b.dist;
        }
    };

    std::vector<Weight> dist_;
    std::vector<VertexId> pred_;
    std::vector<EdgeId> pred_edge_;
    std::vector<std::uint64_t> stamp_;
    std::uint64_t current_ = 0;
    std::vector<QueueItem> heap_;
    std::vector<std::pair<VertexId, Weight>> ball_;
};

/// Convenience wrappers (allocate a fresh workspace; fine for one-off use).
Weight dijkstra_distance(const Graph& g, VertexId s, VertexId t,
                         Weight limit = kInfiniteWeight);
std::vector<Weight> dijkstra_all(const Graph& g, VertexId s,
                                 Weight limit = kInfiniteWeight);

/// Vertex sequence (s, ..., t) of a shortest path, or empty if unreachable.
std::vector<VertexId> shortest_path(const Graph& g, VertexId s, VertexId t);

}  // namespace gsp
