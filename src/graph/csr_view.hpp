// Frozen compressed-sparse-row adjacency snapshots.
//
// The greedy engine's inner loop is a distance-limited Dijkstra over the
// growing spanner. The spanner grows *slowly* (one edge per accepted
// candidate, and most candidates are rejected), so the engine freezes the
// adjacency into a CSR snapshot once per weight bucket and scans contiguous
// arrays instead of chasing the vector-of-vectors adjacency of `Graph`.
// Edges accepted after the snapshot land in a small per-vertex overlay, so
// queries remain *exact* on the current spanner: CsrOverlayView::neighbors
// chains the frozen CSR run with the overlay run of that vertex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

/// Immutable CSR copy of a Graph's adjacency. Rebuild is O(n + m) with two
/// counting passes; neighbor scans are a single contiguous run.
class CsrView {
public:
    CsrView() = default;
    explicit CsrView(const Graph& g) { rebuild(g); }

    /// Refreeze from the graph's current adjacency.
    void rebuild(const Graph& g);

    [[nodiscard]] std::size_t num_vertices() const {
        return offsets_.empty() ? 0 : offsets_.size() - 1;
    }
    [[nodiscard]] std::size_t num_half_edges() const { return half_.size(); }

    [[nodiscard]] std::span<const HalfEdge> neighbors(VertexId v) const {
        return {half_.data() + offsets_[v], half_.data() + offsets_[v + 1]};
    }

private:
    std::vector<std::uint32_t> offsets_;  ///< size n + 1
    std::vector<HalfEdge> half_;          ///< size 2m, grouped by vertex
    std::vector<std::uint32_t> cursor_;   ///< rebuild scratch
};

/// CSR snapshot plus an append-only overlay of the edges added since the
/// snapshot: the exact adjacency of a slowly growing graph whose hot read
/// path stays contiguous. Satisfies the same graph-view shape as `Graph`
/// (num_vertices / neighbors yielding HalfEdge), so DijkstraWorkspace
/// queries run on it unchanged.
///
/// Thread-safety: all const members (`neighbors`, `num_vertices`,
/// `overlay_edges`) read only immutable-between-mutations state, so any
/// number of threads may query a view concurrently as long as no thread is
/// inside `snapshot`/`add_edge`. The greedy engine's parallel prefilter
/// stage relies on exactly this: stage 2 fans read-only Dijkstra probes
/// over the bucket-start view, and the serialized insertion loop (the only
/// writer) runs strictly after the fan-out joins.
class CsrOverlayView {
public:
    /// Iterates the frozen CSR run of a vertex, then its overlay run.
    class NeighborRange {
    public:
        class iterator {
        public:
            iterator(const HalfEdge* p, const HalfEdge* end_a, const HalfEdge* b)
                : p_(p), end_a_(end_a), b_(b) {}
            const HalfEdge& operator*() const { return *p_; }
            iterator& operator++() {
                ++p_;
                if (p_ == end_a_) p_ = b_;
                return *this;
            }
            friend bool operator==(const iterator& x, const iterator& y) {
                return x.p_ == y.p_;
            }
            friend bool operator!=(const iterator& x, const iterator& y) {
                return x.p_ != y.p_;
            }

        private:
            const HalfEdge* p_;      ///< current position
            const HalfEdge* end_a_;  ///< end of the CSR run (jump point)
            const HalfEdge* b_;      ///< begin of the overlay run
        };

        NeighborRange(std::span<const HalfEdge> a, std::span<const HalfEdge> b)
            : a_(a), b_(b) {}
        [[nodiscard]] iterator begin() const {
            const HalfEdge* b_begin = b_.data();
            if (a_.empty()) return {b_begin, nullptr, nullptr};
            return {a_.data(), a_.data() + a_.size(), b_begin};
        }
        [[nodiscard]] iterator end() const {
            return {b_.data() + b_.size(), nullptr, nullptr};
        }

    private:
        std::span<const HalfEdge> a_;
        std::span<const HalfEdge> b_;
    };

    CsrOverlayView() = default;

    /// Refreeze the CSR from g's current adjacency and drop the overlay.
    ///
    /// Explicit no-insertion fast path: when the overlay is empty and g
    /// still has exactly the frozen vertex/edge counts (the caller kept
    /// mirroring the same graph and nothing was inserted since the last
    /// snapshot), the call is an O(1) no-op instead of an O(n + m)
    /// rebuild. `rebuilds()` counts the rebuilds that actually ran.
    void snapshot(const Graph& g);

    /// Record one undirected edge added to the underlying graph after the
    /// last snapshot (id must be the Graph edge id, so predecessor-edge
    /// reporting stays consistent across views).
    void add_edge(VertexId u, VertexId v, Weight w, EdgeId id);

    [[nodiscard]] std::size_t num_vertices() const { return csr_.num_vertices(); }
    [[nodiscard]] std::size_t overlay_edges() const { return overlay_edges_; }

    /// Number of snapshot() calls that performed a full CSR rebuild (the
    /// no-insertion fast path does not count).
    [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }

    [[nodiscard]] NeighborRange neighbors(VertexId v) const {
        return {csr_.neighbors(v), {overlay_[v].data(), overlay_[v].size()}};
    }

private:
    CsrView csr_;
    std::vector<std::vector<HalfEdge>> overlay_;  ///< per-vertex post-snapshot run
    std::vector<VertexId> touched_;               ///< vertices with overlay entries
    std::size_t overlay_edges_ = 0;
    std::size_t rebuilds_ = 0;
    Edge frozen_last_edge_;  ///< fingerprint of the newest frozen edge
    bool frozen_ = false;    ///< a snapshot has been taken at least once
};

}  // namespace gsp
