#include "graph/incremental_csr.hpp"

#include <algorithm>

namespace gsp {

bool IncrementalCsrView::refresh(const Graph& g) {
    if (built_ && g.num_vertices() == start_.size() &&
        g.num_edges() == mirrored_edges_ &&
        (mirrored_edges_ == 0 ||
         g.edge(static_cast<EdgeId>(mirrored_edges_ - 1)) == last_edge_)) {
        // The mirror already reflects every insertion (the engine feeds
        // each accepted edge through add_edge): the explicit no-op fast
        // path that makes per-batch "snapshots" free. The last-edge
        // fingerprint catches the stale-mirror trap of refreshing against
        // a *different* graph whose counts coincide.
        return false;
    }
    const std::size_t n = g.num_vertices();
    start_.assign(n, 0);
    len_.assign(n, 0);
    cap_.assign(n, 0);
    // Run capacities: live degree plus slack, laid out contiguously.
    std::size_t total = 0;
    for (VertexId v = 0; v < n; ++v) {
        const auto deg = static_cast<std::uint32_t>(g.neighbors(v).size());
        cap_[v] = deg + slack(deg);
        start_[v] = static_cast<std::uint32_t>(total);
        total += cap_[v];
    }
    arena_.assign(total, HalfEdge{});
    for (VertexId v = 0; v < n; ++v) {
        HalfEdge* out = arena_.data() + start_[v];
        for (const HalfEdge& h : g.neighbors(v)) out[len_[v]++] = h;
    }
    dead_ = 0;
    insert_log_.clear();
    live_half_edges_ = 2 * g.num_edges();
    mirrored_edges_ = g.num_edges();
    last_edge_ = g.num_edges() > 0
                     ? g.edge(static_cast<EdgeId>(g.num_edges() - 1))
                     : Edge{};
    built_ = true;
    ++rebuilds_;
    return true;
}

void IncrementalCsrView::add_edge(VertexId u, VertexId v, Weight w, EdgeId id) {
    append_half(u, HalfEdge{v, w, id});
    append_half(v, HalfEdge{u, w, id});
    live_half_edges_ += 2;
    ++mirrored_edges_;
    last_edge_ = Edge{u, v, w};
    if (log_inserts_) insert_log_.push_back(LoggedInsert{u, v, w});
    // Merge-on-threshold: relocations abandon their old run; once dead
    // slots occupy a third of the arena, fold everything back into one
    // contiguous layout with fresh slack. Amortized against the
    // relocations that created the dead space. (A half-arena threshold
    // would never fire under steady doubling: the dead slots of a run's
    // relocation history sum to just under its live capacity.)
    if (dead_ > 64 && dead_ * 3 > arena_.size()) compact();
}

void IncrementalCsrView::append_half(VertexId v, const HalfEdge& h) {
    if (len_[v] == cap_[v]) relocate(v, len_[v] + 1);
    arena_[start_[v] + len_[v]] = h;
    ++len_[v];
}

void IncrementalCsrView::relocate(VertexId v, std::uint32_t min_cap) {
    const std::uint32_t new_cap = std::max(min_cap, 2 * std::max(cap_[v], 1u));
    const std::size_t new_start = arena_.size();
    arena_.resize(new_start + new_cap);
    // Self-copy within the arena; the ranges cannot overlap (the new run
    // begins past every existing slot). Pointers taken after the resize.
    std::copy_n(arena_.data() + start_[v], len_[v], arena_.data() + new_start);
    dead_ += cap_[v];
    start_[v] = static_cast<std::uint32_t>(new_start);
    cap_[v] = new_cap;
    ++relocations_;
}

void IncrementalCsrView::compact() {
    const std::size_t n = start_.size();
    std::size_t total = 0;
    std::vector<std::uint32_t> new_start(n);
    for (VertexId v = 0; v < n; ++v) {
        new_start[v] = static_cast<std::uint32_t>(total);
        total += len_[v] + slack(len_[v]);
    }
    std::vector<HalfEdge> fresh(total);
    for (VertexId v = 0; v < n; ++v) {
        std::copy_n(arena_.data() + start_[v], len_[v], fresh.data() + new_start[v]);
        cap_[v] = len_[v] + slack(len_[v]);
        start_[v] = new_start[v];
    }
    arena_ = std::move(fresh);
    dead_ = 0;
    ++compactions_;
}

}  // namespace gsp
