// Unweighted traversal utilities: BFS, connectivity, components.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

/// Hop distances (number of edges) from s; kNoVertex-sized sentinel is not
/// used -- unreachable vertices get std::numeric_limits<uint32>::max().
std::vector<std::uint32_t> bfs_hops(const Graph& g, VertexId s);

/// True iff the graph is connected (vacuously true for n <= 1).
[[nodiscard]] bool is_connected(const Graph& g);

/// Component label per vertex, labels in [0, #components).
std::vector<std::uint32_t> connected_components(const Graph& g);

}  // namespace gsp
