// Disjoint-set union with path halving + union by size.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "graph/types.hpp"

namespace gsp {

/// Classic union-find over vertex ids [0, n).
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
        std::iota(parent_.begin(), parent_.end(), VertexId{0});
    }

    /// Representative of u's component (with path halving).
    VertexId find(VertexId u) {
        while (parent_[u] != u) {
            parent_[u] = parent_[parent_[u]];
            u = parent_[u];
        }
        return u;
    }

    /// Merge the components of u and v; returns false if already merged.
    bool unite(VertexId u, VertexId v) {
        VertexId ru = find(u);
        VertexId rv = find(v);
        if (ru == rv) return false;
        if (size_[ru] < size_[rv]) std::swap(ru, rv);
        parent_[rv] = ru;
        size_[ru] += size_[rv];
        --components_;
        return true;
    }

    [[nodiscard]] bool connected(VertexId u, VertexId v) { return find(u) == find(v); }

    /// Number of remaining components.
    [[nodiscard]] std::size_t components() const { return components_; }

    /// Size of u's component.
    std::size_t component_size(VertexId u) { return size_[find(u)]; }

private:
    std::vector<VertexId> parent_;
    std::vector<std::size_t> size_;
    std::size_t components_;
};

}  // namespace gsp
