// Reference shortest-path algorithms.
//
// Bellman-Ford and Floyd-Warshall exist to cross-check Dijkstra in tests and
// to provide the all-pairs closure used by GraphMetric and by the exact
// spanner search on small instances.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

/// Single-source distances by Bellman-Ford (O(nm); reference only).
std::vector<Weight> bellman_ford(const Graph& g, VertexId s);

/// All-pairs distances by Floyd-Warshall (O(n^3); reference / small n).
/// result[u][v] == kInfiniteWeight when v is unreachable from u.
std::vector<std::vector<Weight>> floyd_warshall(const Graph& g);

/// All-pairs distances by n Dijkstra runs (O(n m log n); medium n).
std::vector<std::vector<Weight>> all_pairs_dijkstra(const Graph& g);

}  // namespace gsp
