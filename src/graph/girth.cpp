#include "graph/girth.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace gsp {

std::uint32_t unweighted_girth(const Graph& g) {
    constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t best = kUnreached;

    // BFS from each root; a non-tree edge closing two BFS branches at depths
    // d(u), d(v) witnesses a cycle of length d(u) + d(v) + 1. Scanning all
    // roots guarantees the shortest cycle is found exactly.
    std::vector<std::uint32_t> depth(g.num_vertices());
    std::vector<EdgeId> via(g.num_vertices());
    for (VertexId root = 0; root < g.num_vertices(); ++root) {
        std::fill(depth.begin(), depth.end(), kUnreached);
        std::fill(via.begin(), via.end(), kNoEdge);
        std::queue<VertexId> frontier;
        depth[root] = 0;
        frontier.push(root);
        while (!frontier.empty()) {
            const VertexId u = frontier.front();
            frontier.pop();
            if (2 * depth[u] >= best) break;  // no shorter cycle reachable
            for (const HalfEdge& h : g.neighbors(u)) {
                if (h.edge == via[u]) continue;  // don't reuse the tree edge
                if (depth[h.to] == kUnreached) {
                    depth[h.to] = depth[u] + 1;
                    via[h.to] = h.edge;
                    frontier.push(h.to);
                } else {
                    best = std::min(best, depth[u] + depth[h.to] + 1);
                }
            }
        }
    }
    return best;
}

namespace {
struct GirthItem {
    Weight d;
    VertexId v;
};
bool operator>(const GirthItem& a, const GirthItem& b) { return a.d > b.d; }
}  // namespace

Weight weighted_girth(const Graph& g) {
    Weight best = kInfiniteWeight;
    // For each edge, find the shortest path between its endpoints that does
    // not use the edge itself; parallel edges are handled naturally because
    // the alternative parallel edge is a legitimate path.
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
        const Edge& e = g.edge(id);
        const Weight limit = best - e.weight;  // only cheaper cycles matter
        if (!(limit > 0)) continue;

        // Dijkstra from e.u that skips edge `id`.
        std::vector<Weight> dist(g.num_vertices(), kInfiniteWeight);
        std::vector<GirthItem> heap;
        dist[e.u] = 0.0;
        heap.push_back({0.0, e.u});
        while (!heap.empty()) {
            std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
            const GirthItem top = heap.back();
            heap.pop_back();
            if (top.d > dist[top.v]) continue;
            if (top.v == e.v) break;
            for (const HalfEdge& h : g.neighbors(top.v)) {
                if (h.edge == id) continue;
                const Weight nd = top.d + h.weight;
                if (nd <= limit && nd < dist[h.to]) {
                    dist[h.to] = nd;
                    heap.push_back({nd, h.to});
                    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
                }
            }
        }
        if (dist[e.v] != kInfiniteWeight) best = std::min(best, dist[e.v] + e.weight);
    }
    return best;
}

}  // namespace gsp
