// The multi-target bounded Dijkstra group probe.
//
// The greedy prefilter's unit of work is a *source group*: candidates
// sharing one endpoint, each needing "is d(source, target_i) above
// threshold_i?" answered against the same immutable view. The classic
// paths answer that with up to |group| point queries (or one drained ball
// at the group's largest radius). This kernel answers the whole group
// with ONE traversal that carries every target and its decision radius:
//
//  * targets settle as the frontier reaches them -- a settled target's
//    distance is exact, so `d <= radius` decides it as a reject with a
//    realizable witness bound;
//  * a target whose radius falls below the frontier's current minimum can
//    never be reached in time -- it is decided *far* without ever being
//    visited. Radii are kept sorted, so this check is one forward sweep
//    of a cursor over a contiguous Weight array per pop (the
//    SIMD-friendly bound-evaluation pass: amortized O(k) total, laid out
//    for vector compare);
//  * the relaxation limit is always the largest *undecided* radius, so
//    the searched area shrinks as targets resolve, and the probe
//    terminates the moment the last target is decided -- typically far
//    inside the area a full ball at the group radius would drain;
//  * an optional radius cap bounds the traversal below the largest
//    radius (the kernel edition of the cell-ball reject-radius shave:
//    Dijkstra cost grows with radius^2 but a reject's witness barely
//    exceeds its candidate's weight). Targets whose radius exceeds the
//    cap can still settle as rejects inside the capped region, but they
//    are never certified far -- a far verdict needs the frontier to pass
//    the full radius, and the cap prunes exactly those relaxations. Such
//    targets come back in a third state, *undecided*, and the caller's
//    per-candidate machinery finishes them: cost, never correctness;
//  * with a metric at hand (run_goal), the probe turns goal-directed
//    once few targets remain undecided: a relaxation whose optimistic
//    completion misses every live target's radius -- nd + lb(x, t_i) >
//    r_i for all live i -- cannot lie on any witness path the remaining
//    verdicts could still need, so it is dropped. This prunes the
//    accept-side tail (the shell between the last reject and the
//    largest radius, most of the disk by area) down to a union of
//    ellipse slivers. Target verdicts are untouched: every prefix of a
//    true within-radius path to a live target passes that target's own
//    test (nd + lb <= nd + true remainder <= r_i), so rejects still
//    settle at their exact distance and far sweeps stay sound. What the
//    pruning does give up is the frontier beyond the engagement
//    distance: completeness and exactness of settled() hold only below
//    it (certified_radius() shrinks accordingly, and harvests must
//    treat later settles as upper bounds -- settled_exact_radius()).
//
// State is SoA (dist / parent / stamp arrays indexed by vertex, epoch
// stamps for O(touched) resets) over a monotone bucket queue
// (util/bucket_queue.hpp) -- bounded nonnegative keys make the D-ary heap
// overkill; bench_micro's queue ablation measures the swap.
//
// Soundness of the three verdicts (all relative to the probed view):
//  * settled => exact: the standard Dijkstra invariant, unharmed by the
//    shrinking limit (a vertex within the FINAL limit has every prefix of
//    its shortest path within every limit the run ever used, since the
//    limit only shrinks -- so no relaxation on that path was pruned);
//  * far by sweep => the frontier minimum exceeded the radius, and keys
//    are monotone, so no path of length <= radius exists;
//  * far by exhaustion => the queue drained with the target unsettled;
//    a path within its radius would have been relaxed end to end (radius
//    <= every limit used while the target was undecided).
//
// certified_radius() extends the same argument to *every* vertex: the
// settled list is complete out to that radius (absent => farther), which
// is exactly the certificate contract the speculative repair path needs.
// The far sweep, the relaxation drain, and the goal-oracle bound pass all
// run through the vector kernel table (src/simd/simd.hpp): the sweep is
// one lower-bound scan over the contiguous effective-radii array, the
// drain computes a block of tentative distances and a <= limit lane mask
// per kernel call (labels still update in scalar iteration order), and a
// batch-capable goal oracle evaluates every live target's lower bound in
// one call. Every kernel is bit-exact against its scalar reference, so
// verdicts, settles, work counters, and queue contents are identical
// across backends -- set_kernels() only ever trades nanoseconds.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "simd/aligned.hpp"
#include "simd/simd.hpp"
#include "util/annotations.hpp"
#include "util/bucket_queue.hpp"

namespace gsp {

class BatchedProbe {
public:
    /// Vector kernel table for the sweeps and drains; nullptr restores the
    /// runtime-dispatched default. The table must outlive the probe's use
    /// (the engine hands out pointers to the static per-backend tables).
    void set_kernels(const simd::Kernels* k) {
        simd_ = k != nullptr ? k : &simd::auto_kernels();
    }

    /// The table the next run will use (bench/report introspection).
    [[nodiscard]] const simd::Kernels& kernels() const { return *simd_; }

    /// Goal-directed pruning engages once at most this many targets are
    /// still undecided: each candidate relaxation then pays one oracle
    /// lower bound per live target, so the cutoff keeps that scan O(1)
    /// while the pruning is active exactly where it matters -- the outer
    /// shell, where the frontier would otherwise drain the full disk for
    /// a handful of accept-side certificates.
    static constexpr std::size_t kGoalLiveMax = 8;
    /// One traversal deciding every (source, targets[i]) pair against
    /// radii[i]. Radii must be nondecreasing (SourceGroups hands members
    /// out in bucket order, which is weight order -- the invariant is
    /// documented on SourceGroups); duplicate target vertices are fine
    /// (each slot is decided independently). `cap` bounds the traversal:
    /// slots with radii[i] <= cap get the full far/reject treatment,
    /// heavier slots settle as rejects or stay undecided (see the header
    /// note). After run(): target_far(i) / target_bound(i) /
    /// target_undecided(i) hold the verdicts, settled() the exact
    /// frontier, certified_radius() its completeness radius.
    template <class View>
    GSP_DECISION_PURE GSP_HOT_PATH void run(const View& view, VertexId source, std::span<const VertexId> targets,
             std::span<const Weight> radii, Weight cap = kInfiniteWeight) {
        run_impl(view, source, targets, radii, cap, static_cast<const NoGoal*>(nullptr));
    }

    /// run() with a goal-directed lower-bound oracle: `lb(x, t)` must
    /// return a lower bound on d(x, t) over the probed view (a metric
    /// oracle over vertex positions qualifies whenever edge weights are
    /// metric distances). Verdicts are identical to the plain run -- the
    /// oracle only prunes traversal work (see the header note).
    template <class View, class GoalLb>
    GSP_DECISION_PURE GSP_HOT_PATH void run_goal(const View& view, VertexId source, std::span<const VertexId> targets,
                  std::span<const Weight> radii, Weight cap, const GoalLb& lb) {
        run_impl(view, source, targets, radii, cap, &lb);
    }

    // Shared implementation; `lb == nullptr` disables goal-directed
    // pruning (public only because member templates cannot be split out).
    template <class View, class GoalLb>
    GSP_DECISION_PURE GSP_HOT_PATH void run_impl(const View& view, VertexId source, std::span<const VertexId> targets,
                  std::span<const Weight> radii, Weight cap, const GoalLb* lb) {
        const std::size_t n = view.num_vertices();
        const std::size_t k = targets.size();
        if (radii.size() != k) {
            throw std::invalid_argument("BatchedProbe::run: targets/radii size mismatch");
        }
        resize(n);
        if (source >= n) {
            throw std::out_of_range("BatchedProbe::run: source out of range");
        }
        ++current_;
        settled_.clear();
        work_ = 0;
        early_exit_ = false;
        certified_radius_ = 0.0;
        exact_radius_ = kInfiniteWeight;
        if (k == 0) return;

        far_.assign(k, 0);
        decided_.assign(k, 0);
        result_.assign(k, kInfiniteWeight);
        tgt_next_.assign(k, kNoSlot);
        for (std::size_t i = 1; i < k; ++i) {
            if (radii[i] < radii[i - 1]) {
                throw std::invalid_argument(
                    "BatchedProbe::run: radii must be nondecreasing");
            }
        }
        // Effective radii min(radii[i], cap) in a contiguous aligned array:
        // the far sweep's kernel operand (still nondecreasing).
        eff_.resize(k);
        for (std::size_t i = 0; i < k; ++i) eff_[i] = std::min(radii[i], cap);
        // Does the goal oracle batch-evaluate lower bounds? (The metric
        // oracle the engine passes does; ad-hoc lambdas and NoGoal don't.)
        constexpr bool kBatchGoal =
            requires(const GoalLb& g, VertexId x, std::span<const VertexId> ts,
                     Weight* o) { g.batch(x, ts, o); };
        // Per-vertex target chains: duplicate targets share one settle
        // event but keep independent slots (their radii differ).
        for (std::size_t i = 0; i < k; ++i) {
            const VertexId v = targets[i];
            if (v >= n) {
                throw std::out_of_range("BatchedProbe::run: target out of range");
            }
            if (tgt_stamp_[v] == current_) {
                tgt_next_[i] = tgt_head_[v];
            }
            tgt_stamp_[v] = current_;
            tgt_head_[v] = static_cast<std::uint32_t>(i);
        }

        std::size_t undecided = k;
        std::size_t asc = 0;  // far-sweep cursor over sorted radii
        std::size_t top = k;  // 1 + index of the largest undecided radius
        // Slots past `eligible` have radii above the cap: far would be
        // unsound for them (the cap pruned the relaxations a full-radius
        // certificate needs). Effective radii min(radii[i], cap) drive the
        // sweep and the limit -- still nondecreasing, so the cursor logic
        // is untouched.
        const std::size_t eligible = static_cast<std::size_t>(
            std::upper_bound(radii.begin(), radii.end(), cap) - radii.begin());
        Weight limit = std::min(radii[k - 1], cap);  // shrinks as targets resolve

        // Goal-directed pruning flips on the first time the live set
        // shrinks to kGoalLiveMax -- from then on settles above the
        // engagement distance are upper bounds only, so the engagement
        // point is also where certified/exact radii freeze.
        bool goal_mode = false;
        Weight goal_d0 = 0.0;
        auto maybe_engage = [&](Weight dnow, std::size_t undec) {
            if (lb == nullptr || goal_mode || undec > kGoalLiveMax) return;
            goal_mode = true;
            goal_d0 = dnow;
            exact_radius_ = dnow;
            live_.clear();
            live_targets_.clear();
            for (std::size_t s = 0; s < k; ++s) {
                if (!decided_[s]) {
                    live_.push_back(static_cast<std::uint32_t>(s));
                    live_targets_.push_back(targets[s]);
                }
            }
        };
        maybe_engage(0.0, k);

        queue_.reset(limit, std::max<std::size_t>(peak_hint_, 64));
        dist_[source] = 0.0;
        stamp_[source] = current_;
        parent_[source] = kNoVertex;
        queue_.push(0.0, source);
        ++work_;

        while (undecided > 0 && !queue_.empty()) {
            const BucketQueue::Item item = queue_.pop_min();
            const VertexId v = item.vertex;
            const Weight d = item.key;
            if (d > dist_[v]) continue;  // stale entry

            // The batched bound evaluation: every undecided effective
            // radius below the frontier minimum is unreachable in time --
            // decide the whole prefix in one contiguous sweep. Cap-covered
            // slots are certified far; over-cap slots merely lost their
            // last chance to settle (monotone pops: no future settle below
            // d, and the cap pruned everything beyond) and close as
            // undecided fall-throughs.
            for (const std::size_t stop =
                     simd_->sweep_lower_bound(eff_.data(), asc, k, d);
                 asc < stop; ++asc) {
                if (!decided_[asc]) {
                    decided_[asc] = 1;
                    if (asc < eligible) far_[asc] = 1;
                    --undecided;
                }
            }
            if (undecided == 0) {
                finish_early(limit, d);
                if (goal_mode) clamp_certified(goal_d0);
                return;
            }

            settled_.push_back({v, d});
            if (tgt_stamp_[v] == current_) {
                // radii[slot] >= d for every live slot here (smaller radii
                // were swept far above): settled at d <= radius => reject,
                // with the exact distance as a realizable witness bound.
                for (std::uint32_t slot = tgt_head_[v]; slot != kNoSlot;
                     slot = tgt_next_[slot]) {
                    if (!decided_[slot]) {
                        decided_[slot] = 1;
                        result_[slot] = d;
                        --undecided;
                    }
                }
                tgt_stamp_[v] = 0;  // chain consumed; v settles only once
                if (undecided == 0) {
                    finish_early(limit, d);
                    if (goal_mode) clamp_certified(goal_d0);
                    return;
                }
                // Early termination's other half: shrink the relaxation
                // limit to the largest radius still undecided.
                while (top > 0 && decided_[top - 1]) --top;
                limit = std::min(radii[top - 1], cap);
            }

            maybe_engage(d, undecided);

            // Keep a relaxation only if its optimistic completion still
            // fits some live target's radius; otherwise it can serve no
            // remaining verdict (see the header note). A batch-capable
            // oracle evaluates every live lower bound in one kernel call;
            // the bounds are pure, so computing them eagerly instead of
            // short-circuiting cannot change the decision.
            const auto goal_useful = [&](VertexId x, Weight nd) -> bool {
                if constexpr (kBatchGoal) {
                    lb->batch(x, std::span<const VertexId>(live_targets_),
                              lb_buf_.data());
                    for (std::size_t j = 0; j < live_.size(); ++j) {
                        const std::uint32_t s = live_[j];
                        if (decided_[s]) continue;
                        if (nd + lb_buf_[j] <= radii[s]) return true;
                    }
                    return false;
                } else {
                    for (const std::uint32_t s : live_) {
                        if (decided_[s]) continue;
                        if (nd + (*lb)(x, targets[s]) <= radii[s]) return true;
                    }
                    return false;
                }
            };
            const auto relax_edge = [&](const HalfEdge& h, Weight nd) {
                if (goal_mode && !goal_useful(h.to, nd)) return;
                const bool fresh = stamp_[h.to] != current_;
                if (fresh || nd < dist_[h.to]) {
                    stamp_[h.to] = current_;
                    dist_[h.to] = nd;
                    parent_[h.to] = v;
                    queue_.push(nd, h.to);
                    ++work_;
                }
            };
            const auto nbrs = view.neighbors(v);
            if constexpr (std::is_convertible_v<decltype(nbrs),
                                                std::span<const HalfEdge>>) {
                // The batched drain: one kernel call computes a block of
                // tentative distances and the <= limit lane mask; labels
                // and queue pushes then replay in scalar iteration order,
                // so the traversal is bitwise the per-edge loop's.
                const std::span<const HalfEdge> edges(nbrs);
                std::size_t i = 0;
                while (i < edges.size()) {
                    const std::size_t blk =
                        std::min<std::size_t>(edges.size() - i, simd::kMaxLanes);
                    const std::uint32_t mask = simd_->relax_lanes(
                        edges.data() + i, blk, d, limit, nd_buf_.data());
                    for (std::size_t j = 0; j < blk; ++j) {
                        if ((mask >> j) & 1u) relax_edge(edges[i + j], nd_buf_[j]);
                    }
                    i += blk;
                }
            } else {
                for (const auto& h : nbrs) {
                    const Weight nd = d + h.weight;
                    if (nd > limit) continue;
                    relax_edge(h, nd);
                }
            }
        }

        // Queue exhausted with targets still open: nothing within their
        // radii is reachable (see the soundness note above) -- for
        // cap-covered slots. Over-cap slots could still have a witness in
        // the pruned shell (cap, radius]; they close undecided.
        for (std::size_t i = 0; i < k; ++i) {
            if (!decided_[i]) {
                decided_[i] = 1;
                if (i < eligible) far_[i] = 1;
            }
        }
        certified_radius_ = limit;
        if (goal_mode) clamp_certified(goal_d0);
        if (peak_hint_ < settled_.size()) peak_hint_ = settled_.size();
    }

    /// True iff slot i was decided far: d(source, target_i) > radii[i]
    /// on the probed view.
    [[nodiscard]] bool target_far(std::size_t i) const { return far_[i] != 0; }

    /// Exact distance for a settled (rejected) slot; +infinity for a far
    /// or undecided slot.
    [[nodiscard]] Weight target_bound(std::size_t i) const { return result_[i]; }

    /// True iff the radius cap left slot i with no verdict: not settled
    /// inside the capped region, radius beyond what the traversal could
    /// certify. The caller's per-candidate machinery decides it.
    [[nodiscard]] bool target_undecided(std::size_t i) const {
        return far_[i] == 0 && result_[i] == kInfiniteWeight;
    }

    /// The settled frontier of the last run, in nondecreasing distance
    /// order: exact distances, complete out to certified_radius().
    [[nodiscard]] const std::vector<std::pair<VertexId, Weight>>& settled() const {
        return settled_;
    }

    /// Completeness radius of settled(): every vertex within it appears
    /// with its exact distance; absence certifies distance > radius.
    [[nodiscard]] Weight certified_radius() const { return certified_radius_; }

    /// Exactness radius of settled(): entries at distance <= this carry
    /// exact distances; later entries are realizable upper bounds only
    /// (goal-directed pruning may have cut a shorter path to them).
    /// +infinity when the last run never engaged pruning -- every plain
    /// bounded-Dijkstra settle is exact.
    [[nodiscard]] Weight settled_exact_radius() const { return exact_radius_; }

    /// The last run stopped with frontier still pending (every target was
    /// decided before the search space drained).
    [[nodiscard]] bool early_exit() const { return early_exit_; }

    /// Queue pushes of the last run -- the same work proxy
    /// DijkstraWorkspace::last_work() feeds the engine's cost model.
    [[nodiscard]] std::size_t last_work() const { return work_; }

    /// Realizable-path upper bound on d(source, x) from the last run's
    /// labels (+infinity if untouched) -- the harvest mirror of
    /// DijkstraWorkspace::last_forward_bound().
    [[nodiscard]] GSP_DECISION_PURE GSP_HOT_PATH Weight label_bound(VertexId x) const {
        return stamp_[x] == current_ ? dist_[x] : kInfiniteWeight;
    }

private:
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    /// Placeholder oracle type for the plain run() instantiation; never
    /// called (run_impl only dereferences `lb` in goal mode, which a null
    /// oracle can't enter).
    struct NoGoal {
        Weight operator()(VertexId, VertexId) const { return 0.0; }
    };

    void resize(std::size_t n);

    /// Goal pruning engaged at distance d0: completeness of settled()
    /// is only warranted strictly below it.
    GSP_HOT_PATH void clamp_certified(Weight d0) {
        const Weight cut =
            std::nextafter(d0, -std::numeric_limits<Weight>::infinity());
        certified_radius_ = std::min(certified_radius_, std::max<Weight>(cut, 0.0));
    }

    /// All targets decided at the pop of key `d`. Completeness of the
    /// settled list holds out to min(limit, just-below-d): below d every
    /// vertex settled (monotone pops), and below the final limit no
    /// relaxation was ever pruned.
    GSP_HOT_PATH void finish_early(Weight limit, Weight d) {
        early_exit_ = !queue_.empty();
        certified_radius_ =
            std::min(limit, std::nextafter(d, -std::numeric_limits<Weight>::infinity()));
        if (certified_radius_ < 0.0) certified_radius_ = 0.0;
        if (peak_hint_ < settled_.size()) peak_hint_ = settled_.size();
    }

    // SoA label state, epoch-stamped for O(touched) resets; cache-line
    // aligned so vector sweeps never split their first load and the
    // arrays never false-share with neighboring allocations.
    simd::AlignedVector<Weight> dist_;
    simd::AlignedVector<VertexId> parent_;
    simd::AlignedVector<std::uint64_t> stamp_;
    // Per-vertex target registration (stamped) + per-slot chain links.
    simd::AlignedVector<std::uint64_t> tgt_stamp_;
    simd::AlignedVector<std::uint32_t> tgt_head_;
    std::vector<std::uint32_t> tgt_next_;
    // Per-slot verdicts (sized per run).
    std::vector<std::uint8_t> far_;
    std::vector<std::uint8_t> decided_;
    std::vector<Weight> result_;
    simd::AlignedVector<Weight> eff_;  ///< min(radii[i], cap): the sweep operand

    std::uint64_t current_ = 0;
    BucketQueue queue_;
    std::vector<std::pair<VertexId, Weight>> settled_;
    std::vector<std::uint32_t> live_;  ///< undecided slots at goal engagement
    std::vector<VertexId> live_targets_;  ///< their target vertices, same order
    std::array<Weight, kGoalLiveMax> lb_buf_{};    ///< batched goal lower bounds
    std::array<Weight, simd::kMaxLanes> nd_buf_{};  ///< batched tentative dists
    const simd::Kernels* simd_ = &simd::auto_kernels();
    Weight exact_radius_ = kInfiniteWeight;  ///< settles beyond: upper bounds only
    Weight certified_radius_ = 0.0;
    bool early_exit_ = false;
    std::size_t work_ = 0;
    std::size_t peak_hint_ = 0;  ///< settled-count high-water mark (queue sizing)
};

}  // namespace gsp
