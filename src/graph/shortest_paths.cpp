#include "graph/shortest_paths.hpp"

#include "graph/dijkstra.hpp"

namespace gsp {

std::vector<Weight> bellman_ford(const Graph& g, VertexId s) {
    std::vector<Weight> dist(g.num_vertices(), kInfiniteWeight);
    dist[s] = 0.0;
    // Positive weights: at most n-1 rounds; stop early once stable.
    for (std::size_t round = 0; round + 1 < g.num_vertices(); ++round) {
        bool changed = false;
        for (const Edge& e : g.edges()) {
            if (dist[e.u] + e.weight < dist[e.v]) {
                dist[e.v] = dist[e.u] + e.weight;
                changed = true;
            }
            if (dist[e.v] + e.weight < dist[e.u]) {
                dist[e.u] = dist[e.v] + e.weight;
                changed = true;
            }
        }
        if (!changed) break;
    }
    return dist;
}

std::vector<std::vector<Weight>> floyd_warshall(const Graph& g) {
    const std::size_t n = g.num_vertices();
    std::vector<std::vector<Weight>> dist(n, std::vector<Weight>(n, kInfiniteWeight));
    for (std::size_t i = 0; i < n; ++i) dist[i][i] = 0.0;
    for (const Edge& e : g.edges()) {
        // Parallel edges: keep the lightest.
        if (e.weight < dist[e.u][e.v]) {
            dist[e.u][e.v] = e.weight;
            dist[e.v][e.u] = e.weight;
        }
    }
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
            if (dist[i][k] == kInfiniteWeight) continue;
            for (std::size_t j = 0; j < n; ++j) {
                const Weight via = dist[i][k] + dist[k][j];
                if (via < dist[i][j]) dist[i][j] = via;
            }
        }
    }
    return dist;
}

std::vector<std::vector<Weight>> all_pairs_dijkstra(const Graph& g) {
    const std::size_t n = g.num_vertices();
    std::vector<std::vector<Weight>> dist;
    dist.reserve(n);
    DijkstraWorkspace ws(n);
    for (VertexId s = 0; s < n; ++s) {
        dist.push_back(ws.all_distances(g, s, kInfiniteWeight));
    }
    return dist;
}

}  // namespace gsp
