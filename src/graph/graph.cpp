#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace gsp {

Graph::Graph(std::size_t n, std::span<const Edge> edges) : adjacency_(n) {
    edges_.reserve(edges.size());
    for (const Edge& e : edges) add_edge(e.u, e.v, e.weight);
}

void Graph::check_endpoints(VertexId u, VertexId v, Weight w) const {
    if (u >= num_vertices() || v >= num_vertices()) {
        throw std::out_of_range("Graph::add_edge: endpoint out of range");
    }
    if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
    if (!(w > 0.0) || !std::isfinite(w)) {
        throw std::invalid_argument("Graph::add_edge: weight must be positive and finite");
    }
}

EdgeId Graph::add_edge(VertexId u, VertexId v, Weight w) {
    check_endpoints(u, v, w);
    const auto id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{u, v, w});
    adjacency_[u].push_back(HalfEdge{v, w, id});
    adjacency_[v].push_back(HalfEdge{u, w, id});
    return id;
}

EdgeId Graph::add_edge_unique(VertexId u, VertexId v, Weight w) {
    check_endpoints(u, v, w);
    if (has_edge(u, v)) throw std::invalid_argument("Graph::add_edge_unique: duplicate edge");
    return add_edge(u, v, w);
}

bool Graph::has_edge(VertexId u, VertexId v) const {
    // Scan the smaller adjacency list.
    if (degree(u) > degree(v)) std::swap(u, v);
    for (const HalfEdge& h : adjacency_.at(u)) {
        if (h.to == v) return true;
    }
    return false;
}

std::size_t Graph::max_degree() const {
    std::size_t best = 0;
    for (const auto& adj : adjacency_) best = std::max(best, adj.size());
    return best;
}

Weight Graph::total_weight() const {
    Weight sum = 0.0;
    for (const Edge& e : edges_) sum += e.weight;
    return sum;
}

Graph Graph::edge_subgraph(std::span<const EdgeId> ids) const {
    Graph sub(num_vertices());
    for (EdgeId id : ids) {
        const Edge& e = edge(id);
        sub.add_edge(e.u, e.v, e.weight);
    }
    return sub;
}

std::string Graph::summary() const {
    std::ostringstream ss;
    ss << "Graph{n=" << num_vertices() << ", m=" << num_edges()
       << ", w=" << total_weight() << ", maxdeg=" << max_degree() << "}";
    return ss.str();
}

bool same_edge_set(const Graph& a, const Graph& b) {
    if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges()) return false;
    auto canonical = [](const Graph& g) {
        std::vector<std::tuple<VertexId, VertexId, Weight>> out;
        out.reserve(g.num_edges());
        for (const Edge& e : g.edges()) {
            out.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v), e.weight);
        }
        std::sort(out.begin(), out.end());
        return out;
    };
    return canonical(a) == canonical(b);
}

}  // namespace gsp
