#include "graph/mst.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "graph/union_find.hpp"

namespace gsp {

MstResult kruskal_mst(const Graph& g) {
    std::vector<EdgeId> order(g.num_edges());
    for (EdgeId i = 0; i < g.num_edges(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
        const Edge& ea = g.edge(a);
        const Edge& eb = g.edge(b);
        return std::make_tuple(ea.weight, std::min(ea.u, ea.v), std::max(ea.u, ea.v), a) <
               std::make_tuple(eb.weight, std::min(eb.u, eb.v), std::max(eb.u, eb.v), b);
    });

    MstResult result;
    UnionFind uf(g.num_vertices());
    for (EdgeId id : order) {
        const Edge& e = g.edge(id);
        if (uf.unite(e.u, e.v)) {
            result.edges.push_back(id);
            result.weight += e.weight;
        }
    }
    result.spanning = g.num_vertices() == 0 || uf.components() == 1;
    return result;
}

namespace {
struct PrimItem {
    Weight key;
    VertexId v;
};
bool operator>(const PrimItem& a, const PrimItem& b) { return a.key > b.key; }
}  // namespace

MstResult prim_mst(const Graph& g) {
    MstResult result;
    const std::size_t n = g.num_vertices();
    if (n == 0) {
        result.spanning = true;
        return result;
    }
    std::vector<bool> in_tree(n, false);
    std::vector<Weight> best(n, kInfiniteWeight);
    std::vector<EdgeId> best_edge(n, kNoEdge);

    std::vector<PrimItem> heap;
    std::size_t reached = 0;

    // Run from every unvisited root so disconnected graphs yield a forest.
    for (VertexId root = 0; root < n; ++root) {
        if (in_tree[root]) continue;
        best[root] = 0.0;
        heap.push_back({0.0, root});
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
        while (!heap.empty()) {
            std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
            const PrimItem top = heap.back();
            heap.pop_back();
            if (in_tree[top.v]) continue;
            in_tree[top.v] = true;
            ++reached;
            if (best_edge[top.v] != kNoEdge) {
                result.edges.push_back(best_edge[top.v]);
                result.weight += g.edge(best_edge[top.v]).weight;
            }
            for (const HalfEdge& h : g.neighbors(top.v)) {
                if (!in_tree[h.to] && h.weight < best[h.to]) {
                    best[h.to] = h.weight;
                    best_edge[h.to] = h.edge;
                    heap.push_back({h.weight, h.to});
                    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
                }
            }
        }
    }
    result.spanning = n == 0 || result.edges.size() == n - 1;
    (void)reached;
    return result;
}

Weight mst_weight(const Graph& g) {
    const MstResult mst = kruskal_mst(g);
    if (!mst.spanning) {
        throw std::invalid_argument("mst_weight: graph is disconnected; lightness undefined");
    }
    return mst.weight;
}

}  // namespace gsp
