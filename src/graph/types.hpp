// Fundamental graph value types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace gsp {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;
using Weight = double;

/// Sentinel "no vertex" value.
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();

/// Sentinel "no edge" value.
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

/// Sentinel "unreachable" distance.
inline constexpr Weight kInfiniteWeight = std::numeric_limits<Weight>::infinity();

/// An undirected weighted edge. Endpoints are stored as given; callers that
/// need a canonical orientation should compare min/max of (u, v).
struct Edge {
    VertexId u = kNoVertex;
    VertexId v = kNoVertex;
    Weight weight = 0.0;

    friend bool operator==(const Edge&, const Edge&) = default;
};

/// Adjacency entry: the far endpoint and the weight, plus the id of the
/// underlying edge (index into the graph's edge list).
struct HalfEdge {
    VertexId to = kNoVertex;
    Weight weight = 0.0;
    EdgeId edge = kNoEdge;
};

}  // namespace gsp
