#include "graph/csr_view.hpp"

namespace gsp {

void CsrView::rebuild(const Graph& g) {
    const std::size_t n = g.num_vertices();
    offsets_.assign(n + 1, 0);
    for (const Edge& e : g.edges()) {
        ++offsets_[e.u + 1];
        ++offsets_[e.v + 1];
    }
    for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
    half_.resize(2 * g.num_edges());
    cursor_.assign(offsets_.begin(), offsets_.end() - 1);
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
        const Edge& e = g.edge(id);
        half_[cursor_[e.u]++] = HalfEdge{e.v, e.weight, id};
        half_[cursor_[e.v]++] = HalfEdge{e.u, e.weight, id};
    }
}

void CsrOverlayView::snapshot(const Graph& g) {
    // No-insertion fast path: nothing landed in the overlay and g still has
    // the frozen shape, so the existing CSR is already exact. The
    // last-edge fingerprint catches a *different* graph whose counts
    // coincide (same guard as IncrementalCsrView::refresh).
    if (frozen_ && overlay_edges_ == 0 && g.num_vertices() == csr_.num_vertices() &&
        2 * g.num_edges() == csr_.num_half_edges() &&
        (g.num_edges() == 0 ||
         g.edge(static_cast<EdgeId>(g.num_edges() - 1)) == frozen_last_edge_)) {
        return;
    }
    csr_.rebuild(g);
    frozen_last_edge_ = g.num_edges() > 0
                            ? g.edge(static_cast<EdgeId>(g.num_edges() - 1))
                            : Edge{};
    ++rebuilds_;
    frozen_ = true;
    // Clear stale overlay runs *before* resizing: a smaller graph would
    // otherwise leave touched_ entries pointing past the new size.
    for (VertexId v : touched_) overlay_[v].clear();
    touched_.clear();
    overlay_.resize(g.num_vertices());
    overlay_edges_ = 0;
}

void CsrOverlayView::add_edge(VertexId u, VertexId v, Weight w, EdgeId id) {
    if (overlay_[u].empty()) touched_.push_back(u);
    overlay_[u].push_back(HalfEdge{v, w, id});
    if (overlay_[v].empty()) touched_.push_back(v);
    overlay_[v].push_back(HalfEdge{u, w, id});
    ++overlay_edges_;
}

}  // namespace gsp
