#include "graph/csr_view.hpp"

namespace gsp {

void CsrView::rebuild(const Graph& g) {
    const std::size_t n = g.num_vertices();
    offsets_.assign(n + 1, 0);
    for (const Edge& e : g.edges()) {
        ++offsets_[e.u + 1];
        ++offsets_[e.v + 1];
    }
    for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
    half_.resize(2 * g.num_edges());
    cursor_.assign(offsets_.begin(), offsets_.end() - 1);
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
        const Edge& e = g.edge(id);
        half_[cursor_[e.u]++] = HalfEdge{e.v, e.weight, id};
        half_[cursor_[e.v]++] = HalfEdge{e.u, e.weight, id};
    }
}

void CsrOverlayView::snapshot(const Graph& g) {
    csr_.rebuild(g);
    // Clear stale overlay runs *before* resizing: a smaller graph would
    // otherwise leave touched_ entries pointing past the new size.
    for (VertexId v : touched_) overlay_[v].clear();
    touched_.clear();
    overlay_.resize(g.num_vertices());
    overlay_edges_ = 0;
}

void CsrOverlayView::add_edge(VertexId u, VertexId v, Weight w, EdgeId id) {
    if (overlay_[u].empty()) touched_.push_back(u);
    overlay_[u].push_back(HalfEdge{v, w, id});
    if (overlay_[v].empty()) touched_.push_back(v);
    overlay_[v].push_back(HalfEdge{u, w, id});
    ++overlay_edges_;
}

}  // namespace gsp
