// Cross-bucket bound persistence: a compact per-vertex distance sketch.
//
// The engine's per-candidate bounds are bucket-local (they live in the
// stage-2/stage-3 handoff and die with their bucket), while the classic
// Farshi-Gudmundsson DistanceCache of the metric kernel keeps one upper
// bound per *pair* -- n^2 memory -- and owes most of its speed to hits that
// span weight buckets. BoundSketch recovers those cross-bucket hits in
// O(n) memory: a small set-associative table with kWays slots per vertex,
// each slot remembering what some earlier exact query learned about the
// distance from one source to this vertex:
//
//  * an upper bound `ub` -- the length of a realizable witness path. The
//    spanner only grows and distances only shrink, so `ub` is sound
//    *forever* and may reject a candidate in any later bucket;
//  * a lower bound `lo` tagged with the insertion epoch it was measured
//    at: "d(src, v) >= lo at epoch `lo_epoch`". Distances can only shrink
//    when an edge is inserted, so the tag is the certificate's lifetime --
//    a consult at the same epoch may accept without any Dijkstra probe
//    (the same rule stage-2 "far at snapshot" certificates follow).
//
// Records are monotone-tightening: a repeated (vertex, source) record only
// lowers `ub`, and only raises `lo` within an epoch (a newer epoch replaces
// the tag). Slot placement is deterministic (source-indexed way), so runs
// are reproducible and stats are schedule-independent.
//
// Concurrency contract: the sketch is written only by the engine's serial
// insertion loop; stage-2 workers consult it read-only while no writer
// runs (the fan-out/join of each batch brackets every write), exactly the
// discipline of the frozen adjacency views.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace gsp {

class BoundSketch {
public:
    /// Slots per vertex. Sources map to ways by their low bits, so up to
    /// kWays distinct sources can coexist per vertex before evictions.
    static constexpr std::size_t kWays = 4;

    /// Clear and size for n vertices (O(n); once per engine run).
    void reset(std::size_t n);

    [[nodiscard]] bool empty() const { return slots_.empty(); }
    [[nodiscard]] std::size_t bytes() const { return slots_.capacity() * sizeof(Entry); }

    /// Record an exact distance d(src, x) = d measured at `epoch`: upper
    /// bound forever, lower bound while the epoch holds.
    void record_exact(VertexId src, VertexId x, Weight d, std::uint64_t epoch);

    /// Record d(src, x) >= lo, measured at `epoch` (a probe that exceeded
    /// its limit, or an unsettled vertex outside a ball's radius).
    void record_far(VertexId src, VertexId x, Weight lo, std::uint64_t epoch);

    /// Record a witness-path upper bound d(src, x) <= ub (sound forever).
    void record_upper(VertexId src, VertexId x, Weight ub);

    /// Smallest recorded upper bound on d(u, v), over both directions;
    /// +infinity when neither vertex remembers the other.
    [[nodiscard]] Weight upper_bound(VertexId u, VertexId v) const;

    /// Largest lower bound on d(u, v) still valid at `epoch` (0 when no
    /// tagged entry matches). d(u, v) > threshold is certified iff the
    /// returned value exceeds threshold.
    [[nodiscard]] Weight lower_bound_at(VertexId u, VertexId v,
                                        std::uint64_t epoch) const;

private:
    struct Entry {
        VertexId src = kNoVertex;
        Weight ub = kInfiniteWeight;
        Weight lo = 0.0;
        std::uint64_t lo_epoch = 0;
    };

    [[nodiscard]] std::size_t slot(VertexId x, VertexId src) const {
        return static_cast<std::size_t>(x) * kWays + (src & (kWays - 1));
    }
    Entry& entry_for_write(VertexId src, VertexId x);

    std::vector<Entry> slots_;  ///< n * kWays, way-indexed by source
};

}  // namespace gsp
