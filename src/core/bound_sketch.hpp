// Cross-bucket bound persistence: a compact per-vertex distance sketch,
// and the certificate store of the speculative two-phase accept path.
//
// The engine's per-candidate bounds are bucket-local (they live in the
// stage-2/stage-3 handoff and die with their bucket), while the classic
// Farshi-Gudmundsson DistanceCache of the metric kernel keeps one upper
// bound per *pair* -- n^2 memory -- and owes most of its speed to hits that
// span weight buckets. BoundSketch recovers those cross-bucket hits in
// O(n) memory: a small set-associative table with `ways` slots per vertex,
// each slot remembering what some earlier exact query learned about the
// distance from one source to this vertex:
//
//  * an upper bound `ub` -- the length of a realizable witness path. The
//    spanner only grows and distances only shrink, so `ub` is sound
//    *forever* and may reject a candidate in any later bucket;
//  * a lower bound `lo` tagged with the insertion epoch it was measured
//    at: "d(src, v) >= lo at epoch `lo_epoch`". Distances can only shrink
//    when an edge is inserted, so the tag is the certificate's lifetime --
//    a consult at the same epoch may accept without any Dijkstra probe
//    (the same rule stage-2 "far at snapshot" certificates follow).
//
// Records are monotone-tightening: a repeated (vertex, source) record only
// lowers `ub`, and only raises `lo` within an epoch (a newer epoch replaces
// the tag). Slot placement is deterministic (source-indexed way), so runs
// are reproducible and stats are schedule-independent. The associativity
// is a runtime parameter (power of two): kWays = 4 was PR 3's first cut,
// and bench_micro measures the hit-rate curve at 2/4/8 ways.
//
// CertificateStore is the sketch's epoch-tagged-lower-bound idea taken to
// its limit for the two-phase accept path: phase A's drained snapshot
// balls don't just certify "d(src, v) > threshold", they know the *entire*
// settled frontier -- the exact snapshot distance to every vertex within
// the radius, and (implicitly) "further than the radius" for every vertex
// outside it. That settled set is exactly what phase-B repair needs: an
// edge inserted after the snapshot can only create a <= threshold path if
// its first use is reachable within the threshold *at the snapshot*, i.e.
// if its entry endpoint is in the certificate's settled set. The store
// keeps one certificate per source vertex (scope- and epoch-tagged, lazily
// invalidated like the engine's shared balls) and activates one at a time
// into a stamped lookup table for O(1) snapshot-distance queries.
//
// Concurrency contract: both structures are written on a fan-out/join
// schedule. The sketch is written only by the engine's serial insertion
// loop while stage-2 workers consult it read-only. The certificate store
// is written by stage-2 workers -- but each worker publishes only the
// sources of its own task's group, and groups partition the batch's
// sources, so writes land in disjoint per-source slots; the serial loop
// reads strictly after the join.
// Storage is SoA (per-field arrays indexed slot = x * ways + way) rather
// than an array of Entry structs: the hot consult, via_upper_bound, then
// reads the two vertices' way-contiguous source arrays with ONE vector
// load + compare per block (simd::Kernels::match_pairs) instead of a
// scalar way loop over 32-byte structs, touching the ub lanes only for
// matching ways.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "simd/aligned.hpp"
#include "simd/simd.hpp"
#include "util/annotations.hpp"

namespace gsp {

class BoundSketch {
public:
    /// Default slots per vertex. Sources map to ways by their low bits, so
    /// up to `ways` distinct sources can coexist per vertex before
    /// evictions.
    static constexpr std::size_t kDefaultWays = 4;

    /// Clear and size for n vertices with `ways` slots each (O(n * ways);
    /// once per engine run). `ways` must be a power of two >= 1.
    void reset(std::size_t n, std::size_t ways = kDefaultWays);

    [[nodiscard]] bool empty() const { return src_.empty(); }
    [[nodiscard]] std::size_t ways() const { return ways_; }
    [[nodiscard]] std::size_t bytes() const {
        return src_.capacity() * sizeof(VertexId) + ub_.capacity() * sizeof(Weight) +
               lo_.capacity() * sizeof(Weight) +
               lo_epoch_.capacity() * sizeof(std::uint64_t);
    }

    /// Vector kernel table for the way probe; nullptr restores the
    /// runtime-dispatched default.
    void set_kernels(const simd::Kernels* k) {
        simd_ = k != nullptr ? k : &simd::auto_kernels();
    }

    /// Record an exact distance d(src, x) = d measured at `epoch`: upper
    /// bound forever, lower bound while the epoch holds.
    GSP_SERIAL_ONLY void record_exact(VertexId src, VertexId x, Weight d,
                                      std::uint64_t epoch);

    /// Record d(src, x) >= lo, measured at `epoch` (a probe that exceeded
    /// its limit, or an unsettled vertex outside a ball's radius).
    GSP_SERIAL_ONLY void record_far(VertexId src, VertexId x, Weight lo,
                                    std::uint64_t epoch);

    /// Record a witness-path upper bound d(src, x) <= ub (sound forever).
    GSP_SERIAL_ONLY void record_upper(VertexId src, VertexId x, Weight ub);

    /// Smallest recorded upper bound on d(u, v), over both directions;
    /// +infinity when neither vertex remembers the other.
    [[nodiscard]] GSP_DECISION_PURE GSP_HOT_PATH Weight upper_bound(
        VertexId u, VertexId v) const;

    /// Smallest *via-landmark* upper bound on d(u, v): min over common
    /// sources x remembered by both endpoints of ub(x, u) + ub(x, v) --
    /// two realizable witness paths concatenated through x, sound by the
    /// triangle inequality. The coarse-reject consult for streams that
    /// emit each pair exactly once (a direct (u, v) record never exists,
    /// but both endpoints usually remember a nearby cell anchor whose
    /// drained ball settled them). O(ways); +infinity when u and v share
    /// no landmark.
    [[nodiscard]] GSP_DECISION_PURE GSP_HOT_PATH Weight via_upper_bound(
        VertexId u, VertexId v) const;

    /// Largest lower bound on d(u, v) still valid at `epoch` (0 when no
    /// tagged entry matches). d(u, v) > threshold is certified iff the
    /// returned value exceeds threshold.
    [[nodiscard]] GSP_DECISION_PURE GSP_HOT_PATH Weight lower_bound_at(
        VertexId u, VertexId v, std::uint64_t epoch) const;

private:
    [[nodiscard]] std::size_t slot(VertexId x, VertexId src) const {
        return static_cast<std::size_t>(x) * ways_ + (src & (ways_ - 1));
    }
    /// Claims slot(x, src) for `src` (deterministic eviction: the newest
    /// source owning a way wins) and returns its index.
    std::size_t slot_for_write(VertexId src, VertexId x);

    std::size_t ways_ = kDefaultWays;
    // SoA slot fields, n * ways_ each, way-indexed by source low bits.
    // src_ is the vector probe's operand; aligned so a way block never
    // splits its first load.
    simd::AlignedVector<VertexId> src_;
    simd::AlignedVector<Weight> ub_;
    GSP_EPOCH_GUARDED simd::AlignedVector<Weight> lo_;
    GSP_EPOCH_GUARDED simd::AlignedVector<std::uint64_t> lo_epoch_;
    const simd::Kernels* simd_ = &simd::auto_kernels();
};

/// Phase-A distance certificates for the speculative accept path: one per
/// source vertex, holding the settled frontier of a drained snapshot ball
/// -- (vertex, exact snapshot distance) for everything within `radius`,
/// with the guarantee that everything absent is *further* than `radius`.
class CertificateStore {
public:
    /// Size for n vertices and clear every certificate (once per run).
    /// `cap` bounds the settled entries one certificate may hold; larger
    /// frontiers are not published (phase B falls back to the exact
    /// query), keeping the store's footprint proportional to the small
    /// balls of accept-heavy phases rather than the big balls of
    /// reject-heavy ones.
    void reset(std::size_t n, std::size_t cap);

    /// Publish the certificate for `source`: the settled set of a drained
    /// snapshot ball of radius `radius`, measured at insertion epoch
    /// `epoch`, scoped to the engine's batch sequence number `scope`
    /// (lazy invalidation -- stale scopes are simply never matched).
    /// Called from stage-2 workers; each source is owned by exactly one
    /// task, so writes are race-free (frontiers keyed by a *target* vertex
    /// are instead buffered per worker and flushed serially after the
    /// join). Returns false (and stores nothing) when the frontier exceeds
    /// the cap, or when a same-scope certificate with radius >= `radius`
    /// is already stored -- keep-larger makes the flushed state
    /// independent of flush order, and a wider certificate serves every
    /// query a narrower one could.
    bool publish(VertexId source, std::uint64_t scope, std::uint64_t epoch, Weight radius,
                 std::span<const std::pair<VertexId, Weight>> settled);

    /// Radius of the certificate stored for `source` under (scope, epoch),
    /// or a negative value when none is. The peek the two-sided repair
    /// combine uses to test rf + rb >= threshold before paying two loads.
    [[nodiscard]] Weight published_radius(VertexId source, std::uint64_t scope,
                                          std::uint64_t epoch) const {
        const Cert& c = certs_[source];
        return (c.scope == scope && c.epoch == epoch) ? c.radius : -1.0;
    }

    /// Activate the certificate of `source` for snapshot-distance queries,
    /// iff one was published under `scope` at `epoch` with radius >=
    /// `radius_needed`. Serial-side only.
    GSP_SERIAL_ONLY bool load(VertexId source, std::uint64_t scope,
                              std::uint64_t epoch, Weight radius_needed);

    /// After a successful load: the exact snapshot distance from the
    /// loaded source to x, or +infinity when x was outside the ball
    /// (equivalently: certified further than the certificate's radius).
    [[nodiscard]] GSP_DECISION_PURE GSP_HOT_PATH Weight snapshot_distance(
        VertexId x) const {
        return lookup_stamp_[x] == lookup_current_ ? lookup_dist_[x] : kInfiniteWeight;
    }

    /// Radius of the loaded certificate.
    [[nodiscard]] Weight loaded_radius() const { return certs_[loaded_].radius; }

    [[nodiscard]] std::size_t cap() const { return cap_; }

    /// Logical bytes of the store and its scope-live settled sets (handoff
    /// accounting) -- a pure function of the current run's publishes, so
    /// warm-session stats match fresh-session stats exactly.
    [[nodiscard]] std::size_t bytes() const;

private:
    struct Cert {
        std::uint64_t scope = 0;  ///< batch sequence the certificate belongs to
        std::uint64_t epoch = 0;  ///< insertion epoch of the snapshot it measured
        Weight radius = 0.0;
        std::vector<std::pair<VertexId, Weight>> settled;
    };

    GSP_EPOCH_GUARDED std::vector<Cert> certs_;  ///< per-source slots, lazily invalidated by scope
    std::size_t cap_ = 0;

    // The activated certificate, expanded into a stamped O(1) lookup
    // table (timestamp reset, like DijkstraWorkspace scratch).
    GSP_EPOCH_GUARDED std::vector<std::uint64_t> lookup_stamp_;
    GSP_EPOCH_GUARDED std::vector<Weight> lookup_dist_;
    std::uint64_t lookup_current_ = 0;
    VertexId loaded_ = kNoVertex;
    std::uint64_t loaded_scope_ = 0;
};

}  // namespace gsp
