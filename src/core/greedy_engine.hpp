// The unified high-throughput greedy kernel.
//
// Every greedy entry point in the library -- greedy_spanner (graph inputs),
// greedy_spanner_metric (all-pairs candidates), the approximate-greedy
// simulation (base-spanner candidates), the WSPD-pair source -- is the same
// loop: examine candidate edges in non-decreasing weight order and keep an
// edge iff the growing spanner's distance between its endpoints exceeds
// t * w(e). The api layer (src/api) turns "where the candidates come from"
// into a CandidateSource plug-in; GreedyEngine runs the loop itself, as an
// explicit three-phase pipeline per weight bucket (batched when parallel):
//
//   [1] candidate stream   (core/candidate_stream) -- materialize the
//       bucket [w, bucket_ratio * w), group its candidates by source
//       (bucket-local indices), and plan batch widths from the predicted
//       accept rate (BatchPlanner);
//   [2] speculative probe  (core/prefilter_stage)  -- fan the groups out to
//       a work-stealing worker pool; each worker owns a DijkstraWorkspace
//       and runs exact probes against the batch-start incremental CSR
//       view, recording sound per-candidate facts in a thin handoff
//       (packed verdict bitsets + a bucket-local bound slot per
//       candidate): permanent witness-bound rejects, and epoch-tagged
//       "far at snapshot" distance certificates. In accept-predicted
//       batches the probes are drained certificate balls whose settled
//       frontiers are published to the CertificateStore -- the phase-A
//       half of the speculative accept path;
//   [3] repair sweep       -- the serialized insertion loop re-walks the
//       batch in deterministic tie order and consumes the recorded facts.
//       A "far" certificate whose epoch is still current accepts
//       outright; one staled by insertions is *repaired* (phase B): only
//       paths entering an edge inserted since the snapshot can have
//       invalidated it, so a bounded probe seeded from those edges'
//       endpoints (at their certified snapshot distances) re-decides the
//       candidate exactly, falling back to the full exact query only when
//       no usable certificate exists.
//
// Because stage-2 facts are sound upper bounds / exact snapshot distances,
// certificate repair is exact (see the repair block in run_impl), and
// stage 3 re-verifies every surviving accept, the edge set is
// bit-identical to the naive kernel at every thread count.
//
// The serial kernel's stacked optimisations (bidirectional, ball_sharing,
// csr_snapshot, bound_sketch -- see core/engine_tuning.hpp) are
// individually toggleable for the ablation benches and *decision
// preserving*: every configuration returns the same edge set.
//
// Resource model: the thread pool, the per-worker workspace pool, and the
// sketch/certificate arenas are the expensive part of an engine. They live
// in an EngineResources, which a GreedyEngine either owns privately (the
// one-shot entry points) or borrows from a SpannerSession (src/api/session)
// that keeps them warm across many build() calls -- the request-serving
// path, where a warm build pays zero pool/workspace construction
// (counter-verified by the session-reuse bench probe).
//
// Callers with scale-dependent side structures (the approximate-greedy
// cluster oracle) hook the bucket boundary via `on_bucket` and may install
// a reject-only `prefilter` (serial) and/or `concurrent_prefilter`
// (consulted from stage-2 workers) before any exact machinery.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/bound_sketch.hpp"
#include "core/candidate_stream.hpp"
#include "core/engine_tuning.hpp"
#include "core/greedy.hpp"
#include "core/prefilter_kernel.hpp"
#include "core/prefilter_stage.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "util/thread_pool.hpp"

namespace gsp {

/// Engine configuration: the shared tuning block (see engine_tuning.hpp)
/// plus the per-run stretch and the caller hooks only this layer can
/// express. Field access is flat (`options.bidirectional`) -- the base
/// class is a layering device, not an indirection.
struct GreedyEngineOptions : EngineTuning {
    double stretch = 2.0;  ///< t >= 1

    /// Optional sound reject-only fast path, consulted first for every
    /// candidate: return true only if a realizable witness path of length
    /// <= threshold is known (e.g. the cluster-graph oracle). Must never
    /// reject a candidate the exact test would keep.
    std::function<bool(VertexId u, VertexId v, Weight threshold)> prefilter;

    /// Concurrent variant of `prefilter` for the parallel stage, invoked as
    /// (worker, u, v, threshold) with worker < num_workers(). Must be safe
    /// to call from distinct workers simultaneously (give each worker its
    /// own scratch, e.g. ClusterGraph::QueryScratch). When unset, the
    /// serial `prefilter` still runs in the insertion loop.
    std::function<bool(std::size_t worker, VertexId u, VertexId v, Weight threshold)>
        concurrent_prefilter;

    /// Economics of the prefilter hooks. ROADMAP measured the cluster
    /// oracle as a ~0.5x *slowdown* under the bidirectional engine, so
    /// installing a prefilter no longer implies trusting it: kAdaptive
    /// times a calibration window (serial path) and gates the prefilter
    /// off for the rest of the run if its per-call cost exceeds the exact
    /// work it saves; kAlways is the explicit opt-in that trusts the hook
    /// unconditionally.
    enum class PrefilterGate { kAdaptive, kAlways };
    PrefilterGate prefilter_gate = PrefilterGate::kAdaptive;

    /// Called on entering each weight bucket, after the spanner reflects
    /// every decision of earlier buckets: rebuild scale-dependent helpers
    /// here. `bucket_lo` is the weight of the bucket's first candidate.
    /// Always invoked from the serial thread, before stage 2 fans out.
    std::function<void(const Graph& h, Weight bucket_lo)> on_bucket;
};

/// The heavy, reusable half of a greedy engine: thread pools (cached per
/// worker count), the serial-loop Dijkstra workspace, the per-worker
/// workspace pool, the sketch/certificate arenas, and every per-run
/// scratch vector. Construction counters certify the warm path: a
/// SpannerSession owns one EngineResources across builds, and repeat
/// builds construct zero pools and zero workspaces.
class EngineResources {
public:
    /// A pool with exactly `workers` workers (>= 2): the cached instance
    /// when one of that size exists, otherwise constructed (and counted)
    /// and kept for the lifetime of the resources. Distinct sizes coexist
    /// so heterogeneous builds in one session each stay warm.
    [[nodiscard]] ThreadPool& acquire_pool(std::size_t workers);

    /// Thread pools constructed through acquire_pool so far.
    [[nodiscard]] std::size_t pools_constructed() const { return pools_constructed_; }

    /// Dijkstra workspaces constructed so far (the serial-loop workspace
    /// plus the per-worker pool's entries).
    [[nodiscard]] std::size_t workspaces_constructed() const {
        return 1 + ws_pool_.created();
    }

    /// The serial insertion-loop workspace; also the reuse vehicle for the
    /// audit/reroute helpers (grown to the largest build, never shrunk).
    [[nodiscard]] DijkstraWorkspace& workspace() { return ws_; }

    /// The per-worker workspace pool (analysis/audit's pool overloads
    /// accept it directly, so audits in a session pay no allocation).
    [[nodiscard]] DijkstraWorkspacePool& workspace_pool() { return ws_pool_; }

private:
    friend class GreedyEngine;

    std::vector<std::unique_ptr<ThreadPool>> pools_;  ///< one per distinct size
    std::size_t pools_constructed_ = 0;

    DijkstraWorkspace ws_;             ///< the insertion loop's workspace
    DijkstraWorkspacePool ws_pool_;    ///< one workspace per stage-2 worker
    PrefilterStage prefilter_stage_;   ///< stage-2 verdict bitsets + counters
    SourceGroups groups_;              ///< stage-1 per-bucket grouping
    BoundSketch sketch_;               ///< cross-bucket bound persistence
    CertificateStore certs_;           ///< phase-A certificates for phase-B repair
    PrefilterKernel prefilter_kernel_; ///< serial-loop group-probe marshalling scratch
    std::vector<RepairSeed> repair_seeds_;    ///< phase-B scratch (forward seeds)
    std::vector<RepairSeed> repair_seeds_b_;  ///< phase-B scratch (backward seeds of the
                                              ///< two-sided combine)

    // Ball-sharing / prefilter scratch, reused across runs. Groups are
    // cleared lazily so a bucket costs O(its candidates), not O(n).
    std::vector<Weight> bound_;              ///< bucket-local candidate upper bounds
    std::vector<std::uint64_t> far_mark_;    ///< bucket-local per-member far epoch (group probes)
    std::vector<std::uint64_t> ball_bucket_; ///< ball-reuse scope (batch seq) per source
    std::vector<std::uint64_t> ball_epoch_;  ///< insert epoch of last ball
    std::vector<Weight> ball_radius_;        ///< radius of last ball
};

/// The shared greedy kernel. `run` may be called repeatedly; with the
/// borrowed-resources constructor the engine itself is a cheap per-build
/// object and every expensive allocation lives in the session.
class GreedyEngine {
public:
    /// Owns a private EngineResources (the one-shot entry points).
    GreedyEngine(std::size_t n, GreedyEngineOptions options);

    /// Borrows `resources` (a SpannerSession's): pools and workspaces are
    /// acquired from the shared cache, so repeat constructions are free.
    /// `resources` must outlive the engine.
    GreedyEngine(std::size_t n, GreedyEngineOptions options, EngineResources& resources);

    /// Run the greedy loop: candidates must be sorted by non-decreasing
    /// weight (the caller fixes tie order -- the engine preserves it).
    /// Decisions are appended to `h`, which carries any pre-seeded edges
    /// (the approximate-greedy E0 set); returns the final spanner.
    /// `*stats` is overwritten with this run's counters (never additive).
    GSP_SERIAL_ONLY Graph run(Graph h, std::span<const GreedyCandidate> candidates,
                              GreedyStats* stats = nullptr);

    /// The linear-space entry point: drain `source` chunk by chunk through
    /// `buffer` (the caller-owned reusable chunk buffer -- a session passes
    /// its materialization buffer) instead of requiring the full sorted
    /// array. The source must honor the CandidateChunkSource ordering
    /// contract (validated as chunks arrive; violations throw). The edge
    /// set is bit-identical to the materializing overload for the same
    /// candidate sequence, at every chunk size and thread count.
    GSP_SERIAL_ONLY Graph run(Graph h, CandidateChunkSource& source,
                              std::vector<GreedyCandidate>& buffer,
                              GreedyStats* stats = nullptr);

    [[nodiscard]] const GreedyEngineOptions& options() const { return options_; }

    /// Resolved worker count (>= 1): what `concurrent_prefilter` will be
    /// called with, and how many scratches a concurrent hook needs.
    [[nodiscard]] std::size_t num_workers() const { return workers_; }

private:
    void init();  ///< shared constructor tail: validation + pool acquisition

    template <class Adapter, class Feed>
    GSP_SERIAL_ONLY Graph run_impl(Adapter& adapter, Graph h, Feed& feed,
                                   GreedyStats& stats);

    [[nodiscard]] bool parallel_enabled() const { return pool_ != nullptr; }

    GreedyEngineOptions options_;
    std::size_t n_;
    std::size_t workers_ = 1;

    std::unique_ptr<EngineResources> owned_;  ///< set by the owning constructor
    EngineResources* res_;                    ///< owned or borrowed
    ThreadPool* pool_ = nullptr;              ///< stage-2 executor (workers_ > 1)
};

/// The kernel table a run with the given SimdBackend knob executes:
/// kScalar pins the reference table, kAuto and kForced both resolve to
/// the widest table the CPU supports (kForced differs only in *intent* --
/// it is the property-test knob asserting "I expect vector lanes", and
/// degrades to scalar gracefully off x86-64). Resolved once per run;
/// every probe, sketch and grid consumer is handed the same table.
[[nodiscard]] const simd::Kernels& resolve_simd_kernels(EngineTuning::SimdBackend backend);

/// The candidate list of a graph input: all edges of g sorted by
/// (weight, min endpoint, max endpoint, edge id) -- the deterministic tie
/// order the naive kernel has always used. The appending form writes into
/// the caller's buffer (the session's reused materialization buffer: no
/// per-build allocation on the warm path); the value form allocates.
void append_sorted_graph_candidates(const Graph& g, std::vector<GreedyCandidate>& out);
std::vector<GreedyCandidate> sorted_graph_candidates(const Graph& g);

#ifndef GSP_NO_DEPRECATED
/// greedy_spanner with explicit engine configuration. Legacy front door:
/// prefer a SpannerSession + BuildOptions (src/api/session.hpp), which
/// reuses the pools and workspaces this wrapper reconstructs per call.
/// `*stats` is zeroed before delegating.
[[deprecated("use SpannerSession::build with BuildOptions (src/api/session.hpp)")]]
Graph greedy_spanner_with(const Graph& g, const GreedyEngineOptions& options,
                          GreedyStats* stats = nullptr);
#endif

}  // namespace gsp
