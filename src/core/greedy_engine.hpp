// The unified high-throughput greedy kernel.
//
// Every greedy entry point in the library -- greedy_spanner (graph inputs),
// greedy_spanner_metric (all-pairs candidates), approx_greedy_spanner (the
// Theorem-6 simulation over a base spanner) -- is the same loop: examine
// candidate edges in non-decreasing weight order and keep an edge iff the
// growing spanner's distance between its endpoints exceeds t * w(e).
// GreedyEngine runs that loop once, with three stacked optimisations that
// are individually toggleable (for the ablation benches) and *decision
// preserving*: every configuration returns the same edge set as the naive
// kernel (one one-sided distance-limited Dijkstra per candidate).
//
//  1. `bidirectional` -- point-to-point queries use two frontiers meeting
//     near limit/2 (DijkstraWorkspace::distance_bidirectional); on
//     bounded-growth instances the settled ball shrinks superlinearly.
//  2. `ball_sharing` -- candidates are processed in weight buckets
//     [w, bucket_ratio * w) and grouped by source vertex; one ball() query
//     from the source answers every candidate of that source, its exact
//     distances are cached as upper bounds (the spanner only grows, so
//     bounds only become stale in the *safe* direction and may reject
//     forever), and a candidate is re-verified only when its cached bound
//     exceeds t * w(e) *and* an insertion occurred since the ball was
//     grown (lazy revalidation). This generalises the Farshi-Gudmundsson
//     n^2 DistanceCache of the metric kernel to sparse candidate sets
//     without the n^2 memory.
//  3. `csr_snapshot` -- shortest-path queries scan a frozen CSR copy of
//     the spanner (rebuilt once per bucket, the spanner grows slowly)
//     chained with a small overlay of intra-bucket insertions, instead of
//     chasing the vector-of-vectors adjacency.
//
// Callers with scale-dependent side structures (the approximate-greedy
// cluster oracle) hook the bucket boundary via `on_bucket` and may install
// a reject-only `prefilter` consulted before any exact machinery.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/greedy.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

/// One candidate edge for the greedy loop.
struct GreedyCandidate {
    VertexId u = kNoVertex;
    VertexId v = kNoVertex;
    Weight weight = 0.0;
};

struct GreedyEngineOptions {
    double stretch = 2.0;  ///< t >= 1

    bool bidirectional = true;  ///< meet-in-the-middle point queries
    bool ball_sharing = true;   ///< per-bucket shared balls + lazy revalidation
    bool csr_snapshot = true;   ///< frozen CSR adjacency per bucket

    /// Geometric ratio of the weight buckets that pace ball sharing, CSR
    /// rebuilds, and `on_bucket` callbacks. Must be > 1.
    double bucket_ratio = 2.0;

    /// Ball sharing decides ball-vs-point adaptively from measured work (a
    /// ball pays off when its touched-vertex count amortizes below the
    /// per-query cost of the group's remaining point queries -- the metric
    /// regime, where one ball answers hundreds of pairs; on expander-like
    /// graphs a full ball costs far more than a meet-in-the-middle query).
    /// Until the first ball of a run calibrates the cost model, a ball is
    /// attempted only for groups with at least this many undecided
    /// candidates.
    std::size_t ball_share_min_group = 16;

    /// Optional sound reject-only fast path, consulted first for every
    /// candidate: return true only if a realizable witness path of length
    /// <= threshold is known (e.g. the cluster-graph oracle). Must never
    /// reject a candidate the exact test would keep.
    std::function<bool(VertexId u, VertexId v, Weight threshold)> prefilter;

    /// Called on entering each weight bucket, after the spanner reflects
    /// every decision of earlier buckets: rebuild scale-dependent helpers
    /// here. `bucket_lo` is the weight of the bucket's first candidate.
    std::function<void(const Graph& h, Weight bucket_lo)> on_bucket;
};

/// The shared greedy kernel. One engine instance holds the reusable query
/// workspace and cache scratch; `run` may be called repeatedly.
class GreedyEngine {
public:
    GreedyEngine(std::size_t n, GreedyEngineOptions options);

    /// Run the greedy loop: candidates must be sorted by non-decreasing
    /// weight (the caller fixes tie order -- the engine preserves it).
    /// Decisions are appended to `h`, which carries any pre-seeded edges
    /// (the approximate-greedy E0 set); returns the final spanner.
    Graph run(Graph h, std::span<const GreedyCandidate> candidates,
              GreedyStats* stats = nullptr);

    [[nodiscard]] const GreedyEngineOptions& options() const { return options_; }

private:
    template <class Adapter>
    Graph run_impl(Adapter& adapter, Graph h, std::span<const GreedyCandidate> candidates,
                   GreedyStats& stats);

    GreedyEngineOptions options_;
    std::size_t n_;

    DijkstraWorkspace ws_;

    // Ball-sharing scratch, reused across runs. `group_` entries are cleared
    // lazily through `group_sources_` so a bucket costs O(its candidates),
    // not O(n).
    std::vector<Weight> cand_bound_;                ///< per-candidate upper bound
    std::vector<std::vector<std::uint32_t>> group_; ///< source -> candidate idxs
    std::vector<VertexId> group_sources_;           ///< sources of current bucket
    std::vector<std::uint64_t> ball_bucket_;        ///< bucket of last ball per source
    std::vector<std::uint64_t> ball_epoch_;         ///< insert epoch of last ball
    std::vector<Weight> ball_radius_;               ///< radius of last ball
    std::vector<std::uint32_t> remaining_;          ///< undecided candidates per source
};

/// The candidate list of a graph input: all edges of g sorted by
/// (weight, min endpoint, max endpoint, edge id) -- the deterministic tie
/// order the naive kernel has always used.
std::vector<GreedyCandidate> sorted_graph_candidates(const Graph& g);

/// greedy_spanner with explicit engine configuration (the plain
/// greedy_spanner(g, t) overload runs the full-featured engine).
Graph greedy_spanner_with(const Graph& g, const GreedyEngineOptions& options,
                          GreedyStats* stats = nullptr);

}  // namespace gsp
