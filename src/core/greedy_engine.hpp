// The unified high-throughput greedy kernel.
//
// Every greedy entry point in the library -- greedy_spanner (graph inputs),
// greedy_spanner_metric (all-pairs candidates), approx_greedy_spanner (the
// Theorem-6 simulation over a base spanner) -- is the same loop: examine
// candidate edges in non-decreasing weight order and keep an edge iff the
// growing spanner's distance between its endpoints exceeds t * w(e).
// GreedyEngine runs that loop once, as an explicit three-phase pipeline per
// weight bucket (batched when parallel):
//
//   [1] candidate stream   (core/candidate_stream) -- materialize the
//       bucket [w, bucket_ratio * w), group its candidates by source
//       (bucket-local indices), and plan batch widths from the predicted
//       accept rate (BatchPlanner);
//   [2] speculative probe  (core/prefilter_stage)  -- fan the groups out to
//       a work-stealing worker pool; each worker owns a DijkstraWorkspace
//       and runs exact probes against the batch-start incremental CSR
//       view, recording sound per-candidate facts in a thin handoff
//       (packed verdict bitsets + a bucket-local bound slot per
//       candidate): permanent witness-bound rejects, and epoch-tagged
//       "far at snapshot" distance certificates. In accept-predicted
//       batches the probes are drained certificate balls whose settled
//       frontiers are published to the CertificateStore -- the phase-A
//       half of the speculative accept path;
//   [3] repair sweep       -- the serialized insertion loop re-walks the
//       batch in deterministic tie order and consumes the recorded facts.
//       A "far" certificate whose epoch is still current accepts
//       outright; one staled by insertions is *repaired* (phase B): only
//       paths entering an edge inserted since the snapshot can have
//       invalidated it, so a bounded probe seeded from those edges'
//       endpoints (at their certified snapshot distances) re-decides the
//       candidate exactly, falling back to the full exact query only when
//       no usable certificate exists.
//
// Because stage-2 facts are sound upper bounds / exact snapshot distances,
// certificate repair is exact (see the repair block in run_impl), and
// stage 3 re-verifies every surviving accept, the edge set is
// bit-identical to the naive kernel at every thread count.
//
// The stacked optimisations of the serial kernel are individually
// toggleable (for the ablation benches) and *decision preserving*:
//
//  1. `bidirectional` -- point-to-point queries use two frontiers meeting
//     near limit/2 (DijkstraWorkspace::distance_bidirectional); on
//     bounded-growth instances the settled ball shrinks superlinearly.
//  2. `ball_sharing` -- candidates are grouped by source vertex; one ball()
//     query from the source answers every candidate of that source, its
//     exact distances are cached as upper bounds (the spanner only grows,
//     so bounds only become stale in the *safe* direction and may reject
//     forever), and a candidate is re-verified only when its cached bound
//     exceeds t * w(e) *and* an insertion occurred since the ball was
//     grown (lazy revalidation). This generalises the Farshi-Gudmundsson
//     n^2 DistanceCache of the metric kernel to sparse candidate sets
//     without the n^2 memory.
//  3. `csr_snapshot` -- shortest-path queries scan the gap-buffered
//     incremental CSR mirror of the spanner (graph/incremental_csr):
//     contiguous per-vertex runs kept exact at O(degree) per insertion,
//     so "re-freezing" between batches is free and only amortized arena
//     compactions ever pay the full O(n + m) rebuild.
//  4. `bound_sketch` -- a compact per-vertex cross-bucket distance sketch
//     (core/bound_sketch) consulted before any Dijkstra probe: persisted
//     witness upper bounds reject forever, epoch-tagged lower bounds
//     accept while no insertion intervened. Recovers the n^2
//     DistanceCache's cross-bucket hit rate on metric inputs in O(n)
//     memory.
//
// Callers with scale-dependent side structures (the approximate-greedy
// cluster oracle) hook the bucket boundary via `on_bucket` and may install
// a reject-only `prefilter` (serial) and/or `concurrent_prefilter`
// (consulted from stage-2 workers) before any exact machinery.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/bound_sketch.hpp"
#include "core/candidate_stream.hpp"
#include "core/greedy.hpp"
#include "core/prefilter_stage.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "util/thread_pool.hpp"

namespace gsp {

struct GreedyEngineOptions {
    double stretch = 2.0;  ///< t >= 1

    bool bidirectional = true;  ///< meet-in-the-middle point queries
    bool ball_sharing = true;   ///< per-bucket shared balls + lazy revalidation
    bool csr_snapshot = true;   ///< incremental gap-buffered CSR adjacency
    bool bound_sketch = true;   ///< cross-bucket per-vertex bound sketch

    /// Worker count for the parallel prefilter stage: 1 = fully serial
    /// (the PR-1 kernel, and the default -- parallelism is opt-in so the
    /// serial entry points keep schedule-free stats), 0 = hardware
    /// concurrency, k = exactly k workers. The edge set is identical at
    /// every value.
    std::size_t num_threads = 1;

    /// Master switch for stage 2. With it off (or num_threads resolving to
    /// 1) buckets flow straight from the candidate stream into the
    /// serialized insertion loop.
    bool parallel_prefilter = true;

    /// Stage-2 batch width: when the parallel stage is active, buckets are
    /// processed in sub-batches of this many candidates; the incremental
    /// view is exact at every batch boundary for free (per-insertion
    /// refresh), so each batch's stage-2 facts are probed against the
    /// freshest possible spanner. A weight bucket can span the whole input
    /// -- uniform-ish weights collapse into one geometric class -- and
    /// without batching every stage-2 fact after the bucket's first
    /// insertion would be computed against a hopelessly stale spanner.
    /// Constant across thread counts, so stage-2 decisions (and stats)
    /// depend only on the input. Ignored when serial.
    std::size_t parallel_batch = 2048;

    /// Accept-rate boundary for stage 2, keyed on the previous batch's
    /// measured accept rate (a pure function of the greedy decisions,
    /// hence identical at every thread count). With speculative_repair
    /// *off*, a batch above the gate skips stage 2 entirely (the PR-2
    /// rule: accept-heavy certificates die on the next insertion, so
    /// probing them was wasted work). With repair *on*, the gate instead
    /// switches stage 2 into certificate mode: accept-predicted batches
    /// grow drained certificate balls whose facts survive insertions via
    /// phase-B repair. 1.0 = never predict accept-heavy.
    double parallel_accept_gate = 0.25;

    /// The speculative two-phase accept path. Phase A (stage 2) records an
    /// epoch-tagged distance certificate for every far-at-snapshot
    /// candidate; phase B (in the insertion loop) repairs certificates
    /// staled by the batch's insertions through a bounded probe seeded at
    /// the inserted endpoints, instead of a full exact re-query. Decisions
    /// are exact either way -- the edge set stays bit-identical at every
    /// thread count. No effect on serial runs.
    bool speculative_repair = true;

    /// Largest settled frontier a phase-A certificate may store (and the
    /// settled-count abort of a certificate-mode ball attempt). A
    /// certificate's value is bounded -- it saves a couple of serial
    /// queries -- while its cost scales with the frontier, so only small
    /// balls are worth certifying; bigger ones abort at bounded cost and
    /// fall back to the exact query when staled. Measured on the n=2^13
    /// expander: cap 4096 lets ~1000-vertex frontiers through and
    /// multiplies the parallel rows' wall clock by 12x; cap 128 keeps
    /// them at parity with repair off while still resolving tens of
    /// thousands of accepts by repair.
    std::size_t repair_cert_cap = 128;

    /// Work budget (heap pushes) of a certificate-mode ball attempt while
    /// the serial point-query cost model is still uncalibrated; once
    /// calibrated, the budget is a few point queries per undecided
    /// candidate of the group instead. On bounded-growth instances the
    /// drained ball stays far below either budget; on expander-like
    /// instances the attempt aborts at bounded cost and the group falls
    /// back to the non-certificate rules. When a certificate-mode batch
    /// aborts more balls than it publishes, certificate mode switches off
    /// for the rest of the run (the accept gate then skips stage 2 for
    /// accept-predicted batches, the PR-2 rule). Aborts and the
    /// switch-off are pure functions of the input -- schedule-free.
    std::size_t repair_ball_fallback_work = 8192;

    /// Insertion budget per batch for the accept-rate batch planner
    /// (candidate_stream's BatchPlanner): accept-predicted batches shrink
    /// so that roughly this many insertions land per batch, bounding how
    /// stale any certificate can get before its repair. Only consulted
    /// when speculative_repair is on; reject-predicted batches stay at
    /// parallel_batch.
    std::size_t parallel_target_accepts = 128;

    /// Bound-sketch associativity: slots per vertex (power of two).
    /// kWays = 4 is PR 3's first cut; bench_micro measures the hit-rate
    /// curve at 2/4/8.
    std::size_t sketch_ways = BoundSketch::kDefaultWays;

    /// Geometric ratio of the weight buckets that pace ball sharing, CSR
    /// rebuilds, and `on_bucket` callbacks. Must be > 1.
    double bucket_ratio = 2.0;

    /// Ball sharing decides ball-vs-point adaptively from measured work (a
    /// ball pays off when its touched-vertex count amortizes below the
    /// per-query cost of the group's remaining point queries -- the metric
    /// regime, where one ball answers hundreds of pairs; on expander-like
    /// graphs a full ball costs far more than a meet-in-the-middle query).
    /// Until the first ball of a run calibrates the cost model, a ball is
    /// attempted only for groups with at least this many undecided
    /// candidates. The parallel prefilter stage uses the same threshold
    /// (statically -- its decisions must not depend on scheduling).
    std::size_t ball_share_min_group = 16;

    /// Optional sound reject-only fast path, consulted first for every
    /// candidate: return true only if a realizable witness path of length
    /// <= threshold is known (e.g. the cluster-graph oracle). Must never
    /// reject a candidate the exact test would keep.
    std::function<bool(VertexId u, VertexId v, Weight threshold)> prefilter;

    /// Concurrent variant of `prefilter` for the parallel stage, invoked as
    /// (worker, u, v, threshold) with worker < num_workers(). Must be safe
    /// to call from distinct workers simultaneously (give each worker its
    /// own scratch, e.g. ClusterGraph::QueryScratch). When unset, the
    /// serial `prefilter` still runs in the insertion loop.
    std::function<bool(std::size_t worker, VertexId u, VertexId v, Weight threshold)>
        concurrent_prefilter;

    /// Economics of the prefilter hooks. ROADMAP measured the cluster
    /// oracle as a ~0.5x *slowdown* under the bidirectional engine, so
    /// installing a prefilter no longer implies trusting it: kAdaptive
    /// times a calibration window (serial path) and gates the prefilter
    /// off for the rest of the run if its per-call cost exceeds the exact
    /// work it saves; kAlways is the explicit opt-in that trusts the hook
    /// unconditionally.
    enum class PrefilterGate { kAdaptive, kAlways };
    PrefilterGate prefilter_gate = PrefilterGate::kAdaptive;

    /// Called on entering each weight bucket, after the spanner reflects
    /// every decision of earlier buckets: rebuild scale-dependent helpers
    /// here. `bucket_lo` is the weight of the bucket's first candidate.
    /// Always invoked from the serial thread, before stage 2 fans out.
    std::function<void(const Graph& h, Weight bucket_lo)> on_bucket;
};

/// The shared greedy kernel. One engine instance holds the reusable query
/// workspaces, the worker pool, and cache scratch; `run` may be called
/// repeatedly.
class GreedyEngine {
public:
    GreedyEngine(std::size_t n, GreedyEngineOptions options);

    /// Run the greedy loop: candidates must be sorted by non-decreasing
    /// weight (the caller fixes tie order -- the engine preserves it).
    /// Decisions are appended to `h`, which carries any pre-seeded edges
    /// (the approximate-greedy E0 set); returns the final spanner.
    Graph run(Graph h, std::span<const GreedyCandidate> candidates,
              GreedyStats* stats = nullptr);

    [[nodiscard]] const GreedyEngineOptions& options() const { return options_; }

    /// Resolved worker count (>= 1): what `concurrent_prefilter` will be
    /// called with, and how many scratches a concurrent hook needs.
    [[nodiscard]] std::size_t num_workers() const { return workers_; }

private:
    template <class Adapter>
    Graph run_impl(Adapter& adapter, Graph h, std::span<const GreedyCandidate> candidates,
                   GreedyStats& stats);

    [[nodiscard]] bool parallel_enabled() const { return pool_ != nullptr; }

    GreedyEngineOptions options_;
    std::size_t n_;
    std::size_t workers_ = 1;

    DijkstraWorkspace ws_;                ///< the insertion loop's workspace
    std::unique_ptr<ThreadPool> pool_;    ///< stage-2 executor (workers_ > 1)
    DijkstraWorkspacePool ws_pool_;       ///< one workspace per stage-2 worker
    PrefilterStage prefilter_stage_;      ///< stage-2 verdict bitsets + counters
    SourceGroups groups_;                 ///< stage-1 per-bucket grouping
    BoundSketch sketch_;                  ///< cross-bucket bound persistence
    CertificateStore certs_;              ///< phase-A certificates for phase-B repair
    std::vector<RepairSeed> repair_seeds_;  ///< phase-B scratch

    // Ball-sharing / prefilter scratch, reused across runs. Groups are
    // cleared lazily so a bucket costs O(its candidates), not O(n).
    std::vector<Weight> bound_;              ///< bucket-local candidate upper bounds
    std::vector<std::uint64_t> ball_bucket_; ///< ball-reuse scope (batch seq) per source
    std::vector<std::uint64_t> ball_epoch_;  ///< insert epoch of last ball
    std::vector<Weight> ball_radius_;        ///< radius of last ball
};

/// The candidate list of a graph input: all edges of g sorted by
/// (weight, min endpoint, max endpoint, edge id) -- the deterministic tie
/// order the naive kernel has always used.
std::vector<GreedyCandidate> sorted_graph_candidates(const Graph& g);

/// greedy_spanner with explicit engine configuration (the plain
/// greedy_spanner(g, t) overload runs the full-featured engine).
Graph greedy_spanner_with(const Graph& g, const GreedyEngineOptions& options,
                          GreedyStats* stats = nullptr);

}  // namespace gsp
