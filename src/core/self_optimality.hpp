// Executable forms of the paper's proof machinery (Sections 3-4).
//
// The existential-optimality argument rests on a few checkable facts:
//   Lemma 3        -- the only t-spanner of the greedy t-spanner is itself;
//   Observation 2  -- the greedy spanner contains an MST of the input;
//   Observation 6  -- MST(M_G) is a spanning tree of G (same MST weight);
//   Lemma 7 / 8    -- any t-spanner of M_H weighs / counts at least as much
//                     as H itself (for t < 2 in the size case);
//   Observation 12 -- w(MST(H')) <= t * w(MST(H)) for any t-spanner H'.
//
// Each function here *verifies* one of these on concrete inputs; the test
// suite and bench_lemma3 drive them over instance distributions.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

/// Lemma 3 (fixpoint form): greedy(greedy(G, t), t) == greedy(G, t)
/// as an edge set.
[[nodiscard]] bool greedy_is_fixpoint(const Graph& g, double t);

/// Lemma 3 (criticality form): ids of spanner edges e = (u, v) for which
/// H - e still t-spans (u, v), i.e. delta_{H-e}(u, v) <= t * w(e).
/// For a greedy spanner this list must be empty: a t-spanner of H that
/// misses e cannot exist, and in particular H - e is not one.
std::vector<EdgeId> removable_edges(const Graph& h, double t);

/// Observation 2: every edge of the (deterministic Kruskal) MST of g is an
/// edge of h, matched by endpoints and weight.
[[nodiscard]] bool contains_kruskal_mst(const Graph& g, const Graph& h);

/// Observation 6 + Observation 2 combined for metrics: the MST weight of
/// the metric M equals the MST weight of the greedy spanner H of M
/// (they share an MST). Returns the absolute difference.
double metric_mst_gap(const MetricSpace& m, const Graph& h);

/// Lemma 7 / Lemma 8 transfer check. Builds M_H (the metric induced by h),
/// computes a t-spanner H' of M_H with the greedy algorithm, and returns
/// the observed (w(H') - w(H), |H'| - |H|): Lemma 7 says the first is
/// >= 0 always; Lemma 8 says the second is >= 0 whenever t < 2.
struct TransferGap {
    double weight_gap = 0.0;  ///< w(H') - w(H)
    long size_gap = 0;        ///< |H'| - |H|
};
TransferGap transfer_gaps(const Graph& h, double t);

/// Observation 12: w(MST(h_prime)) / w(MST(h)). The caller asserts <= t.
double mst_inflation(const Graph& h, const Graph& h_prime);

}  // namespace gsp
