#include "core/greedy_metric.hpp"

#include "api/candidate_source.hpp"
#include "api/session.hpp"

namespace gsp {

namespace {

Graph run_metric(const MetricSpace& m, double t, const EngineTuning& tuning,
                 GreedyStats* stats) {
    // Zero the out-param before any work (never additive, even on throw).
    if (stats != nullptr) *stats = GreedyStats{};
    SpannerSession session;
    BuildOptions options;
    options.stretch = t;
    options.engine = tuning;
    MetricCandidateSource source(m);
    BuildReport report;
    Graph h = session.build(source, options, &report);
    if (stats != nullptr) {
        *stats = report.stats;
        // As the metric kernel always measured: pair enumeration + sort
        // included.
        stats->seconds = report.seconds;
    }
    return h;
}

}  // namespace

Graph greedy_spanner_metric(const MetricSpace& m, double t, GreedyStats* stats) {
    return run_metric(m, t, EngineTuning{}, stats);
}

#ifndef GSP_NO_DEPRECATED
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
Graph greedy_spanner_metric(const MetricSpace& m, const MetricGreedyOptions& options,
                            GreedyStats* stats) {
    // The naive variant is the reference kernel: one one-sided
    // distance-limited Dijkstra per pair. The cached variant is whatever
    // the embedded engine block says (full engine by default).
    const EngineTuning tuning =
        options.use_distance_cache ? options.engine : EngineTuning::naive();
    return run_metric(m, options.stretch, tuning, stats);
}
#pragma GCC diagnostic pop
#endif  // GSP_NO_DEPRECATED

}  // namespace gsp
