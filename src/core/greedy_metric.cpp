#include "core/greedy_metric.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/greedy_engine.hpp"
#include "util/timer.hpp"

namespace gsp {

namespace {

std::vector<GreedyCandidate> sorted_pairs(const MetricSpace& m) {
    const std::size_t n = m.size();
    std::vector<GreedyCandidate> pairs;
    pairs.reserve(n * (n - 1) / 2);
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            pairs.push_back(GreedyCandidate{i, j, m.distance(i, j)});
        }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const GreedyCandidate& a, const GreedyCandidate& b) {
                  return std::tie(a.weight, a.u, a.v) < std::tie(b.weight, b.u, b.v);
              });
    return pairs;
}

}  // namespace

Graph greedy_spanner_metric(const MetricSpace& m, const MetricGreedyOptions& options,
                            GreedyStats* stats) {
    const double t = options.stretch;
    if (t < 1.0) throw std::invalid_argument("greedy_spanner_metric: stretch must be >= 1");
    const std::size_t n = m.size();
    if (n < 2) {
        if (stats != nullptr) *stats = GreedyStats{};
        return Graph(n);
    }

    // The cached variant is the full engine: per-bucket shared balls play
    // the role of the Farshi-Gudmundsson n^2 matrix (upper bounds that only
    // ever improve), without the n^2 memory. The naive variant is the
    // reference kernel: one one-sided distance-limited Dijkstra per pair.
    GreedyEngineOptions engine_options;
    engine_options.stretch = t;
    engine_options.bidirectional = options.use_distance_cache;
    engine_options.ball_sharing = options.use_distance_cache;
    engine_options.csr_snapshot = options.use_distance_cache;
    engine_options.bound_sketch = options.use_distance_cache;
    engine_options.num_threads = options.use_distance_cache ? options.num_threads : 1;
    engine_options.speculative_repair = options.speculative_repair;
    engine_options.sketch_ways = options.sketch_ways;

    const Timer timer;  // include pair enumeration + sort, as before
    const auto pairs = sorted_pairs(m);
    GreedyEngine engine(n, engine_options);
    GreedyStats local;
    Graph h = engine.run(Graph(n), pairs, &local);
    local.seconds = timer.seconds();
    if (stats != nullptr) *stats = local;
    return h;
}

}  // namespace gsp
