#include "core/greedy_metric.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/dijkstra.hpp"
#include "util/timer.hpp"

namespace gsp {

namespace {

struct Pair {
    Weight weight;
    VertexId u;
    VertexId v;
};

std::vector<Pair> sorted_pairs(const MetricSpace& m) {
    const std::size_t n = m.size();
    std::vector<Pair> pairs;
    pairs.reserve(n * (n - 1) / 2);
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            pairs.push_back(Pair{m.distance(i, j), i, j});
        }
    }
    std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
        return std::tie(a.weight, a.u, a.v) < std::tie(b.weight, b.u, b.v);
    });
    return pairs;
}

/// Upper-bound cache on current spanner distances. Entries only decrease;
/// +infinity means "never computed".
class DistanceCache {
public:
    explicit DistanceCache(std::size_t n) : n_(n), data_(n * n, kInfiniteWeight) {
        for (std::size_t i = 0; i < n; ++i) data_[i * n + i] = 0.0;
    }

    [[nodiscard]] Weight get(VertexId a, VertexId b) const { return data_[idx(a, b)]; }

    void lower_to(VertexId a, VertexId b, Weight d) {
        Weight& x = data_[idx(a, b)];
        if (d < x) {
            x = d;
            data_[idx(b, a)] = d;
        }
    }

private:
    [[nodiscard]] std::size_t idx(VertexId a, VertexId b) const {
        return static_cast<std::size_t>(a) * n_ + b;
    }
    std::size_t n_;
    std::vector<Weight> data_;
};

}  // namespace

Graph greedy_spanner_metric(const MetricSpace& m, const MetricGreedyOptions& options,
                            GreedyStats* stats) {
    const double t = options.stretch;
    if (t < 1.0) throw std::invalid_argument("greedy_spanner_metric: stretch must be >= 1");
    const Timer timer;
    const std::size_t n = m.size();

    Graph h(n);
    GreedyStats local;
    if (n >= 2) {
        const auto pairs = sorted_pairs(m);
        DijkstraWorkspace ws(n);

        if (options.use_distance_cache) {
            DistanceCache cache(n);
            for (const Pair& p : pairs) {
                ++local.edges_examined;
                const Weight threshold = t * p.weight;
                if (cache.get(p.u, p.v) <= threshold) continue;  // cached witness path
                // Cached bound too weak: compute the exact ball around u and
                // refresh every distance it certifies.
                ++local.dijkstra_runs;
                const auto& ball = ws.ball(h, p.u, threshold);
                for (const auto& [vertex, dist] : ball) cache.lower_to(p.u, vertex, dist);
                if (cache.get(p.u, p.v) > threshold) {
                    h.add_edge(p.u, p.v, p.weight);
                    ++local.edges_added;
                    cache.lower_to(p.u, p.v, p.weight);
                }
            }
        } else {
            for (const Pair& p : pairs) {
                ++local.edges_examined;
                const Weight threshold = t * p.weight;
                ++local.dijkstra_runs;
                if (ws.distance(h, p.u, p.v, threshold) > threshold) {
                    h.add_edge(p.u, p.v, p.weight);
                    ++local.edges_added;
                }
            }
        }
    }
    local.seconds = timer.seconds();
    if (stats != nullptr) *stats = local;
    return h;
}

}  // namespace gsp
