// Algorithm Approximate-Greedy (paper §5, after [DN97, GLN02]).
//
// Pipeline (faithful to the §5.1 sketch):
//   1. build a bounded-degree base spanner G' of the metric with a stretch
//      budget t_base (theta graph for 2D Euclidean inputs -- the [GLN02]
//      setting -- and the net-tree spanner for general doubling metrics);
//   2. take all "light" edges E0 (weight <= D/n, D = max edge of G') into
//      the output unconditionally -- their total weight is O(MST);
//   3. simulate the greedy algorithm with stretch t_sim over the remaining
//      edges of G' in non-decreasing weight order, bucketed by weight into
//      geometric classes; per bucket, a ClusterGraph of radius
//      O(eps) * (bucket scale) provides a sound *reject-only* fast path
//      (its distances are realizable path lengths, i.e. upper bounds);
//      edges that survive the fast path are decided by an exact
//      distance-limited Dijkstra.
//
// Divergence from [GLN02] (see DESIGN.md §2.3/§6): the original maintains
// its cluster graph incrementally and answers *all* queries approximately;
// we rebuild per bucket and keep exact queries for accepted edges. The
// consequence is the same Lemma-11 gap invariant -- every kept non-E0 edge
// has second-shortest-path weight > t_sim * w(e) -- with a simpler
// soundness story, at the cost of a (measured, small) extra runtime factor.
//
// Output stretch: t_base * t_sim <= 1 + eps by construction of the budgets.
//
// Since the api redesign the pipeline itself lives behind the candidate-
// source seam: api/candidate_source's BaseSpannerCandidateSource builds G',
// seeds E0, and streams the remaining edges into the shared GreedyEngine;
// `approx_greedy_build` (same header) runs it through a SpannerSession.
// This header keeps the algorithm's parameter section, its result struct,
// and the entry points.
#pragma once

#include <cstddef>

#include "core/engine_tuning.hpp"
#include "core/greedy.hpp"
#include "graph/graph.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

/// The approximate-greedy parameter section: what BuildOptions.approx
/// carries in the unified API (engine/parallelism knobs live in the shared
/// EngineTuning block, not here).
struct ApproxParams {
    double epsilon = 0.5;  ///< overall stretch target 1 + epsilon (0 < eps <= 1)

    /// Cones for the 2D Euclidean base spanner; 0 = smallest k whose
    /// *guaranteed* theta-graph stretch meets the base budget. Benches may
    /// override with a practical k (the audit column then certifies the
    /// measured stretch).
    std::size_t theta_cones_override = 0;

    /// Use the ClusterGraph reject-only fast path. Off by default: with the
    /// engine's bidirectional + cached exact path, bench_ablation measures
    /// the per-bucket oracle rebuild as a ~0.5x *slowdown* (it was a win
    /// over the one-sided naive kernel). Opting in arms the engine's
    /// measured-cost gate (GreedyEngineOptions::PrefilterGate::kAdaptive),
    /// which times a calibration window and drops the oracle mid-run if it
    /// is not paying for itself; the output is identical either way.
    bool use_cluster_oracle = false;

    /// Degree cap handed to the net-spanner base (generic metrics only).
    std::size_t net_degree_cap = 64;
};

struct ApproxGreedyResult {
    Graph spanner;              ///< the (1+eps)-spanner of the metric
    Graph base;                 ///< the base spanner G'
    std::size_t light_edges = 0;    ///< |E0|
    std::size_t buckets = 0;        ///< number of weight buckets processed
    std::size_t oracle_rejects = 0; ///< fast-path rejections
    std::size_t exact_queries = 0;  ///< exact Dijkstra decisions
    double t_base = 0.0;            ///< stretch budget given to G'
    double t_sim = 0.0;             ///< stretch used by the greedy simulation
    double seconds_base = 0.0;      ///< wall-clock: base construction
    double seconds_total = 0.0;     ///< wall-clock: whole pipeline
};

/// Run Algorithm Approximate-Greedy with default parameters (one-shot
/// session). For configured or repeated builds use `approx_greedy_build`
/// with a SpannerSession and BuildOptions (api/candidate_source.hpp).
ApproxGreedyResult approx_greedy_spanner(const MetricSpace& m, double epsilon);

#ifndef GSP_NO_DEPRECATED
/// Legacy option struct. The engine/parallelism knobs it used to
/// re-declare (num_threads, bucket_ratio) live in the embedded shared
/// `engine` block now.
struct ApproxGreedyOptions {
    double epsilon = 0.5;
    std::size_t theta_cones_override = 0;
    bool use_cluster_oracle = false;
    std::size_t net_degree_cap = 64;
    EngineTuning engine;  ///< the shared engine block (threads, bucket ratio, ...)
};

/// Legacy front door: prefer approx_greedy_build with a SpannerSession and
/// BuildOptions (api/candidate_source.hpp), which reuses pools and
/// workspaces across builds.
[[deprecated("use approx_greedy_build with a SpannerSession and BuildOptions")]]
ApproxGreedyResult approx_greedy_spanner(const MetricSpace& m,
                                         const ApproxGreedyOptions& options);
#endif  // GSP_NO_DEPRECATED

}  // namespace gsp
