#include "core/candidate_stream.hpp"

#include <stdexcept>

namespace gsp {

bool CandidateStream::next(CandidateBucket& out) {
    if (cursor_ >= candidates_.size()) return false;
    out.begin = cursor_;
    out.lo = candidates_[cursor_].weight;
    out.hi = out.lo * bucket_ratio_;
    std::size_t end = cursor_;
    while (end < candidates_.size() && candidates_[end].weight <= out.hi) ++end;
    out.end = end;
    cursor_ = end;
    return true;
}

bool ChunkedCandidateStream::refill() {
    if (exhausted_) return false;
    base_ = cursor_;
    buffer_->clear();
    if (!source_->next_chunk(soft_cap_, *buffer_) || buffer_->empty()) {
        exhausted_ = true;
        return false;
    }
    Weight prev = last_weight_;
    bool have_prev = have_last_;
    for (const GreedyCandidate& c : *buffer_) {
        if (have_prev && c.weight < prev) {
            throw std::invalid_argument(
                "ChunkedCandidateStream: chunk source emitted candidates out of "
                "non-decreasing weight order");
        }
        prev = c.weight;
        have_prev = true;
    }
    last_weight_ = prev;
    have_last_ = true;
    streamed_ += buffer_->size();
    const std::size_t bytes = buffer_->size() * sizeof(GreedyCandidate);
    if (bytes > peak_bytes_) peak_bytes_ = bytes;
    return true;
}

bool ChunkedCandidateStream::next(CandidateBucket& out) {
    if (cursor_ - base_ >= buffer_->size() && !refill()) return false;
    const std::vector<GreedyCandidate>& buf = *buffer_;
    std::size_t local = cursor_ - base_;
    out.begin = cursor_;
    out.lo = buf[local].weight;
    out.hi = out.lo * bucket_ratio_;
    // A bucket never outlives the resident chunk: a weight class cut by
    // the chunk boundary becomes two buckets, which the engine's
    // decision-preserving bucketing makes harmless.
    while (local < buf.size() && buf[local].weight <= out.hi) ++local;
    out.end = base_ + local;
    cursor_ = out.end;
    return true;
}

void SourceGroups::rebuild(std::span<const GreedyCandidate> candidates,
                           const CandidateBucket& range, std::size_t base,
                           std::size_t num_vertices) {
    if (groups_.size() < num_vertices) {
        groups_.resize(num_vertices);
        remaining_.resize(num_vertices, 0);
    }
    for (VertexId s : sources_) {
        groups_[s].clear();
        remaining_[s] = 0;
    }
    sources_.clear();
    for (std::size_t i = range.begin; i < range.end; ++i) {
        const VertexId u = candidates[i].u;
        if (groups_[u].empty()) sources_.push_back(u);
        groups_[u].push_back(static_cast<std::uint32_t>(i - base));
        ++remaining_[u];
    }
}

}  // namespace gsp
