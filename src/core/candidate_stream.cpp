#include "core/candidate_stream.hpp"

#include <algorithm>
#include <stdexcept>

namespace gsp {

bool CandidateStream::next(CandidateBucket& out) {
    if (cursor_ >= candidates_.size()) return false;
    out.begin = cursor_;
    out.lo = candidates_[cursor_].weight;
    out.hi = out.lo * bucket_ratio_;
    std::size_t end = cursor_;
    while (end < candidates_.size() && candidates_[end].weight <= out.hi) ++end;
    out.end = end;
    cursor_ = end;
    return true;
}

bool ChunkedCandidateStream::refill() {
    if (exhausted_) return false;
    base_ = cursor_;
    buffer_->clear();
    if (!source_->next_chunk(soft_cap_, *buffer_) || buffer_->empty()) {
        exhausted_ = true;
        return false;
    }
    Weight prev = last_weight_;
    bool have_prev = have_last_;
    for (const GreedyCandidate& c : *buffer_) {
        if (have_prev && c.weight < prev) {
            throw std::invalid_argument(
                "ChunkedCandidateStream: chunk source emitted candidates out of "
                "non-decreasing weight order");
        }
        prev = c.weight;
        have_prev = true;
    }
    last_weight_ = prev;
    have_last_ = true;
    streamed_ += buffer_->size();
    const std::size_t bytes = buffer_->size() * sizeof(GreedyCandidate);
    if (bytes > peak_bytes_) peak_bytes_ = bytes;
    return true;
}

bool ChunkedCandidateStream::next(CandidateBucket& out) {
    if (cursor_ - base_ >= buffer_->size() && !refill()) return false;
    const std::vector<GreedyCandidate>& buf = *buffer_;
    std::size_t local = cursor_ - base_;
    out.begin = cursor_;
    out.lo = buf[local].weight;
    out.hi = out.lo * bucket_ratio_;
    // A bucket never outlives the resident chunk: a weight class cut by
    // the chunk boundary becomes two buckets, which the engine's
    // decision-preserving bucketing makes harmless.
    while (local < buf.size() && buf[local].weight <= out.hi) ++local;
    out.end = base_ + local;
    cursor_ = out.end;
    return true;
}

GSP_DECISION_PURE void SourceGroups::rebuild(
    std::span<const GreedyCandidate> candidates,
                           const CandidateBucket& range, std::size_t base,
                           std::size_t num_vertices, bool anchored) {
    if (groups_.size() < num_vertices) {
        groups_.resize(num_vertices);
        remaining_.resize(num_vertices, 0);
        degree_.resize(num_vertices, 0);
        is_hub_.resize(num_vertices, 0);
    }
    for (VertexId s : sources_) {
        groups_[s].clear();
        remaining_[s] = 0;
    }
    sources_.clear();
    max_group_size_ = 0;
    if (anchor_.size() < range.end - base) anchor_.resize(range.end - base);

    if (anchored) {
        // Pass 1: endpoint incidences over the range (lazily cleared
        // through touched_, so the rebuild stays O(range), never O(n)).
        for (VertexId x : touched_) {
            degree_[x] = 0;
            is_hub_[x] = 0;
        }
        touched_.clear();
        for (std::size_t i = range.begin; i < range.end; ++i) {
            const GreedyCandidate& c = candidates[i];
            if (degree_[c.u]++ == 0) touched_.push_back(c.u);
            if (degree_[c.v]++ == 0) touched_.push_back(c.v);
        }
    }

    for (std::size_t i = range.begin; i < range.end; ++i) {
        const GreedyCandidate& c = candidates[i];
        VertexId a = c.u;
        if (anchored) {
            // Pass 2: stick to an existing hub when exactly one endpoint
            // is one; otherwise elect the higher-incidence endpoint
            // (tie: min id) and mark it. The stickiness is what re-merges
            // a grid rep's u-side and v-side candidates into one group.
            const bool hu = is_hub_[c.u] != 0;
            const bool hv = is_hub_[c.v] != 0;
            if (hu != hv) {
                a = hu ? c.u : c.v;
            } else {
                a = degree_[c.v] > degree_[c.u] ? c.v : c.u;
                is_hub_[a] = 1;
            }
        }
        const auto local = static_cast<std::uint32_t>(i - base);
        anchor_[local] = a;
        if (groups_[a].empty()) sources_.push_back(a);
        groups_[a].push_back(local);
        ++remaining_[a];
        max_group_size_ = std::max<std::size_t>(max_group_size_, groups_[a].size());
    }
}

}  // namespace gsp
