#include "core/candidate_stream.hpp"

namespace gsp {

bool CandidateStream::next(CandidateBucket& out) {
    if (cursor_ >= candidates_.size()) return false;
    out.begin = cursor_;
    out.lo = candidates_[cursor_].weight;
    out.hi = out.lo * bucket_ratio_;
    std::size_t end = cursor_;
    while (end < candidates_.size() && candidates_[end].weight <= out.hi) ++end;
    out.end = end;
    cursor_ = end;
    return true;
}

void SourceGroups::rebuild(std::span<const GreedyCandidate> candidates,
                           const CandidateBucket& range, std::size_t base,
                           std::size_t num_vertices) {
    if (groups_.size() < num_vertices) {
        groups_.resize(num_vertices);
        remaining_.resize(num_vertices, 0);
    }
    for (VertexId s : sources_) {
        groups_[s].clear();
        remaining_[s] = 0;
    }
    sources_.clear();
    for (std::size_t i = range.begin; i < range.end; ++i) {
        const VertexId u = candidates[i].u;
        if (groups_[u].empty()) sources_.push_back(u);
        groups_[u].push_back(static_cast<std::uint32_t>(i - base));
        ++remaining_[u];
    }
}

}  // namespace gsp
