// The greedy spanner over a metric space (Sections 4-5 of the paper).
//
// In a metric space the candidate edge set is all n(n-1)/2 pairs. Two
// configurations of the shared GreedyEngine produce one output (they are
// observationally identical):
//
//  * the naive greedy -- one one-sided distance-limited Dijkstra per pair
//    (every engine optimisation off);
//  * the cached greedy -- the full engine: per-bucket shared balls cache
//    spanner distances as upper bounds in the Farshi-Gudmundsson style (the
//    practical variant behind the O(n^2 log n) bound the paper cites as
//    [BCF+10]); the spanner only grows, so a cached bound may reject a pair
//    forever, and only bound-exceeding pairs are re-verified. The engine
//    keeps one bound per candidate pair (8 bytes on top of the 16-byte
//    candidate record the sorted pair list already stores) instead of a
//    separate n x n matrix, and shares its balls only within a weight
//    bucket.
#pragma once

#include "core/bound_sketch.hpp"
#include "core/greedy.hpp"
#include "graph/graph.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

struct MetricGreedyOptions {
    double stretch = 2.0;
    /// Run the full GreedyEngine (FG-style shared-ball cache, bidirectional
    /// queries, incremental CSR, cross-bucket bound sketch). Identical
    /// output, faster. Off = the naive reference kernel.
    bool use_distance_cache = true;
    /// Stage-2 workers for the cached engine (1 = serial, 0 = hardware
    /// concurrency). The edge set is identical at every value.
    std::size_t num_threads = 1;
    /// Speculative two-phase accept path for parallel runs (phase-A
    /// certificate balls + phase-B repair); identical edge set either way.
    bool speculative_repair = true;
    /// Bound-sketch associativity (power of two; slots per vertex).
    std::size_t sketch_ways = BoundSketch::kDefaultWays;
};

/// The greedy t-spanner of the metric m, as a graph over m's points whose
/// edge weights are metric distances.
Graph greedy_spanner_metric(const MetricSpace& m, const MetricGreedyOptions& options,
                            GreedyStats* stats = nullptr);

/// Convenience overload with default options.
inline Graph greedy_spanner_metric(const MetricSpace& m, double t,
                                   GreedyStats* stats = nullptr) {
    return greedy_spanner_metric(m, MetricGreedyOptions{.stretch = t}, stats);
}

}  // namespace gsp
