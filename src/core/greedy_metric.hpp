// The greedy spanner over a metric space (Sections 4-5 of the paper).
//
// In a metric space the candidate edge set is all n(n-1)/2 pairs. Two
// implementations share one output (they are observationally identical):
//
//  * the naive greedy -- one distance-limited Dijkstra per pair;
//  * the Farshi-Gudmundsson cached greedy (the practical variant behind the
//    O(n^2 log n) bound the paper cites as [BCF+10]): the spanner only ever
//    grows, so any previously computed spanner distance is an *upper bound*
//    on the current one. A pair whose cached upper bound already satisfies
//    the stretch test is rejected without running Dijkstra; otherwise one
//    Dijkstra ball is grown and its exact distances refresh the cache.
//
// The cached variant stores an n x n matrix (8 n^2 bytes); instances are
// expected to stay within a few thousand points, which matches the
// experiment envelope in DESIGN.md.
#pragma once

#include "core/greedy.hpp"
#include "graph/graph.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

struct MetricGreedyOptions {
    double stretch = 2.0;
    /// Use the Farshi-Gudmundsson distance cache (identical output, faster).
    bool use_distance_cache = true;
};

/// The greedy t-spanner of the metric m, as a graph over m's points whose
/// edge weights are metric distances.
Graph greedy_spanner_metric(const MetricSpace& m, const MetricGreedyOptions& options,
                            GreedyStats* stats = nullptr);

/// Convenience overload with default options.
inline Graph greedy_spanner_metric(const MetricSpace& m, double t,
                                   GreedyStats* stats = nullptr) {
    return greedy_spanner_metric(m, MetricGreedyOptions{.stretch = t}, stats);
}

}  // namespace gsp
