// The greedy spanner over a metric space (Sections 4-5 of the paper).
//
// In a metric space the candidate edge set is all n(n-1)/2 pairs. Two
// configurations of the shared GreedyEngine produce one output (they are
// observationally identical):
//
//  * the naive greedy -- one one-sided distance-limited Dijkstra per pair
//    (every engine optimisation off; EngineTuning::naive());
//  * the cached greedy -- the full engine: per-bucket shared balls cache
//    spanner distances as upper bounds in the Farshi-Gudmundsson style (the
//    practical variant behind the O(n^2 log n) bound the paper cites as
//    [BCF+10]); the spanner only grows, so a cached bound may reject a pair
//    forever, and only bound-exceeding pairs are re-verified. The engine
//    keeps one bound per candidate pair (8 bytes on top of the 16-byte
//    candidate record the sorted pair list already stores) instead of a
//    separate n x n matrix, and shares its balls only within a weight
//    bucket.
//
// The candidate enumeration itself is the api layer's MetricCandidateSource
// (src/api/candidate_source.hpp); the convenience below is a one-shot
// session over it.
#pragma once

#include "core/engine_tuning.hpp"
#include "core/greedy.hpp"
#include "graph/graph.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

/// The greedy t-spanner of the metric m, as a graph over m's points whose
/// edge weights are metric distances. One-shot convenience (full engine,
/// serial); for configured, parallel, or repeated builds use a
/// SpannerSession with BuildOptions (src/api/session.hpp). `*stats` is
/// zeroed before any work.
Graph greedy_spanner_metric(const MetricSpace& m, double t,
                            GreedyStats* stats = nullptr);

#ifndef GSP_NO_DEPRECATED
/// Legacy option struct. The engine knobs it used to re-declare
/// (num_threads, speculative_repair, sketch_ways) live in the embedded
/// shared `engine` block now -- which also gives the metric path the
/// bound_sketch on/off toggle it historically lacked.
struct MetricGreedyOptions {
    double stretch = 2.0;
    /// Run the full GreedyEngine. Identical output, faster. Off = the
    /// naive reference kernel (overrides the engine block with
    /// EngineTuning::naive()).
    bool use_distance_cache = true;
    EngineTuning engine;  ///< the shared engine block
};

/// Legacy front door: prefer SpannerSession::build over a
/// MetricCandidateSource (or the "greedy-metric" registry entry), which
/// reuses pools and workspaces across builds. `*stats` is zeroed before
/// delegating.
[[deprecated("use SpannerSession::build with BuildOptions (src/api/session.hpp)")]]
Graph greedy_spanner_metric(const MetricSpace& m, const MetricGreedyOptions& options,
                            GreedyStats* stats = nullptr);
#endif  // GSP_NO_DEPRECATED

}  // namespace gsp
