#include "core/greedy_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "graph/csr_view.hpp"
#include "util/timer.hpp"

namespace gsp {

namespace {

/// Queries run directly on the growing Graph (csr_snapshot off).
struct LiveAdapter {
    static constexpr bool kCountsRebuilds = false;
    const Graph* h = nullptr;
    void snapshot(const Graph& g) { h = &g; }
    void add_edge(VertexId, VertexId, Weight, EdgeId) {}
    [[nodiscard]] const Graph& view() const { return *h; }
};

/// Queries run on a per-bucket frozen CSR chained with the intra-bucket
/// insertion overlay (csr_snapshot on) -- exact, but contiguous scans.
struct CsrAdapter {
    static constexpr bool kCountsRebuilds = true;
    CsrOverlayView v;
    void snapshot(const Graph& g) { v.snapshot(g); }
    void add_edge(VertexId a, VertexId b, Weight w, EdgeId id) { v.add_edge(a, b, w, id); }
    [[nodiscard]] const CsrOverlayView& view() const { return v; }
};

}  // namespace

GreedyEngine::GreedyEngine(std::size_t n, GreedyEngineOptions options)
    : options_(std::move(options)), n_(n), ws_(n) {
    if (options_.stretch < 1.0) {
        throw std::invalid_argument("GreedyEngine: stretch must be >= 1");
    }
    if (!(options_.bucket_ratio > 1.0)) {
        throw std::invalid_argument("GreedyEngine: bucket_ratio must be > 1");
    }
}

Graph GreedyEngine::run(Graph h, std::span<const GreedyCandidate> candidates,
                        GreedyStats* stats) {
    const Timer timer;
    if (h.num_vertices() != n_) {
        throw std::invalid_argument("GreedyEngine::run: vertex count mismatch");
    }
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].weight < candidates[i - 1].weight) {
            throw std::invalid_argument(
                "GreedyEngine::run: candidates must be sorted by weight");
        }
    }
    GreedyStats local;
    Graph out(0);
    if (options_.csr_snapshot) {
        CsrAdapter adapter;
        out = run_impl(adapter, std::move(h), candidates, local);
    } else {
        LiveAdapter adapter;
        out = run_impl(adapter, std::move(h), candidates, local);
    }
    local.seconds = timer.seconds();
    if (stats != nullptr) *stats = local;
    return out;
}

template <class Adapter>
Graph GreedyEngine::run_impl(Adapter& adapter, Graph h,
                             std::span<const GreedyCandidate> cands, GreedyStats& stats) {
    const double t = options_.stretch;
    const std::size_t m = cands.size();
    const bool sharing = options_.ball_sharing;
    const std::size_t meets_before = ws_.meet_events();
    ws_.resize(n_);

    if (sharing) {
        cand_bound_.assign(m, kInfiniteWeight);
        group_.resize(n_);
        ball_bucket_.assign(n_, 0);
        ball_epoch_.assign(n_, 0);
        ball_radius_.assign(n_, 0.0);
        remaining_.assign(n_, 0);
    }

    std::uint64_t insert_epoch = 1;  // bumped on every accepted edge
    std::uint64_t bucket_id = 0;

    // Online cost model for the ball-vs-point decision: exponential moving
    // averages of heap pushes per query kind, and of how many candidates a
    // ball actually resolves (its own decision plus the cache hits its
    // harvested bounds will produce). Zero = not yet calibrated this run.
    double ball_cost = 0.0;
    double point_cost = 0.0;
    double ball_value = 0.0;
    const auto update_ema = [](double& ema, double sample) {
        ema = ema == 0.0 ? sample : 0.75 * ema + 0.25 * sample;
    };

    std::size_t k = 0;
    while (k < m) {
        // Bucket [bucket_lo, bucket_ratio * bucket_lo] -- the same boundary
        // rule the approximate-greedy simulation has always used.
        const Weight bucket_lo = cands[k].weight;
        const Weight bucket_hi = bucket_lo * options_.bucket_ratio;
        std::size_t end = k;
        while (end < m && cands[end].weight <= bucket_hi) ++end;
        ++bucket_id;
        ++stats.buckets;

        adapter.snapshot(h);
        if (Adapter::kCountsRebuilds) ++stats.csr_rebuilds;
        if (options_.on_bucket) options_.on_bucket(h, bucket_lo);

        if (sharing) {
            for (VertexId s : group_sources_) {
                group_[s].clear();
                remaining_[s] = 0;
            }
            group_sources_.clear();
            for (std::size_t i = k; i < end; ++i) {
                const VertexId u = cands[i].u;
                if (group_[u].empty()) group_sources_.push_back(u);
                group_[u].push_back(static_cast<std::uint32_t>(i));
                ++remaining_[u];
            }
        }

        for (std::size_t i = k; i < end; ++i) {
            const GreedyCandidate& c = cands[i];
            const Weight threshold = t * c.weight;
            ++stats.edges_examined;
            // This candidate is decided this iteration, whichever path runs.
            if (sharing) --remaining_[c.u];
            if (options_.prefilter && options_.prefilter(c.u, c.v, threshold)) {
                ++stats.prefilter_rejects;
                continue;
            }

            bool accept;
            if (sharing) {
                const std::uint32_t peers = remaining_[c.u];
                if (cand_bound_[i] <= threshold) {
                    // A realizable witness path no heavier than the
                    // threshold is already known; the spanner only grows,
                    // so the bound can only have improved since.
                    ++stats.cache_hits;
                    continue;
                }
                const auto& grp = group_[c.u];
                // Ball-vs-point gate: a ball pays off iff its measured work
                // amortizes below the point-query work of the candidates it
                // realistically resolves (accept-heavy phases make balls
                // near-worthless -- harvested bounds reject nothing).
                // Bootstrap: one ball for a large group calibrates the ball
                // side, then one point query calibrates the other.
                bool want_ball = false;
                if (peers > 0) {
                    if (ball_cost == 0.0) {
                        want_ball = grp.size() >= options_.ball_share_min_group;
                    } else if (point_cost != 0.0) {
                        want_ball = 2.0 * ball_cost <= std::max(ball_value, 1.0) * point_cost;
                    }
                }
                if (ball_bucket_[c.u] == bucket_id && ball_epoch_[c.u] == insert_epoch &&
                    ball_radius_[c.u] >= threshold) {
                    // Lazy revalidation pay-off: the last ball from this
                    // source is still exact (no insertion anywhere since)
                    // and covered this radius, so bound > threshold means
                    // the true distance exceeds the threshold.
                    ++stats.cache_hits;
                    accept = true;
                } else if (want_ball) {
                    // Shared ball: one query answers every candidate of
                    // this source in the bucket (radius covers the
                    // heaviest of them).
                    const Weight radius = t * cands[grp.back()].weight;
                    ++stats.dijkstra_runs;
                    ++stats.balls_computed;
                    (void)ws_.ball(adapter.view(), c.u, radius);
                    update_ema(ball_cost, static_cast<double>(ws_.last_work()));
                    std::size_t resolved = 1;  // this candidate
                    for (std::uint32_t idx : grp) {
                        const Weight d = ws_.settled_distance(cands[idx].v);
                        if (d < cand_bound_[idx]) {
                            cand_bound_[idx] = d;
                            if (idx > i && d <= t * cands[idx].weight) ++resolved;
                        }
                    }
                    update_ema(ball_value, static_cast<double>(resolved));
                    ball_bucket_[c.u] = bucket_id;
                    ball_epoch_[c.u] = insert_epoch;
                    ball_radius_[c.u] = radius;
                    accept = cand_bound_[i] > threshold;
                } else {
                    // Small group: an early-exit point query decides this
                    // candidate, and every label it touched is a realizable
                    // path length -- harvest them as upper bounds for the
                    // source's (and, bidirectionally, the target's) other
                    // candidates in the bucket.
                    ++stats.dijkstra_runs;
                    Weight d;
                    if (options_.bidirectional) {
                        d = ws_.distance_bidirectional(adapter.view(), c.u, c.v, threshold);
                        update_ema(point_cost, static_cast<double>(ws_.last_work()));
                        for (std::uint32_t idx : grp) {
                            if (idx <= i) continue;
                            const Weight b = ws_.last_forward_bound(cands[idx].v);
                            if (b < cand_bound_[idx]) cand_bound_[idx] = b;
                        }
                        for (std::uint32_t idx : group_[c.v]) {
                            if (idx <= i) continue;
                            const Weight b = ws_.last_backward_bound(cands[idx].v);
                            if (b < cand_bound_[idx]) cand_bound_[idx] = b;
                        }
                    } else {
                        d = ws_.distance(adapter.view(), c.u, c.v, threshold);
                        update_ema(point_cost, static_cast<double>(ws_.last_work()));
                        for (std::uint32_t idx : grp) {
                            if (idx <= i) continue;
                            const Weight b = ws_.last_forward_bound(cands[idx].v);
                            if (b < cand_bound_[idx]) cand_bound_[idx] = b;
                        }
                    }
                    accept = d > threshold;
                }
            } else {
                ++stats.dijkstra_runs;
                const Weight d =
                    options_.bidirectional
                        ? ws_.distance_bidirectional(adapter.view(), c.u, c.v, threshold)
                        : ws_.distance(adapter.view(), c.u, c.v, threshold);
                accept = d > threshold;
            }
            if (!accept) continue;

            const EdgeId id = h.add_edge(c.u, c.v, c.weight);
            adapter.add_edge(c.u, c.v, c.weight, id);
            ++stats.edges_added;
            ++insert_epoch;
            if (sharing) {
                // Parallel candidates of the same pair now have a one-edge
                // witness; lower their bounds so they hit the cache.
                for (std::uint32_t idx : group_[c.u]) {
                    if (idx > i && cands[idx].v == c.v && c.weight < cand_bound_[idx]) {
                        cand_bound_[idx] = c.weight;
                    }
                }
                for (std::uint32_t idx : group_[c.v]) {
                    if (idx > i && cands[idx].v == c.u && c.weight < cand_bound_[idx]) {
                        cand_bound_[idx] = c.weight;
                    }
                }
            }
        }
        k = end;
    }
    stats.bidirectional_meets = ws_.meet_events() - meets_before;
    return h;
}

std::vector<GreedyCandidate> sorted_graph_candidates(const Graph& g) {
    std::vector<EdgeId> order(g.num_edges());
    for (EdgeId i = 0; i < g.num_edges(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
        const Edge& ea = g.edge(a);
        const Edge& eb = g.edge(b);
        return std::make_tuple(ea.weight, std::min(ea.u, ea.v), std::max(ea.u, ea.v), a) <
               std::make_tuple(eb.weight, std::min(eb.u, eb.v), std::max(eb.u, eb.v), b);
    });
    std::vector<GreedyCandidate> cands;
    cands.reserve(order.size());
    for (EdgeId id : order) {
        const Edge& e = g.edge(id);
        cands.push_back(GreedyCandidate{e.u, e.v, e.weight});
    }
    return cands;
}

Graph greedy_spanner_with(const Graph& g, const GreedyEngineOptions& options,
                          GreedyStats* stats) {
    const Timer timer;  // include the candidate sort, as the naive kernel did
    GreedyEngine engine(g.num_vertices(), options);
    const auto candidates = sorted_graph_candidates(g);
    GreedyStats local;
    Graph h = engine.run(Graph(g.num_vertices()), candidates, &local);
    local.seconds = timer.seconds();
    if (stats != nullptr) *stats = local;
    return h;
}

}  // namespace gsp
