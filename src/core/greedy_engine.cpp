#include "core/greedy_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "graph/incremental_csr.hpp"
#include "metric/euclidean.hpp"
#include "metric/metric_space.hpp"
#include "util/timer.hpp"

namespace gsp {

const simd::Kernels& resolve_simd_kernels(EngineTuning::SimdBackend backend) {
    switch (backend) {
        case EngineTuning::SimdBackend::kScalar:
            return simd::scalar_kernels();
        case EngineTuning::SimdBackend::kForced:
            return simd::kernels_for(simd::detect());
        case EngineTuning::SimdBackend::kAuto:
            break;
    }
    return simd::auto_kernels();
}

namespace {

/// The goal oracle handed to the group probe: point queries stay virtual
/// calls, but when BatchedProbe asks for a whole frontier's lower bounds
/// at once (its kBatchGoal path) a 2D Euclidean oracle evaluates them
/// through the vector distance kernel. Bitwise-identical to the scalar
/// loop (see EuclideanMetric::distances_from), so engagement decisions
/// and verdicts are unchanged.
struct ProbeGoalOracle {
    const MetricSpace* m = nullptr;
    const EuclideanMetric* e2 = nullptr;  ///< m downcast, when it is Euclidean
    const simd::Kernels* k = nullptr;

    Weight operator()(VertexId x, VertexId tgt) const { return m->distance(x, tgt); }
    void batch(VertexId x, std::span<const VertexId> targets, Weight* out) const {
        if (e2 != nullptr) {
            e2->distances_from(x, targets, out, *k);
        } else {
            for (std::size_t i = 0; i < targets.size(); ++i) {
                out[i] = m->distance(x, targets[i]);
            }
        }
    }
};

/// Reject radius of the anchored (cell-batched) shared ball, as a factor
/// of the group's heaviest candidate weight. A reject's witness path in
/// the dense grid regime has stretch barely above 1, so draining ~1.3x
/// the heaviest weight settles nearly every reject at a fraction of the
/// area the classic full-threshold radius (stretch * w) pays for; the
/// members it leaves unsettled (accepts, high-stretch rejects) fall
/// through to their own goal-directed point probes. Measured optimum on
/// uniform instances: below ~1.2 the fall-through probes dominate, above
/// ~1.4 the extra drained area buys no further decisions.
constexpr double kCellRejectRadiusFactor = 1.3;

/// Queries run directly on the growing Graph (csr_snapshot off). The
/// adapter still keeps the insertion log phase-B repair iterates (the
/// live graph is always fresh, so repair works on either adapter).
struct LiveAdapter {
    const Graph* h = nullptr;
    std::vector<LoggedInsert> log;
    bool log_inserts = false;
    void snapshot(const Graph& g) { h = &g; }
    void add_edge(VertexId a, VertexId b, Weight w, EdgeId) {
        if (log_inserts) log.push_back(LoggedInsert{a, b, w});
    }
    [[nodiscard]] const Graph& view() const { return *h; }
    void set_log_inserts(bool on) {
        log_inserts = on;
        if (!on) log.clear();
    }
    void clear_insert_log() { log.clear(); }
    [[nodiscard]] std::size_t insert_log_size() const { return log.size(); }
    [[nodiscard]] std::span<const LoggedInsert> inserts_since(std::size_t mark) const {
        return {log.data() + mark, log.size() - mark};
    }
    [[nodiscard]] static std::size_t rebuilds() { return 0; }
    [[nodiscard]] static std::size_t compactions() { return 0; }
};

/// Queries run on the gap-buffered incremental CSR mirror (csr_snapshot
/// on): contiguous per-vertex scans, kept exact at O(degree) per insertion
/// -- "snapshots" after the first build are free no-ops, so stage-2
/// certificates never pay a refreeze and accept-heavy batches cost no
/// O(n + m) rebuilds.
struct IncrementalAdapter {
    IncrementalCsrView v;
    void snapshot(const Graph& g) { v.refresh(g); }
    void add_edge(VertexId a, VertexId b, Weight w, EdgeId id) { v.add_edge(a, b, w, id); }
    [[nodiscard]] const IncrementalCsrView& view() const { return v; }
    void set_log_inserts(bool on) { v.set_log_inserts(on); }
    void clear_insert_log() { v.clear_insert_log(); }
    [[nodiscard]] std::size_t insert_log_size() const { return v.insert_log_size(); }
    [[nodiscard]] std::span<const LoggedInsert> inserts_since(std::size_t mark) const {
        return v.inserts_since(mark);
    }
    [[nodiscard]] std::size_t rebuilds() const { return v.rebuilds(); }
    [[nodiscard]] std::size_t compactions() const { return v.compactions(); }
};

/// Measured-cost gate for the prefilter hooks: a calibration window times
/// each (serial) prefilter call and each exact decision of a candidate the
/// prefilter let through, then keeps the prefilter only if the exact work
/// it is expected to save per call exceeds its per-call cost.
struct PrefilterGateState {
    bool live = false;         ///< prefilter hooks still consulted
    bool calibrating = false;  ///< inside the timing window
    std::size_t calls = 0;
    std::size_t rejects = 0;
    std::size_t exact_decisions = 0;
    double prefilter_seconds = 0.0;
    double exact_seconds = 0.0;

    static constexpr std::size_t kWindow = 384;       ///< prefilter-call samples
    static constexpr std::size_t kMinExact = 16;      ///< exact-decision samples
    static constexpr std::size_t kForceSettle = 1536; ///< settle even if starved

    void maybe_settle(GreedyStats& stats) {
        if (calls < kWindow) return;
        if (exact_decisions < kMinExact && calls < kForceSettle) return;
        calibrating = false;
        if (exact_decisions == 0) return;  // everything rejected: clearly paying off
        const double avg_prefilter = prefilter_seconds / static_cast<double>(calls);
        const double avg_exact = exact_seconds / static_cast<double>(exact_decisions);
        const double reject_rate =
            static_cast<double>(rejects) / static_cast<double>(calls);
        // Expected exact seconds saved per call vs seconds spent per call.
        if (avg_prefilter > reject_rate * avg_exact) {
            live = false;
            stats.prefilter_gated_off = 1;
        }
    }
};

/// Stage-1 feed over a fully materialized candidate span: the classic
/// path. streamed()/peak_buffer_bytes() report the whole array -- the
/// honest baseline the chunked feed's counters are compared against.
struct SpanCandidateFeed {
    CandidateStream stream;
    std::span<const GreedyCandidate> all;

    SpanCandidateFeed(std::span<const GreedyCandidate> candidates, double bucket_ratio)
        : stream(candidates, bucket_ratio), all(candidates) {}

    bool next(CandidateBucket& out) { return stream.next(out); }
    [[nodiscard]] std::span<const GreedyCandidate> window(const CandidateBucket& b) const {
        return all.subspan(b.begin, b.size());
    }
    [[nodiscard]] std::size_t streamed() const { return all.size(); }
    [[nodiscard]] std::size_t peak_buffer_bytes() const {
        return all.size() * sizeof(GreedyCandidate);
    }
};

}  // namespace

ThreadPool& EngineResources::acquire_pool(std::size_t workers) {
    for (const auto& pool : pools_) {
        if (pool->num_workers() == workers) return *pool;
    }
    pools_.push_back(std::make_unique<ThreadPool>(workers));
    ++pools_constructed_;
    return *pools_.back();
}

GreedyEngine::GreedyEngine(std::size_t n, GreedyEngineOptions options)
    : options_(std::move(options)), n_(n),
      owned_(std::make_unique<EngineResources>()), res_(owned_.get()) {
    init();
}

GreedyEngine::GreedyEngine(std::size_t n, GreedyEngineOptions options,
                           EngineResources& resources)
    : options_(std::move(options)), n_(n), res_(&resources) {
    init();
}

void GreedyEngine::init() {
    if (options_.stretch < 1.0) {
        throw std::invalid_argument("GreedyEngine: stretch must be >= 1");
    }
    if (!(options_.bucket_ratio > 1.0)) {
        throw std::invalid_argument("GreedyEngine: bucket_ratio must be > 1");
    }
    if (options_.parallel_batch == 0) {
        throw std::invalid_argument("GreedyEngine: parallel_batch must be >= 1");
    }
    if (options_.sketch_ways == 0 ||
        (options_.sketch_ways & (options_.sketch_ways - 1)) != 0) {
        throw std::invalid_argument(
            "GreedyEngine: sketch_ways must be a power of two >= 1");
    }
    if (options_.chunk_soft_cap == 0) {
        throw std::invalid_argument("GreedyEngine: chunk_soft_cap must be >= 1");
    }
    workers_ = options_.parallel_prefilter
                   ? ThreadPool::resolve_workers(options_.num_threads)
                   : 1;
    if (workers_ > 1) {
        pool_ = &res_->acquire_pool(workers_);
        // Worker workspaces are sized lazily by run_impl on first use.
    }
}

GSP_SERIAL_ONLY Graph GreedyEngine::run(Graph h,
                                        std::span<const GreedyCandidate> candidates,
                        GreedyStats* stats) {
    const Timer timer;
    if (h.num_vertices() != n_) {
        throw std::invalid_argument("GreedyEngine::run: vertex count mismatch");
    }
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].weight < candidates[i - 1].weight) {
            throw std::invalid_argument(
                "GreedyEngine::run: candidates must be sorted by weight");
        }
    }
    GreedyStats local;
    SpanCandidateFeed feed(candidates, options_.bucket_ratio);
    Graph out(0);
    if (options_.csr_snapshot) {
        IncrementalAdapter adapter;
        out = run_impl(adapter, std::move(h), feed, local);
    } else {
        LiveAdapter adapter;
        out = run_impl(adapter, std::move(h), feed, local);
    }
    local.seconds = timer.seconds();
    if (stats != nullptr) *stats = local;
    return out;
}

GSP_SERIAL_ONLY Graph GreedyEngine::run(Graph h, CandidateChunkSource& source,
                        std::vector<GreedyCandidate>& buffer, GreedyStats* stats) {
    const Timer timer;
    if (h.num_vertices() != n_) {
        throw std::invalid_argument("GreedyEngine::run: vertex count mismatch");
    }
    // Sortedness is validated incrementally as chunks arrive (the stream
    // throws on a contract violation), including across chunk boundaries.
    GreedyStats local;
    ChunkedCandidateStream feed(source, buffer, options_.bucket_ratio,
                                options_.chunk_soft_cap);
    Graph out(0);
    if (options_.csr_snapshot) {
        IncrementalAdapter adapter;
        out = run_impl(adapter, std::move(h), feed, local);
    } else {
        LiveAdapter adapter;
        out = run_impl(adapter, std::move(h), feed, local);
    }
    local.seconds = timer.seconds();
    if (stats != nullptr) *stats = local;
    return out;
}

template <class Adapter, class Feed>
GSP_SERIAL_ONLY Graph GreedyEngine::run_impl(Adapter& adapter, Graph h, Feed& feed,
                                             GreedyStats& stats) {
    // Every expensive array below lives in the (possibly session-shared)
    // resources; a warm build reuses them all. Per-run state is reset
    // explicitly here, so a run's decisions *and stats* are a pure
    // function of (candidates, options) -- identical whether the
    // resources are fresh or warm (the session-equivalence contract).
    EngineResources& res = *res_;
    DijkstraWorkspace& ws = res.ws_;
    DijkstraWorkspacePool& ws_pool = res.ws_pool_;
    PrefilterStage& prefilter_stage = res.prefilter_stage_;
    SourceGroups& groups = res.groups_;
    BoundSketch& sketch = res.sketch_;
    // gsp-lint: allow(gsp-epoch-guarded) EngineResources::certs_ member,
    CertificateStore& certs = res.certs_;  // not BoundSketch's tagged field
    std::vector<RepairSeed>& repair_seeds = res.repair_seeds_;
    std::vector<RepairSeed>& repair_seeds_b = res.repair_seeds_b_;
    std::vector<Weight>& bound = res.bound_;
    std::vector<std::uint64_t>& far_mark = res.far_mark_;
    std::vector<std::uint64_t>& ball_bucket = res.ball_bucket_;
    std::vector<std::uint64_t>& ball_epoch = res.ball_epoch_;
    std::vector<Weight>& ball_radius = res.ball_radius_;

    const double t = options_.stretch;
    const bool sharing = options_.ball_sharing;
    const bool parallel = parallel_enabled();
    const bool use_sketch = options_.bound_sketch;
    // Cell-batched grouping: anchor each candidate at one endpoint by the
    // two-sided hub heuristic instead of always at u. kAuto means no
    // source opted in (GridCandidateSource flips it to kOn), so it
    // resolves to the classic rule here.
    const bool anchored =
        sharing && options_.cell_batching == EngineTuning::CellBatching::kOn;
    // Multi-target group probes: one bounded traversal per source group
    // carries every member's target and radius (kAuto resolves here like
    // cell_batching -- graph/metric/WSPD sources flip it to kOn). Rides on
    // the group machinery, so sharing is a prerequisite.
    const bool group_probe =
        sharing && options_.group_probing == EngineTuning::GroupProbing::kOn;
    // Bounds are the currency of both ball sharing and the parallel stage.
    const bool track_bounds = sharing || parallel;
    const std::size_t meets_before = ws.meet_events() + ws_pool.total_meet_events();
    ws.resize(n_);
    if (parallel) ws_pool.configure(workers_, n_);

    // Resolve the SIMD backend once and hand every consumer the same
    // kernel table: the serial probe here, the stage-2 workers (via
    // ctx.simd below), and the sketch's way-probe. The tables are
    // bit-exact replacements for each other, so this cannot change a
    // decision -- only how fast the sweeps and relaxations run.
    const simd::Kernels& simd_k = resolve_simd_kernels(options_.simd_backend);
    ws.batched().set_kernels(&simd_k);
    sketch.set_kernels(&simd_k);
    // Goal oracle for the serial group probe, resolved (and downcast)
    // once per run instead of per group.
    const MetricSpace* probe_goal_metric = options_.probe_goal_bound != nullptr
                                               ? options_.probe_goal_bound
                                               : options_.goal_bound;
    const ProbeGoalOracle probe_goal_oracle{
        probe_goal_metric, dynamic_cast<const EuclideanMetric*>(probe_goal_metric),
        &simd_k};

    if (track_bounds) {
        ball_bucket.assign(n_, 0);
        ball_epoch.assign(n_, 0);
        ball_radius.assign(n_, 0.0);
    }
    if (parallel) prefilter_stage.begin_run(workers_);
    if (use_sketch) sketch.reset(n_, options_.sketch_ways);
    // The speculative accept path needs stage 2 (its phase A) to record
    // certificates; serial runs have nothing to repair.
    const bool repair = parallel && options_.speculative_repair;
    if (repair) certs.reset(n_, options_.repair_cert_cap);
    // The insertion log is the phase-B repair feed; runs that never
    // repair must not pay for it.
    adapter.set_log_inserts(repair);
    // Batch widths follow the predicted accept rate when repair is on
    // (accept-heavy batches shrink so certificates stay shallowly stale);
    // the PR-2 fixed width otherwise.
    const BatchPlanner planner(options_.parallel_batch, options_.parallel_target_accepts);
    // Certificate-mode economics: sticky off once a certificate-mode
    // batch aborts more balls than it publishes (expander-like
    // neighborhoods, where the certificates can never pay). A pure
    // function of the greedy decisions -- identical at every thread count.
    bool cert_mode_live = true;

    PrefilterGateState gate;
    const bool have_serial_pf = static_cast<bool>(options_.prefilter);
    const bool have_concurrent_pf =
        parallel && static_cast<bool>(options_.concurrent_prefilter);
    gate.live = have_serial_pf || static_cast<bool>(options_.concurrent_prefilter);
    // kAdaptive calibrates on the *serial* hook's timings, so while the
    // window is open the insertion loop consults the serial prefilter even
    // when a concurrent variant exists; stage 2 takes the oracle over only
    // after it survives calibration. A concurrent-only installation has
    // nothing to time and runs ungated.
    gate.calibrating =
        gate.live && have_serial_pf &&
        options_.prefilter_gate == GreedyEngineOptions::PrefilterGate::kAdaptive;

    std::uint64_t insert_epoch = 1;  // bumped on every accepted edge
    // Ball-reuse scope marker. Balls may only answer candidates whose
    // bounds the ball's harvest actually wrote, and harvests cover one
    // *batch*-scoped group -- so reuse is keyed per batch, not per bucket
    // (a bucket-keyed ball could accept a later batch's tie-weight
    // candidate whose bound was never harvested: unsound). Serial runs
    // have one batch per bucket, so this degenerates to the PR-1 rule.
    std::uint64_t batch_seq = 0;
    // Stage-2 accept-rate gate state: optimistic start (the first batch is
    // prefiltered; probes on a near-empty spanner are near-free).
    double last_accept_rate = 0.0;

    // Cross-bucket sketch recorder (serial-only writer; stage 2 reads
    // the sketch strictly between batches' fan-outs). Accept paths record
    // nothing here: the insertion that follows bumps the epoch and writes
    // the now-exact pair distance, which would overwrite any far record
    // one statement later. (record_far stays in the sketch API for the
    // ROADMAP's incremental certificate repair, where far facts survive.)
    const auto sk_pair_exact = [&](VertexId a, VertexId b, Weight d) {
        if (!use_sketch) return;
        sketch.record_exact(a, b, d, insert_epoch);
        sketch.record_exact(b, a, d, insert_epoch);
    };

    // Online cost model for the ball-vs-point decision: exponential moving
    // averages of heap pushes per query kind, and of how many candidates a
    // ball actually resolves (its own decision plus the cache hits its
    // harvested bounds will produce). Zero = not yet calibrated this run.
    // Owned by the insertion loop: stage-2 ball decisions use the static
    // group-size threshold instead, so they never depend on scheduling.
    double ball_cost = 0.0;
    double point_cost = 0.0;
    double ball_value = 0.0;
    const auto update_ema = [](double& ema, double sample) {
        ema = ema == 0.0 ? sample : 0.75 * ema + 0.25 * sample;
    };

    // --- Stage 1: the candidate feed paces the bucket loop (a sorted
    // span or a chunk-driven stream -- the loop below only ever touches
    // the current bucket's window, addressed bucket-locally). ---
    CandidateBucket bucket;
    while (feed.next(bucket)) {
        ++stats.buckets;
        if (bucket.size() > std::numeric_limits<std::uint32_t>::max()) {
            // Bucket-local indices (bounds, verdict bits, groups) are u32.
            throw std::length_error(
                "GreedyEngine: a single weight bucket exceeds 2^32 candidates; "
                "lower bucket_ratio to split it");
        }
        // The bucket's candidates, addressed from zero: everything below
        // (groups, bounds, verdict bits, the insertion loop) runs in
        // bucket-local coordinates, so it is indifferent to whether the
        // window is a slice of a full array or of a resident chunk.
        const std::span<const GreedyCandidate> bw = feed.window(bucket);
        const CandidateBucket lbucket{0, bucket.size(), bucket.lo, bucket.hi};

        // Synchronize the adjacency view. With the incremental store this
        // is a full build exactly once per run (then a free no-op: the
        // view mirrors every insertion at O(degree) as it happens).
        adapter.snapshot(h);
        if (options_.on_bucket) options_.on_bucket(h, bucket.lo);

        // The thin stage-2 -> stage-3 handoff: one Weight slot and two
        // verdict bits per candidate, all bucket-local. Bounds die with
        // the bucket by design -- cross-bucket persistence is the
        // sketch's job, in O(n) instead of O(m).
        if (track_bounds) bound.assign(bucket.size(), kInfiniteWeight);
        // Per-member far certificates from group probes: the epoch at
        // which a probe certified this member far (0 = never). Unlike the
        // shared ball slot, these survive the probe's early exit shrinking
        // the certified radius below a heavy member's threshold.
        if (group_probe) far_mark.assign(bucket.size(), 0);
        if (parallel) prefilter_stage.begin_bucket(lbucket);
        // Logical footprint, not vector capacities: capacities depend on
        // what earlier (possibly larger) runs left in a warm session, and
        // the handoff counter must be a pure function of this run.
        const std::size_t handoff_bytes =
            (track_bounds ? bound.size() * sizeof(Weight) : 0) +
            (parallel ? prefilter_stage.verdict_bytes() : 0) +
            (repair ? certs.bytes() : 0);
        stats.handoff_peak_bytes = std::max(stats.handoff_peak_bytes, handoff_bytes);

        const auto cand_at = [&](std::uint32_t local) -> const GreedyCandidate& {
            return bw[local];
        };

        // When stage 2 is active, a bucket is consumed in fixed-width
        // batches (uniform-ish weights collapse the whole input into one
        // geometric class, and stage-2 facts probed against a spanner that
        // is thousands of insertions stale are worthless). Serial runs
        // keep the PR-1 shape: one batch == the bucket. Batch boundaries
        // are bucket-local, like every other index from here on.
        std::size_t batch_begin = 0;
        while (batch_begin < lbucket.end) {
        const std::size_t batch_width =
            repair ? planner.next_width(last_accept_rate) : options_.parallel_batch;
        const std::size_t batch_end =
            parallel ? std::min(batch_begin + batch_width, lbucket.end) : lbucket.end;
        const CandidateBucket batch{batch_begin, batch_end, bucket.lo, bucket.hi};
        ++batch_seq;

        // Whether (and how) stage 2 runs is keyed on the previous batch's
        // accept rate, and never during the prefilter gate's calibration
        // window (calibration times the *serial* economics; stage-2 probes
        // would hollow out the exact decisions it measures and
        // double-consult the oracle). Without repair, accept-predicted
        // batches skip stage 2 entirely -- their certificates would die on
        // the first insertion. With repair, they run it in *certificate
        // mode* instead: every group grows a drained snapshot ball whose
        // settled frontier phase B can repair through later insertions.
        // Both decisions are pure functions of the greedy decisions, hence
        // identical at every thread count. The incremental view is exact
        // right now either way -- there is no refreeze to pay, only the
        // probe work itself to gate.
        const bool accept_predicted = last_accept_rate > options_.parallel_accept_gate;
        // Certificates ride on source-group balls, so without ball
        // sharing there is nothing to publish -- accept-predicted batches
        // then skip stage 2 outright (the PR-2 rule) instead of burning
        // probes whose facts die on the first insertion.
        const bool certificate_mode =
            repair && sharing && accept_predicted && cert_mode_live;
        const bool run_stage2 =
            parallel && !gate.calibrating && (!accept_predicted || certificate_mode);
        if (sharing) groups.rebuild(bw, batch, 0, n_, anchored);
        // Group-size-aware bootstrap threshold for the ball-vs-point gate:
        // a stream whose groups never reach ball_share_min_group (grid rep
        // windows are ~s^2 wide) still calibrates the cost model from its
        // first full-size group, instead of staying on point queries for
        // the whole run. The floor of 2 keeps degenerate all-singleton
        // batches from bootstrapping a ball that can amortize nothing.
        const std::size_t bootstrap_min_group =
            sharing ? std::min(options_.ball_share_min_group,
                               std::max<std::size_t>(groups.max_group_size(), 2))
                    : options_.ball_share_min_group;
        const std::uint64_t snapshot_epoch = insert_epoch;
        const std::size_t batch_accepts_before = stats.edges_added;
        // Truncate the repair feed at the snapshot boundary: entries from
        // earlier batches are never read again (marks are per batch), so
        // the log stays O(accepts per batch). The mark is then always 0.
        if (repair) adapter.clear_insert_log();
        const std::size_t batch_log_mark = 0;

        // --- Stage 2: parallel reject-only prefilter over the batch-start
        // view. Everything it records is sound regardless of what stage 3
        // inserts later. ---
        if (run_stage2) {
            PrefilterContext ctx;
            ctx.candidates = bw;
            ctx.batch = batch;
            ctx.base = 0;
            ctx.groups = sharing ? &groups : nullptr;
            ctx.stretch = t;
            ctx.bidirectional = options_.bidirectional;
            ctx.ball_share_min_group = bootstrap_min_group;
            ctx.anchored = anchored;
            ctx.group_probe = group_probe;
            ctx.ball_scope = batch_seq;
            ctx.snapshot_epoch = snapshot_epoch;
            ctx.sketch = use_sketch ? &sketch : nullptr;
            ctx.oracle = (have_concurrent_pf && gate.live && !gate.calibrating)
                             ? &options_.concurrent_prefilter
                             : nullptr;
            ctx.certificates = (repair && sharing) ? &certs : nullptr;
            ctx.certificate_mode = certificate_mode;
            ctx.cert_ball_fallback_work = options_.repair_ball_fallback_work;
            ctx.point_cost_hint = point_cost;
            ctx.cert_ball_cap = options_.repair_cert_cap;
            ctx.simd = &simd_k;
            const std::size_t published_before = stats.certs_published;
            const std::size_t aborts_before = stats.cert_ball_aborts;
            prefilter_stage.run_batch(*pool_, ws_pool, adapter.view(), ctx, bound,
                                      ball_bucket, ball_epoch, ball_radius, stats);
            if (ctx.certificate_mode &&
                stats.cert_ball_aborts - aborts_before >
                    stats.certs_published - published_before) {
                cert_mode_live = false;
            }
        }

        // --- Stage 3: the serialized insertion loop re-walks the batch in
        // deterministic tie order and re-verifies every surviving accept. ---
        for (std::size_t i = batch.begin; i < batch.end; ++i) {
            const GreedyCandidate& c = bw[i];
            const auto li = static_cast<std::uint32_t>(i);
            const Weight threshold = t * c.weight;
            ++stats.edges_examined;
            // The probe endpoint pair: the group anchor (u in classic
            // mode, the hub endpoint in cell-batched mode) and the other
            // endpoint. Distances are symmetric, so every exact path
            // below may run anchor -> target instead of u -> v.
            const VertexId anchor = sharing ? groups.anchor_of(li) : c.u;
            const VertexId target = SourceGroups::other_of(c, anchor);
            // This candidate is decided this iteration, whichever path runs.
            if (sharing) groups.decrement_remaining(anchor);

            if (parallel && prefilter_stage.oracle_reject(i)) {
                ++stats.prefilter_rejects;
                continue;
            }
            if (have_serial_pf && gate.live &&
                (!have_concurrent_pf || gate.calibrating)) {
                bool rejected;
                if (gate.calibrating) {
                    const Timer call_timer;
                    rejected = options_.prefilter(c.u, c.v, threshold);
                    gate.prefilter_seconds += call_timer.seconds();
                    ++gate.calls;
                    if (rejected) ++gate.rejects;
                    gate.maybe_settle(stats);
                } else {
                    rejected = options_.prefilter(c.u, c.v, threshold);
                }
                if (rejected) {
                    ++stats.prefilter_rejects;
                    continue;
                }
            }
            // Calibration samples for the measured-cost gate: the cost of
            // deciding a candidate the prefilter let through (cache hits
            // included -- an oracle reject only saves whatever the decision
            // would actually have cost).
            std::optional<Timer> decide_timer;
            if (gate.calibrating) decide_timer.emplace();
            const auto record_exact = [&] {
                if (decide_timer) {
                    gate.exact_seconds += decide_timer->seconds();
                    ++gate.exact_decisions;
                }
            };

            bool accept = false;
            bool decided = false;
            if (track_bounds && bound[li] <= threshold) {
                // A realizable witness path no heavier than the threshold
                // is already known (harvested serially or by stage 2); the
                // spanner only grows, so the bound can only have improved.
                ++stats.cache_hits;
                if (use_sketch) {
                    // Persist the witness across buckets (upper bounds are
                    // sound forever).
                    sketch.record_upper(c.u, c.v, bound[li]);
                    sketch.record_upper(c.v, c.u, bound[li]);
                }
                record_exact();
                continue;
            }
            if (use_sketch && sketch.upper_bound(c.u, c.v) <= threshold) {
                // Cross-bucket cache hit: an earlier bucket's exact query
                // already certified a witness path for this pair.
                ++stats.sketch_hits;
                record_exact();
                continue;
            }
            if (use_sketch) {
                // Coarse-bound fast reject: even when neither endpoint
                // remembers the other (a grid stream emits each pair
                // exactly once, so the direct consult above never hits),
                // both may remember a common landmark -- typically a cell
                // anchor whose drained ball settled them. Concatenating
                // the two witness paths through the landmark is a sound
                // upper bound; within the threshold it rejects with zero
                // graph work, spending the stretch slack the grid banks
                // (t >= the emitted weight's slack keeps such two-leg
                // witnesses plentiful for far reps).
                const Weight via = sketch.via_upper_bound(c.u, c.v);
                if (via <= threshold) {
                    ++stats.coarse_rejects;
                    sketch.record_upper(c.u, c.v, via);
                    sketch.record_upper(c.v, c.u, via);
                    record_exact();
                    continue;
                }
            }
            if (parallel && prefilter_stage.far_at_snapshot(i)) {
                if (insert_epoch == snapshot_epoch) {
                    // The stage-2 probe was exact on the batch-start view
                    // and nothing has been inserted since: the certificate
                    // stands.
                    ++stats.snapshot_accepts;
                    accept = true;
                    decided = true;
                } else if (repair &&
                           certs.load(anchor, batch_seq, snapshot_epoch, threshold)) {
                    // Phase B: certificate repair. The certificate proved
                    // d(u, v) > threshold on the batch-start snapshot via a
                    // drained ball, so any <= threshold path in the current
                    // spanner must *enter* an edge inserted since -- and the
                    // snapshot-only prefix up to that first inserted edge
                    // must end inside the certified ball. Seed a bounded
                    // probe at each inserted endpoint with (certified
                    // snapshot distance + edge weight): every seed is a
                    // realizable current path length (never too low), and
                    // the first-inserted-edge decomposition of any shortest
                    // improving path is dominated by some seed (never too
                    // high), so the probe re-decides the candidate exactly.
                    // No seeds at all means no insertion can have touched
                    // the ball: the certificate stands with zero graph work.
                    repair_seeds.clear();
                    for (const LoggedInsert& e : adapter.inserts_since(batch_log_mark)) {
                        const Weight via_u = certs.snapshot_distance(e.u) + e.weight;
                        if (via_u <= threshold) repair_seeds.push_back({e.v, via_u});
                        const Weight via_v = certs.snapshot_distance(e.v) + e.weight;
                        if (via_v <= threshold) repair_seeds.push_back({e.u, via_v});
                    }
                    ++stats.repairs;
                    if (repair_seeds.empty()) {
                        accept = true;
                    } else {
                        ++stats.repair_reprobes;
                        ++stats.dijkstra_runs;
                        const Weight d = ws.distance_seeded(adapter.view(), repair_seeds,
                                                            target, threshold);
                        // d is the exact current distance when it beats the
                        // threshold (the snapshot side already exceeded it).
                        accept = d > threshold;
                        if (!accept) sk_pair_exact(c.u, c.v, d);
                    }
                    decided = true;
                } else if (repair &&
                           certs.load(target, batch_seq, snapshot_epoch, threshold)) {
                    // Mirror image: the *target's* certificate covers the
                    // threshold (published when the target anchored another
                    // group of the batch). Distances are symmetric, so the
                    // same first-inserted-edge decomposition applies with
                    // the roles swapped: seed at the certified snapshot
                    // distances from the target and probe toward the anchor.
                    repair_seeds.clear();
                    for (const LoggedInsert& e : adapter.inserts_since(batch_log_mark)) {
                        const Weight via_u = certs.snapshot_distance(e.u) + e.weight;
                        if (via_u <= threshold) repair_seeds.push_back({e.v, via_u});
                        const Weight via_v = certs.snapshot_distance(e.v) + e.weight;
                        if (via_v <= threshold) repair_seeds.push_back({e.u, via_v});
                    }
                    ++stats.repairs;
                    if (repair_seeds.empty()) {
                        accept = true;
                    } else {
                        ++stats.repair_reprobes;
                        ++stats.dijkstra_runs;
                        const Weight d = ws.distance_seeded(adapter.view(), repair_seeds,
                                                            anchor, threshold);
                        accept = d > threshold;
                        if (!accept) sk_pair_exact(c.u, c.v, d);
                    }
                    decided = true;
                } else if (repair) {
                    const Weight rf =
                        certs.published_radius(anchor, batch_seq, snapshot_epoch);
                    const Weight rb =
                        certs.published_radius(target, batch_seq, snapshot_epoch);
                    if (rf >= 0.0 && rb >= 0.0 &&
                        threshold <= std::nextafter(rf + rb, 0.0)) {
                        // Two-sided combine: neither frontier alone covers
                        // the threshold, but together they do (strictly --
                        // the one-ulp guard makes the float sum safe). Any
                        // current improving path either *enters* its first
                        // inserted edge within rf of the anchor (the
                        // forward-seeded probe re-measures it) or *exits*
                        // its last inserted edge within rb of the target
                        // (the backward-seeded probe does) -- otherwise its
                        // pure-snapshot prefix and suffix alone sum past
                        // rf + rb > threshold. Each probe result is a
                        // realizable current path length, so the min
                        // re-decides the candidate exactly; two empty seed
                        // sets mean no insertion touched either frontier
                        // and the certificate stands with zero graph work.
                        repair_seeds.clear();
                        certs.load(anchor, batch_seq, snapshot_epoch, 0.0);
                        for (const LoggedInsert& e :
                             adapter.inserts_since(batch_log_mark)) {
                            const Weight via_u = certs.snapshot_distance(e.u) + e.weight;
                            if (via_u <= threshold) repair_seeds.push_back({e.v, via_u});
                            const Weight via_v = certs.snapshot_distance(e.v) + e.weight;
                            if (via_v <= threshold) repair_seeds.push_back({e.u, via_v});
                        }
                        repair_seeds_b.clear();
                        certs.load(target, batch_seq, snapshot_epoch, 0.0);
                        for (const LoggedInsert& e :
                             adapter.inserts_since(batch_log_mark)) {
                            const Weight via_u = certs.snapshot_distance(e.u) + e.weight;
                            if (via_u <= threshold) repair_seeds_b.push_back({e.v, via_u});
                            const Weight via_v = certs.snapshot_distance(e.v) + e.weight;
                            if (via_v <= threshold) repair_seeds_b.push_back({e.u, via_v});
                        }
                        ++stats.repairs;
                        ++stats.certs_two_sided;
                        Weight d = kInfiniteWeight;
                        if (!repair_seeds.empty() || !repair_seeds_b.empty()) {
                            ++stats.repair_reprobes;
                            if (!repair_seeds.empty()) {
                                ++stats.dijkstra_runs;
                                d = ws.distance_seeded(adapter.view(), repair_seeds,
                                                       target, threshold);
                            }
                            if (!repair_seeds_b.empty()) {
                                ++stats.dijkstra_runs;
                                d = std::min(
                                    d, ws.distance_seeded(adapter.view(), repair_seeds_b,
                                                          anchor, threshold));
                            }
                        }
                        accept = d > threshold;
                        if (!accept) sk_pair_exact(c.u, c.v, d);
                        decided = true;
                    } else {
                        // Tentative accept with no usable certificate (point
                        // probe, sketch-decided, or over-cap frontier): the
                        // exact machinery below re-decides it.
                        ++stats.repair_fallbacks;
                    }
                }
            }
            if (decided) {
            } else if (group_probe && far_mark[li] == insert_epoch) {
                // A group probe certified this member far on the current
                // view and nothing was inserted since: d(u, v) > threshold
                // stands. The per-member twin of the shared-ball lazy
                // revalidation below -- and immune to an early exit having
                // shrunk the probe's certified radius under this member's
                // threshold.
                ++stats.cache_hits;
                accept = true;
            } else if (use_sketch &&
                       sketch.lower_bound_at(c.u, c.v, insert_epoch) > threshold) {
                // Epoch-valid sketch lower bound: the pair was measured
                // farther than the threshold and nothing was inserted
                // since -- accept without any probe.
                ++stats.sketch_accepts;
                accept = true;
            } else if (sharing) {
                const std::uint32_t peers = groups.remaining(anchor);
                const auto& grp = groups.of(anchor);
                // Ball-vs-point gate: a ball pays off iff its measured work
                // amortizes below the point-query work of the candidates it
                // realistically resolves (accept-heavy phases make balls
                // near-worthless -- harvested bounds reject nothing).
                // Bootstrap: one ball for the batch's largest group class
                // calibrates the ball side, then one point query
                // calibrates the other.
                bool want_ball = false;
                if (peers > 0) {
                    if (anchored) {
                        // Cell-batched rule: one drained ball per cell per
                        // window, structurally. Its value is mostly
                        // *outside* the group -- the settled frontier
                        // persists in the sketch, so the anchor's later
                        // batches hit the direct consult and neighboring
                        // cells' candidates hit the via-landmark reject --
                        // which per-group cost accounting cannot see. The
                        // previous batch's accept rate vetoes accept-heavy
                        // phases instead (the stage-2 gate's signal, kept
                        // fresh for serial runs too): there, harvests
                        // resolve nearly nothing and every insertion
                        // stales the sketch facts the ball just paid for.
                        // At most one drained ball per anchor per batch:
                        // its harvested bounds are upper bounds -- sound
                        // forever -- so the group's rejects stay decided
                        // across the batch's insertions, and the few
                        // members an insertion un-certifies (the accept
                        // side needs the epoch) are exactly the ones a
                        // cheap early-exit point query handles best.
                        // Re-draining after every accept is what epoch
                        // invalidation would otherwise cost.
                        want_ball = grp.size() >= std::min<std::size_t>(
                                                      bootstrap_min_group, 4) &&
                                    last_accept_rate <= options_.parallel_accept_gate &&
                                    ball_bucket[anchor] != batch_seq;
                    } else if (ball_cost == 0.0) {
                        want_ball = grp.size() >= bootstrap_min_group;
                    } else if (point_cost != 0.0) {
                        want_ball = 2.0 * ball_cost <= std::max(ball_value, 1.0) * point_cost;
                    }
                }
                if (ball_bucket[anchor] == batch_seq && ball_epoch[anchor] == insert_epoch &&
                    ball_radius[anchor] >= threshold) {
                    // Lazy revalidation pay-off: the last ball from this
                    // anchor (grown serially or by stage 2) is still exact
                    // -- no insertion anywhere since -- and covered this
                    // radius, so bound > threshold means the true distance
                    // exceeds the threshold.
                    ++stats.cache_hits;
                    if (anchored) ++stats.cell_ball_decisions;
                    accept = true;
                } else {
                    bool need_point = !want_ball;
                    if (want_ball && group_probe && !anchored &&
                        last_accept_rate <= options_.parallel_accept_gate) {
                        // Multi-target group probe: one bounded traversal
                        // carries every undecided member's target and
                        // decision radius, settles targets as the frontier
                        // reaches them, and stops the moment the last is
                        // decided or the frontier passes the largest
                        // undecided bound -- the serial twin of the
                        // stage-2 kernel path, replacing the classic
                        // full-radius drained ball. Settled members land
                        // as exact bounds (cache-hit rejects when their
                        // turn comes); far members ride the published
                        // certified-radius ball slot, accepting by the
                        // same lazy revalidation a classic ball backs --
                        // at a fraction of its drained area. A member
                        // whose threshold outruns the certified radius
                        // (possible after early termination) simply fails
                        // revalidation and falls through to the exact
                        // machinery: cost, never correctness.
                        //
                        // The accept-rate veto mirrors the cell-batched
                        // rule above: in accept-heavy phases every
                        // insertion stales the far certificates the probe
                        // just paid for, so the group gets re-probed per
                        // accept while the bidirectional point query (two
                        // meet-in-the-middle half-balls plus a two-sided
                        // harvest) decides each member outright.
                        BatchedProbe& probe = ws.batched();
                        bool li_far = false;
                        const auto is_undecided = [&](std::uint32_t local) {
                            return local == li ||
                                   (local > li &&
                                    bound[local] > t * cand_at(local).weight);
                        };
                        const auto mark_far = [&](std::uint32_t local) {
                            far_mark[local] = insert_epoch;
                            if (local == li) li_far = true;
                        };
                        // With a metric oracle at hand the probe goes
                        // goal-directed once few targets remain undecided
                        // -- the accept-side tail, where the classic drain
                        // spends most of its area (verdicts unchanged; see
                        // BatchedProbe's header note).
                        const PrefilterKernel::Outcome outcome =
                            probe_goal_metric != nullptr
                                ? res.prefilter_kernel_.decide_group(
                                      probe, adapter.view(), anchor, bw, 0, grp,
                                      t, is_undecided, bound, mark_far,
                                      kInfiniteWeight, probe_goal_oracle)
                                : res.prefilter_kernel_.decide_group(
                                      probe, adapter.view(), anchor, bw, 0, grp,
                                      t, is_undecided, bound, mark_far);
                        ++stats.dijkstra_runs;
                        ++stats.balls_computed;
                        ++stats.group_probes;
                        stats.group_probe_decisions += outcome.probed;
                        if (outcome.early_exit) ++stats.group_probe_early_exits;
                        update_ema(ball_cost, static_cast<double>(probe.last_work()));
                        // Value accounting mirrors the classic ball's
                        // `resolved` (settled rejects only) so the two
                        // paths bid against the point query on equal
                        // terms: counting far members or cap
                        // fall-throughs as value inflates the EMA and
                        // flips the gate toward probes on inputs where
                        // per-candidate queries genuinely win.
                        const std::size_t resolved =
                            outcome.probed - outcome.far_members -
                            outcome.undecided_members;
                        update_ema(ball_value, static_cast<double>(
                                                   std::max<std::size_t>(resolved, 1)));
                        if (use_sketch) {
                            // Same cross-bucket harvest as a drained ball's,
                            // except goal pruning bounds the exact claim:
                            // settles past the engagement distance may have
                            // had a shorter path pruned, so they land as
                            // upper bounds (sound rejects, no lower-bound
                            // accepts). Settle order is nondecreasing, so
                            // the exact prefix is a prefix.
                            const Weight exact_r = probe.settled_exact_radius();
                            for (const auto& [x, d] : probe.settled()) {
                                if (x == anchor) continue;
                                if (d <= exact_r) {
                                    sketch.record_exact(anchor, x, d, insert_epoch);
                                } else {
                                    sketch.record_upper(anchor, x, d);
                                }
                            }
                        }
                        ball_bucket[anchor] = batch_seq;
                        ball_epoch[anchor] = insert_epoch;
                        ball_radius[anchor] = outcome.certified_radius;
                        if (bound[li] <= threshold) {
                            accept = false;  // settled (or salvaged) witness
                        } else if (li_far) {
                            accept = true;  // certified far at this view
                        } else {
                            // The cap left li undecided: probe it directly.
                            need_point = true;
                        }
                    } else if (want_ball) {
                        // Shared ball: one query answers every candidate of
                        // this anchor in the batch. The classic radius covers
                        // the heaviest member's threshold, so unsettled means
                        // far for the whole group -- but Dijkstra cost grows
                        // with radius^2, and in the reject-heavy regime a
                        // reject's witness path barely exceeds its weight. The
                        // anchored (cell-batched) ball therefore drains only a
                        // *reject radius*: enough to settle the typical
                        // witness for every member, with no clamp up to the
                        // current candidate's threshold -- when the shave
                        // leaves li itself unsettled below its threshold, li
                        // is simply undecided and falls through to its own
                        // goal-directed probe below. Cost, never correctness:
                        // a settled bound is an exact witness either way.
                        const Weight w_top = cand_at(grp.back()).weight;
                        const Weight radius =
                            anchored ? kCellRejectRadiusFactor * w_top : t * w_top;
                        ++stats.dijkstra_runs;
                        ++stats.balls_computed;
                        if (anchored) ++stats.cell_balls;
                        const auto& settled = ws.ball(adapter.view(), anchor, radius);
                        update_ema(ball_cost, static_cast<double>(ws.last_work()));
                        if (use_sketch) {
                            // The settled set is exact at this epoch: the
                            // cross-bucket harvest that recovers the n^2
                            // DistanceCache's hit rate in O(n) memory (and, on
                            // streams that emit each pair once, feeds the
                            // via-landmark coarse reject -- the anchor is the
                            // landmark). Each record is a random write into
                            // the O(n)-sized slot table, so the harvest is
                            // DRAM-bound: in anchored mode only the near half
                            // of the frontier is recorded -- a via reject
                            // concatenates two *short* legs through a shared
                            // anchor, so the far half buys almost no rejects
                            // at the same per-record cost. Settle order is
                            // nondecreasing distance: the cap is a prefix.
                            const Weight record_cap =
                                anchored ? 0.5 * radius : kInfiniteWeight;
                            for (const auto& [x, d] : settled) {
                                if (d > record_cap) break;
                                if (x != anchor) sketch.record_exact(anchor, x, d, insert_epoch);
                            }
                        }
                        std::size_t resolved = 1;  // this candidate
                        for (std::uint32_t idx : grp) {
                            const Weight d =
                                ws.settled_distance(SourceGroups::other_of(cand_at(idx), anchor));
                            if (d < bound[idx]) {
                                bound[idx] = d;
                                if (idx > li && d <= t * cand_at(idx).weight) ++resolved;
                            }
                        }
                        update_ema(ball_value, static_cast<double>(resolved));
                        if (anchored) stats.cell_ball_decisions += resolved;
                        ball_bucket[anchor] = batch_seq;
                        ball_epoch[anchor] = insert_epoch;
                        ball_radius[anchor] = radius;
                        if (bound[li] <= threshold) {
                            accept = false;  // exact witness settled by a ball
                        } else if (radius >= threshold) {
                            accept = true;  // unsettled at a covering radius: far
                        } else {
                            // The reject-radius shave left li unsettled below
                            // its own threshold: undecided, probe it directly.
                            need_point = true;
                        }
                    }
                    if (need_point) {
                        // Small group (or a ball-undecided member): an
                        // early-exit point query decides this candidate, and
                        // every label it touched is a realizable path length --
                        // harvest them as upper bounds for the anchor's (and,
                        // bidirectionally, the target's) other candidates in
                        // the bucket.
                        ++stats.dijkstra_runs;
                        Weight d;
                        if (options_.goal_bound != nullptr) {
                            // Goal-directed probe: the metric oracle focuses the
                            // sweep into the pair's ellipse. One-sided, so only
                            // the forward labels are harvestable.
                            const MetricSpace& lb = *options_.goal_bound;
                            d = ws.distance_goal_directed(
                                adapter.view(), anchor, target, threshold,
                                [&lb, target](VertexId x) { return lb.distance(x, target); });
                            update_ema(point_cost, static_cast<double>(ws.last_work()));
                            for (std::uint32_t idx : grp) {
                                if (idx <= li) continue;
                                const Weight b = ws.last_forward_bound(
                                    SourceGroups::other_of(cand_at(idx), anchor));
                                if (b < bound[idx]) bound[idx] = b;
                            }
                        } else if (options_.bidirectional) {
                            d = ws.distance_bidirectional(adapter.view(), anchor, target, threshold);
                            update_ema(point_cost, static_cast<double>(ws.last_work()));
                            for (std::uint32_t idx : grp) {
                                if (idx <= li) continue;
                                const Weight b = ws.last_forward_bound(
                                    SourceGroups::other_of(cand_at(idx), anchor));
                                if (b < bound[idx]) bound[idx] = b;
                            }
                            for (std::uint32_t idx : groups.of(target)) {
                                if (idx <= li) continue;
                                const Weight b = ws.last_backward_bound(
                                    SourceGroups::other_of(cand_at(idx), target));
                                if (b < bound[idx]) bound[idx] = b;
                            }
                        } else {
                            d = ws.distance(adapter.view(), anchor, target, threshold);
                            update_ema(point_cost, static_cast<double>(ws.last_work()));
                            for (std::uint32_t idx : grp) {
                                if (idx <= li) continue;
                                const Weight b = ws.last_forward_bound(
                                    SourceGroups::other_of(cand_at(idx), anchor));
                                if (b < bound[idx]) bound[idx] = b;
                            }
                        }
                        accept = d > threshold;
                        if (!accept) sk_pair_exact(c.u, c.v, d);
                    }
                }
            } else {
                ++stats.dijkstra_runs;
                Weight d;
                if (options_.goal_bound != nullptr) {
                    const MetricSpace& lb = *options_.goal_bound;
                    d = ws.distance_goal_directed(
                        adapter.view(), c.u, c.v, threshold,
                        [&lb, v = c.v](VertexId x) { return lb.distance(x, v); });
                } else if (options_.bidirectional) {
                    d = ws.distance_bidirectional(adapter.view(), c.u, c.v, threshold);
                } else {
                    d = ws.distance(adapter.view(), c.u, c.v, threshold);
                }
                accept = d > threshold;
                if (!accept) sk_pair_exact(c.u, c.v, d);
            }
            record_exact();
            if (!accept) continue;

            const EdgeId id = h.add_edge(c.u, c.v, c.weight);
            adapter.add_edge(c.u, c.v, c.weight, id);
            ++stats.edges_added;
            ++insert_epoch;
            // The accepted edge is now the shortest u-v path (any older
            // path exceeded t * w >= w), exact at the new epoch.
            sk_pair_exact(c.u, c.v, c.weight);
            if (sharing) {
                // Parallel candidates of the same pair now have a one-edge
                // witness; lower their bounds so they hit the cache. A
                // duplicate is always anchored at one of its own
                // endpoints, so the two groups below cover every copy.
                for (std::uint32_t idx : groups.of(c.u)) {
                    if (idx > li && SourceGroups::other_of(cand_at(idx), c.u) == c.v &&
                        c.weight < bound[idx]) {
                        bound[idx] = c.weight;
                    }
                }
                for (std::uint32_t idx : groups.of(c.v)) {
                    if (idx > li && SourceGroups::other_of(cand_at(idx), c.v) == c.u &&
                        c.weight < bound[idx]) {
                        bound[idx] = c.weight;
                    }
                }
            }
        }
        // Tracked for serial runs too since the cell-batched ball rule
        // reads it; parallel behavior is unchanged (same value as before).
        if (batch.size() > 0) {
            last_accept_rate =
                static_cast<double>(stats.edges_added - batch_accepts_before) /
                static_cast<double>(batch.size());
        }
        batch_begin = batch_end;
        }  // batch loop
    }
    stats.bidirectional_meets =
        ws.meet_events() + ws_pool.total_meet_events() - meets_before;
    stats.csr_rebuilds = adapter.rebuilds();
    stats.csr_compactions = adapter.compactions();
    stats.candidates_streamed = feed.streamed();
    stats.candidate_buffer_peak_bytes = feed.peak_buffer_bytes();
    return h;
}

void append_sorted_graph_candidates(const Graph& g, std::vector<GreedyCandidate>& out) {
    std::vector<EdgeId> order(g.num_edges());
    for (EdgeId i = 0; i < g.num_edges(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
        const Edge& ea = g.edge(a);
        const Edge& eb = g.edge(b);
        return std::make_tuple(ea.weight, std::min(ea.u, ea.v), std::max(ea.u, ea.v), a) <
               std::make_tuple(eb.weight, std::min(eb.u, eb.v), std::max(eb.u, eb.v), b);
    });
    out.reserve(out.size() + order.size());
    for (EdgeId id : order) {
        const Edge& e = g.edge(id);
        out.push_back(GreedyCandidate{e.u, e.v, e.weight});
    }
}

std::vector<GreedyCandidate> sorted_graph_candidates(const Graph& g) {
    std::vector<GreedyCandidate> cands;
    append_sorted_graph_candidates(g, cands);
    return cands;
}

#ifndef GSP_NO_DEPRECATED
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
Graph greedy_spanner_with(const Graph& g, const GreedyEngineOptions& options,
                          GreedyStats* stats) {
    // Zero the out-param before any work: a throw below must not leave a
    // previous run's counters behind (the additive-stats footgun).
    if (stats != nullptr) *stats = GreedyStats{};
    const Timer timer;  // include the candidate sort, as the naive kernel did
    // Resolve kAuto the way the session front door's GraphCandidateSource
    // does, so wrapper and session builds stay bit-identical, stats
    // included (the old-vs-new equivalence contract).
    GreedyEngineOptions resolved = options;
    if (resolved.group_probing == EngineTuning::GroupProbing::kAuto) {
        resolved.group_probing = EngineTuning::GroupProbing::kOn;
    }
    GreedyEngine engine(g.num_vertices(), resolved);
    const auto candidates = sorted_graph_candidates(g);
    GreedyStats local;
    Graph h = engine.run(Graph(g.num_vertices()), candidates, &local);
    local.seconds = timer.seconds();
    if (stats != nullptr) *stats = local;
    return h;
}
#pragma GCC diagnostic pop
#endif  // GSP_NO_DEPRECATED

}  // namespace gsp
