// Algorithm 1 of the paper: the greedy spanner for weighted graphs.
//
//   H = (V, {})
//   for each edge (u, v) in non-decreasing order of weight:
//       if delta_H(u, v) > t * w(u, v):  add (u, v) to H
//
// Properties this implementation guarantees (and tests rely on):
//  * stretch(H) <= t, by construction;
//  * ties in edge weight are broken deterministically by canonical endpoint
//    order then edge id, so greedy(G, t) is a pure function of (G, t) -- the
//    Lemma-3 fixpoint test greedy(greedy(G)) == greedy(G) is exact;
//  * with the same tie-breaking, H contains the Kruskal MST of G
//    (Observation 2 of the paper);
//  * each distance query is a Dijkstra run *limited* to radius t * w(e),
//    making the naive algorithm usable well beyond toy sizes.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace gsp {

/// Counters describing one greedy run (for the runtime experiments and the
/// BENCH_greedy.json kernel-ablation artifact).
struct GreedyStats {
    std::size_t edges_examined = 0;  ///< candidate edges processed
    std::size_t edges_added = 0;     ///< edges kept in the spanner
    std::size_t dijkstra_runs = 0;   ///< distance/ball queries actually executed
    double seconds = 0.0;            ///< wall-clock time of the run

    // GreedyEngine counters (zero when the matching optimisation is off).
    std::size_t balls_computed = 0;       ///< shared ball() queries grown
    std::size_t cache_hits = 0;           ///< candidates decided from cached bounds
    std::size_t csr_rebuilds = 0;         ///< full O(n+m) adjacency rebuilds (with the
                                          ///< incremental store: one per run, not per bucket)
    std::size_t csr_compactions = 0;      ///< incremental-CSR arena compactions
    std::size_t bidirectional_meets = 0;  ///< improving frontier-meet events
    std::size_t prefilter_rejects = 0;    ///< candidates rejected by the prefilter hook
    std::size_t buckets = 0;              ///< weight buckets processed

    // Pipeline counters (zero when the parallel prefilter stage is off).
    std::size_t snapshot_accepts = 0;   ///< accepts certified by the bucket-start probe
    std::size_t prefilter_gated_off = 0;  ///< 1 if the measured-cost gate disabled the prefilter

    // Speculative-accept counters (zero when speculative_repair is off or
    // the run is serial). A "tentative accept" is a candidate phase A
    // certified far-at-snapshot; when insertions staled the certificate,
    // phase B either repairs it (inspecting only paths through the edges
    // inserted since the snapshot) or falls back to the full exact query.
    std::size_t repairs = 0;            ///< stale certificates resolved by repair alone
    std::size_t repair_reprobes = 0;    ///< repairs that needed the seeded probe
                                        ///< (the rest stood with zero graph work)
    std::size_t repair_fallbacks = 0;   ///< stale tentative accepts with no usable
                                        ///< certificate -> full exact query
    std::size_t certs_published = 0;    ///< phase-A certificates recorded
    std::size_t cert_ball_aborts = 0;   ///< certificate balls that blew the cap
                                        ///< (expander-like neighborhoods)
    std::size_t certs_two_sided = 0;    ///< stale tentative accepts resolved by the
                                        ///< two-sided combine (forward + backward
                                        ///< frontier certificates whose radii sum
                                        ///< past the threshold) -- candidates that
                                        ///< were repair_fallbacks before two-sided
                                        ///< frontier publishing

    // Group-probe counters (zero unless group_probing resolved to kOn).
    // All three are per-group facts of deterministic probes, so they are
    // invariant across worker counts (the equivalence suite checks this).
    std::size_t group_probes = 0;           ///< batched multi-target probes run
    std::size_t group_probe_decisions = 0;  ///< candidates those probes decided
    std::size_t group_probe_early_exits = 0;  ///< probes that stopped with frontier
                                              ///< pending (every target decided)

    // Cell-batched rejection counters (zero unless cell_batching resolved
    // to kOn -- the grid-streamed path). cell_ball_decisions counts the
    // candidates a cell ball decided without a probe of their own: the
    // members its harvest resolved at ball time plus the later
    // lazy-revalidation accepts it backed. coarse_rejects counts
    // via-landmark sketch rejects (two witness paths through a common
    // landmark concatenated within the threshold -- zero graph work).
    std::size_t cell_balls = 0;          ///< balls grown for anchored (cell) groups
    std::size_t cell_ball_decisions = 0; ///< candidates decided by those balls
    std::size_t coarse_rejects = 0;      ///< via-landmark sketch upper-bound rejects

    // Bound-sketch counters (zero when bound_sketch is off). Not a
    // partition of edges_examined: a stage-2 sketch far certificate counts
    // here *and* as a snapshot_accept when stage 3 consumes its bit.
    std::size_t sketch_hits = 0;     ///< candidates the sketch decided in either
                                     ///< stage (upper-bound rejects, and stage-2
                                     ///< epoch-valid far certificates)
    std::size_t sketch_accepts = 0;  ///< stage-3 accepts from epoch-valid sketch
                                     ///< lower bounds

    /// Peak resident bytes of the stage-2 -> stage-3 handoff (bucket-local
    /// bound array + packed verdict bitsets); the bytes-per-candidate
    /// numerator tracked in BENCH_greedy.json.
    std::size_t handoff_peak_bytes = 0;

    // Candidate-memory counters (the linear-space streaming path). On the
    // materializing path candidates_streamed is the full candidate count
    // and the buffer peak is the whole sorted array -- the honest
    // comparison baseline for the chunked mode.
    std::size_t candidates_streamed = 0;  ///< candidates pulled through stage 1
    std::size_t candidate_buffer_peak_bytes = 0;  ///< peak resident candidate bytes
};

/// The greedy t-spanner of g. Requires t >= 1. Works on disconnected
/// graphs (the spanner then spans each component). Parallel edges are
/// handled naturally: the second copy is rejected because the first copy is
/// a path of equal weight (<= t * w since t >= 1).
///
/// Runs on the full-featured GreedyEngine (bidirectional bounded Dijkstra,
/// per-bucket ball sharing, CSR snapshots) through a one-shot session; use
/// a SpannerSession with BuildOptions (src/api/session.hpp) to select
/// individual optimisations, parallelism, or warm-started repeated builds.
/// Every configuration returns the same edge set. `*stats` is zeroed
/// before any work (never additive across calls).
Graph greedy_spanner(const Graph& g, double t, GreedyStats* stats = nullptr);

}  // namespace gsp
