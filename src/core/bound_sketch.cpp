#include "core/bound_sketch.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace gsp {

void BoundSketch::reset(std::size_t n, std::size_t ways) {
    if (ways == 0 || (ways & (ways - 1)) != 0) {
        throw std::invalid_argument("BoundSketch: ways must be a power of two >= 1");
    }
    ways_ = ways;
    const std::size_t slots = n * ways_;
    src_.assign(slots, kNoVertex);
    ub_.assign(slots, kInfiniteWeight);
    lo_.assign(slots, 0.0);
    lo_epoch_.assign(slots, 0);
}

std::size_t BoundSketch::slot_for_write(VertexId src, VertexId x) {
    const std::size_t s = slot(x, src);
    if (src_[s] != src) {
        // Deterministic eviction: the newest source owning this way wins.
        src_[s] = src;
        ub_[s] = kInfiniteWeight;
        lo_[s] = 0.0;
        lo_epoch_[s] = 0;
    }
    return s;
}

GSP_SERIAL_ONLY void BoundSketch::record_exact(VertexId src, VertexId x, Weight d,
                                               std::uint64_t epoch) {
    const std::size_t s = slot_for_write(src, x);
    ub_[s] = std::min(ub_[s], d);
    if (epoch > lo_epoch_[s]) {
        lo_epoch_[s] = epoch;
        lo_[s] = d;
    } else if (epoch == lo_epoch_[s]) {
        lo_[s] = std::max(lo_[s], d);
    }
}

GSP_SERIAL_ONLY void BoundSketch::record_far(VertexId src, VertexId x, Weight lo,
                                             std::uint64_t epoch) {
    const std::size_t s = slot_for_write(src, x);
    if (epoch > lo_epoch_[s]) {
        lo_epoch_[s] = epoch;
        lo_[s] = lo;
    } else if (epoch == lo_epoch_[s]) {
        lo_[s] = std::max(lo_[s], lo);
    }
}

GSP_SERIAL_ONLY void BoundSketch::record_upper(VertexId src, VertexId x, Weight ub) {
    const std::size_t s = slot_for_write(src, x);
    ub_[s] = std::min(ub_[s], ub);
}

GSP_DECISION_PURE GSP_HOT_PATH Weight BoundSketch::upper_bound(VertexId u,
                                                               VertexId v) const {
    Weight best = kInfiniteWeight;
    const std::size_t a = slot(v, u);
    if (src_[a] == u) best = ub_[a];
    const std::size_t b = slot(u, v);
    if (src_[b] == v) best = std::min(best, ub_[b]);
    return best;
}

GSP_DECISION_PURE GSP_HOT_PATH Weight BoundSketch::via_upper_bound(
    VertexId u, VertexId v) const {
    Weight best = kInfiniteWeight;
    // u's ways each name one landmark src with ub(src, u); the matching
    // way of v (same low bits of src) holds v's record of the same
    // landmark iff the sources agree. One vector load + compare per block
    // finds the agreeing ways; the ub lanes are only read for matches.
    // (min is order-independent for the NaN-free bounds stored here, so
    // the lane-order walk returns exactly the scalar loop's minimum.)
    const std::size_t ubase = static_cast<std::size_t>(u) * ways_;
    const std::size_t vbase = static_cast<std::size_t>(v) * ways_;
    std::size_t w = 0;
    while (w < ways_) {
        const std::size_t blk = std::min(ways_ - w, simd::kMaxLanes);
        std::uint32_t mask = simd_->match_pairs(src_.data() + ubase + w,
                                                src_.data() + vbase + w, blk,
                                                kNoVertex);
        while (mask != 0) {
            const unsigned j = static_cast<unsigned>(std::countr_zero(mask));
            mask &= mask - 1;
            const Weight au = ub_[ubase + w + j];
            const Weight av = ub_[vbase + w + j];
            if (au == kInfiniteWeight || av == kInfiniteWeight) continue;
            best = std::min(best, au + av);
        }
        w += blk;
    }
    return best;
}

GSP_DECISION_PURE GSP_HOT_PATH Weight BoundSketch::lower_bound_at(
    VertexId u, VertexId v, std::uint64_t epoch) const {
    Weight best = 0.0;
    const std::size_t a = slot(v, u);
    if (src_[a] == u && lo_epoch_[a] == epoch) best = lo_[a];
    const std::size_t b = slot(u, v);
    if (src_[b] == v && lo_epoch_[b] == epoch) best = std::max(best, lo_[b]);
    return best;
}

void CertificateStore::reset(std::size_t n, std::size_t cap) {
    cap_ = cap;
    if (certs_.size() != n) {
        certs_.assign(n, Cert{});
        lookup_stamp_.assign(n, 0);
        lookup_dist_.assign(n, kInfiniteWeight);
        lookup_current_ = 0;
    } else {
        // Keep the per-source settled buffers warm; a zero scope can never
        // match (the engine's batch sequence starts at 1).
        for (Cert& c : certs_) c.scope = 0;
    }
    loaded_ = kNoVertex;
    loaded_scope_ = 0;
}

bool CertificateStore::publish(VertexId source, std::uint64_t scope, std::uint64_t epoch,
                               Weight radius,
                               std::span<const std::pair<VertexId, Weight>> settled) {
    Cert& c = certs_[source];
    if (c.scope == scope && c.epoch == epoch && c.radius >= radius) {
        // Keep-larger: an already-stored same-scope certificate with at
        // least this radius answers every query this one could. Also what
        // makes the serial flush of worker-buffered frontier publishes
        // independent of flush order.
        return false;
    }
    if (settled.size() > cap_) {
        // Too big to be worth keeping (reject-heavy regime): leave the
        // slot invalid so phase B falls back to the exact query -- unless
        // it already holds a live same-scope certificate, which an
        // oversized publish must not clobber.
        if (c.scope != scope || c.epoch != epoch) c.scope = 0;
        return false;
    }
    c.scope = scope;
    c.epoch = epoch;
    c.radius = radius;
    c.settled.assign(settled.begin(), settled.end());
    return true;
}

GSP_SERIAL_ONLY bool CertificateStore::load(VertexId source, std::uint64_t scope,
                                            std::uint64_t epoch,
                                            Weight radius_needed) {
    const Cert& c = certs_[source];
    if (c.scope != scope || c.epoch != epoch || c.radius < radius_needed) return false;
    if (loaded_ == source && loaded_scope_ == scope) return true;  // already active
    ++lookup_current_;
    for (const auto& [x, d] : c.settled) {
        lookup_stamp_[x] = lookup_current_;
        lookup_dist_[x] = d;
    }
    loaded_ = source;
    loaded_scope_ = scope;
    return true;
}

std::size_t CertificateStore::bytes() const {
    // Logical bytes, and only scope-live settled sets: reset() keeps the
    // per-source buffers warm across runs (scope = 0 marks them stale),
    // so counting capacities or stale frontiers would make the handoff
    // stats depend on what a previous run in the same session published.
    std::size_t total = certs_.size() * sizeof(Cert) +
                        (lookup_stamp_.size() * sizeof(std::uint64_t)) +
                        (lookup_dist_.size() * sizeof(Weight));
    for (const Cert& c : certs_) {
        if (c.scope != 0) {
            total += c.settled.size() * sizeof(std::pair<VertexId, Weight>);
        }
    }
    return total;
}

}  // namespace gsp
