#include "core/bound_sketch.hpp"

#include <algorithm>
#include <stdexcept>

namespace gsp {

void BoundSketch::reset(std::size_t n, std::size_t ways) {
    if (ways == 0 || (ways & (ways - 1)) != 0) {
        throw std::invalid_argument("BoundSketch: ways must be a power of two >= 1");
    }
    ways_ = ways;
    slots_.assign(n * ways_, Entry{});
}

BoundSketch::Entry& BoundSketch::entry_for_write(VertexId src, VertexId x) {
    Entry& e = slots_[slot(x, src)];
    if (e.src != src) {
        // Deterministic eviction: the newest source owning this way wins.
        e = Entry{src, kInfiniteWeight, 0.0, 0};
    }
    return e;
}

void BoundSketch::record_exact(VertexId src, VertexId x, Weight d,
                               std::uint64_t epoch) {
    Entry& e = entry_for_write(src, x);
    e.ub = std::min(e.ub, d);
    if (epoch > e.lo_epoch) {
        e.lo_epoch = epoch;
        e.lo = d;
    } else if (epoch == e.lo_epoch) {
        e.lo = std::max(e.lo, d);
    }
}

void BoundSketch::record_far(VertexId src, VertexId x, Weight lo,
                             std::uint64_t epoch) {
    Entry& e = entry_for_write(src, x);
    if (epoch > e.lo_epoch) {
        e.lo_epoch = epoch;
        e.lo = lo;
    } else if (epoch == e.lo_epoch) {
        e.lo = std::max(e.lo, lo);
    }
}

void BoundSketch::record_upper(VertexId src, VertexId x, Weight ub) {
    Entry& e = entry_for_write(src, x);
    e.ub = std::min(e.ub, ub);
}

Weight BoundSketch::upper_bound(VertexId u, VertexId v) const {
    Weight best = kInfiniteWeight;
    const Entry& a = slots_[slot(v, u)];
    if (a.src == u) best = a.ub;
    const Entry& b = slots_[slot(u, v)];
    if (b.src == v) best = std::min(best, b.ub);
    return best;
}

Weight BoundSketch::via_upper_bound(VertexId u, VertexId v) const {
    Weight best = kInfiniteWeight;
    // u's ways each name one landmark src with ub(src, u); the matching
    // way of v (same low bits of src) holds v's record of the same
    // landmark iff the sources agree.
    const std::size_t ubase = static_cast<std::size_t>(u) * ways_;
    const std::size_t vbase = static_cast<std::size_t>(v) * ways_;
    for (std::size_t w = 0; w < ways_; ++w) {
        const Entry& eu = slots_[ubase + w];
        if (eu.src == kNoVertex || eu.ub == kInfiniteWeight) continue;
        const Entry& ev = slots_[vbase + w];
        if (ev.src != eu.src || ev.ub == kInfiniteWeight) continue;
        best = std::min(best, eu.ub + ev.ub);
    }
    return best;
}

Weight BoundSketch::lower_bound_at(VertexId u, VertexId v,
                                   std::uint64_t epoch) const {
    Weight best = 0.0;
    const Entry& a = slots_[slot(v, u)];
    if (a.src == u && a.lo_epoch == epoch) best = a.lo;
    const Entry& b = slots_[slot(u, v)];
    if (b.src == v && b.lo_epoch == epoch) best = std::max(best, b.lo);
    return best;
}

void CertificateStore::reset(std::size_t n, std::size_t cap) {
    cap_ = cap;
    if (certs_.size() != n) {
        certs_.assign(n, Cert{});
        lookup_stamp_.assign(n, 0);
        lookup_dist_.assign(n, kInfiniteWeight);
        lookup_current_ = 0;
    } else {
        // Keep the per-source settled buffers warm; a zero scope can never
        // match (the engine's batch sequence starts at 1).
        for (Cert& c : certs_) c.scope = 0;
    }
    loaded_ = kNoVertex;
    loaded_scope_ = 0;
}

bool CertificateStore::publish(VertexId source, std::uint64_t scope, std::uint64_t epoch,
                               Weight radius,
                               std::span<const std::pair<VertexId, Weight>> settled) {
    Cert& c = certs_[source];
    if (c.scope == scope && c.epoch == epoch && c.radius >= radius) {
        // Keep-larger: an already-stored same-scope certificate with at
        // least this radius answers every query this one could. Also what
        // makes the serial flush of worker-buffered frontier publishes
        // independent of flush order.
        return false;
    }
    if (settled.size() > cap_) {
        // Too big to be worth keeping (reject-heavy regime): leave the
        // slot invalid so phase B falls back to the exact query -- unless
        // it already holds a live same-scope certificate, which an
        // oversized publish must not clobber.
        if (c.scope != scope || c.epoch != epoch) c.scope = 0;
        return false;
    }
    c.scope = scope;
    c.epoch = epoch;
    c.radius = radius;
    c.settled.assign(settled.begin(), settled.end());
    return true;
}

bool CertificateStore::load(VertexId source, std::uint64_t scope, std::uint64_t epoch,
                            Weight radius_needed) {
    const Cert& c = certs_[source];
    if (c.scope != scope || c.epoch != epoch || c.radius < radius_needed) return false;
    if (loaded_ == source && loaded_scope_ == scope) return true;  // already active
    ++lookup_current_;
    for (const auto& [x, d] : c.settled) {
        lookup_stamp_[x] = lookup_current_;
        lookup_dist_[x] = d;
    }
    loaded_ = source;
    loaded_scope_ = scope;
    return true;
}

std::size_t CertificateStore::bytes() const {
    // Logical bytes, and only scope-live settled sets: reset() keeps the
    // per-source buffers warm across runs (scope = 0 marks them stale),
    // so counting capacities or stale frontiers would make the handoff
    // stats depend on what a previous run in the same session published.
    std::size_t total = certs_.size() * sizeof(Cert) +
                        (lookup_stamp_.size() * sizeof(std::uint64_t)) +
                        (lookup_dist_.size() * sizeof(Weight));
    for (const Cert& c : certs_) {
        if (c.scope != 0) {
            total += c.settled.size() * sizeof(std::pair<VertexId, Weight>);
        }
    }
    return total;
}

}  // namespace gsp
