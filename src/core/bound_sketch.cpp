#include "core/bound_sketch.hpp"

#include <algorithm>

namespace gsp {

void BoundSketch::reset(std::size_t n) {
    slots_.assign(n * kWays, Entry{});
}

BoundSketch::Entry& BoundSketch::entry_for_write(VertexId src, VertexId x) {
    Entry& e = slots_[slot(x, src)];
    if (e.src != src) {
        // Deterministic eviction: the newest source owning this way wins.
        e = Entry{src, kInfiniteWeight, 0.0, 0};
    }
    return e;
}

void BoundSketch::record_exact(VertexId src, VertexId x, Weight d,
                               std::uint64_t epoch) {
    Entry& e = entry_for_write(src, x);
    e.ub = std::min(e.ub, d);
    if (epoch > e.lo_epoch) {
        e.lo_epoch = epoch;
        e.lo = d;
    } else if (epoch == e.lo_epoch) {
        e.lo = std::max(e.lo, d);
    }
}

void BoundSketch::record_far(VertexId src, VertexId x, Weight lo,
                             std::uint64_t epoch) {
    Entry& e = entry_for_write(src, x);
    if (epoch > e.lo_epoch) {
        e.lo_epoch = epoch;
        e.lo = lo;
    } else if (epoch == e.lo_epoch) {
        e.lo = std::max(e.lo, lo);
    }
}

void BoundSketch::record_upper(VertexId src, VertexId x, Weight ub) {
    Entry& e = entry_for_write(src, x);
    e.ub = std::min(e.ub, ub);
}

Weight BoundSketch::upper_bound(VertexId u, VertexId v) const {
    Weight best = kInfiniteWeight;
    const Entry& a = slots_[slot(v, u)];
    if (a.src == u) best = a.ub;
    const Entry& b = slots_[slot(u, v)];
    if (b.src == v) best = std::min(best, b.ub);
    return best;
}

Weight BoundSketch::lower_bound_at(VertexId u, VertexId v,
                                   std::uint64_t epoch) const {
    Weight best = 0.0;
    const Entry& a = slots_[slot(v, u)];
    if (a.src == u && a.lo_epoch == epoch) best = a.lo;
    const Entry& b = slots_[slot(u, v)];
    if (b.src == v && b.lo_epoch == epoch) best = std::max(best, b.lo);
    return best;
}

}  // namespace gsp
