// Stage 1 of the greedy pipeline: the candidate stream.
//
// The engine consumes candidates bucket by bucket -- geometric weight
// classes [lo, bucket_ratio * lo], the same boundary rule the
// approximate-greedy simulation has always used. CandidateStream walks the
// sorted candidate span and materializes one bucket at a time;
// ChunkedCandidateStream does the same over a pull-based chunk source, so
// the full sorted array never has to exist (the linear-space greedy of
// Alewijnse et al.: candidates are generated one weight window at a time
// into a reusable buffer). SourceGroups indexes a bucket's candidates by
// source vertex, which is both the unit of ball sharing (one ball answers
// a whole group) and the unit of work handed to the parallel prefilter
// stage (groups touch disjoint candidate slots, so workers never race on
// bounds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/annotations.hpp"

namespace gsp {

/// One candidate edge for the greedy loop.
struct GreedyCandidate {
    VertexId u = kNoVertex;
    VertexId v = kNoVertex;
    Weight weight = 0.0;
};

/// One weight bucket: candidate indices [begin, end) of the sorted span.
struct CandidateBucket {
    std::size_t begin = 0;
    std::size_t end = 0;
    Weight lo = 0.0;  ///< weight of the bucket's first candidate
    Weight hi = 0.0;  ///< inclusive upper boundary (lo * bucket_ratio)

    [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Walks a weight-sorted candidate span in geometric buckets.
class CandidateStream {
public:
    CandidateStream(std::span<const GreedyCandidate> candidates, double bucket_ratio)
        : candidates_(candidates), bucket_ratio_(bucket_ratio) {}

    /// Materialize the next bucket into `out`; false at end of stream.
    bool next(CandidateBucket& out);

private:
    std::span<const GreedyCandidate> candidates_;
    double bucket_ratio_;
    std::size_t cursor_ = 0;
};

/// The pull-based chunk protocol: a source that generates its candidates
/// incrementally instead of materializing the full sorted array.
///
/// Contract (what ChunkedCandidateStream validates and the engine's
/// bit-identity guarantee rests on):
///  * each call appends candidates in non-decreasing weight order, every
///    weight >= every weight of every earlier chunk -- concatenating all
///    chunks yields exactly the sequence materialize() would have
///    produced, with the source's own deterministic tie rule;
///  * `soft_cap` is advisory: a source should stop appending once the
///    chunk reaches it, but may overshoot to finish an atomic unit of
///    generation (a weight window it cannot split, a run of equal
///    weights it has already sorted);
///  * the buffer is owned by the caller (the session's reusable
///    materialization buffer): the source only ever appends, and must not
///    keep references into it across calls;
///  * returns true after appending at least one candidate; false --
///    appending nothing -- once the stream is exhausted (and on every
///    call thereafter).
class CandidateChunkSource {
public:
    virtual ~CandidateChunkSource() = default;

    virtual bool next_chunk(std::size_t soft_cap, std::vector<GreedyCandidate>& out) = 0;
};

/// Drives the engine's bucket loop from a CandidateChunkSource: one chunk
/// at a time lives in the caller-owned buffer, and buckets are carved out
/// of the resident chunk. A weight class that straddles a chunk boundary
/// is simply split into two buckets -- bucket boundaries are decision
/// preserving (bucket_ratio is an EngineTuning knob), so the edge set is
/// bit-identical to the materializing path at every chunk size.
class ChunkedCandidateStream {
public:
    /// `buffer` must outlive the stream; it is cleared and refilled on
    /// every chunk pull. Requires bucket_ratio > 1 and soft_cap >= 1.
    ChunkedCandidateStream(CandidateChunkSource& source,
                           std::vector<GreedyCandidate>& buffer, double bucket_ratio,
                           std::size_t soft_cap)
        : source_(&source), buffer_(&buffer), bucket_ratio_(bucket_ratio),
          soft_cap_(soft_cap) {}

    /// Produce the next bucket (global candidate indices, like
    /// CandidateStream); false at end of stream. Throws
    /// std::invalid_argument if the source violates the ordering contract.
    bool next(CandidateBucket& out);

    /// The resident candidates of `bucket` (which must be the bucket most
    /// recently produced by next()).
    [[nodiscard]] std::span<const GreedyCandidate> window(const CandidateBucket& bucket) const {
        return std::span<const GreedyCandidate>(*buffer_).subspan(bucket.begin - base_,
                                                                  bucket.size());
    }

    /// Total candidates pulled from the source so far.
    [[nodiscard]] std::size_t streamed() const { return streamed_; }

    /// Peak logical bytes resident in the chunk buffer (size, not
    /// capacity: a pure function of the stream, not of what earlier
    /// builds left in a warm session's buffer).
    [[nodiscard]] std::size_t peak_buffer_bytes() const { return peak_bytes_; }

private:
    bool refill();

    CandidateChunkSource* source_;
    std::vector<GreedyCandidate>* buffer_;
    double bucket_ratio_;
    std::size_t soft_cap_;
    std::size_t base_ = 0;    ///< global index of buffer_[0]
    std::size_t cursor_ = 0;  ///< global index of the next unconsumed candidate
    bool exhausted_ = false;
    Weight last_weight_ = 0.0;  ///< cross-chunk ordering validation
    bool have_last_ = false;
    std::size_t streamed_ = 0;
    std::size_t peak_bytes_ = 0;
};

/// Chooses stage-2 batch widths from the *predicted* accept rate (the
/// previous batch's measured rate -- a pure function of the greedy
/// decisions, hence identical at every thread count and schedule).
///
/// PR 2 used one fixed width for every batch. With the speculative accept
/// path the right width depends on the regime: a reject-heavy batch wants
/// to be wide (stage-2 facts rarely go stale, and wider batches amortize
/// the fan-out), while an accept-heavy batch wants to be narrow -- every
/// insertion staled the certificates of all later candidates in the
/// batch, so phase-B repair work per candidate grows with the number of
/// in-batch insertions before it. The planner sizes batches so the
/// *expected insertions per batch* stay near `target_accepts`:
///
///     width = clamp(target_accepts / predicted_rate, min_width, max_batch)
///
/// which degenerates to max_batch whenever the predicted rate is at or
/// below target_accepts / max_batch (the reject-heavy regime).
class BatchPlanner {
public:
    /// `max_batch` is the configured stage-2 batch width (the PR-2
    /// constant, still the ceiling); `target_accepts` the insertion budget
    /// a batch should stay near when accepts dominate.
    BatchPlanner(std::size_t max_batch, std::size_t target_accepts)
        : max_batch_(max_batch),
          target_accepts_(target_accepts == 0 ? 1 : target_accepts),
          // Never plan below the fan-out's break-even width (or max_batch
          // itself when the caller configured something tiny).
          min_width_(max_batch < kMinWidth ? max_batch : kMinWidth) {}

    [[nodiscard]] GSP_DECISION_PURE std::size_t next_width(
        double predicted_accept_rate) const {
        if (predicted_accept_rate <= 0.0) return max_batch_;
        const double ideal =
            static_cast<double>(target_accepts_) / predicted_accept_rate;
        if (ideal >= static_cast<double>(max_batch_)) return max_batch_;
        const auto width = static_cast<std::size_t>(ideal);
        return width < min_width_ ? min_width_ : width;
    }

private:
    static constexpr std::size_t kMinWidth = 64;

    std::size_t max_batch_;
    std::size_t target_accepts_;
    std::size_t min_width_;
};

/// A bucket's candidates grouped by a per-candidate *anchor* endpoint,
/// with lazy O(bucket) clearing (a bucket costs O(its candidates), never
/// O(n)). Groups list *bucket-local* candidate indices (global index minus
/// the bucket's `begin` -- the same u32 currency the stage-2/stage-3
/// handoff uses for its bound array and verdict bitsets; a run's candidate
/// span may exceed 2^32 as long as each individual bucket stays below it,
/// which the engine enforces) in ascending order, which the prefilter and
/// insertion stages both rely on (bounds harvested by an earlier
/// candidate's query may only be consumed by later ones).
///
/// Because the candidate range is sorted by non-decreasing weight and
/// group members are listed in ascending index order, a group's member
/// *weights* -- and therefore its decision radii (stretch * weight) -- are
/// nondecreasing along the list. BatchedProbe's contiguous far-sweep is
/// built on exactly this invariant (it validates and throws on violation),
/// so any future regrouping must preserve index order.
///
/// Two grouping modes, selected per rebuild:
///
///  * classic (anchored = false): the anchor is the candidate's `u` (the
///    source vertex) -- the PR-1 rule. Natural for graph edges, where the
///    min-id endpoint concentrates a vertex's candidates.
///  * anchored (anchored = true): the cell-batched rule. A grid-pruned
///    stream emits one representative candidate per cell pair, so a cell
///    rep's ~s^2 window pairs split about evenly between its u side and
///    its v side -- u-keyed groups are half the size the geometry offers,
///    which starves ball sharing. The anchored rebuild assigns each
///    candidate to ONE of its endpoints by a two-pass hub heuristic: pass
///    1 counts endpoint incidences over the range; pass 2, in candidate
///    order, anchors a candidate to an endpoint already serving as a hub
///    when exactly one is (stickiness -- this is what re-merges a cell
///    rep's two sides), otherwise to the higher-incidence endpoint
///    (tie: min id), marking it a hub. O(range), deterministic, and a
///    pure function of the range's contents -- identical for the serial
///    and parallel paths at any thread count. Distances are symmetric, so
///    a ball seeded at either endpoint decides the candidate; everything
///    downstream asks anchor_of()/other_of() instead of assuming `u`.
class SourceGroups {
public:
    /// Rebuild the grouping for the candidate range `range` (a stage-2
    /// batch, or the whole bucket when serial); indices are recorded
    /// relative to `base` (the owning bucket's begin).
    GSP_DECISION_PURE void rebuild(std::span<const GreedyCandidate> candidates,
                                   const CandidateBucket& range, std::size_t base,
                                   std::size_t num_vertices, bool anchored = false);

    /// Anchors that have at least one candidate in the current range, in
    /// first-appearance order.
    [[nodiscard]] const std::vector<VertexId>& sources() const { return sources_; }

    /// Bucket-local candidate indices anchored at s (ascending). Empty for
    /// vertices that anchor nothing in the current range.
    [[nodiscard]] const std::vector<std::uint32_t>& of(VertexId s) const {
        return groups_[s];
    }

    /// The anchor endpoint of bucket-local candidate `local` (valid for
    /// the range of the last rebuild). Classic mode: the candidate's u.
    [[nodiscard]] VertexId anchor_of(std::uint32_t local) const { return anchor_[local]; }

    /// The non-anchor endpoint of candidate c, given its anchor.
    [[nodiscard]] GSP_DECISION_PURE GSP_HOT_PATH static VertexId other_of(
        const GreedyCandidate& c, VertexId anchor) {
        return c.u == anchor ? c.v : c.u;
    }

    /// Largest group size of the last rebuild (the group-size-aware
    /// bootstrap of the engine's ball-vs-point gate keys on it).
    [[nodiscard]] std::size_t max_group_size() const { return max_group_size_; }

    /// Undecided-candidate counter of anchor s; the insertion stage
    /// decrements it as candidates are decided (feeds the ball-vs-point
    /// gate's "remaining peers" signal).
    [[nodiscard]] std::uint32_t remaining(VertexId s) const { return remaining_[s]; }
    void decrement_remaining(VertexId s) { --remaining_[s]; }

private:
    std::vector<std::vector<std::uint32_t>> groups_;
    std::vector<std::uint32_t> remaining_;
    std::vector<VertexId> sources_;
    std::vector<VertexId> anchor_;       ///< bucket-local index -> anchor endpoint
    std::vector<std::uint32_t> degree_;  ///< pass-1 incidence counts (lazily cleared)
    std::vector<std::uint8_t> is_hub_;   ///< pass-2 hub marks (lazily cleared)
    std::vector<VertexId> touched_;      ///< vertices with nonzero degree_/is_hub_
    std::size_t max_group_size_ = 0;
};

}  // namespace gsp
