#include "core/self_optimality.hpp"

#include <algorithm>
#include <cmath>

#include "core/greedy.hpp"
#include "core/greedy_metric.hpp"
#include "graph/mst.hpp"
#include "metric/graph_metric.hpp"

namespace gsp {

namespace {

struct AvoidItem {
    Weight d;
    VertexId v;
};
bool operator>(const AvoidItem& a, const AvoidItem& b) { return a.d > b.d; }

/// Shortest u-v distance in g that avoids edge `skip`, capped at `limit`.
Weight distance_avoiding_edge(const Graph& g, VertexId s, VertexId target, EdgeId skip,
                              Weight limit) {
    std::vector<Weight> dist(g.num_vertices(), kInfiniteWeight);
    std::vector<AvoidItem> heap;
    dist[s] = 0.0;
    heap.push_back({0.0, s});
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
        const AvoidItem top = heap.back();
        heap.pop_back();
        if (top.d > dist[top.v]) continue;
        if (top.v == target) return top.d;
        for (const HalfEdge& h : g.neighbors(top.v)) {
            if (h.edge == skip) continue;
            const Weight nd = top.d + h.weight;
            if (nd <= limit && nd < dist[h.to]) {
                dist[h.to] = nd;
                heap.push_back({nd, h.to});
                std::push_heap(heap.begin(), heap.end(), std::greater<>{});
            }
        }
    }
    return kInfiniteWeight;
}

}  // namespace

bool greedy_is_fixpoint(const Graph& g, double t) {
    const Graph h = greedy_spanner(g, t);
    const Graph h2 = greedy_spanner(h, t);
    return same_edge_set(h, h2);
}

std::vector<EdgeId> removable_edges(const Graph& h, double t) {
    std::vector<EdgeId> removable;
    for (EdgeId id = 0; id < h.num_edges(); ++id) {
        const Edge& e = h.edge(id);
        const Weight threshold = t * e.weight;
        if (distance_avoiding_edge(h, e.u, e.v, id, threshold) <= threshold) {
            removable.push_back(id);
        }
    }
    return removable;
}

bool contains_kruskal_mst(const Graph& g, const Graph& h) {
    const MstResult mst = kruskal_mst(g);
    for (EdgeId id : mst.edges) {
        const Edge& e = g.edge(id);
        bool found = false;
        for (const HalfEdge& half : h.neighbors(e.u)) {
            if (half.to == e.v && half.weight == e.weight) {
                found = true;
                break;
            }
        }
        if (!found) return false;
    }
    return true;
}

double metric_mst_gap(const MetricSpace& m, const Graph& h) {
    return std::abs(metric_mst_weight(m) - kruskal_mst(h).weight);
}

TransferGap transfer_gaps(const Graph& h, double t) {
    const GraphMetric mh(h);
    const Graph h_prime = greedy_spanner_metric(mh, t);
    TransferGap gap;
    gap.weight_gap = h_prime.total_weight() - h.total_weight();
    gap.size_gap = static_cast<long>(h_prime.num_edges()) - static_cast<long>(h.num_edges());
    return gap;
}

double mst_inflation(const Graph& h, const Graph& h_prime) {
    return kruskal_mst(h_prime).weight / kruskal_mst(h).weight;
}

}  // namespace gsp
