// The shared engine configuration block.
//
// Before the unified API every greedy front door re-declared the same
// knobs: GreedyEngineOptions, MetricGreedyOptions and ApproxGreedyOptions
// each carried their own num_threads / sketch_ways / speculative_repair
// (and drifted -- the metric path never exposed bound_sketch at all).
// EngineTuning is that block declared once: GreedyEngineOptions derives
// from it (so `options.bidirectional` keeps reading as before), the
// legacy option structs embed it, and the api layer's BuildOptions carries
// it verbatim as its `engine` section.
//
// Every field here is *decision preserving*: the greedy edge set is
// bit-identical at every setting (the knobs trade work, not output).
#pragma once

#include <cstddef>

#include "core/bound_sketch.hpp"

namespace gsp {

class MetricSpace;

struct EngineTuning {
    bool bidirectional = true;  ///< meet-in-the-middle point queries
    bool ball_sharing = true;   ///< per-bucket shared balls + lazy revalidation
    bool csr_snapshot = true;   ///< incremental gap-buffered CSR adjacency
    bool bound_sketch = true;   ///< cross-bucket per-vertex bound sketch

    /// Worker count for the parallel prefilter stage: 1 = fully serial
    /// (the default -- parallelism is opt-in so the serial entry points
    /// keep schedule-free stats), 0 = hardware concurrency, k = exactly k
    /// workers. The edge set is identical at every value.
    std::size_t num_threads = 1;

    /// Master switch for stage 2. With it off (or num_threads resolving to
    /// 1) buckets flow straight from the candidate stream into the
    /// serialized insertion loop.
    bool parallel_prefilter = true;

    /// Stage-2 batch width ceiling: when the parallel stage is active,
    /// buckets are processed in sub-batches of at most this many
    /// candidates, probed against the batch-start incremental view.
    /// Constant across thread counts, so stage-2 decisions (and stats)
    /// depend only on the input. Ignored when serial.
    std::size_t parallel_batch = 2048;

    /// Accept-rate boundary for stage 2, keyed on the previous batch's
    /// measured accept rate (a pure function of the greedy decisions,
    /// hence identical at every thread count). With speculative_repair
    /// *off*, a batch above the gate skips stage 2 entirely; with repair
    /// *on*, the gate instead switches stage 2 into certificate mode.
    /// 1.0 = never predict accept-heavy.
    double parallel_accept_gate = 0.25;

    /// The speculative two-phase accept path: phase-A certificate balls in
    /// stage 2, phase-B bounded repair probes in the insertion loop.
    /// Decisions are exact either way. No effect on serial runs.
    bool speculative_repair = true;

    /// Largest settled frontier a phase-A certificate may store (and the
    /// settled-count abort of a certificate-mode ball attempt).
    std::size_t repair_cert_cap = 128;

    /// Work budget (heap pushes) of a certificate-mode ball attempt while
    /// the serial point-query cost model is still uncalibrated.
    std::size_t repair_ball_fallback_work = 8192;

    /// Insertion budget per batch for the accept-rate batch planner; only
    /// consulted when speculative_repair is on.
    std::size_t parallel_target_accepts = 128;

    /// Bound-sketch associativity: slots per vertex (power of two).
    std::size_t sketch_ways = BoundSketch::kDefaultWays;

    /// Geometric ratio of the weight buckets that pace ball sharing, CSR
    /// rebuilds, and `on_bucket` callbacks (mu in the paper's sketch).
    /// Must be > 1.
    double bucket_ratio = 2.0;

    /// Until the first ball of a run calibrates the ball-vs-point cost
    /// model, a shared ball is attempted only for groups with at least
    /// this many undecided candidates. The effective bootstrap threshold
    /// is min(this, the batch's largest group): a stream whose groups all
    /// sit below the knob (grid-pruned rep windows are ~s^2 wide) still
    /// seeds the cost model from its first full-size ball instead of
    /// never calibrating.
    std::size_t ball_share_min_group = 16;

    /// Cell-batched candidate grouping (the grid-streamed reject
    /// amortizer). kOff groups a batch's candidates by their min-id
    /// endpoint (the PR-1 rule); kOn groups them by a deterministic
    /// two-sided *anchor* endpoint (SourceGroups' hub heuristic), so one
    /// drained ball per grid cell decides every rep candidate the cell
    /// emits into the window -- roughly doubling group sizes on streams
    /// that emit each pair once. kAuto lets the candidate source decide:
    /// GridCandidateSource turns it on (its reps are exactly the hubs the
    /// heuristic elects), everything else keeps the classic rule.
    /// Decision preserving like every other field: anchors only change
    /// which endpoint seeds a probe, and distances are symmetric.
    enum class CellBatching { kAuto, kOn, kOff };
    CellBatching cell_batching = CellBatching::kAuto;

    /// Multi-target group probes (the batched-relaxation kernel): one
    /// bounded traversal from a group's shared source carries every
    /// member's target and decision radius, settles targets as it reaches
    /// them, and stops once all are decided or the frontier passes the
    /// largest undecided bound -- replacing up to |group| point queries
    /// (or one full-radius drained ball) with one early-terminating probe.
    /// kAuto lets the candidate source decide: graph, metric, and WSPD
    /// sources turn it on (their classic groups pay one probe per member),
    /// the grid source keeps its cell-batched reject balls. Decision
    /// preserving like every other field: the kernel's verdicts are exact
    /// distances on the same view the point queries probe.
    enum class GroupProbing { kAuto, kOn, kOff };
    GroupProbing group_probing = GroupProbing::kAuto;

    /// Vector kernel backend for the hot inner loops (the far sweep and
    /// batched relaxation in BatchedProbe, the sketch way probe, batched
    /// 2D distance evaluation, radix chunk finalization). kAuto runtime-
    /// dispatches to the widest instruction set the CPU reports (AVX2 >
    /// SSE4.2 > scalar); kScalar pins the pure-C++ reference; kForced pins
    /// the widest vector table the build can express even where a future
    /// heuristic might prefer scalar (degrading gracefully to scalar on
    /// non-x86-64 builds). Decision preserving in the strongest sense the
    /// codebase uses: every kernel is bit-exact against its scalar
    /// reference (see src/simd/simd.hpp), so edges, verdicts, AND stats
    /// are identical across backends -- property-tested by
    /// simd_kernel_test.
    enum class SimdBackend { kAuto, kScalar, kForced };
    SimdBackend simd_backend = SimdBackend::kAuto;

    /// Optional goal-direction oracle for the engine's single-target point
    /// probes: when set, they run A* keyed by g + metric(v, target)
    /// instead of a blind (bi)directional sweep, so a probe explores the
    /// ellipse that can still contain a <= threshold path rather than a
    /// disc around each endpoint. Sound whenever every graph edge's
    /// weight dominates the metric distance of its endpoints -- true for
    /// every candidate source here, whose weights *are* metric distances
    /// -- because then any graph path from v to the target is at least
    /// metric(v, target) long (and the heuristic is consistent, so the
    /// distance returned for a reject is exact). The oracle must outlive
    /// the build. Decision preserving in the same sense as
    /// `bidirectional`: only the float-addition order of the pruning test
    /// differs from the one-sided sweep (last-ulp class).
    const MetricSpace* goal_bound = nullptr;

    /// Optional goal-direction oracle for the *group probe* only: enables
    /// BatchedProbe's goal-directed tail pruning without rerouting the
    /// single-target point probes through `goal_bound` (on all-pairs
    /// metric streams the bidirectional point query's two-sided harvest
    /// beats the one-sided A* sweep, so switching both together trades
    /// one win for a bigger loss). Same soundness condition as
    /// `goal_bound`; when both are set the probe uses this one. Decision
    /// preserving: the pruning never changes a verdict, only traversal
    /// work (see BatchedProbe's header note).
    const MetricSpace* probe_goal_bound = nullptr;

    /// Advisory chunk size (candidates) of the streaming candidate path:
    /// how many candidates a CandidateChunkSource is asked to append per
    /// pull. Sources may overshoot to finish an atomic generation unit.
    /// Must be >= 1. Chunk boundaries only ever split weight buckets,
    /// which is decision preserving like every other field here.
    std::size_t chunk_soft_cap = 1 << 16;

    /// The naive reference kernel: every optimisation off, one one-sided
    /// distance-limited Dijkstra per candidate. What old-vs-new
    /// equivalence suites compare everything against.
    [[nodiscard]] static EngineTuning naive() {
        EngineTuning t;
        t.bidirectional = false;
        t.ball_sharing = false;
        t.csr_snapshot = false;
        t.bound_sketch = false;
        t.num_threads = 1;
        t.parallel_prefilter = false;
        return t;
    }
};

}  // namespace gsp
