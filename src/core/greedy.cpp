#include "core/greedy.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "graph/dijkstra.hpp"
#include "util/timer.hpp"

namespace gsp {

Graph greedy_spanner(const Graph& g, double t, GreedyStats* stats) {
    if (t < 1.0) throw std::invalid_argument("greedy_spanner: stretch must be >= 1");
    const Timer timer;

    std::vector<EdgeId> order(g.num_edges());
    for (EdgeId i = 0; i < g.num_edges(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
        const Edge& ea = g.edge(a);
        const Edge& eb = g.edge(b);
        return std::make_tuple(ea.weight, std::min(ea.u, ea.v), std::max(ea.u, ea.v), a) <
               std::make_tuple(eb.weight, std::min(eb.u, eb.v), std::max(eb.u, eb.v), b);
    });

    Graph h(g.num_vertices());
    DijkstraWorkspace ws(g.num_vertices());
    GreedyStats local;
    for (EdgeId id : order) {
        const Edge& e = g.edge(id);
        ++local.edges_examined;
        const Weight threshold = t * e.weight;
        ++local.dijkstra_runs;
        const Weight in_spanner = ws.distance(h, e.u, e.v, threshold);
        if (in_spanner > threshold) {
            h.add_edge(e.u, e.v, e.weight);
            ++local.edges_added;
        }
    }
    local.seconds = timer.seconds();
    if (stats != nullptr) *stats = local;
    return h;
}

}  // namespace gsp
