#include "core/greedy.hpp"

#include "api/candidate_source.hpp"
#include "api/session.hpp"

namespace gsp {

Graph greedy_spanner(const Graph& g, double t, GreedyStats* stats) {
    // Zero the out-param before any work (never additive, even on throw).
    if (stats != nullptr) *stats = GreedyStats{};
    SpannerSession session;
    BuildOptions options;  // all engine optimisations on by default
    options.stretch = t;
    GraphCandidateSource source(g);
    BuildReport report;
    Graph h = session.build(source, options, &report);
    if (stats != nullptr) {
        *stats = report.stats;
        stats->seconds = report.seconds;  // include the candidate sort, as always
    }
    return h;
}

}  // namespace gsp
