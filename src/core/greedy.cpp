#include "core/greedy.hpp"

#include "core/greedy_engine.hpp"

namespace gsp {

Graph greedy_spanner(const Graph& g, double t, GreedyStats* stats) {
    GreedyEngineOptions options;  // all engine optimisations on by default
    options.stretch = t;
    return greedy_spanner_with(g, options, stats);
}

}  // namespace gsp
