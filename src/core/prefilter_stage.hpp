// Stage 2 of the greedy pipeline: the parallel reject-only prefilter.
//
// Within one weight bucket every expensive pass of the engine -- the
// optional cluster-oracle lookup and the bounded (bi)directional distance
// probe -- is *read-only* over the bucket-start spanner: the serialized
// insertion loop has not run yet, so the snapshot view is immutable for the
// whole stage. That is the structure (after Alewijnse et al.'s bucketed
// greedy designs) that makes candidate prefiltering embarrassingly
// parallel: workers fan out over source groups (or fixed blocks when ball
// sharing is off), each with its own DijkstraWorkspace, and record
// per-candidate facts that are sound *forever*:
//
//  * a bound <= threshold is the length of a realizable path in a subgraph
//    of every future spanner -- the candidate is rejected, permanently;
//  * a probe that exceeds the threshold certifies "far at bucket start"
//    (kFarAtSnapshot): the insertion loop may accept on that certificate
//    alone while no edge has been inserted since the snapshot, and must
//    re-verify otherwise.
//
// Determinism: tasks are claimed dynamically for load balance, but every
// write lands in a task-owned slot -- groups own disjoint candidate index
// sets (bounds, verdicts) and disjoint source slots (ball reuse state) --
// so the recorded facts, and therefore the final edge set, are independent
// of scheduling and thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/candidate_stream.hpp"
#include "core/greedy.hpp"
#include "graph/dijkstra.hpp"
#include "graph/types.hpp"
#include "util/thread_pool.hpp"

namespace gsp {

/// What the prefilter stage learned about one candidate.
enum class PrefilterVerdict : std::uint8_t {
    kUndecided = 0,    ///< no certificate; the insertion loop decides
    kOracleReject,     ///< concurrent prefilter certified a witness path
    kFarAtSnapshot,    ///< probe exceeded threshold on the bucket-start view
};

/// Inputs of one bucket's prefilter pass that are independent of the
/// adjacency view type.
struct PrefilterContext {
    std::span<const GreedyCandidate> candidates;
    CandidateBucket bucket;
    /// Grouping by source; null => ball sharing is off, partition the
    /// bucket into fixed blocks and probe each candidate independently.
    const SourceGroups* groups = nullptr;
    double stretch = 1.0;
    bool bidirectional = true;
    std::size_t ball_share_min_group = 16;
    /// Ball-reuse scope (the engine's batch sequence number): a published
    /// ball may only be revalidated by candidates of the same batch, whose
    /// bounds its harvest wrote.
    std::uint64_t ball_scope = 0;
    std::uint64_t snapshot_epoch = 0;
    /// Optional concurrent reject-only oracle (worker, u, v, threshold);
    /// null when unset or gated off.
    const std::function<bool(std::size_t, VertexId, VertexId, Weight)>* oracle = nullptr;
};

/// Owns the per-candidate verdict array and per-worker counters for one
/// engine run. One instance per GreedyEngine, reused across runs.
class PrefilterStage {
public:
    /// Reset for a run over `num_candidates` candidates with `workers`
    /// workers. Verdicts are reset lazily per bucket by run_bucket (each
    /// candidate belongs to exactly one bucket), so this is O(m) once.
    void begin_run(std::size_t num_candidates, std::size_t workers) {
        verdict_.assign(num_candidates, PrefilterVerdict::kUndecided);
        counters_.assign(workers, WorkerCounters{});
    }

    [[nodiscard]] PrefilterVerdict verdict(std::size_t candidate) const {
        return verdict_[candidate];
    }

    /// Fan one bucket out over the pool. `bounds` collects realizable-path
    /// upper bounds (candidate-indexed); the ball_* arrays (source-indexed)
    /// record grown balls so the insertion loop's lazy-revalidation path
    /// can reuse them. Worker counters are merged into `stats` (sums, so
    /// the totals are schedule-independent).
    template <class View>
    void run_bucket(ThreadPool& pool, DijkstraWorkspacePool& ws_pool, const View& view,
                    const PrefilterContext& ctx, std::vector<Weight>& bounds,
                    std::vector<std::uint64_t>& ball_bucket,
                    std::vector<std::uint64_t>& ball_epoch,
                    std::vector<Weight>& ball_radius, GreedyStats& stats);

private:
    /// Block width of the no-grouping partition: small enough to balance,
    /// big enough that the atomic task cursor is off the hot path.
    static constexpr std::size_t kBlock = 64;

    // One cache line per worker: the counters are written in the innermost
    // probe loop and must not false-share.
    struct alignas(64) WorkerCounters {
        std::size_t dijkstra_runs = 0;
        std::size_t balls_computed = 0;
    };

    template <class View>
    void process_group(DijkstraWorkspace& ws, WorkerCounters& wc, const View& view,
                       const PrefilterContext& ctx, std::size_t worker, VertexId source,
                       std::vector<Weight>& bounds,
                       std::vector<std::uint64_t>& ball_bucket,
                       std::vector<std::uint64_t>& ball_epoch,
                       std::vector<Weight>& ball_radius);

    template <class View>
    void probe_one(DijkstraWorkspace& ws, WorkerCounters& wc, const View& view,
                   const PrefilterContext& ctx, std::size_t worker, std::uint32_t idx,
                   std::vector<Weight>& bounds);

    std::vector<PrefilterVerdict> verdict_;
    std::vector<WorkerCounters> counters_;
};

template <class View>
void PrefilterStage::run_bucket(ThreadPool& pool, DijkstraWorkspacePool& ws_pool,
                                const View& view, const PrefilterContext& ctx,
                                std::vector<Weight>& bounds,
                                std::vector<std::uint64_t>& ball_bucket,
                                std::vector<std::uint64_t>& ball_epoch,
                                std::vector<Weight>& ball_radius, GreedyStats& stats) {
    const std::size_t tasks =
        ctx.groups != nullptr
            ? ctx.groups->sources().size()
            : (ctx.bucket.size() + kBlock - 1) / kBlock;
    pool.run(tasks, [&](std::size_t worker, std::size_t task) {
        DijkstraWorkspace& ws = ws_pool.at(worker);
        WorkerCounters& wc = counters_[worker];
        if (ctx.groups != nullptr) {
            process_group(ws, wc, view, ctx, worker, ctx.groups->sources()[task], bounds,
                          ball_bucket, ball_epoch, ball_radius);
        } else {
            const std::size_t first = ctx.bucket.begin + task * kBlock;
            const std::size_t last = std::min(first + kBlock, ctx.bucket.end);
            for (std::size_t i = first; i < last; ++i) {
                probe_one(ws, wc, view, ctx, worker, static_cast<std::uint32_t>(i), bounds);
            }
        }
    });
    for (WorkerCounters& wc : counters_) {
        stats.dijkstra_runs += wc.dijkstra_runs;
        stats.balls_computed += wc.balls_computed;
        wc = WorkerCounters{};
    }
}

template <class View>
void PrefilterStage::process_group(DijkstraWorkspace& ws, WorkerCounters& wc,
                                   const View& view, const PrefilterContext& ctx,
                                   std::size_t worker, VertexId source,
                                   std::vector<Weight>& bounds,
                                   std::vector<std::uint64_t>& ball_bucket,
                                   std::vector<std::uint64_t>& ball_epoch,
                                   std::vector<Weight>& ball_radius) {
    const auto& grp = ctx.groups->of(source);
    const std::span<const GreedyCandidate> cands = ctx.candidates;

    // Oracle pass first (mirrors the serial loop's consult-before-exact
    // order); rejected candidates need no probe at all.
    std::size_t undecided = grp.size();
    if (ctx.oracle != nullptr) {
        for (std::uint32_t idx : grp) {
            const GreedyCandidate& c = cands[idx];
            if ((*ctx.oracle)(worker, c.u, c.v, ctx.stretch * c.weight)) {
                verdict_[idx] = PrefilterVerdict::kOracleReject;
                --undecided;
            }
        }
    }
    if (undecided == 0) return;

    if (undecided >= ctx.ball_share_min_group) {
        // One shared ball answers the whole group *exactly* at the
        // snapshot: settled => exact distance; unsettled => distance
        // exceeds the radius, which covers the group's largest threshold.
        const Weight radius = ctx.stretch * cands[grp.back()].weight;
        (void)ws.ball(view, source, radius);
        ++wc.dijkstra_runs;
        ++wc.balls_computed;
        for (std::uint32_t idx : grp) {
            if (verdict_[idx] == PrefilterVerdict::kOracleReject) continue;
            const GreedyCandidate& c = cands[idx];
            const Weight d = ws.settled_distance(c.v);
            if (d < bounds[idx]) bounds[idx] = d;
            if (d > ctx.stretch * c.weight) verdict_[idx] = PrefilterVerdict::kFarAtSnapshot;
        }
        // Publish the ball for the insertion loop's lazy revalidation: it
        // stays exact until the first post-snapshot insertion.
        ball_bucket[source] = ctx.ball_scope;
        ball_epoch[source] = ctx.snapshot_epoch;
        ball_radius[source] = radius;
        return;
    }

    for (std::size_t g = 0; g < grp.size(); ++g) {
        const std::uint32_t idx = grp[g];
        if (verdict_[idx] == PrefilterVerdict::kOracleReject) continue;
        const GreedyCandidate& c = cands[idx];
        const Weight threshold = ctx.stretch * c.weight;
        if (bounds[idx] <= threshold) continue;  // harvested by an earlier probe
        ++wc.dijkstra_runs;
        const Weight d = ctx.bidirectional
                             ? ws.distance_bidirectional(view, c.u, c.v, threshold)
                             : ws.distance(view, c.u, c.v, threshold);
        if (d <= threshold) {
            if (d < bounds[idx]) bounds[idx] = d;
        } else {
            verdict_[idx] = PrefilterVerdict::kFarAtSnapshot;
        }
        // Forward labels are realizable path lengths from the shared
        // source; harvest them as bounds for the group's later candidates
        // (all writes stay inside this group's candidate slots).
        for (std::size_t g2 = g + 1; g2 < grp.size(); ++g2) {
            const std::uint32_t idx2 = grp[g2];
            const Weight b = ws.last_forward_bound(cands[idx2].v);
            if (b < bounds[idx2]) bounds[idx2] = b;
        }
    }
}

template <class View>
void PrefilterStage::probe_one(DijkstraWorkspace& ws, WorkerCounters& wc, const View& view,
                               const PrefilterContext& ctx, std::size_t worker,
                               std::uint32_t idx, std::vector<Weight>& bounds) {
    const GreedyCandidate& c = ctx.candidates[idx];
    const Weight threshold = ctx.stretch * c.weight;
    if (ctx.oracle != nullptr && (*ctx.oracle)(worker, c.u, c.v, threshold)) {
        verdict_[idx] = PrefilterVerdict::kOracleReject;
        return;
    }
    ++wc.dijkstra_runs;
    const Weight d = ctx.bidirectional
                         ? ws.distance_bidirectional(view, c.u, c.v, threshold)
                         : ws.distance(view, c.u, c.v, threshold);
    if (d <= threshold) {
        if (d < bounds[idx]) bounds[idx] = d;
    } else {
        verdict_[idx] = PrefilterVerdict::kFarAtSnapshot;
    }
}

}  // namespace gsp
