// Stage 2 of the greedy pipeline: the parallel reject-only prefilter.
//
// Within one batch every expensive pass of the engine -- the optional
// cluster-oracle lookup, the bound-sketch consult, and the bounded
// (bi)directional distance probe -- is *read-only* over the batch-start
// spanner: the serialized insertion loop has not run yet, so the
// incremental view is immutable for the whole stage. That is the structure
// (after Alewijnse et al.'s bucketed greedy designs) that makes candidate
// prefiltering embarrassingly parallel: workers fan out over source groups
// (or fixed blocks when ball sharing is off), each with its own
// DijkstraWorkspace, and record per-candidate facts that are sound
// *forever*:
//
//  * a bound <= threshold is the length of a realizable path in a subgraph
//    of every future spanner -- the candidate is rejected, permanently;
//  * a probe that exceeds the threshold certifies "far at batch start"
//    (the far bit): the insertion loop may accept on that certificate
//    alone while no edge has been inserted since the snapshot, and must
//    re-verify otherwise.
//
// The stage-2 -> stage-3 handoff is deliberately *thin* (the memory-wall
// fix for metric workloads, where m = n^2 candidates): verdicts travel as
// two packed bitsets (one oracle-reject bit, one far-at-snapshot bit per
// candidate) and bounds as one bucket-local Weight slot addressed by the
// same bucket-local u32 indices SourceGroups hands out -- one bit + one
// u32 of addressing per candidate instead of per-candidate verdict/bound
// structs sized to the whole run. Bitset words are shared between tasks,
// so verdict writes are relaxed atomic fetch_or; the final word value is
// an OR of task-owned bits and therefore schedule-independent.
//
// Determinism: tasks are claimed dynamically for load balance, but every
// recorded fact lands in a task-owned slot (groups own disjoint candidate
// index sets and disjoint source slots for ball reuse), and bit ORs
// commute -- so the recorded facts, and therefore the final edge set, are
// independent of scheduling and thread count.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/bound_sketch.hpp"
#include "core/candidate_stream.hpp"
#include "core/greedy.hpp"
#include "core/prefilter_kernel.hpp"
#include "graph/dijkstra.hpp"
#include "graph/types.hpp"
#include "util/annotations.hpp"
#include "util/thread_pool.hpp"

namespace gsp {

/// Inputs of one batch's prefilter pass that are independent of the
/// adjacency view type.
struct PrefilterContext {
    std::span<const GreedyCandidate> candidates;
    /// The batch to prefilter (global candidate indices).
    CandidateBucket batch;
    /// Owning bucket's begin: the base every bucket-local index is
    /// relative to (bounds, groups, verdict bits).
    std::size_t base = 0;
    /// Grouping by source; null => ball sharing is off, partition the
    /// batch into fixed blocks and probe each candidate independently.
    const SourceGroups* groups = nullptr;
    double stretch = 1.0;
    bool bidirectional = true;
    std::size_t ball_share_min_group = 16;
    /// Cell-batched grouping is active: groups key on two-sided anchors
    /// (a member's probe target is its non-anchor endpoint, not always
    /// `.v`), and ball work is attributed to the cell_ball counters.
    bool anchored = false;
    /// Multi-target group probes are on: a group with >= 2 undecided
    /// members after the sketch/oracle pass is decided by ONE batched
    /// traversal through the PrefilterKernel seam instead of a drained
    /// ball or per-member point probes. The kernel's verdicts are exact
    /// on the same view, and the gate (undecided count) is a pure
    /// function of the batch -- so edge sets and decision stats stay
    /// bit-identical to the per-candidate path at every thread count.
    bool group_probe = false;
    /// Ball-reuse scope (the engine's batch sequence number): a published
    /// ball may only be revalidated by candidates of the same batch, whose
    /// bounds its harvest wrote.
    std::uint64_t ball_scope = 0;
    std::uint64_t snapshot_epoch = 0;
    /// Cross-bucket bound sketch, consulted before any probe (read-only
    /// during the fan-out; written only by the serial loop). Null when the
    /// sketch is disabled.
    const BoundSketch* sketch = nullptr;
    /// Optional concurrent reject-only oracle (worker, u, v, threshold);
    /// null when unset or gated off.
    const std::function<bool(std::size_t, VertexId, VertexId, Weight)>* oracle = nullptr;
    /// Certificate store of the speculative accept path (null = repair
    /// off). Every drained snapshot ball publishes its settled frontier
    /// here -- the exact snapshot-distance function phase-B repair seeds
    /// from. Writes are race-free: each source belongs to exactly one
    /// group, and groups are task-owned.
    CertificateStore* certificates = nullptr;
    /// Accept-heavy prediction for this batch: attempt a drained
    /// certificate ball for *every* group (point probes prove "far"
    /// cheaper, but leave nothing to repair when the certificate goes
    /// stale -- and in an accept-heavy batch it will). A deterministic,
    /// schedule-free decision.
    bool certificate_mode = false;
    /// Work budget (heap pushes) of a certificate-mode ball attempt when
    /// the serial cost model has not calibrated yet. On bounded-growth
    /// instances (the accept-heavy regime that matters) the drained ball
    /// stays far below any budget; on expander-like instances it blows
    /// through, the attempt aborts at bounded cost, and the group falls
    /// back to the non-certificate rules. Aborts are pure functions of
    /// the snapshot, so decisions stay schedule-independent; the engine
    /// watches the abort/publish ratio and turns certificate mode off for
    /// the run when aborts dominate.
    std::size_t cert_ball_fallback_work = 8192;
    /// Measured heap pushes of one serial point query (the engine's
    /// exponential moving average; 0 = not yet calibrated). When present,
    /// a group's certificate ball may spend the work of a few point
    /// queries per undecided candidate -- phase A work is parallel, and
    /// every certificate it buys removes a *serial* exact query from
    /// phase B.
    double point_cost_hint = 0.0;
    /// Hard cap on a certificate frontier's settled count (the publish
    /// cap; bigger frontiers could never be stored anyway).
    std::size_t cert_ball_cap = 4096;
    /// Vector kernel table for the group-probe traversals (null = the
    /// runtime-dispatched default). The engine resolves
    /// EngineTuning::SimdBackend once per run and threads the table here,
    /// so stage-2 workers pin exactly the backend the serial loop uses --
    /// a kScalar/kForced property-test run never mixes backends. The
    /// kernels are bit-exact across backends, so this (like every field
    /// above) cannot change a verdict.
    const simd::Kernels* simd = nullptr;
};

/// Owns the packed verdict bitsets and per-worker counters. One instance
/// per GreedyEngine, reused across runs.
class PrefilterStage {
public:
    /// Reset the per-worker counters for a run. The kernel gather scratch
    /// and pending-certificate buffers are sized here but never shrunk --
    /// resize, not assign, keeps a warm session's capacities.
    GSP_SERIAL_ONLY void begin_run(std::size_t workers) {
        counters_.assign(workers, WorkerCounters{});
        if (kernels_.size() < workers) kernels_.resize(workers);
        if (pending_.size() < workers) pending_.resize(workers);
    }

    /// Size and zero the verdict bitsets for one bucket (bucket-local bit
    /// per candidate; batches of the bucket write disjoint bit ranges).
    GSP_SERIAL_ONLY void begin_bucket(const CandidateBucket& bucket) {
        base_ = bucket.begin;
        const std::size_t words = (bucket.size() + 63) / 64;
        oracle_bits_.assign(words, 0);
        far_bits_.assign(words, 0);
    }

    /// Verdict reads for the serialized insertion loop (global candidate
    /// index; called strictly after the batch's fan-out joined).
    [[nodiscard]] bool oracle_reject(std::size_t i) const {
        return test(oracle_bits_, i - base_);
    }
    [[nodiscard]] bool far_at_snapshot(std::size_t i) const {
        return test(far_bits_, i - base_);
    }

    /// Current verdict-bitset footprint (for the handoff byte accounting).
    /// Logical words, not capacities: the counter must be a pure function
    /// of the run, independent of what earlier (larger) runs left behind
    /// in a warm session's buffers.
    [[nodiscard]] std::size_t verdict_bytes() const {
        return (oracle_bits_.size() + far_bits_.size()) * sizeof(std::uint64_t);
    }

    /// Fan one batch out over the pool. `bounds` collects realizable-path
    /// upper bounds (bucket-local slots); the ball_* arrays
    /// (source-indexed) record grown balls so the insertion loop's
    /// lazy-revalidation path can reuse them. Worker counters are merged
    /// into `stats` (sums, so the totals are schedule-independent).
    template <class View>
    GSP_SERIAL_ONLY void run_batch(ThreadPool& pool, DijkstraWorkspacePool& ws_pool, const View& view,
                   const PrefilterContext& ctx, std::vector<Weight>& bounds,
                   std::vector<std::uint64_t>& ball_bucket,
                   std::vector<std::uint64_t>& ball_epoch,
                   std::vector<Weight>& ball_radius, GreedyStats& stats);

private:
    /// Block width of the no-grouping partition: small enough to balance,
    /// big enough that the atomic task cursor is off the hot path. One
    /// 64-bit verdict word per block, so block tasks tend to own whole
    /// words.
    static constexpr std::size_t kBlock = 64;

    // One cache line per worker: the counters are written in the innermost
    // probe loop and must not false-share.
    struct alignas(64) WorkerCounters {
        std::size_t dijkstra_runs = 0;
        std::size_t balls_computed = 0;
        std::size_t sketch_hits = 0;
        std::size_t certs_published = 0;
        std::size_t cert_aborts = 0;
        std::size_t cell_balls = 0;
        std::size_t cell_ball_decisions = 0;
        std::size_t coarse_rejects = 0;
        std::size_t group_probes = 0;
        std::size_t group_probe_decisions = 0;
        std::size_t group_probe_early_exits = 0;
    };

    /// A backward frontier certificate waiting for the serial flush: it
    /// keys on a probe's *target* vertex, which another task may own, so
    /// workers buffer instead of publishing. Flush order is
    /// worker-then-probe order, but the flushed radii are pure functions
    /// of the batch and CertificateStore::publish keeps the larger
    /// same-scope radius -- the final store state is order-independent.
    struct PendingCert {
        VertexId source = kNoVertex;
        Weight radius = 0.0;
        std::vector<std::pair<VertexId, Weight>> settled;
    };

    /// Set a bucket-local verdict bit. Words are shared across tasks, so
    /// the write is a relaxed atomic OR (commutative => deterministic;
    /// the batch join publishes the result to stage 3).
    GSP_HOT_PATH static void set_bit(std::vector<std::uint64_t>& bits,
                                     std::size_t local) {
        std::atomic_ref<std::uint64_t> word(bits[local >> 6]);
        word.fetch_or(std::uint64_t{1} << (local & 63), std::memory_order_relaxed);
    }
    /// Read a bucket-local verdict bit; atomic so stage-2 tasks may read
    /// their own bits while other tasks write neighbors in the same word.
    /// (atomic_ref over const is C++26; the underlying word is a non-const
    /// member, so the cast is well-defined.)
    [[nodiscard]] GSP_HOT_PATH static bool test(
        const std::vector<std::uint64_t>& bits, std::size_t local) {
        std::atomic_ref<std::uint64_t> word(
            const_cast<std::uint64_t&>(bits[local >> 6]));
        return (word.load(std::memory_order_relaxed) >> (local & 63)) & 1u;
    }

    template <class View>
    GSP_HOT_PATH void process_group(DijkstraWorkspace& ws, WorkerCounters& wc, const View& view,
                       const PrefilterContext& ctx, std::size_t worker, VertexId source,
                       std::vector<Weight>& bounds,
                       std::vector<std::uint64_t>& ball_bucket,
                       std::vector<std::uint64_t>& ball_epoch,
                       std::vector<Weight>& ball_radius);

    template <class View>
    GSP_HOT_PATH void probe_one(DijkstraWorkspace& ws, WorkerCounters& wc, const View& view,
                   const PrefilterContext& ctx, std::size_t worker, std::uint32_t local,
                   std::vector<Weight>& bounds);

    /// Consult the cross-bucket sketch for one candidate: a persisted
    /// witness upper bound publishes a permanent reject through the bound
    /// slot, an epoch-valid lower bound publishes a far-at-snapshot bit.
    /// Returns true when the candidate is decided (no probe needed).
    GSP_DECISION_PURE GSP_HOT_PATH bool sketch_decides(
        const PrefilterContext& ctx, std::uint32_t local,
                        const GreedyCandidate& c, Weight threshold,
                        std::vector<Weight>& bounds, WorkerCounters& wc) {
        if (ctx.sketch == nullptr) return false;
        const Weight ub = ctx.sketch->upper_bound(c.u, c.v);
        if (ub <= threshold) {
            if (ub < bounds[local]) bounds[local] = ub;
            ++wc.sketch_hits;
            return true;
        }
        // Via-landmark coarse reject (mirrors the serial loop): two
        // witness paths through a common landmark concatenate into a
        // sound upper bound -- the hit path on streams that emit each
        // pair exactly once, where the direct consult above cannot hit.
        const Weight via = ctx.sketch->via_upper_bound(c.u, c.v);
        if (via <= threshold) {
            if (via < bounds[local]) bounds[local] = via;
            ++wc.coarse_rejects;
            return true;
        }
        // In certificate mode the epoch-tagged shortcut is a bad trade:
        // the batch is predicted to insert, which will stale the sketch
        // fact and force a full-query fallback -- where the ball the
        // shortcut skipped would have left a repairable certificate.
        if (!ctx.certificate_mode &&
            ctx.sketch->lower_bound_at(c.u, c.v, ctx.snapshot_epoch) > threshold) {
            set_bit(far_bits_, local);
            ++wc.sketch_hits;
            return true;
        }
        return false;
    }

    std::size_t base_ = 0;                   ///< bucket begin of the bitsets
    std::vector<std::uint64_t> oracle_bits_; ///< oracle certified a witness path
    std::vector<std::uint64_t> far_bits_;    ///< probe exceeded threshold at snapshot
    std::vector<WorkerCounters> counters_;
    std::vector<PrefilterKernel> kernels_;   ///< per-worker gather scratch
    std::vector<std::vector<PendingCert>> pending_;  ///< per-worker backward frontiers
};

template <class View>
GSP_SERIAL_ONLY void PrefilterStage::run_batch(
    ThreadPool& pool, DijkstraWorkspacePool& ws_pool,
                               const View& view, const PrefilterContext& ctx,
                               std::vector<Weight>& bounds,
                               std::vector<std::uint64_t>& ball_bucket,
                               std::vector<std::uint64_t>& ball_epoch,
                               std::vector<Weight>& ball_radius, GreedyStats& stats) {
    const std::size_t tasks =
        ctx.groups != nullptr
            ? ctx.groups->sources().size()
            : (ctx.batch.size() + kBlock - 1) / kBlock;
    pool.run(tasks, [&](std::size_t worker, std::size_t task) {
        DijkstraWorkspace& ws = ws_pool.at(worker);
        WorkerCounters& wc = counters_[worker];
        if (ctx.groups != nullptr) {
            process_group(ws, wc, view, ctx, worker, ctx.groups->sources()[task], bounds,
                          ball_bucket, ball_epoch, ball_radius);
        } else {
            const std::size_t first = ctx.batch.begin + task * kBlock;
            const std::size_t last = std::min(first + kBlock, ctx.batch.end);
            for (std::size_t i = first; i < last; ++i) {
                probe_one(ws, wc, view, ctx, worker,
                          static_cast<std::uint32_t>(i - ctx.base), bounds);
            }
        }
    });
    // Serial flush of the worker-buffered backward frontiers (see
    // PendingCert): after the join every task's writes are visible, and
    // publishing here keeps the store's per-source slots single-writer.
    if (ctx.certificates != nullptr) {
        for (std::vector<PendingCert>& worker_pending : pending_) {
            for (const PendingCert& p : worker_pending) {
                // Counted at buffer time; keep-larger makes the resulting
                // store state independent of this loop's order.
                ctx.certificates->publish(p.source, ctx.ball_scope, ctx.snapshot_epoch,
                                          p.radius, p.settled);
            }
            worker_pending.clear();
        }
    }
    for (WorkerCounters& wc : counters_) {
        stats.dijkstra_runs += wc.dijkstra_runs;
        stats.balls_computed += wc.balls_computed;
        stats.sketch_hits += wc.sketch_hits;
        stats.certs_published += wc.certs_published;
        stats.cert_ball_aborts += wc.cert_aborts;
        stats.cell_balls += wc.cell_balls;
        stats.cell_ball_decisions += wc.cell_ball_decisions;
        stats.coarse_rejects += wc.coarse_rejects;
        stats.group_probes += wc.group_probes;
        stats.group_probe_decisions += wc.group_probe_decisions;
        stats.group_probe_early_exits += wc.group_probe_early_exits;
        wc = WorkerCounters{};
    }
}

template <class View>
GSP_HOT_PATH void PrefilterStage::process_group(
    DijkstraWorkspace& ws, WorkerCounters& wc,
                                   const View& view, const PrefilterContext& ctx,
                                   std::size_t worker, VertexId source,
                                   std::vector<Weight>& bounds,
                                   std::vector<std::uint64_t>& ball_bucket,
                                   std::vector<std::uint64_t>& ball_epoch,
                                   std::vector<Weight>& ball_radius) {
    const auto& grp = ctx.groups->of(source);
    const std::span<const GreedyCandidate> cands = ctx.candidates;
    const auto cand_at = [&](std::uint32_t local) -> const GreedyCandidate& {
        return cands[ctx.base + local];
    };

    // Cheap certificate passes first (mirror the serial loop's
    // consult-before-exact order): the cross-bucket sketch, then the
    // oracle; candidates they decide need no probe at all.
    std::size_t undecided = grp.size();
    for (std::uint32_t local : grp) {
        const GreedyCandidate& c = cand_at(local);
        const Weight threshold = ctx.stretch * c.weight;
        if (sketch_decides(ctx, local, c, threshold, bounds, wc)) {
            --undecided;
            continue;
        }
        if (ctx.oracle != nullptr &&
            (*ctx.oracle)(worker, c.u, c.v, threshold)) {
            set_bit(oracle_bits_, local);
            --undecided;
        }
    }
    if (undecided == 0) return;

    // The batched group probe: one traversal from the shared source
    // carries every undecided member's target and decision radius,
    // replacing the drained ball AND the per-member fall-through probes.
    // It terminates the moment the last member is decided, so it usually
    // drains a fraction of the full-radius ball's area -- and its settled
    // frontier is still publishable as a repair certificate, complete out
    // to the probe's certified radius. A singleton group keeps the point
    // probe below (meet-in-the-middle beats a one-sided traversal when
    // there is nothing to amortize). The gate reads only task-owned state
    // (sketch/oracle verdicts of this group), so it is schedule-free.
    if (ctx.group_probe && undecided >= 2) {
        BatchedProbe& probe = ws.batched();
        probe.set_kernels(ctx.simd);  // pin the run's resolved backend
        const auto is_undecided = [&](std::uint32_t local) {
            if (oracle_reject(ctx.base + local) || far_at_snapshot(ctx.base + local)) {
                return false;
            }
            return bounds[local] > ctx.stretch * cand_at(local).weight;
        };
        const PrefilterKernel::Outcome outcome = kernels_[worker].decide_group(
            probe, view, source, cands, ctx.base, grp, ctx.stretch, is_undecided,
            bounds, [&](std::uint32_t local) { set_bit(far_bits_, local); });
        ++wc.dijkstra_runs;
        ++wc.group_probes;
        wc.group_probe_decisions += outcome.probed;
        if (outcome.early_exit) ++wc.group_probe_early_exits;
        if (ctx.certificates != nullptr &&
            ctx.certificates->publish(source, ctx.ball_scope, ctx.snapshot_epoch,
                                      outcome.certified_radius, probe.settled())) {
            ++wc.certs_published;
        }
        // The frontier doubles as a published ball for the insertion
        // loop's lazy revalidation, valid out to the certified radius.
        ball_bucket[source] = ctx.ball_scope;
        ball_epoch[source] = ctx.snapshot_epoch;
        ball_radius[source] = outcome.certified_radius;
        return;
    }

    // The radius that covers the group's largest threshold: one drained
    // ball at this radius answers every candidate of the group *exactly*
    // at the snapshot (settled => exact distance; unsettled => distance
    // exceeds the radius), and its settled frontier is the phase-A
    // certificate phase B repairs through.
    const Weight radius = ctx.stretch * cand_at(grp.back()).weight;
    const auto harvest_ball = [&](std::span<const std::pair<VertexId, Weight>> settled) {
        ++wc.balls_computed;
        if (ctx.anchored) ++wc.cell_balls;
        for (std::uint32_t local : grp) {
            if (oracle_reject(ctx.base + local)) continue;
            const GreedyCandidate& c = cand_at(local);
            // The drained ball decides every member at the snapshot:
            // settled targets get their exact distance as a bound,
            // unsettled ones are certified further than the radius.
            const Weight d = ws.settled_distance(SourceGroups::other_of(c, source));
            if (d < bounds[local]) bounds[local] = d;
            if (d > ctx.stretch * c.weight) set_bit(far_bits_, local);
            if (ctx.anchored) ++wc.cell_ball_decisions;
        }
        if (ctx.certificates != nullptr &&
            ctx.certificates->publish(source, ctx.ball_scope, ctx.snapshot_epoch, radius,
                                      settled)) {
            ++wc.certs_published;
        }
        // Publish the ball for the insertion loop's lazy revalidation: it
        // stays exact until the first post-snapshot insertion.
        ball_bucket[source] = ctx.ball_scope;
        ball_epoch[source] = ctx.snapshot_epoch;
        ball_radius[source] = radius;
    };

    // Certificate mode: attempt the capped drained ball for every group
    // (a point probe proves "far" cheaper, but leaves nothing for phase B
    // to repair once the batch's insertions stale the certificate). An
    // abort means the frontier blew past the cap -- an expander-like
    // neighborhood where the certificate cannot pay -- and the group
    // falls through to the non-certificate rules below.
    if (ctx.certificate_mode) {
        const std::size_t budget =
            ctx.point_cost_hint > 0.0
                ? static_cast<std::size_t>(
                      ctx.point_cost_hint *
                      (2.0 + 2.0 * static_cast<double>(undecided)))
                : ctx.cert_ball_fallback_work;
        ++wc.dijkstra_runs;
        const auto* settled =
            ws.ball_bounded(view, source, radius, budget, ctx.cert_ball_cap);
        if (settled != nullptr) {
            harvest_ball(*settled);
            return;
        }
        ++wc.cert_aborts;
    }

    if (undecided >= ctx.ball_share_min_group) {
        const auto& settled = ws.ball(view, source, radius);
        ++wc.dijkstra_runs;
        harvest_ball(settled);
        return;
    }

    for (std::size_t g = 0; g < grp.size(); ++g) {
        const std::uint32_t local = grp[g];
        if (oracle_reject(ctx.base + local) || far_at_snapshot(ctx.base + local)) continue;
        const GreedyCandidate& c = cand_at(local);
        const VertexId other = SourceGroups::other_of(c, source);
        const Weight threshold = ctx.stretch * c.weight;
        if (bounds[local] <= threshold) continue;  // harvested by an earlier probe
        ++wc.dijkstra_runs;
        // With repair on, a bidirectional probe's two settled frontiers
        // are certificates in their own right: each side is exact and
        // complete out to its exit radius, and on a far probe the radii
        // sum past the threshold -- the two-sided repair seeds that turn
        // the accept-heavy path's repair_fallbacks into exact repairs.
        const bool collect = ctx.certificates != nullptr && ctx.bidirectional;
        const Weight d = ctx.bidirectional
                             ? ws.distance_bidirectional(view, source, other, threshold,
                                                         collect)
                             : ws.distance(view, source, other, threshold);
        if (d <= threshold) {
            if (d < bounds[local]) bounds[local] = d;
        } else {
            set_bit(far_bits_, local);
            if (collect) {
                // The forward frontier keys on this task's own source:
                // publish directly (keep-larger resolves repeat probes).
                if (ctx.certificates->publish(source, ctx.ball_scope,
                                              ctx.snapshot_epoch,
                                              ws.forward_settled_radius(),
                                              ws.settled_forward())) {
                    ++wc.certs_published;
                }
                // The backward frontier keys on the target -- another
                // task's slot: buffer for the post-join serial flush.
                // Truncated to its certified radius the content is a pure
                // function of (view, target, radius) -- the exact ball
                // around the target -- so equal-radius flush ties are
                // content-identical and the flushed store state is
                // order-independent. Counted here (task-owned, hence
                // schedule-free), not at flush time, where keep-larger
                // success would depend on flush order.
                const auto& bwd = ws.settled_backward();
                const Weight rb = ws.backward_settled_radius();
                const auto bwd_end = std::partition_point(
                    bwd.begin(), bwd.end(),
                    [rb](const std::pair<VertexId, Weight>& e) { return e.second <= rb; });
                if (static_cast<std::size_t>(bwd_end - bwd.begin()) <= ctx.cert_ball_cap) {
                    pending_[worker].push_back(PendingCert{other, rb, {bwd.begin(), bwd_end}});
                    ++wc.certs_published;
                }
            }
        }
        // Forward labels are realizable path lengths from the shared
        // anchor; harvest them as bounds for the group's later candidates
        // (all writes stay inside this group's candidate slots).
        for (std::size_t g2 = g + 1; g2 < grp.size(); ++g2) {
            const std::uint32_t local2 = grp[g2];
            const Weight b = ws.last_forward_bound(SourceGroups::other_of(cand_at(local2), source));
            if (b < bounds[local2]) bounds[local2] = b;
        }
    }
}

template <class View>
GSP_HOT_PATH void PrefilterStage::probe_one(
    DijkstraWorkspace& ws, WorkerCounters& wc, const View& view,
                               const PrefilterContext& ctx, std::size_t worker,
                               std::uint32_t local, std::vector<Weight>& bounds) {
    const GreedyCandidate& c = ctx.candidates[ctx.base + local];
    const Weight threshold = ctx.stretch * c.weight;
    if (sketch_decides(ctx, local, c, threshold, bounds, wc)) return;
    if (ctx.oracle != nullptr && (*ctx.oracle)(worker, c.u, c.v, threshold)) {
        set_bit(oracle_bits_, local);
        return;
    }
    ++wc.dijkstra_runs;
    const Weight d = ctx.bidirectional
                         ? ws.distance_bidirectional(view, c.u, c.v, threshold)
                         : ws.distance(view, c.u, c.v, threshold);
    if (d <= threshold) {
        if (d < bounds[local]) bounds[local] = d;
    } else {
        set_bit(far_bits_, local);
    }
}

}  // namespace gsp
