// The narrow seam between the prefilter and the batched group-probe
// kernel (ROADMAP direction 4's accelerator slot).
//
// Everything that crosses this boundary is plain-old-data in SoA form:
//
//   in:  one source vertex, the group's target vertices and decision
//        radii as two parallel contiguous arrays (radii nondecreasing --
//        free, because group members arrive in weight order);
//   out: per-slot verdicts (far bit OR exact distance <= radius), the
//        settled frontier as (vertex, distance) pairs, and the frontier's
//        completeness radius.
//
// The contract an alternative backend must honor to slot in here is
// exactly the verdict-bitset contract of core/prefilter_stage.hpp:
//   * a returned bound is the length of a realizable path on the probed
//     view (sound forever as a reject witness);
//   * a far verdict certifies d(source, target) > radius ON THAT VIEW
//     (stage 3 treats it as "far at snapshot": accept-on-certificate only
//     while nothing was inserted since, re-verify otherwise);
//   * the settled list is exact and complete out to certified_radius
//     (absence certifies distance > radius) -- what makes the frontier
//     publishable as a phase-A repair certificate.
// Verdicts must be pure functions of (view, source, targets, radii):
// the stage's determinism argument (schedule-independent edge sets and
// decision stats) rests on it. Nothing in the contract requires a
// sequential traversal -- a wavefront/GPU relaxation that returns exact
// bounded distances satisfies it verbatim.
//
// This class owns only the gather scratch (group member -> SoA slot);
// the traversal state lives in the BatchedProbe the caller passes in
// (one per worker, pooled with its DijkstraWorkspace).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/candidate_stream.hpp"
#include "graph/batched_probe.hpp"
#include "graph/types.hpp"
#include "util/annotations.hpp"

namespace gsp {

class PrefilterKernel {
public:
    struct Outcome {
        std::size_t probed = 0;       ///< members the kernel carried
        std::size_t far_members = 0;  ///< of those, decided far
        std::size_t undecided_members = 0;  ///< cap fall-throughs, still open
        Weight certified_radius = 0.0;
        bool early_exit = false;
        bool ran = false;  ///< false when no member was still undecided
    };

    /// Decide every still-undecided member of `grp` (bucket-local indices
    /// into `candidates` at `base`, anchored at `source`) with one batched
    /// probe on `view`. `undecided(local)` filters members already decided
    /// upstream (sketch, oracle, earlier harvests); settled members write
    /// their exact distance into `bounds[local]`, far members are reported
    /// through `mark_far(local)` -- the caller owns the verdict encoding
    /// (stage 2 sets far bits; the serial loop folds the verdict into its
    /// accept flag).
    ///
    /// `radius_cap` bounds the traversal below the largest decision
    /// radius (BatchedProbe's reject-radius shave); members it leaves
    /// undecided are reported in Outcome::undecided_members and stay the
    /// caller's to finish. Production callers run uncapped: measured on
    /// the uniform-metric and random-graph workloads, the far-sweep's
    /// amortization of the accept side (one shared drain certifies every
    /// far member) beats the shave -- each capped-out accept costs a
    /// full-threshold point probe, which is exactly the expensive query
    /// the group probe exists to batch away.
    ///
    /// `goal` (optional): a lower-bound oracle `goal(x, t) <= d(x, t)`
    /// enables the probe's goal-directed tail pruning (BatchedProbe's
    /// run_goal). Verdicts are unchanged; the settled harvest past
    /// probe.settled_exact_radius() degrades to upper bounds.
    template <class View, class Undecided, class FarSink, class GoalLb = std::nullptr_t>
    GSP_DECISION_PURE GSP_HOT_PATH Outcome decide_group(BatchedProbe& probe, const View& view, VertexId source,
                         std::span<const GreedyCandidate> candidates, std::size_t base,
                         const std::vector<std::uint32_t>& grp, double stretch,
                         Undecided&& undecided, std::vector<Weight>& bounds,
                         FarSink&& mark_far, Weight radius_cap = kInfiniteWeight,
                         GoalLb goal = nullptr) {
        Outcome out;
        locals_.clear();
        targets_.clear();
        radii_.clear();
        for (const std::uint32_t local : grp) {
            if (!undecided(local)) continue;
            const GreedyCandidate& c = candidates[base + local];
            locals_.push_back(local);
            targets_.push_back(SourceGroups::other_of(c, source));
            radii_.push_back(stretch * c.weight);
        }
        if (locals_.empty()) return out;

        if constexpr (std::is_same_v<GoalLb, std::nullptr_t>) {
            probe.run(view, source, targets_, radii_, radius_cap);
        } else {
            probe.run_goal(view, source, targets_, radii_, radius_cap, goal);
        }

        for (std::size_t j = 0; j < locals_.size(); ++j) {
            const std::uint32_t local = locals_[j];
            if (probe.target_far(j)) {
                mark_far(local);
                ++out.far_members;
            } else if (!probe.target_undecided(j)) {
                const Weight d = probe.target_bound(j);
                if (d < bounds[local]) bounds[local] = d;
            } else {
                // Cap fall-through. One salvage attempt before giving the
                // member back: an in-queue label at early exit is still a
                // realizable path length, and if it already fits the
                // decision radius it is a sound reject witness.
                const Weight lb = probe.label_bound(targets_[j]);
                if (lb <= radii_[j]) {
                    if (lb < bounds[local]) bounds[local] = lb;
                } else {
                    ++out.undecided_members;
                }
            }
        }
        out.probed = locals_.size();
        out.certified_radius = probe.certified_radius();
        out.early_exit = probe.early_exit();
        out.ran = true;
        return out;
    }

private:
    std::vector<std::uint32_t> locals_;
    std::vector<VertexId> targets_;
    std::vector<Weight> radii_;
};

}  // namespace gsp
