#include "core/approx_greedy.hpp"

#include "api/candidate_source.hpp"
#include "api/session.hpp"

namespace gsp {

ApproxGreedyResult approx_greedy_spanner(const MetricSpace& m, double epsilon) {
    SpannerSession session;
    BuildOptions options;
    options.approx.epsilon = epsilon;
    return approx_greedy_build(session, m, options);
}

#ifndef GSP_NO_DEPRECATED
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
ApproxGreedyResult approx_greedy_spanner(const MetricSpace& m,
                                         const ApproxGreedyOptions& options) {
    SpannerSession session;
    BuildOptions build;
    build.approx.epsilon = options.epsilon;
    build.approx.theta_cones_override = options.theta_cones_override;
    build.approx.use_cluster_oracle = options.use_cluster_oracle;
    build.approx.net_degree_cap = options.net_degree_cap;
    build.engine = options.engine;
    return approx_greedy_build(session, m, build);
}
#pragma GCC diagnostic pop
#endif  // GSP_NO_DEPRECATED

}  // namespace gsp
