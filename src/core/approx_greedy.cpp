#include "core/approx_greedy.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cluster/cluster_graph.hpp"
#include "core/greedy_engine.hpp"
#include "graph/dijkstra.hpp"
#include "metric/euclidean.hpp"
#include "spanners/net_spanner.hpp"
#include "spanners/theta_graph.hpp"
#include "util/timer.hpp"

namespace gsp {

namespace {

/// Smallest cone count whose guaranteed theta-graph stretch is <= budget.
std::size_t cones_for_budget(double budget) {
    for (std::size_t k = 8; k <= 4096; ++k) {
        if (theta_graph_stretch_bound(k) <= budget) return k;
    }
    throw std::invalid_argument("approx_greedy: stretch budget too tight for theta base");
}

Graph build_base(const MetricSpace& m, const ApproxGreedyOptions& options, double t_base) {
    const auto* e = dynamic_cast<const EuclideanMetric*>(&m);
    if (e != nullptr && e->dim() == 2) {
        const std::size_t k = options.theta_cones_override != 0
                                  ? options.theta_cones_override
                                  : cones_for_budget(t_base);
        return theta_graph_sweep(*e, k);
    }
    // Generic doubling metric: net-tree spanner with budget eps' = t_base - 1.
    return net_spanner(m, NetSpannerOptions{.epsilon = t_base - 1.0,
                                            .degree_cap = options.net_degree_cap});
}

}  // namespace

ApproxGreedyResult approx_greedy_spanner(const MetricSpace& m,
                                         const ApproxGreedyOptions& options) {
    const double eps = options.epsilon;
    if (!(eps > 0.0) || eps > 1.0) {
        throw std::invalid_argument("approx_greedy_spanner: epsilon must be in (0, 1]");
    }
    if (!(options.bucket_ratio > 1.0)) {
        throw std::invalid_argument("approx_greedy_spanner: bucket_ratio must be > 1");
    }
    const Timer total_timer;
    const std::size_t n = m.size();

    ApproxGreedyResult result{.spanner = Graph(n), .base = Graph(n)};
    // Split the stretch budget: (1 + eps/3) for the base, the rest for the
    // simulation; (1 + eps/3) * t_sim = 1 + eps exactly.
    result.t_base = 1.0 + eps / 3.0;
    result.t_sim = (1.0 + eps) / result.t_base;
    if (n <= 1) {
        result.seconds_total = total_timer.seconds();
        return result;
    }

    {
        const Timer base_timer;
        result.base = build_base(m, options, result.t_base);
        result.seconds_base = base_timer.seconds();
    }
    const Graph& base = result.base;
    Graph& h = result.spanner;

    // Candidate edges of G' in non-decreasing weight order.
    std::vector<EdgeId> order(base.num_edges());
    for (EdgeId i = 0; i < base.num_edges(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
        const Edge& ea = base.edge(a);
        const Edge& eb = base.edge(b);
        return std::tie(ea.weight, ea.u, ea.v) < std::tie(eb.weight, eb.u, eb.v);
    });

    // E0: edges of weight <= D/n go straight to the output.
    Weight max_w = 0.0;
    for (const Edge& e : base.edges()) max_w = std::max(max_w, e.weight);
    const Weight light_threshold = max_w / static_cast<double>(n);
    std::size_t cursor = 0;
    while (cursor < order.size() && base.edge(order[cursor]).weight <= light_threshold) {
        const Edge& e = base.edge(order[cursor]);
        h.add_edge(e.u, e.v, e.weight);
        ++cursor;
    }
    result.light_edges = cursor;

    // Greedy simulation over the remaining edges: the shared GreedyEngine
    // runs the bucket loop; the cluster oracle rides along as a reject-only
    // prefilter rebuilt at each bucket boundary (reusing one Dijkstra
    // workspace across rebuilds).
    std::vector<GreedyCandidate> candidates;
    candidates.reserve(order.size() - cursor);
    for (; cursor < order.size(); ++cursor) {
        const Edge& e = base.edge(order[cursor]);
        candidates.push_back(GreedyCandidate{e.u, e.v, e.weight});
    }

    GreedyEngineOptions engine_options;
    engine_options.stretch = result.t_sim;
    engine_options.bucket_ratio = options.bucket_ratio;
    engine_options.num_threads = options.num_threads;
    DijkstraWorkspace oracle_ws(n);
    std::unique_ptr<ClusterGraph> oracle;
    std::vector<ClusterGraph::QueryScratch> oracle_scratch;
    if (options.use_cluster_oracle) {
        engine_options.on_bucket = [&](const Graph& spanner, Weight bucket_lo) {
            // Entering a new bucket: rebuild the coarse oracle at this scale
            // (serial -- the engine fans stage 2 out only after this).
            oracle = std::make_unique<ClusterGraph>(spanner, (eps / 16.0) * bucket_lo,
                                                    &oracle_ws);
        };
        // Sound reject-only fast path: a bound within the threshold is the
        // length of a realizable witness path. The engine counts rejects
        // (stats.prefilter_rejects) and gates the oracle off mid-run if its
        // measured cost exceeds the exact work it saves.
        engine_options.prefilter = [&](VertexId u, VertexId v, Weight threshold) {
            return oracle->upper_bound_distance(u, v, threshold) <= threshold;
        };
        // Concurrent variant for the parallel prefilter stage: one query
        // scratch per worker, sized after the engine resolves its pool.
        engine_options.concurrent_prefilter = [&oracle, &oracle_scratch](
                                                  std::size_t worker, VertexId u,
                                                  VertexId v, Weight threshold) {
            return oracle->upper_bound_distance(u, v, threshold,
                                                oracle_scratch[worker]) <= threshold;
        };
    }

    GreedyEngine engine(n, std::move(engine_options));
    oracle_scratch.resize(engine.num_workers());
    GreedyStats sim_stats;
    result.spanner = engine.run(std::move(h), candidates, &sim_stats);
    result.buckets = sim_stats.buckets;
    result.oracle_rejects = sim_stats.prefilter_rejects;
    // Candidates that got past the oracle were decided by the exact kernel
    // (cached exact bounds included).
    result.exact_queries = sim_stats.edges_examined - result.oracle_rejects;

    result.seconds_total = total_timer.seconds();
    return result;
}

}  // namespace gsp
