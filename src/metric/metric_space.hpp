// Finite metric spaces.
//
// The paper's Sections 4-5 quantify over metric spaces (doubling metrics in
// particular). `MetricSpace` is the minimal interface the algorithms need:
// a point count and a distance oracle. Implementations: EuclideanMetric,
// MatrixMetric (explicit matrix, used for adversarial instances),
// GraphMetric (shortest-path closure M_G, used by Lemma 7/8 machinery).
#pragma once

#include <cstddef>
#include <memory>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

/// Abstract finite metric space over points {0, ..., size()-1}.
class MetricSpace {
public:
    virtual ~MetricSpace() = default;

    /// Number of points.
    [[nodiscard]] virtual std::size_t size() const = 0;

    /// Distance between points i and j. Must be symmetric, non-negative,
    /// zero iff i == j, and satisfy the triangle inequality.
    [[nodiscard]] virtual Weight distance(VertexId i, VertexId j) const = 0;
};

/// Result of checking the metric axioms exhaustively (O(n^3); small n only).
struct MetricCheck {
    bool symmetric = true;
    bool positive = true;         ///< d(i,j) > 0 for i != j, d(i,i) == 0
    bool triangle = true;         ///< d(i,k) <= d(i,j) + d(j,k) (within tolerance)
    double worst_violation = 0.0; ///< largest triangle-inequality excess found

    [[nodiscard]] bool ok() const { return symmetric && positive && triangle; }
};

/// Exhaustively verify the metric axioms. `tolerance` absorbs floating-point
/// noise in derived metrics.
MetricCheck check_metric(const MetricSpace& m, double tolerance = 1e-9);

/// The complete weighted graph over the metric's points: edge (i, j) with
/// weight d(i, j) for every pair. Quadratic; used for running graph
/// algorithms (Baswana-Sen, exact search) on metric inputs.
Graph complete_graph(const MetricSpace& m);

/// Weight of the MST of the metric (Prim on the implicit complete graph;
/// O(n^2) time, O(n) memory -- no materialized complete graph).
Weight metric_mst_weight(const MetricSpace& m);

/// Edges of the metric MST (same algorithm as metric_mst_weight).
std::vector<Edge> metric_mst_edges(const MetricSpace& m);

/// Largest pairwise distance (O(n^2)).
Weight metric_diameter(const MetricSpace& m);

/// Smallest nonzero pairwise distance (O(n^2)).
Weight metric_min_distance(const MetricSpace& m);

}  // namespace gsp
