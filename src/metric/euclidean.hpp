// Euclidean point sets as metric spaces.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "metric/metric_space.hpp"
#include "simd/simd.hpp"

namespace gsp {

/// A point set in R^d with the Euclidean (L2) metric. Points are stored in a
/// flat row-major array (point i occupies [i*d, (i+1)*d)).
class EuclideanMetric final : public MetricSpace {
public:
    /// Build from flat coordinates; coords.size() must be a multiple of dim.
    EuclideanMetric(std::size_t dim, std::vector<double> coords);

    [[nodiscard]] std::size_t size() const override { return coords_.size() / dim_; }
    [[nodiscard]] Weight distance(VertexId i, VertexId j) const override;

    [[nodiscard]] std::size_t dim() const { return dim_; }

    /// Coordinates of point i (span of length dim()).
    [[nodiscard]] std::span<const double> point(VertexId i) const;

    /// Squared distance (avoids the sqrt where only comparisons matter).
    [[nodiscard]] double squared_distance(VertexId i, VertexId j) const;

    /// Batched distances: out[i] = distance(src, targets[i]), bitwise (the
    /// vector lanes and the scalar loop evaluate the same mul/add/sqrt
    /// tree; the build forbids FMA contraction project-wide). Runs through
    /// the given kernel table for dim() == 2, the scalar virtual-call loop
    /// otherwise. The A* goal oracle's bound pass and candidate-weight
    /// evaluation both batch through here.
    void distances_from(VertexId src, std::span<const VertexId> targets, Weight* out,
                        const simd::Kernels& k) const;

private:
    std::size_t dim_;
    std::vector<double> coords_;
};

/// Convenience: 2D points from (x, y) pairs.
EuclideanMetric make_euclidean_2d(std::span<const std::pair<double, double>> pts);

}  // namespace gsp
