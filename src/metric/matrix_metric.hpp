// Explicit distance-matrix metric spaces.
//
// Adversarial instances -- in particular the low-doubling-dimension metric
// on which the greedy spanner has degree n-1 (Section 5 of the paper, citing
// [HM06, Smi09]) -- are abstract metrics that are not realizable as point
// sets, so they are specified as explicit matrices and validated here.
#pragma once

#include <vector>

#include "metric/metric_space.hpp"

namespace gsp {

/// Metric given by an explicit symmetric n x n distance matrix.
class MatrixMetric final : public MetricSpace {
public:
    /// Takes a full row-major n x n matrix. Throws if the matrix is not
    /// square, not symmetric, has nonzero diagonal, nonpositive off-diagonal
    /// entries, or (when validate_triangle) violates the triangle inequality.
    explicit MatrixMetric(std::vector<std::vector<Weight>> matrix,
                          bool validate_triangle = true);

    [[nodiscard]] std::size_t size() const override { return matrix_.size(); }
    [[nodiscard]] Weight distance(VertexId i, VertexId j) const override {
        return matrix_[i][j];
    }

private:
    std::vector<std::vector<Weight>> matrix_;
};

}  // namespace gsp
