#include "metric/graph_metric.hpp"

#include <stdexcept>

#include "graph/shortest_paths.hpp"

namespace gsp {

GraphMetric::GraphMetric(const Graph& g) : dist_(all_pairs_dijkstra(g)) {
    for (const auto& row : dist_) {
        for (Weight d : row) {
            if (d == kInfiniteWeight) {
                throw std::invalid_argument("GraphMetric: graph is disconnected");
            }
        }
    }
}

}  // namespace gsp
