#include "metric/matrix_metric.hpp"

#include <cmath>
#include <stdexcept>

namespace gsp {

MatrixMetric::MatrixMetric(std::vector<std::vector<Weight>> matrix, bool validate_triangle)
    : matrix_(std::move(matrix)) {
    const std::size_t n = matrix_.size();
    for (const auto& row : matrix_) {
        if (row.size() != n) throw std::invalid_argument("MatrixMetric: matrix not square");
    }
    constexpr double kTol = 1e-12;
    for (std::size_t i = 0; i < n; ++i) {
        if (matrix_[i][i] != 0.0) {
            throw std::invalid_argument("MatrixMetric: nonzero diagonal");
        }
        for (std::size_t j = i + 1; j < n; ++j) {
            if (std::abs(matrix_[i][j] - matrix_[j][i]) > kTol) {
                throw std::invalid_argument("MatrixMetric: not symmetric");
            }
            if (!(matrix_[i][j] > 0.0) || !std::isfinite(matrix_[i][j])) {
                throw std::invalid_argument("MatrixMetric: nonpositive or nonfinite entry");
            }
        }
    }
    if (validate_triangle) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (j == i) continue;
                for (std::size_t k = 0; k < n; ++k) {
                    if (k == i || k == j) continue;
                    if (matrix_[i][k] > matrix_[i][j] + matrix_[j][k] + kTol) {
                        throw std::invalid_argument(
                            "MatrixMetric: triangle inequality violated");
                    }
                }
            }
        }
    }
}

}  // namespace gsp
