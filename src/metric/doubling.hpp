// Doubling-dimension estimation and packing checks.
//
// Theorem 5 / Observation 9 of the paper are statements about the doubling
// dimension ddim(M): every ball of radius R can be covered by 2^{ddim}
// balls of radius R/2. Exact ddim of a finite metric is NP-hard, so we
// compute a certified *upper bound* via greedy ball covers (greedy set
// cover is within a log factor, and for our structured instances the greedy
// bound is what the experiments need). Observation 9 (ddim(M_H) <= 2*ddim(M))
// is exercised as a test using these estimates.
#pragma once

#include <cstddef>

#include "metric/metric_space.hpp"

namespace gsp {

struct DoublingEstimate {
    /// Largest (over sampled balls) number of radius-R/2 balls that the
    /// greedy cover needed; the doubling constant lambda is <= this bound's
    /// exact counterpart, and >= the packing-based lower bound below.
    std::size_t cover_upper = 0;
    /// Largest (R/2)-separated subset found inside a sampled ball of radius
    /// R; any half-radius cover needs at least this many balls, so
    /// log2(pack_lower) lower-bounds ddim.
    std::size_t pack_lower = 0;

    [[nodiscard]] double ddim_upper() const;
    [[nodiscard]] double ddim_lower() const;
};

/// Estimate the doubling constant by scanning balls B(p, R) for every point
/// p and a geometric ladder of radii R, greedily covering each with
/// half-radius balls *centered at points of the ball* and greedily packing
/// (R/2)-separated points. Exhaustive over centers: O(n^2 log Delta)-ish;
/// intended for instances up to a few thousand points.
///
/// Note: covers restricted to centers inside the ball can be at most a
/// factor-2 radius off from unrestricted covers, which shifts ddim by O(1);
/// all uses in the experiments compare like-for-like estimates.
DoublingEstimate estimate_doubling(const MetricSpace& m, std::size_t radii_per_center = 8);

/// Verify the packing lemma (Lemma 1): any subset with minimum interpoint
/// distance r inside a ball of radius R has size <= (2R/r)^{c * ddim}.
/// Returns the largest exponent c observed over sampled configurations
/// (so the *test* asserts c is O(1)).
double packing_exponent(const MetricSpace& m, double ddim, std::size_t samples = 64,
                        std::uint64_t seed = 1);

}  // namespace gsp
