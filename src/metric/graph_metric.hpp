// The shortest-path metric M_G induced by a weighted graph.
//
// Observation 6 and Lemmas 7/8 of the paper reason about M_H, the metric
// induced by the greedy spanner H; this class materializes such metrics so
// the transfer arguments can be executed and tested.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

/// Shortest-path closure of a connected weighted graph, with distances
/// precomputed by n Dijkstra runs and stored densely (O(n^2) memory).
class GraphMetric final : public MetricSpace {
public:
    /// Throws std::invalid_argument if g is disconnected (a metric requires
    /// finite distances everywhere).
    explicit GraphMetric(const Graph& g);

    [[nodiscard]] std::size_t size() const override { return dist_.size(); }
    [[nodiscard]] Weight distance(VertexId i, VertexId j) const override {
        return dist_[i][j];
    }

private:
    std::vector<std::vector<Weight>> dist_;
};

}  // namespace gsp
