#include "metric/metric_space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace gsp {

MetricCheck check_metric(const MetricSpace& m, double tolerance) {
    MetricCheck result;
    const std::size_t n = m.size();
    for (VertexId i = 0; i < n; ++i) {
        if (m.distance(i, i) != 0.0) result.positive = false;
        for (VertexId j = i + 1; j < n; ++j) {
            const Weight dij = m.distance(i, j);
            const Weight dji = m.distance(j, i);
            if (std::abs(dij - dji) > tolerance) result.symmetric = false;
            if (!(dij > 0.0) || !std::isfinite(dij)) result.positive = false;
        }
    }
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = 0; j < n; ++j) {
            if (j == i) continue;
            const Weight dij = m.distance(i, j);
            for (VertexId k = 0; k < n; ++k) {
                if (k == i || k == j) continue;
                const double excess = m.distance(i, k) - (dij + m.distance(j, k));
                if (excess > tolerance) {
                    result.triangle = false;
                    result.worst_violation = std::max(result.worst_violation, excess);
                }
            }
        }
    }
    return result;
}

Graph complete_graph(const MetricSpace& m) {
    const std::size_t n = m.size();
    Graph g(n);
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            g.add_edge(i, j, m.distance(i, j));
        }
    }
    return g;
}

namespace {

/// Prim over the implicit complete graph: O(n^2) time, O(n) space.
std::vector<Edge> implicit_prim(const MetricSpace& m) {
    const std::size_t n = m.size();
    std::vector<Edge> tree;
    if (n <= 1) return tree;
    tree.reserve(n - 1);
    std::vector<bool> in_tree(n, false);
    std::vector<Weight> best(n, kInfiniteWeight);
    std::vector<VertexId> attach(n, kNoVertex);
    in_tree[0] = true;
    for (VertexId v = 1; v < n; ++v) {
        best[v] = m.distance(0, v);
        attach[v] = 0;
    }
    for (std::size_t step = 1; step < n; ++step) {
        VertexId pick = kNoVertex;
        Weight pick_key = kInfiniteWeight;
        for (VertexId v = 0; v < n; ++v) {
            if (!in_tree[v] && best[v] < pick_key) {
                pick_key = best[v];
                pick = v;
            }
        }
        if (pick == kNoVertex) {
            throw std::logic_error("implicit_prim: metric space not connected?");
        }
        in_tree[pick] = true;
        tree.push_back(Edge{attach[pick], pick, pick_key});
        for (VertexId v = 0; v < n; ++v) {
            if (in_tree[v]) continue;
            const Weight d = m.distance(pick, v);
            if (d < best[v]) {
                best[v] = d;
                attach[v] = pick;
            }
        }
    }
    return tree;
}

}  // namespace

std::vector<Edge> metric_mst_edges(const MetricSpace& m) { return implicit_prim(m); }

Weight metric_mst_weight(const MetricSpace& m) {
    Weight total = 0.0;
    for (const Edge& e : implicit_prim(m)) total += e.weight;
    return total;
}

Weight metric_diameter(const MetricSpace& m) {
    Weight best = 0.0;
    for (VertexId i = 0; i < m.size(); ++i) {
        for (VertexId j = i + 1; j < m.size(); ++j) {
            best = std::max(best, m.distance(i, j));
        }
    }
    return best;
}

Weight metric_min_distance(const MetricSpace& m) {
    Weight best = kInfiniteWeight;
    for (VertexId i = 0; i < m.size(); ++i) {
        for (VertexId j = i + 1; j < m.size(); ++j) {
            best = std::min(best, m.distance(i, j));
        }
    }
    return best;
}

}  // namespace gsp
