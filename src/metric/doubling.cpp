#include "metric/doubling.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.hpp"

namespace gsp {

double DoublingEstimate::ddim_upper() const {
    return cover_upper <= 1 ? 0.0 : std::log2(static_cast<double>(cover_upper));
}

double DoublingEstimate::ddim_lower() const {
    return pack_lower <= 1 ? 0.0 : std::log2(static_cast<double>(pack_lower));
}

namespace {

/// Points of m within distance R of center.
std::vector<VertexId> ball_members(const MetricSpace& m, VertexId center, Weight radius) {
    std::vector<VertexId> members;
    for (VertexId v = 0; v < m.size(); ++v) {
        if (m.distance(center, v) <= radius) members.push_back(v);
    }
    return members;
}

/// Greedy cover of `members` by balls of radius `r` centered at members.
std::size_t greedy_cover_count(const MetricSpace& m, const std::vector<VertexId>& members,
                               Weight r) {
    std::vector<bool> covered(members.size(), false);
    std::size_t balls = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (covered[i]) continue;
        ++balls;
        for (std::size_t j = i; j < members.size(); ++j) {
            if (!covered[j] && m.distance(members[i], members[j]) <= r) covered[j] = true;
        }
    }
    return balls;
}

/// Greedy maximal r-separated subset of `members`.
std::size_t greedy_packing_count(const MetricSpace& m, const std::vector<VertexId>& members,
                                 Weight r) {
    std::vector<VertexId> chosen;
    for (VertexId v : members) {
        bool far = true;
        for (VertexId c : chosen) {
            if (m.distance(v, c) < r) {
                far = false;
                break;
            }
        }
        if (far) chosen.push_back(v);
    }
    return chosen.size();
}

}  // namespace

DoublingEstimate estimate_doubling(const MetricSpace& m, std::size_t radii_per_center) {
    DoublingEstimate est;
    const std::size_t n = m.size();
    if (n <= 1) {
        est.cover_upper = 1;
        est.pack_lower = 1;
        return est;
    }
    // Radius ladder between min and max pairwise distance.
    Weight lo = kInfiniteWeight;
    Weight hi = 0.0;
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            const Weight d = m.distance(i, j);
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
    }
    std::vector<Weight> radii;
    const std::size_t steps = std::max<std::size_t>(radii_per_center, 2);
    for (std::size_t s = 0; s < steps; ++s) {
        const double frac = static_cast<double>(s) / static_cast<double>(steps - 1);
        radii.push_back(lo * std::pow(hi / lo, frac));
    }

    for (VertexId center = 0; center < n; ++center) {
        for (Weight radius : radii) {
            const auto members = ball_members(m, center, radius);
            if (members.size() <= 1) continue;
            est.cover_upper =
                std::max(est.cover_upper, greedy_cover_count(m, members, radius / 2));
            est.pack_lower =
                std::max(est.pack_lower, greedy_packing_count(m, members, radius / 2));
        }
    }
    est.cover_upper = std::max<std::size_t>(est.cover_upper, 1);
    est.pack_lower = std::max<std::size_t>(est.pack_lower, 1);
    return est;
}

double packing_exponent(const MetricSpace& m, double ddim, std::size_t samples,
                        std::uint64_t seed) {
    Rng rng(seed);
    const std::size_t n = m.size();
    if (n <= 2 || ddim <= 0.0) return 0.0;
    double worst = 0.0;
    for (std::size_t s = 0; s < samples; ++s) {
        const auto center = static_cast<VertexId>(rng.index(n));
        const auto other = static_cast<VertexId>(rng.index(n));
        if (other == center) continue;
        const Weight radius = m.distance(center, other);
        const auto members = ball_members(m, center, radius);
        if (members.size() <= 2) continue;
        // Separation r = radius * 2^-j for a few j.
        for (int j = 1; j <= 4; ++j) {
            const Weight r = radius / std::pow(2.0, j);
            const std::size_t packed = greedy_packing_count(m, members, r);
            if (packed <= 1) continue;
            // packed <= (2R/r)^(c*ddim)  =>  c >= log(packed) / (ddim*log(2R/r))
            const double c = std::log2(static_cast<double>(packed)) /
                             (ddim * std::log2(2.0 * radius / r));
            worst = std::max(worst, c);
        }
    }
    return worst;
}

}  // namespace gsp
