#include "metric/euclidean.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gsp {

EuclideanMetric::EuclideanMetric(std::size_t dim, std::vector<double> coords)
    : dim_(dim), coords_(std::move(coords)) {
    if (dim_ == 0) throw std::invalid_argument("EuclideanMetric: dim must be >= 1");
    if (coords_.size() % dim_ != 0) {
        throw std::invalid_argument("EuclideanMetric: coords not a multiple of dim");
    }
}

double EuclideanMetric::squared_distance(VertexId i, VertexId j) const {
    const double* a = coords_.data() + static_cast<std::size_t>(i) * dim_;
    const double* b = coords_.data() + static_cast<std::size_t>(j) * dim_;
    double sum = 0.0;
    for (std::size_t k = 0; k < dim_; ++k) {
        const double d = a[k] - b[k];
        sum += d * d;
    }
    return sum;
}

Weight EuclideanMetric::distance(VertexId i, VertexId j) const {
    if (i >= size() || j >= size()) {
        throw std::out_of_range("EuclideanMetric::distance: point out of range");
    }
    return std::sqrt(squared_distance(i, j));
}

void EuclideanMetric::distances_from(VertexId src, std::span<const VertexId> targets,
                                     Weight* out, const simd::Kernels& k) const {
    const std::size_t n = targets.size();
    if (dim_ != 2) {
        for (std::size_t i = 0; i < n; ++i) out[i] = distance(src, targets[i]);
        return;
    }
    const double sx = coords_[2 * static_cast<std::size_t>(src)];
    const double sy = coords_[2 * static_cast<std::size_t>(src) + 1];
    constexpr std::size_t kBlock = 16;
    double ax[kBlock], ay[kBlock], bx[kBlock], by[kBlock];
    std::size_t i = 0;
    while (i < n) {
        const std::size_t blk = std::min(n - i, kBlock);
        for (std::size_t j = 0; j < blk; ++j) {
            const std::size_t t = targets[i + j];
            ax[j] = sx;
            ay[j] = sy;
            bx[j] = coords_[2 * t];
            by[j] = coords_[2 * t + 1];
        }
        k.distances2d(ax, ay, bx, by, blk, out + i);
        i += blk;
    }
}

std::span<const double> EuclideanMetric::point(VertexId i) const {
    if (i >= size()) throw std::out_of_range("EuclideanMetric::point: out of range");
    return {coords_.data() + static_cast<std::size_t>(i) * dim_, dim_};
}

EuclideanMetric make_euclidean_2d(std::span<const std::pair<double, double>> pts) {
    std::vector<double> coords;
    coords.reserve(pts.size() * 2);
    for (const auto& [x, y] : pts) {
        coords.push_back(x);
        coords.push_back(y);
    }
    return EuclideanMetric(2, std::move(coords));
}

}  // namespace gsp
