#include "cluster/cluster_graph.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "graph/dijkstra.hpp"

namespace gsp {

ClusterGraph::ClusterGraph(const Graph& h, double radius, DijkstraWorkspace* shared_ws)
    : radius_(radius),
      cluster_of_(h.num_vertices(), 0xffffffffu),
      to_center_(h.num_vertices(), kInfiniteWeight) {
    if (!(radius > 0.0)) throw std::invalid_argument("ClusterGraph: radius must be > 0");
    const std::size_t n = h.num_vertices();

    DijkstraWorkspace local_ws(shared_ws != nullptr ? 0 : n);
    DijkstraWorkspace& ws = shared_ws != nullptr ? *shared_ws : local_ws;
    ws.resize(n);
    for (VertexId v = 0; v < n; ++v) {
        if (cluster_of_[v] != 0xffffffffu) continue;
        const auto idx = static_cast<std::uint32_t>(centers_.size());
        centers_.push_back(v);
        for (const auto& [settled, dist] : ws.ball(h, v, radius_)) {
            if (cluster_of_[settled] == 0xffffffffu) {
                cluster_of_[settled] = idx;
                to_center_[settled] = dist;
            }
        }
    }

    // Coarse edges: min over crossing spanner edges of the realizable
    // center-to-center path length.
    std::map<std::pair<std::uint32_t, std::uint32_t>, Weight> best;
    for (const Edge& e : h.edges()) {
        const std::uint32_t cu = cluster_of_[e.u];
        const std::uint32_t cv = cluster_of_[e.v];
        if (cu == cv) continue;
        const Weight through = to_center_[e.u] + e.weight + to_center_[e.v];
        const auto key = std::minmax(cu, cv);
        auto [it, inserted] = best.try_emplace({key.first, key.second}, through);
        if (!inserted && through < it->second) it->second = through;
    }
    coarse_adj_.resize(centers_.size());
    for (const auto& [key, w] : best) {
        coarse_adj_[key.first].push_back({key.second, w});
        coarse_adj_[key.second].push_back({key.first, w});
    }
}

Weight ClusterGraph::upper_bound_distance(VertexId u, VertexId v, Weight limit) const {
    return upper_bound_distance(u, v, limit, scratch_);
}

Weight ClusterGraph::upper_bound_distance(VertexId u, VertexId v, Weight limit,
                                          QueryScratch& s) const {
    ++s.queries;
    const std::uint32_t cu = cluster_of_.at(u);
    const std::uint32_t cv = cluster_of_.at(v);
    const Weight endpoints = to_center_[u] + to_center_[v];
    if (cu == cv) {
        // Same ball: route through the shared center.
        ++s.direct_hits;
        return endpoints;
    }
    // Dijkstra over the coarse adjacency, capped so we never explore past
    // what could beat `limit`. Timestamped scratch keeps a query at
    // O(|explored ball| log), independent of the cluster count.
    const Weight budget = limit - endpoints;
    if (budget < 0) return kInfiniteWeight;

    // Direct-edge fast path: the caller only compares the result against
    // `limit`, so *any* realizable bound within the budget is as decisive
    // as the best one. Adjacent clusters dominate the reject-heavy regime
    // (a candidate's endpoints sit within a few radii of each other), and
    // a short contiguous scan of the smaller adjacency list skips the
    // whole heap setup. Capped so pathological hub clusters fall through
    // to the Dijkstra instead of scanning long lists.
    static constexpr std::size_t kDirectScanCap = 64;
    const auto& adj_u = coarse_adj_[cu];
    const auto& adj_v = coarse_adj_[cv];
    const auto& scan = adj_u.size() <= adj_v.size() ? adj_u : adj_v;
    const std::uint32_t want = adj_u.size() <= adj_v.size() ? cv : cu;
    if (scan.size() <= kDirectScanCap) {
        for (const auto& [nc, w] : scan) {
            if (nc == want && w <= budget) {
                ++s.direct_hits;
                return endpoints + w;
            }
        }
    }

    if (s.dist.size() < centers_.size()) {
        s.dist.resize(centers_.size(), kInfiniteWeight);
        s.stamp.resize(centers_.size(), 0);
    }
    ++s.query;
    s.heap.clear();
    auto relax = [&](std::uint32_t c, Weight d) {
        if (s.stamp[c] != s.query || d < s.dist[c]) {
            s.stamp[c] = s.query;
            s.dist[c] = d;
            s.heap.push({d, c});
        }
    };
    relax(cu, 0.0);
    while (!s.heap.empty()) {
        const QueryScratch::Item top = s.heap.pop_min();
        if (top.d > s.dist[top.c]) continue;
        if (top.c == cv) return endpoints + top.d;
        for (const auto& [nc, w] : coarse_adj_[top.c]) {
            const Weight nd = top.d + w;
            if (nd <= budget) relax(nc, nd);
        }
    }
    return kInfiniteWeight;
}

bool ClusterGraph::check_invariants(const Graph& h) const {
    const std::size_t n = h.num_vertices();
    DijkstraWorkspace ws(n);
    for (VertexId v = 0; v < n; ++v) {
        if (cluster_of_[v] == 0xffffffffu) return false;
        if (to_center_[v] > radius_ + 1e-12) return false;
        const VertexId center = centers_[cluster_of_[v]];
        // Stored center distance must be the true spanner distance.
        const Weight true_d = ws.distance(h, center, v, kInfiniteWeight);
        if (std::abs(true_d - to_center_[v]) > 1e-9) return false;
    }
    for (std::uint32_t c = 0; c < coarse_adj_.size(); ++c) {
        for (const auto& [nc, w] : coarse_adj_[c]) {
            const Weight true_d = ws.distance(h, centers_[c], centers_[nc], kInfiniteWeight);
            if (w + 1e-9 < true_d) return false;  // must be an upper bound
        }
    }
    return true;
}

}  // namespace gsp
