// Cluster graph: the coarse distance structure of Algorithm
// Approximate-Greedy (paper §5.1).
//
// Clusters are Dijkstra balls of a fixed radius grown greedily over the
// current spanner; the cluster graph has one vertex per cluster and, for
// every spanner edge crossing two clusters, an edge whose weight is the
// length of a *realizable* path (center -> endpoint -> endpoint -> center).
// Distances measured on the cluster graph are therefore genuine upper
// bounds on spanner distances, which makes "reject if the bound is within
// threshold" a sound fast path for the greedy simulation: rejected edges
// really do have a witness path, so the output stretch is never violated,
// while every *kept* edge is certified by an exact query (preserving the
// Lemma-11 gap property the lightness proof needs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "util/dary_heap.hpp"

namespace gsp {

class DijkstraWorkspace;

class ClusterGraph {
public:
    /// Per-caller scratch for upper_bound_distance: queries touching
    /// distinct scratches may run concurrently on one const ClusterGraph
    /// (the cluster structure itself is immutable after construction).
    /// Reuse one scratch per worker across queries -- timestamped init
    /// keeps a query at O(|explored ball|), not O(#clusters).
    struct QueryScratch {
        std::vector<Weight> dist;
        std::vector<std::uint64_t> stamp;
        std::uint64_t query = 0;
        struct Item {
            Weight d;
            std::uint32_t c;
            friend bool operator>(const Item& a, const Item& b) { return a.d > b.d; }
        };
        DaryHeap<Item, 4> heap;  ///< same layout the Dijkstra kernel runs

        // Query-path telemetry (per scratch, so per worker: deterministic
        // sums regardless of scheduling).
        std::size_t queries = 0;      ///< upper_bound_distance calls
        std::size_t direct_hits = 0;  ///< answered by the direct-edge scan
    };

    /// Build ball clusters of the given radius over spanner h. Pass a
    /// workspace to reuse across rebuilds (the approximate-greedy simulation
    /// rebuilds one oracle per weight bucket; a shared workspace saves the
    /// O(n) allocation per rebuild). A null workspace uses a local one.
    explicit ClusterGraph(const Graph& h, double radius,
                          DijkstraWorkspace* ws = nullptr);

    [[nodiscard]] std::size_t num_clusters() const { return centers_.size(); }

    /// Cluster index of vertex v.
    [[nodiscard]] std::uint32_t cluster_of(VertexId v) const { return cluster_of_.at(v); }

    /// Distance from v to its cluster center inside the spanner.
    [[nodiscard]] Weight center_distance(VertexId v) const { return to_center_.at(v); }

    /// Upper bound on the spanner distance between u and v: the length of a
    /// real spanner path routed through cluster centers. Returns +infinity
    /// when no such path within `limit` exists (which says nothing about
    /// the true distance -- this oracle is one-sided by design).
    /// Single-owner convenience overload (uses the internal scratch).
    [[nodiscard]] Weight upper_bound_distance(VertexId u, VertexId v, Weight limit) const;

    /// Concurrent-safe variant: as above, but all mutable query state lives
    /// in the caller-provided scratch. Distinct scratches => safe to call
    /// from distinct threads simultaneously (the greedy engine's parallel
    /// prefilter stage does, one scratch per worker).
    [[nodiscard]] Weight upper_bound_distance(VertexId u, VertexId v, Weight limit,
                                              QueryScratch& scratch) const;

    /// Invariant check for tests: every vertex is assigned, center
    /// distances are within the radius, and every cluster-graph edge weight
    /// is realizable (>= the true spanner distance between the centers).
    [[nodiscard]] bool check_invariants(const Graph& h) const;

private:
    double radius_;
    std::vector<VertexId> centers_;           ///< cluster index -> center vertex
    std::vector<std::uint32_t> cluster_of_;   ///< vertex -> cluster index
    std::vector<Weight> to_center_;           ///< vertex -> distance to its center
    /// Coarse adjacency: cluster index -> (neighbor cluster, weight).
    std::vector<std::vector<std::pair<std::uint32_t, Weight>>> coarse_adj_;

    // Internal scratch backing the single-owner overload. Concurrent
    // callers must use the QueryScratch overload instead -- the structure
    // arrays above are immutable after construction, so queries only race
    // on scratch state.
    mutable QueryScratch scratch_;
};

}  // namespace gsp
