// Cluster graph: the coarse distance structure of Algorithm
// Approximate-Greedy (paper §5.1).
//
// Clusters are Dijkstra balls of a fixed radius grown greedily over the
// current spanner; the cluster graph has one vertex per cluster and, for
// every spanner edge crossing two clusters, an edge whose weight is the
// length of a *realizable* path (center -> endpoint -> endpoint -> center).
// Distances measured on the cluster graph are therefore genuine upper
// bounds on spanner distances, which makes "reject if the bound is within
// threshold" a sound fast path for the greedy simulation: rejected edges
// really do have a witness path, so the output stretch is never violated,
// while every *kept* edge is certified by an exact query (preserving the
// Lemma-11 gap property the lightness proof needs).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace gsp {

class DijkstraWorkspace;

class ClusterGraph {
public:
    /// Build ball clusters of the given radius over spanner h. Pass a
    /// workspace to reuse across rebuilds (the approximate-greedy simulation
    /// rebuilds one oracle per weight bucket; a shared workspace saves the
    /// O(n) allocation per rebuild). A null workspace uses a local one.
    explicit ClusterGraph(const Graph& h, double radius,
                          DijkstraWorkspace* ws = nullptr);

    [[nodiscard]] std::size_t num_clusters() const { return centers_.size(); }

    /// Cluster index of vertex v.
    [[nodiscard]] std::uint32_t cluster_of(VertexId v) const { return cluster_of_.at(v); }

    /// Distance from v to its cluster center inside the spanner.
    [[nodiscard]] Weight center_distance(VertexId v) const { return to_center_.at(v); }

    /// Upper bound on the spanner distance between u and v: the length of a
    /// real spanner path routed through cluster centers. Returns +infinity
    /// when no such path within `limit` exists (which says nothing about
    /// the true distance -- this oracle is one-sided by design).
    [[nodiscard]] Weight upper_bound_distance(VertexId u, VertexId v, Weight limit) const;

    /// Invariant check for tests: every vertex is assigned, center
    /// distances are within the radius, and every cluster-graph edge weight
    /// is realizable (>= the true spanner distance between the centers).
    [[nodiscard]] bool check_invariants(const Graph& h) const;

private:
    double radius_;
    std::vector<VertexId> centers_;           ///< cluster index -> center vertex
    std::vector<std::uint32_t> cluster_of_;   ///< vertex -> cluster index
    std::vector<Weight> to_center_;           ///< vertex -> distance to its center
    /// Coarse adjacency: cluster index -> (neighbor cluster, weight).
    std::vector<std::vector<std::pair<std::uint32_t, Weight>>> coarse_adj_;

    // Timestamped per-query scratch: a query touches O(|explored ball|), not
    // O(#clusters). ClusterGraph is not thread-safe (single-owner use, like
    // DijkstraWorkspace).
    struct QueryItem {
        Weight d;
        std::uint32_t c;
    };
    mutable std::vector<Weight> dist_;
    mutable std::vector<std::uint64_t> stamp_;
    mutable std::uint64_t query_ = 0;
    mutable std::vector<QueryItem> heap_;
};

}  // namespace gsp
