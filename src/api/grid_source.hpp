// The grid-pruned Euclidean candidate source ("greedy-grid").
//
// Wraps geom/uniform_grid.hpp as a CandidateSource: a hierarchy of sparse
// uniform grids replaces the WSPD quadtree, near pairs are enumerated
// exactly and far pairs only ever appear as one representative candidate
// per ring cell pair -- O(s^2 n) candidates total, generated in
// non-decreasing weight order by a window sweep that never materializes
// more than one bounded window. The natural streaming source
// (ChunkSupport::kStreaming): a build over it holds O(n) grid state plus
// one window of candidates, which is what makes the n = 10^6 memory
// probe fit a fixed RSS budget.
//
// Stretch guarantee: identical premises to the WSPD dumbbell bound
// (covered pairs have both endpoints within 2 r of their representative
// and distance >= s * r), so a build at engine stretch t spans the whole
// metric with stretch wspd_greedy_stretch_bound(t, s); separation must
// exceed 4.
#pragma once

#include <memory>
#include <vector>

#include "api/candidate_source.hpp"
#include "geom/uniform_grid.hpp"
#include "metric/euclidean.hpp"

namespace gsp {

class GridCandidateSource final : public CandidateSource {
public:
    /// `m` must be 2-dimensional. `separation` <= 0 derives the standard
    /// 4 + 8 / epsilon; an explicit separation must be > 4.
    GridCandidateSource(const EuclideanMetric& m, double separation, double epsilon = 0.5);

    [[nodiscard]] const char* kind() const override { return "grid-cells"; }
    [[nodiscard]] std::size_t num_vertices() const override { return m_.size(); }

    /// Drains a fresh chunk generator: byte-for-byte the sequence the
    /// chunked path streams (the sweep *is* the definition of the order).
    void materialize(std::vector<GreedyCandidate>& out) override;

    [[nodiscard]] ChunkSupport chunk_support() const override {
        return ChunkSupport::kStreaming;
    }
    [[nodiscard]] std::unique_ptr<CandidateChunkSource> chunks() override;

    [[nodiscard]] double stretch_target(double engine_stretch) const override {
        return wspd_greedy_stretch_bound(engine_stretch, grid_.separation());
    }

    /// Expose the grid's cell/window structure to the engine: a kAuto
    /// engine resolves to cell-batched grouping, so one drained ball per
    /// cell representative decides the whole window of rep candidates the
    /// cell emits (the representatives are exactly the hubs the anchored
    /// rebuild elects). An explicit kOn/kOff is left alone.
    void configure_engine(GreedyEngineOptions& options, SpannerSession& session) override;

    [[nodiscard]] double separation() const { return grid_.separation(); }
    [[nodiscard]] const UniformGrid2D& grid() const { return grid_; }

private:
    static double resolve_separation(double separation, double epsilon);

    const EuclideanMetric& m_;
    UniformGrid2D grid_;
};

}  // namespace gsp
