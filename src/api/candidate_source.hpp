// The candidate-source seam: where a greedy build's candidates come from.
//
// Every greedy entry point was always "the same loop" over a different
// candidate enumeration -- all edges of a graph, all pairs of a metric,
// the base-spanner edges of the §5 simulation. CandidateSource makes that
// the pluggable axis: a source names the vertex universe, materializes the
// weight-sorted candidate list (with its deterministic tie rule -- the
// engine preserves order, so the source owns reproducibility), optionally
// seeds edges into the spanner before the loop (the approximate-greedy E0
// set), and optionally installs per-algorithm engine hooks (the cluster
// oracle). SpannerSession::build consumes any source through the one
// shared GreedyEngine.
//
// Shipped sources:
//   GraphCandidateSource        all edges of a weighted graph;
//   MetricCandidateSource       all n(n-1)/2 pairs of a metric space;
//   WspdCandidateSource         one pair per WSPD dumbbell of a Euclidean
//                               point set -- n * s^O(d) candidates instead
//                               of n^2, the Alewijnse et al. ("Computing
//                               the Greedy Spanner in Linear Space")
//                               driving seam;
//   BaseSpannerCandidateSource  the §5 simulation: base spanner G',
//                               E0 seeding, cluster-oracle hooks.
//
// A new scenario (e.g. the Bar-On--Carmi distribution-sensitive stream) is
// a new subclass, not a new front door.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "api/build_options.hpp"
#include "api/build_report.hpp"
#include "cluster/cluster_graph.hpp"
#include "core/approx_greedy.hpp"
#include "core/candidate_stream.hpp"
#include "core/greedy_engine.hpp"
#include "graph/graph.hpp"
#include "metric/euclidean.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

class SpannerSession;

/// How a source participates in the pull-based chunk protocol
/// (CandidateChunkSource, core/candidate_stream.hpp).
enum class ChunkSupport {
    kNone,      ///< chunks() unavailable; only materialize() works
    kFallback,  ///< chunks() works by materializing internally (no memory win)
    kStreaming  ///< chunks() generates incrementally with sub-full-list peak memory
};

class CandidateSource {
public:
    virtual ~CandidateSource() = default;

    /// Short stable identifier ("graph-edges", "metric-pairs", ...).
    [[nodiscard]] virtual const char* kind() const = 0;

    /// Size of the vertex universe the candidates speak about.
    [[nodiscard]] virtual std::size_t num_vertices() const = 0;

    /// Append this build's candidates to `out` in non-decreasing weight
    /// order with a deterministic tie rule. Called once per build; the
    /// buffer is session-owned and reused across builds.
    virtual void materialize(std::vector<GreedyCandidate>& out) = 0;

    /// Whether chunks() streams, materializes internally, or refuses.
    /// kStreaming is the signal SpannerSession's kAuto chunking keys on:
    /// only a genuinely linear-space generator is worth routing through
    /// the chunked engine path by default.
    [[nodiscard]] virtual ChunkSupport chunk_support() const { return ChunkSupport::kFallback; }

    /// A fresh chunk generator over exactly the candidate sequence
    /// materialize() would produce (same order, same tie rule -- the
    /// chunked and materializing builds are bit-identical). The default
    /// materializes the full list internally and serves soft_cap-sized
    /// slices: correct everywhere, but no memory win (kFallback).
    /// Sources reporting kNone throw. The generator is single-use and
    /// must not outlive the source.
    [[nodiscard]] virtual std::unique_ptr<CandidateChunkSource> chunks();

    /// Edges inserted into the spanner before the greedy loop runs (the
    /// approximate-greedy E0 set). Default: none.
    virtual void seed(Graph& h);

    /// Install per-algorithm engine hooks (prefilter oracles, bucket
    /// callbacks) and per-source overrides (the simulation stretch) on the
    /// already-populated options. Called once per build, before the engine
    /// is constructed; `session` provides the reusable workspaces a hook
    /// may need. Default: nothing.
    virtual void configure_engine(GreedyEngineOptions& options, SpannerSession& session);

    /// The stretch guarantee a build over this source carries, given the
    /// engine stretch actually used -- what BuildReport::stretch_target
    /// records. Default: the engine stretch itself; sources whose
    /// guarantee differs from the loop's threshold (the WSPD dumbbell
    /// bound, the approximate-greedy 1 + eps budget) override it.
    [[nodiscard]] virtual double stretch_target(double engine_stretch) const;
};

/// All edges of a weighted graph, ordered by (weight, min endpoint,
/// max endpoint, edge id) -- the tie rule the graph kernel always used.
class GraphCandidateSource final : public CandidateSource {
public:
    explicit GraphCandidateSource(const Graph& g) : g_(g) {}

    [[nodiscard]] const char* kind() const override { return "graph-edges"; }
    [[nodiscard]] std::size_t num_vertices() const override { return g_.num_vertices(); }
    void materialize(std::vector<GreedyCandidate>& out) override;
    void configure_engine(GreedyEngineOptions& options, SpannerSession& session) override;

private:
    const Graph& g_;
};

/// All n(n-1)/2 pairs of a metric space, ordered by (weight, u, v) -- the
/// tie rule the metric kernel always used.
class MetricCandidateSource final : public CandidateSource {
public:
    explicit MetricCandidateSource(const MetricSpace& m) : m_(m) {}

    [[nodiscard]] const char* kind() const override { return "metric-pairs"; }
    [[nodiscard]] std::size_t num_vertices() const override { return m_.size(); }
    void materialize(std::vector<GreedyCandidate>& out) override;
    void configure_engine(GreedyEngineOptions& options, SpannerSession& session) override;

private:
    const MetricSpace& m_;
    /// Kernel table for the batched candidate-weight evaluation (2D
    /// Euclidean inputs); configure_engine pins it to the run's resolved
    /// backend so a kScalar build stays scalar end to end. The kernels are
    /// bit-exact, so the weights (and the tie order built on them) are
    /// identical either way.
    const simd::Kernels* simd_ = &simd::auto_kernels();
};

/// Stretch guarantee of greedy-over-WSPD-pairs: a t-path between the
/// representatives of every s-well-separated pair implies stretch
/// t * (s + 4) / (s - 4) over all pairs (infinite when s <= 4).
[[nodiscard]] double wspd_greedy_stretch_bound(double engine_stretch, double separation);

/// One candidate per well-separated pair of a Euclidean point set: the
/// dumbbell's representative pair, at its exact metric distance, ordered
/// by (weight, u, v). Greedy over these n * s^O(d) candidates with engine
/// stretch t yields a spanner of the *whole* metric with stretch at most
/// wspd_greedy_stretch_bound(t, s) -- the standard dumbbell induction,
/// with the single WSPD edge replaced by a t-path between the
/// representatives.
class WspdCandidateSource final : public CandidateSource {
public:
    /// `separation` <= 0 derives the standard 4 + 8/epsilon from
    /// `epsilon`; an explicit separation must be > 4 for a finite bound.
    WspdCandidateSource(const EuclideanMetric& m, double separation, double epsilon = 0.5);

    [[nodiscard]] const char* kind() const override { return "wspd-pairs"; }
    [[nodiscard]] std::size_t num_vertices() const override { return m_.size(); }
    void materialize(std::vector<GreedyCandidate>& out) override;
    void configure_engine(GreedyEngineOptions& options, SpannerSession& session) override;
    [[nodiscard]] double stretch_target(double engine_stretch) const override {
        return wspd_greedy_stretch_bound(engine_stretch, separation_);
    }

    /// Linear-space chunk generation: the dumbbell representative pairs are
    /// kept as two u32 arrays (12 bytes/pair with the class-order permutation,
    /// vs 24 for materialized candidates), partitioned into geometric weight
    /// classes by a counting pass that recomputes each weight on the fly, and
    /// served class by class -- only one class's candidates are ever resident.
    [[nodiscard]] ChunkSupport chunk_support() const override { return ChunkSupport::kStreaming; }
    [[nodiscard]] std::unique_ptr<CandidateChunkSource> chunks() override;

    [[nodiscard]] double separation() const { return separation_; }

private:
    const EuclideanMetric& m_;
    double separation_;
};

/// The §5 simulation as a candidate source: builds the base spanner G'
/// (theta graph for 2D Euclidean inputs, net-tree spanner otherwise) in
/// the constructor, seeds the light E0 edges, streams the remaining edges
/// of G' ordered by (weight, u, v), overrides the engine stretch with
/// t_sim, and -- when ApproxParams::use_cluster_oracle is set -- installs
/// the per-bucket ClusterGraph reject oracle (serial + concurrent hooks),
/// reusing the session's workspaces for its rebuilds.
class BaseSpannerCandidateSource final : public CandidateSource {
public:
    BaseSpannerCandidateSource(const MetricSpace& m, const BuildOptions& options);

    [[nodiscard]] const char* kind() const override { return "base-spanner-edges"; }
    [[nodiscard]] std::size_t num_vertices() const override { return m_.size(); }
    void materialize(std::vector<GreedyCandidate>& out) override;
    void seed(Graph& h) override;
    void configure_engine(GreedyEngineOptions& options, SpannerSession& session) override;
    [[nodiscard]] double stretch_target(double) const override {
        return 1.0 + params_.epsilon;  // t_base * t_sim, the overall budget
    }

    [[nodiscard]] const Graph& base() const { return base_; }
    [[nodiscard]] std::size_t light_edges() const { return light_.size(); }
    [[nodiscard]] double t_base() const { return t_base_; }
    [[nodiscard]] double t_sim() const { return t_sim_; }
    [[nodiscard]] double seconds_base() const { return seconds_base_; }

private:
    const MetricSpace& m_;
    ApproxParams params_;
    Graph base_{0};
    std::vector<Edge> light_;     ///< E0, seeded before the loop
    Weight light_threshold_ = 0;  ///< D/n; materialize streams the heavier rest of G'
    double t_base_ = 0.0;
    double t_sim_ = 0.0;
    double seconds_base_ = 0.0;

    // Cluster-oracle state the engine hooks close over. The oracle is
    // rebuilt at each bucket boundary (on_bucket, serial -- stage 2 only
    // fans out afterwards, so replacing it is race-free) and queried from
    // the insertion loop and, once the measured-cost gate passes it, from
    // stage-2 workers through per-worker scratches.
    std::unique_ptr<ClusterGraph> oracle_;
    std::vector<ClusterGraph::QueryScratch> oracle_scratch_;
};

/// Run Algorithm Approximate-Greedy through `session`: the §5 pipeline as
/// a BaseSpannerCandidateSource plus the shared engine. `report`, when
/// given, receives the engine-side BuildReport of the simulation run.
ApproxGreedyResult approx_greedy_build(SpannerSession& session, const MetricSpace& m,
                                       const BuildOptions& options,
                                       BuildReport* report = nullptr);

}  // namespace gsp
