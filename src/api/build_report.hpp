// The structured result record of one build.
//
// Returned by value (reset every call -- never additive, unlike the old
// raw GreedyStats out-pointers): the engine counters, the cheap audit
// facts every experiment wants (size, weight, max degree), wall-clock
// split into total vs resource setup, and the session warm-start counters
// that certify a warm build paid zero thread-pool / workspace
// construction. One JSON serializer, shared with the BENCH_greedy.json
// emitters through append_greedy_stats.
#pragma once

#include <cstddef>
#include <string>

#include "core/greedy.hpp"
#include "graph/graph.hpp"
#include "util/json.hpp"

namespace gsp {

struct BuildReport {
    std::string algorithm;  ///< registry key (or the source kind when built directly)
    std::string source;     ///< candidate-source kind ("graph-edges", "metric-pairs", ...)

    std::size_t vertices = 0;
    std::size_t candidates = 0;    ///< candidate edges streamed into the engine
    double stretch_target = 0.0;   ///< the guarantee the construction aimed for

    // Cheap audit facts (O(n + m); run analysis/audit for exact stretch).
    std::size_t edges = 0;
    double weight = 0.0;
    std::size_t max_degree = 0;

    // Timing and the session warm-start certificate: on a warm
    // SpannerSession both construction counters are zero -- the
    // session-reuse bench probe (BENCH_greedy.json v4) tracks exactly
    // these fields.
    double seconds = 0.0;        ///< whole build() call (materialize + run)
    double setup_seconds = 0.0;  ///< engine construction / pool acquisition
    std::size_t pools_constructed = 0;       ///< thread pools built by this call
    std::size_t workspaces_constructed = 0;  ///< Dijkstra workspaces built by this call

    /// The SIMD kernel backend the build's probes actually executed
    /// ("scalar", "sse4.2", "avx2"): the dispatch-resolved answer, not the
    /// knob -- a kAuto run on AVX2 hardware records "avx2", and a bench
    /// history row carries it so cross-backend timing comparisons are
    /// refused rather than silently mixed.
    std::string simd_backend;

    /// Process peak RSS (KiB) sampled when the build finished. The OS
    /// counter is a process-lifetime high-water mark, so this is "peak so
    /// far", monotone across builds of one process; the memory probes pair
    /// it with a before-sample to attribute growth to a single build.
    std::size_t peak_rss_kb = 0;

    GreedyStats stats;  ///< engine counters of this run (zero for non-engine baselines)

    /// Serialize the whole report as one JSON object.
    [[nodiscard]] std::string to_json() const;
};

/// Append every GreedyStats counter as members of the currently open JSON
/// object -- the single stats serializer BuildReport::to_json and the
/// bench emitters share.
void append_greedy_stats(JsonWriter& w, const GreedyStats& stats);

/// Fill the audit block (edges / weight / max_degree) from the built
/// spanner. O(n + m).
void fill_audit_fields(BuildReport& report, const Graph& h);

}  // namespace gsp
