#include "api/build_report.hpp"

namespace gsp {

void append_greedy_stats(JsonWriter& w, const GreedyStats& stats) {
    w.member("edges_examined", stats.edges_examined);
    w.member("edges_added", stats.edges_added);
    w.member("dijkstra_runs", stats.dijkstra_runs);
    w.member("balls_computed", stats.balls_computed);
    w.member("cache_hits", stats.cache_hits);
    w.member("csr_rebuilds", stats.csr_rebuilds);
    w.member("csr_compactions", stats.csr_compactions);
    w.member("sketch_hits", stats.sketch_hits);
    w.member("sketch_accepts", stats.sketch_accepts);
    w.member("cell_balls", stats.cell_balls);
    w.member("cell_ball_decisions", stats.cell_ball_decisions);
    w.member("coarse_rejects", stats.coarse_rejects);
    w.member("bidirectional_meets", stats.bidirectional_meets);
    w.member("prefilter_rejects", stats.prefilter_rejects);
    w.member("prefilter_gated_off", stats.prefilter_gated_off);
    w.member("snapshot_accepts", stats.snapshot_accepts);
    w.member("repairs", stats.repairs);
    w.member("repair_reprobes", stats.repair_reprobes);
    w.member("repair_fallbacks", stats.repair_fallbacks);
    w.member("certs_published", stats.certs_published);
    w.member("cert_ball_aborts", stats.cert_ball_aborts);
    w.member("certs_two_sided", stats.certs_two_sided);
    w.member("group_probes", stats.group_probes);
    w.member("group_probe_decisions", stats.group_probe_decisions);
    w.member("group_probe_early_exits", stats.group_probe_early_exits);
    w.member("buckets", stats.buckets);
    w.member("handoff_peak_bytes", stats.handoff_peak_bytes);
    w.member("candidates_streamed", stats.candidates_streamed);
    w.member("candidate_buffer_peak_bytes", stats.candidate_buffer_peak_bytes);
}

void fill_audit_fields(BuildReport& report, const Graph& h) {
    report.edges = h.num_edges();
    report.weight = h.total_weight();
    report.max_degree = h.max_degree();
}

std::string BuildReport::to_json() const {
    JsonWriter w;
    w.begin_object();
    w.member("algorithm", algorithm);
    w.member("source", source);
    w.member("vertices", vertices);
    w.member("candidates", candidates);
    w.member("stretch_target", stretch_target);
    w.member("edges", edges);
    w.member("weight", weight);
    w.member("max_degree", max_degree);
    w.member("seconds", seconds);
    w.member("us_per_candidate",
             candidates > 0 ? seconds * 1e6 / static_cast<double>(candidates) : 0.0);
    w.member("setup_seconds", setup_seconds);
    w.member("pools_constructed", pools_constructed);
    w.member("workspaces_constructed", workspaces_constructed);
    w.member("simd_backend", simd_backend);
    w.member("peak_rss_kb", peak_rss_kb);
    w.key("stats").begin_object();
    append_greedy_stats(w, stats);
    w.end_object();
    w.end_object();
    return w.str();
}

}  // namespace gsp
