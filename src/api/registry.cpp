#include "api/registry.hpp"

#include <stdexcept>
#include <string>

#include "api/candidate_source.hpp"
#include "api/grid_source.hpp"
#include "metric/euclidean.hpp"
#include "spanners/baswana_sen.hpp"
#include "spanners/net_spanner.hpp"
#include "spanners/theta_graph.hpp"
#include "spanners/wspd_spanner.hpp"
#include "spanners/yao_graph.hpp"
#include "util/timer.hpp"

namespace gsp {

namespace {

const Graph& require_graph(const BuildInput& input, std::string_view name) {
    if (input.graph == nullptr) {
        throw std::invalid_argument(std::string(name) + ": requires a graph input");
    }
    return *input.graph;
}

const MetricSpace& require_metric(const BuildInput& input, std::string_view name) {
    if (input.metric == nullptr) {
        throw std::invalid_argument(std::string(name) + ": requires a metric input");
    }
    return *input.metric;
}

const EuclideanMetric& require_euclidean(const BuildInput& input, std::string_view name,
                                         bool require_2d) {
    const auto* e = dynamic_cast<const EuclideanMetric*>(&require_metric(input, name));
    if (e == nullptr) {
        throw std::invalid_argument(std::string(name) + ": requires a Euclidean metric");
    }
    if (require_2d && e->dim() != 2) {
        throw std::invalid_argument(std::string(name) + ": requires a 2D point set");
    }
    return *e;
}

/// Shared tail of the non-engine baselines: fill the report the same way
/// a session build would (minus engine stats, which stay zero).
Graph finish_baseline(Graph h, double seconds, std::string_view name,
                      double stretch_target, BuildReport* report) {
    if (report != nullptr) {
        report->algorithm = std::string(name);
        report->source = "construction";
        report->vertices = h.num_vertices();
        report->stretch_target = stretch_target;
        fill_audit_fields(*report, h);
        report->seconds = seconds;
    }
    return h;
}

}  // namespace

std::string_view to_string(InputKind kind) {
    switch (kind) {
        case InputKind::kGraph: return "graph";
        case InputKind::kMetric: return "metric";
        case InputKind::kEuclidean: return "euclidean";
        case InputKind::kEuclidean2D: return "euclidean-2d";
    }
    return "?";
}

AlgorithmRegistry::AlgorithmRegistry() {
    const auto add = [this](AlgorithmInfo info, BuildFn fn) {
        entries_.push_back(Entry{info, std::move(fn)});
    };

    add({"greedy", InputKind::kGraph, true, false,
         "exact greedy t-spanner of a weighted graph (Algorithm 1)"},
        [](SpannerSession& session, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            GraphCandidateSource source(require_graph(input, "greedy"));
            return session.build(source, options, report);
        });

    add({"greedy-metric", InputKind::kMetric, true, false,
         "exact greedy t-spanner over all pairs of a metric space"},
        [](SpannerSession& session, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            MetricCandidateSource source(require_metric(input, "greedy-metric"));
            return session.build(source, options, report);
        });

    add({"greedy-approx", InputKind::kMetric, true, false,
         "Algorithm Approximate-Greedy: greedy simulation over a base spanner (paper S5)"},
        [](SpannerSession& session, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            auto result = approx_greedy_build(
                session, require_metric(input, "greedy-approx"), options, report);
            return std::move(result.spanner);
        });

    add({"greedy-wspd", InputKind::kEuclidean, true, false,
         "greedy over WSPD representative pairs (linear-space candidate stream)"},
        [](SpannerSession& session, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            WspdCandidateSource source(require_euclidean(input, "greedy-wspd", false),
                                       options.geometric.wspd_separation,
                                       options.geometric.epsilon);
            return session.build(source, options, report);
        });

    add({"greedy-grid", InputKind::kEuclidean2D, true, false,
         "greedy over grid-pruned candidates (streaming window sweep, linear space)"},
        [](SpannerSession& session, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            GridCandidateSource source(require_euclidean(input, "greedy-grid", true),
                                       options.geometric.wspd_separation,
                                       options.geometric.epsilon);
            return session.build(source, options, report);
        });

    add({"theta", InputKind::kEuclidean2D, false, false,
         "theta-graph cone spanner (sweep construction)"},
        [](SpannerSession&, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            const auto& m = require_euclidean(input, "theta", true);
            const Timer timer;
            Graph h = theta_graph_sweep(m, options.geometric.cones);
            return finish_baseline(std::move(h), timer.seconds(), "theta",
                                   theta_graph_stretch_bound(options.geometric.cones),
                                   report);
        });

    add({"yao", InputKind::kEuclidean2D, false, false, "Yao-graph cone spanner"},
        [](SpannerSession&, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            const auto& m = require_euclidean(input, "yao", true);
            const Timer timer;
            Graph h = yao_graph(m, options.geometric.cones);
            return finish_baseline(std::move(h), timer.seconds(), "yao",
                                   yao_graph_stretch_bound(options.geometric.cones),
                                   report);
        });

    add({"wspd", InputKind::kEuclidean, false, false,
         "WSPD spanner: one edge per well-separated pair"},
        [](SpannerSession&, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            const auto& m = require_euclidean(input, "wspd", false);
            const Timer timer;
            const double s = options.geometric.wspd_separation;
            Graph h = s > 0.0 ? wspd_spanner_with_separation(m, s)
                              : wspd_spanner(m, options.geometric.epsilon);
            // With an explicit separation the guarantee is the dumbbell
            // bound (s+4)/(s-4), not 1 + epsilon (null in JSON if s <= 4).
            const double target = s > 0.0 ? wspd_greedy_stretch_bound(1.0, s)
                                          : 1.0 + options.geometric.epsilon;
            return finish_baseline(std::move(h), timer.seconds(), "wspd", target,
                                   report);
        });

    add({"net", InputKind::kMetric, false, false,
         "bounded-degree net-tree spanner for doubling metrics"},
        [](SpannerSession&, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            const auto& m = require_metric(input, "net");
            const Timer timer;
            Graph h = net_spanner(m, NetSpannerOptions{
                                         .epsilon = options.geometric.epsilon,
                                         .degree_cap = options.geometric.net_degree_cap});
            return finish_baseline(std::move(h), timer.seconds(), "net",
                                   1.0 + options.geometric.epsilon, report);
        });

    add({"baswana-sen", InputKind::kGraph, false, true,
         "randomized (2k-1)-spanner by cluster sampling [BS07]"},
        [](SpannerSession&, const BuildInput& input, const BuildOptions& options,
           BuildReport* report) {
            const Graph& g = require_graph(input, "baswana-sen");
            const Timer timer;
            Graph h = baswana_sen_spanner(g, options.baswana_sen.k,
                                          options.baswana_sen.seed);
            return finish_baseline(std::move(h), timer.seconds(), "baswana-sen",
                                   2.0 * options.baswana_sen.k - 1.0, report);
        });
}

const AlgorithmRegistry& AlgorithmRegistry::global() {
    static const AlgorithmRegistry registry;
    return registry;
}

std::vector<const AlgorithmInfo*> AlgorithmRegistry::algorithms() const {
    std::vector<const AlgorithmInfo*> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(&e.info);
    return out;
}

const AlgorithmInfo* AlgorithmRegistry::find(std::string_view name) const {
    for (const Entry& e : entries_) {
        if (e.info.name == name) return &e.info;
    }
    return nullptr;
}

Graph AlgorithmRegistry::build(std::string_view name, SpannerSession& session,
                               const BuildInput& input, const BuildOptions& options,
                               BuildReport* report) const {
    if (report != nullptr) *report = BuildReport{};
    options.validate();
    for (const Entry& e : entries_) {
        if (e.info.name != name) continue;
        Graph h = e.fn(session, input, options, report);
        if (report != nullptr) report->algorithm = std::string(name);
        return h;
    }
    throw std::invalid_argument("AlgorithmRegistry: unknown algorithm \"" +
                                std::string(name) + "\"");
}

}  // namespace gsp
