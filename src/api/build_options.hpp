// The unified, layered build configuration.
//
// One options object for every algorithm the registry serves, structured
// as: the shared engine block (EngineTuning -- parallelism, sketch,
// pipeline knobs, identical-output tuning), the target stretch, and one
// small section per algorithm family. Callers set the sections they use;
// validate() checks the whole object up front so a bad combination fails
// before any work (and before any stats out-param could be left stale).
//
// This replaces the per-front-door option structs (GreedyEngineOptions as
// a public surface, MetricGreedyOptions, ApproxGreedyOptions) that each
// re-declared the engine knobs and drifted apart; those survive only as
// deprecated wrappers compiled out under -DGSP_NO_DEPRECATED.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/approx_greedy.hpp"
#include "core/engine_tuning.hpp"

namespace gsp {

struct BuildOptions {
    /// Stretch target t >= 1 of the exact-greedy family (greedy,
    /// greedy-metric, greedy-wspd). The approximate-greedy and baseline
    /// constructions derive their targets from their own sections below.
    double stretch = 2.0;

    /// The shared engine / parallelism / sketch block, consumed by every
    /// algorithm that runs the greedy engine. All fields are decision
    /// preserving (identical edge set at every setting).
    EngineTuning engine;

    /// Candidate delivery of engine builds. The edge set is identical on
    /// both paths (chunk boundaries only split weight buckets); the knob
    /// trades the full materialized array against streaming peak memory.
    enum class Chunking {
        kAuto,         ///< chunk iff the source streams (ChunkSupport::kStreaming)
        kMaterialize,  ///< always materialize the full sorted list
        kChunked       ///< force the chunked path (throws on ChunkSupport::kNone)
    };
    Chunking chunking = Chunking::kAuto;

    /// Section: approximate-greedy (the §5 simulation; "greedy-approx").
    ApproxParams approx;

    /// Section: geometric constructions (theta, yao, wspd, net -- and the
    /// WSPD candidate source of "greedy-wspd").
    struct Geometric {
        /// Cone count of the theta / Yao graphs (>= 4).
        std::size_t cones = 12;
        /// Stretch target 1 + epsilon of the wspd / net baselines (> 0).
        double epsilon = 0.5;
        /// WSPD separation of the "greedy-wspd" candidate source; 0 =
        /// derive the standard 4 + 8/epsilon from `epsilon`.
        double wspd_separation = 0.0;
        /// Degree cap of the net spanner (0 = no delegation).
        std::size_t net_degree_cap = 64;
    } geometric;

    /// Section: Baswana-Sen ("baswana-sen", the randomized comparator).
    struct BaswanaSen {
        unsigned k = 2;             ///< stretch 2k - 1
        std::uint64_t seed = 1;     ///< the construction is randomized
    } baswana_sen;

    /// Throws std::invalid_argument on any inconsistent *shared* field
    /// (stretch + the engine block). Called by SpannerSession::build and
    /// AlgorithmRegistry::build before any work. Per-algorithm sections
    /// are deliberately NOT checked here -- a build must never be vetoed
    /// by a section it does not consume (e.g. a theta build with an
    /// untouched approx section); each candidate source / registry entry
    /// validates the section it actually reads.
    void validate() const;
};

}  // namespace gsp
