#include "api/grid_source.hpp"

#include <stdexcept>

namespace gsp {

double GridCandidateSource::resolve_separation(double separation, double epsilon) {
    if (separation <= 0.0) {
        if (!(epsilon > 0.0)) {
            throw std::invalid_argument(
                "GridCandidateSource: epsilon must be > 0 to derive a separation");
        }
        return 4.0 + 8.0 / epsilon;
    }
    return separation;  // UniformGrid2D enforces > 4
}

GridCandidateSource::GridCandidateSource(const EuclideanMetric& m, double separation,
                                         double epsilon)
    : m_(m), grid_(m, resolve_separation(separation, epsilon)) {}

void GridCandidateSource::materialize(std::vector<GreedyCandidate>& out) {
    GridChunkSource source(grid_);
    while (source.next_chunk(static_cast<std::size_t>(-1), out)) {
    }
}

std::unique_ptr<CandidateChunkSource> GridCandidateSource::chunks() {
    return std::make_unique<GridChunkSource>(grid_);
}

}  // namespace gsp
