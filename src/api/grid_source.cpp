#include "api/grid_source.hpp"

#include <stdexcept>

#include "core/greedy_engine.hpp"

namespace gsp {

double GridCandidateSource::resolve_separation(double separation, double epsilon) {
    if (separation <= 0.0) {
        if (!(epsilon > 0.0)) {
            throw std::invalid_argument(
                "GridCandidateSource: epsilon must be > 0 to derive a separation");
        }
        return 4.0 + 8.0 / epsilon;
    }
    return separation;  // UniformGrid2D enforces > 4
}

GridCandidateSource::GridCandidateSource(const EuclideanMetric& m, double separation,
                                         double epsilon)
    : m_(m), grid_(m, resolve_separation(separation, epsilon)) {}

void GridCandidateSource::materialize(std::vector<GreedyCandidate>& out) {
    GridChunkSource source(grid_);
    while (source.next_chunk(static_cast<std::size_t>(-1), out)) {
    }
}

std::unique_ptr<CandidateChunkSource> GridCandidateSource::chunks() {
    return std::make_unique<GridChunkSource>(grid_);
}

void GridCandidateSource::configure_engine(GreedyEngineOptions& options, SpannerSession&) {
    if (options.cell_batching == EngineTuning::CellBatching::kAuto) {
        options.cell_batching = EngineTuning::CellBatching::kOn;
    }
    // Cell balls amortize across a whole weight class, but the engine's
    // serial batches are clipped to the resident chunk: the default cap
    // slices a level into many pieces and every slice re-drains each
    // anchor's ball from scratch. Widen the chunks (still a fixed-size
    // buffer -- 16 MiB of candidates -- far below the materialized list
    // the linear-space budget guards against) so a level's cell groups
    // arrive whole. Only the untouched default is widened: an explicit
    // user cap wins, as with cell_batching above.
    if (options.chunk_soft_cap == EngineTuning{}.chunk_soft_cap) {
        options.chunk_soft_cap = std::size_t{1} << 21;
    }
    // The via-landmark coarse reject needs both endpoints of a pair to
    // remember a common nearby anchor, and every level's anchors compete
    // for the same few source-keyed slots: at the default associativity
    // most facts a cell ball harvests are evicted before the neighbor
    // cells' candidates consult them. Twice the ways keeps them alive
    // for O(n) extra memory and an O(ways) consult.
    if (options.sketch_ways == EngineTuning{}.sketch_ways) {
        options.sketch_ways = 8;
    }
    // Spanner edge weights are exactly the metric distances of their
    // endpoints, so the metric lower-bounds every graph distance: hand it
    // to the engine as the A* goal oracle and the residual point queries
    // (small groups, members a reject-radius ball left unsettled) explore
    // the pair's ellipse instead of a disc around one endpoint. The
    // source borrows the metric from the caller, who must keep it alive
    // through the build anyway -- the grid holds the same reference.
    if (options.goal_bound == nullptr) {
        options.goal_bound = &m_;
    }
    // The grid's pair-distance batches run through the same kernel table
    // the engine resolves for its probes, so one knob pins every consumer
    // (the property tests rely on a kScalar build never touching a vector
    // lane anywhere in the pipeline).
    grid_.set_kernels(&resolve_simd_kernels(options.simd_backend));
}

}  // namespace gsp
