#include "api/session.hpp"

#include <utility>

#include "api/candidate_source.hpp"
#include "util/rss.hpp"
#include "util/timer.hpp"

namespace gsp {

GSP_SERIAL_ONLY Graph SpannerSession::build(CandidateSource& source,
                                            const BuildOptions& options,
                                            BuildReport* report) {
    // Reset-before-work: a throw below must never leave a previous
    // build's numbers in the caller's report.
    if (report != nullptr) *report = BuildReport{};
    options.validate();

    const Timer timer;
    const std::size_t n = source.num_vertices();

    GreedyEngineOptions engine_options;
    static_cast<EngineTuning&>(engine_options) = options.engine;
    engine_options.stretch = options.stretch;
    source.configure_engine(engine_options, *this);

    const std::size_t pools_before = resources_.pools_constructed();
    const std::size_t workspaces_before = resources_.workspaces_constructed();
    const Timer setup_timer;
    GreedyEngine engine(n, std::move(engine_options), resources_);
    const double setup_seconds = setup_timer.seconds();

    // Candidate delivery: kAuto routes through the chunked engine path
    // exactly when the source generates incrementally (kStreaming) -- the
    // only case where chunking buys memory. Both paths produce the same
    // candidate sequence, so the edge set and decision stats are
    // bit-identical either way.
    const bool chunked =
        options.chunking == BuildOptions::Chunking::kChunked ||
        (options.chunking == BuildOptions::Chunking::kAuto &&
         source.chunk_support() == ChunkSupport::kStreaming);

    Graph h(n);
    source.seed(h);

    GreedyStats stats;
    if (chunked) {
        const auto chunk_source = source.chunks();  // throws on kNone
        candidates_.clear();
        h = engine.run(std::move(h), *chunk_source, candidates_, &stats);
    } else {
        candidates_.clear();
        source.materialize(candidates_);
        h = engine.run(std::move(h), candidates_, &stats);
    }
    ++builds_;

    if (report != nullptr) {
        report->algorithm = source.kind();
        report->source = source.kind();
        report->vertices = n;
        report->candidates = stats.candidates_streamed;
        report->stretch_target = source.stretch_target(engine.options().stretch);
        fill_audit_fields(*report, h);
        report->seconds = timer.seconds();
        report->setup_seconds = setup_seconds;
        // Worker workspaces are sized lazily inside run(), so the deltas
        // are read only now: both are zero on every warm call.
        report->pools_constructed = resources_.pools_constructed() - pools_before;
        report->workspaces_constructed =
            resources_.workspaces_constructed() - workspaces_before;
        // The dispatch-resolved answer, not the knob: what the probes ran.
        report->simd_backend =
            simd::backend_label(resolve_simd_kernels(engine.options().simd_backend));
        report->peak_rss_kb = process_peak_rss_kb();
        report->stats = stats;
    }
    return h;
}

}  // namespace gsp
