// The reusable build session: the unified front door of the library.
//
// A SpannerSession owns the expensive half of the greedy machinery -- the
// stage-2 thread pools, the serial and per-worker Dijkstra workspaces, the
// bound-sketch and certificate arenas, and the candidate materialization
// buffer -- and keeps it warm across build() calls. The one-shot entry
// points (greedy_spanner, greedy_spanner_metric, ...) are sessions that
// live for a single call; a request-serving process keeps one session per
// serving thread, and every warm build() pays zero pool / workspace
// construction (BuildReport::pools_constructed / workspaces_constructed
// certify it; the session-reuse bench probe tracks it in
// BENCH_greedy.json v4).
//
// Reuse never changes results: every run's decisions *and stats* are a
// pure function of (candidates, options) -- a session reused across
// heterogeneous builds returns bit-identical edge sets and reports to
// fresh sessions (property-tested in tests/api_equivalence_test.cpp).
//
// Usage:
//   SpannerSession session;
//   BuildOptions options;
//   options.stretch = 2.0;
//   options.engine.num_threads = 4;
//   GraphCandidateSource source(g);
//   BuildReport report;
//   Graph h = session.build(source, options, &report);
//
// Name-keyed builds over the algorithm registry (theta, yao, baswana-sen,
// ...) go through AlgorithmRegistry::build (api/registry.hpp), which
// threads a session through uniformly.
#pragma once

#include <cstddef>
#include <vector>

#include "api/build_options.hpp"
#include "api/build_report.hpp"
#include "core/candidate_stream.hpp"
#include "core/greedy_engine.hpp"
#include "graph/graph.hpp"
#include "util/annotations.hpp"

namespace gsp {

class CandidateSource;

class SpannerSession {
public:
    SpannerSession() = default;
    SpannerSession(const SpannerSession&) = delete;
    SpannerSession& operator=(const SpannerSession&) = delete;

    /// Run the greedy engine over `source` under `options`. Validates the
    /// options, zeroes `*report`, and fills it with this build's counters
    /// (see BuildReport). Thread pools and workspaces are acquired from
    /// the session cache -- warm on every call after the first of a given
    /// shape.
    GSP_SERIAL_ONLY Graph build(CandidateSource& source, const BuildOptions& options,
                                BuildReport* report = nullptr);

    /// The shared resource arena (pools, workspaces, sketch/certificate
    /// stores) -- what the engine borrows each build.
    [[nodiscard]] EngineResources& resources() { return resources_; }

    /// The serial-loop workspace: reuse it for audits and reroutes between
    /// builds instead of allocating ad-hoc workspaces.
    [[nodiscard]] DijkstraWorkspace& workspace() { return resources_.workspace(); }

    /// The per-worker workspace pool (analysis/audit and spanners/reroute
    /// take it directly via their pool overloads).
    [[nodiscard]] DijkstraWorkspacePool& workspace_pool() {
        return resources_.workspace_pool();
    }

    /// build() calls completed over this session's lifetime.
    [[nodiscard]] std::size_t builds() const { return builds_; }

private:
    EngineResources resources_;
    std::vector<GreedyCandidate> candidates_;  ///< reused materialization buffer
    std::size_t builds_ = 0;
};

}  // namespace gsp
