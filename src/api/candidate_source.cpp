#include "api/candidate_source.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>

#include "api/session.hpp"
#include "spanners/net_spanner.hpp"
#include "spanners/theta_graph.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "wspd/quadtree.hpp"
#include "wspd/wspd.hpp"

namespace gsp {

void CandidateSource::seed(Graph&) {}

void CandidateSource::configure_engine(GreedyEngineOptions&, SpannerSession&) {}

double CandidateSource::stretch_target(double engine_stretch) const {
    return engine_stretch;
}

namespace {

/// The universal chunk adapter: materialize the full sorted list once,
/// serve soft_cap-sized slices. Makes every source chunk-capable (the
/// ordering contract holds trivially) at the cost of the same peak memory
/// as the materializing path -- hence ChunkSupport::kFallback.
class MaterializedChunkSource final : public CandidateChunkSource {
public:
    explicit MaterializedChunkSource(CandidateSource& source) { source.materialize(all_); }

    bool next_chunk(std::size_t soft_cap, std::vector<GreedyCandidate>& out) override {
        if (cursor_ >= all_.size()) return false;
        const std::size_t take =
            std::min(std::max<std::size_t>(soft_cap, 1), all_.size() - cursor_);
        const std::size_t end = cursor_ + take;
        out.insert(out.end(),
                   all_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                   all_.begin() + static_cast<std::ptrdiff_t>(end));
        cursor_ = end;
        return true;
    }

private:
    std::vector<GreedyCandidate> all_;
    std::size_t cursor_ = 0;
};

}  // namespace

std::unique_ptr<CandidateChunkSource> CandidateSource::chunks() {
    if (chunk_support() == ChunkSupport::kNone) {
        throw std::logic_error(std::string("CandidateSource: source '") + kind() +
                               "' does not support chunked generation");
    }
    return std::make_unique<MaterializedChunkSource>(*this);
}

void GraphCandidateSource::materialize(std::vector<GreedyCandidate>& out) {
    append_sorted_graph_candidates(g_, out);
}

void GraphCandidateSource::configure_engine(GreedyEngineOptions& options,
                                            SpannerSession&) {
    // Classic min-endpoint groups pay one point probe per member; the
    // batched multi-target probe decides them in one early-terminating
    // traversal. Defaults only: an explicit kOff (the ablation benches,
    // the equivalence suites' baseline) is preserved.
    if (options.group_probing == EngineTuning::GroupProbing::kAuto) {
        options.group_probing = EngineTuning::GroupProbing::kOn;
    }
}

void MetricCandidateSource::materialize(std::vector<GreedyCandidate>& out) {
    const std::size_t n = m_.size();
    if (n < 2) return;
    const std::size_t base = out.size();
    out.reserve(base + n * (n - 1) / 2);
    const auto* e2 = dynamic_cast<const EuclideanMetric*>(&m_);
    if (e2 != nullptr && e2->dim() == 2) {
        // 2D Euclidean all-pairs: row i's weights d(i, i+1..n-1) in one
        // batched kernel sweep instead of n - i - 1 virtual calls. The
        // kernel is bit-exact against the scalar path, so the candidate
        // list (weights and tie order) is unchanged.
        std::vector<VertexId> ids(n);
        for (VertexId j = 0; j < n; ++j) ids[j] = j;
        std::vector<Weight> row(n);
        for (VertexId i = 0; i + 1 < n; ++i) {
            const std::span<const VertexId> tail(ids.data() + i + 1, n - i - 1);
            e2->distances_from(i, tail, row.data(), *simd_);
            for (std::size_t j = 0; j < tail.size(); ++j) {
                out.push_back(GreedyCandidate{i, tail[j], row[j]});
            }
        }
    } else {
        for (VertexId i = 0; i < n; ++i) {
            for (VertexId j = i + 1; j < n; ++j) {
                out.push_back(GreedyCandidate{i, j, m_.distance(i, j)});
            }
        }
    }
    // The metric kernel's deterministic tie order: (weight, u, v).
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
              [](const GreedyCandidate& a, const GreedyCandidate& b) {
                  return std::tie(a.weight, a.u, a.v) < std::tie(b.weight, b.u, b.v);
              });
}

void MetricCandidateSource::configure_engine(GreedyEngineOptions& options,
                                             SpannerSession&) {
    // All-pairs groups are the widest of any source (n - 1 members at the
    // low end): the prime beneficiary of one-traversal group decisions.
    if (options.group_probing == EngineTuning::GroupProbing::kAuto) {
        options.group_probing = EngineTuning::GroupProbing::kOn;
    }
    // Pin the candidate-weight batches to the run's resolved backend
    // (configure_engine runs before materialize/chunks in a session build).
    simd_ = &resolve_simd_kernels(options.simd_backend);
    // The metric would be a sound goal oracle here (edge weights are
    // metric distances), but neither wiring pays on all-pairs streams,
    // measured at n = 512..2048: `goal_bound` reroutes the point probes
    // through one-sided A*, forfeiting the bidirectional two-sided
    // harvest (~1.8x slower overall), and `probe_goal_bound` trades the
    // probe's shared-drain harvest for per-relaxation oracle calls (the
    // kOn arm slows ~10%). Both stay available as explicit overrides.
}

WspdCandidateSource::WspdCandidateSource(const EuclideanMetric& m, double separation,
                                         double epsilon)
    : m_(m), separation_(separation) {
    if (separation_ <= 0.0) {
        if (!(epsilon > 0.0)) {
            throw std::invalid_argument(
                "WspdCandidateSource: epsilon must be > 0 to derive a separation");
        }
        separation_ = 4.0 + 8.0 / epsilon;  // always > 4
    }
    if (!(separation_ > 4.0)) {
        // At s <= 4 the dumbbell bound is infinite: greedy over the pairs
        // would build *something*, but with no stretch guarantee at all
        // (and a stretch_target of infinity downstream). Refuse up front.
        throw std::invalid_argument(
            "WspdCandidateSource: separation must be > 4 for a finite stretch bound");
    }
}

void WspdCandidateSource::materialize(std::vector<GreedyCandidate>& out) {
    if (m_.size() < 2) return;
    const std::size_t base = out.size();
    const QuadTree tree(m_);
    const auto pairs = well_separated_pairs(tree, separation_);
    out.reserve(base + pairs.size());
    for (const WspdPair& p : pairs) {
        const VertexId a = tree.node(p.a).representative;
        const VertexId b = tree.node(p.b).representative;
        const VertexId u = std::min(a, b);
        const VertexId v = std::max(a, b);
        out.push_back(GreedyCandidate{u, v, m_.distance(u, v)});
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
              [](const GreedyCandidate& a, const GreedyCandidate& b) {
                  return std::tie(a.weight, a.u, a.v) < std::tie(b.weight, b.u, b.v);
              });
}

void WspdCandidateSource::configure_engine(GreedyEngineOptions& options,
                                           SpannerSession&) {
    // Dumbbell representatives repeat across pairs (quadtree reps are
    // hubs), so WSPD groups are wide enough for the batched probe to
    // amortize; the grid source alone keeps its cell-batched reject balls.
    if (options.group_probing == EngineTuning::GroupProbing::kAuto) {
        options.group_probing = EngineTuning::GroupProbing::kOn;
    }
}

namespace {

/// The linear-space WSPD generator. Construction keeps only the dumbbell
/// representative pairs as two u32 arrays plus a u32 class-order
/// permutation (12 bytes per pair -- half the materialized candidate), and
/// partitions the pairs into geometric weight classes [wpos * 2^(c-1),
/// wpos * 2^c) by recomputing each weight on the fly (two counting
/// passes). Serving materializes one class at a time into a scratch
/// vector, sorts it by the source's (weight, u, v) tie rule, and hands out
/// soft_cap-sized slices. Because the class of a candidate is a monotone
/// function of its weight and equal weights always share a class, the
/// concatenation of per-class sorts is exactly the global sort --
/// bit-identical to materialize().
class WspdChunkSource final : public CandidateChunkSource {
public:
    WspdChunkSource(const EuclideanMetric& m, double separation) : m_(m) {
        if (m_.size() < 2) return;
        {
            const QuadTree tree(m_);
            const auto pairs = well_separated_pairs(tree, separation);
            us_.reserve(pairs.size());
            vs_.reserve(pairs.size());
            for (const WspdPair& p : pairs) {
                const VertexId a = tree.node(p.a).representative;
                const VertexId b = tree.node(p.b).representative;
                us_.push_back(std::min(a, b));
                vs_.push_back(std::max(a, b));
            }
        }  // tree + raw pair list released before any candidate memory exists
        const std::size_t p = us_.size();
        if (p == 0) return;

        // Pass 1: weight range (smallest positive weight anchors class 1;
        // exact zeros -- duplicate points -- form class 0).
        wpos_ = std::numeric_limits<double>::infinity();
        double wmax = 0.0;
        for (std::size_t i = 0; i < p; ++i) {
            const double w = m_.distance(us_[i], vs_[i]);
            if (w > 0.0 && w < wpos_) wpos_ = w;
            if (w > wmax) wmax = w;
        }
        std::size_t num_classes = 1;
        if (std::isfinite(wpos_)) {
            num_classes = 2 + static_cast<std::size_t>(std::max(
                                  0.0, std::floor(std::log2(wmax / wpos_))));
        }

        // Pass 2: histogram, prefix-sum, stable scatter of pair indices.
        std::vector<std::uint32_t> counts(num_classes + 1, 0);
        for (std::size_t i = 0; i < p; ++i) {
            ++counts[class_of(m_.distance(us_[i], vs_[i]), num_classes)];
        }
        class_start_.assign(num_classes + 1, 0);
        std::uint32_t acc = 0;
        for (std::size_t c = 0; c < num_classes; ++c) {
            class_start_[c] = acc;
            acc += counts[c];
        }
        class_start_[num_classes] = acc;
        std::vector<std::uint32_t> cursor(class_start_.begin(), class_start_.end() - 1);
        order_.resize(p);
        for (std::size_t i = 0; i < p; ++i) {
            const std::size_t c = class_of(m_.distance(us_[i], vs_[i]), num_classes);
            order_[cursor[c]++] = static_cast<std::uint32_t>(i);
        }
    }

    bool next_chunk(std::size_t soft_cap, std::vector<GreedyCandidate>& out) override {
        while (served_ >= scratch_.size()) {
            if (class_start_.empty() || next_class_ + 1 >= class_start_.size()) return false;
            scratch_.clear();
            served_ = 0;
            const std::uint32_t begin = class_start_[next_class_];
            const std::uint32_t end = class_start_[next_class_ + 1];
            ++next_class_;
            scratch_.reserve(end - begin);
            for (std::uint32_t k = begin; k < end; ++k) {
                const VertexId u = us_[order_[k]];
                const VertexId v = vs_[order_[k]];
                scratch_.push_back(GreedyCandidate{u, v, m_.distance(u, v)});
            }
            std::sort(scratch_.begin(), scratch_.end(),
                      [](const GreedyCandidate& a, const GreedyCandidate& b) {
                          return std::tie(a.weight, a.u, a.v) <
                                 std::tie(b.weight, b.u, b.v);
                      });
        }
        const std::size_t take =
            std::min(std::max<std::size_t>(soft_cap, 1), scratch_.size() - served_);
        const std::size_t end = served_ + take;
        out.insert(out.end(),
                   scratch_.begin() + static_cast<std::ptrdiff_t>(served_),
                   scratch_.begin() + static_cast<std::ptrdiff_t>(end));
        served_ = end;
        return true;
    }

private:
    /// Geometric class index: 0 for w == 0, else 1 + floor(log2(w / wpos)).
    /// Monotone in w, and a pure function of w (equal weights share a
    /// class) -- the two properties the ordering proof needs.
    [[nodiscard]] std::size_t class_of(double w, std::size_t num_classes) const {
        if (!(w > 0.0) || !std::isfinite(wpos_)) return 0;
        const double c = 1.0 + std::floor(std::log2(w / wpos_));
        if (c <= 1.0) return 1;
        return std::min(num_classes - 1, static_cast<std::size_t>(c));
    }

    const EuclideanMetric& m_;
    std::vector<VertexId> us_, vs_;        ///< representative pairs (u < v)
    std::vector<std::uint32_t> order_;     ///< pair indices in class order
    std::vector<std::uint32_t> class_start_;  ///< prefix offsets into order_
    double wpos_ = std::numeric_limits<double>::infinity();
    std::size_t next_class_ = 0;
    std::vector<GreedyCandidate> scratch_;  ///< the one resident class
    std::size_t served_ = 0;
};

}  // namespace

std::unique_ptr<CandidateChunkSource> WspdCandidateSource::chunks() {
    return std::make_unique<WspdChunkSource>(m_, separation_);
}

double wspd_greedy_stretch_bound(double engine_stretch, double separation) {
    // Dumbbell induction: for a pair (p, q) covered by the s-separated
    // dumbbell (A, B) with representatives (u, v), enclosing radius r per
    // side, d(p, q) >= s * r:
    //   d_H(p, q) <= t' * d(p,u) + t * d(u,v) + t' * d(v,q)
    //             <= 4 t' r + t (d + 4r)
    // and solving 4 t'/s + t + 4t/s <= t' gives t' = t (s + 4) / (s - 4).
    if (!(separation > 4.0)) return std::numeric_limits<double>::infinity();
    return engine_stretch * (separation + 4.0) / (separation - 4.0);
}

namespace {

/// Smallest cone count whose guaranteed theta-graph stretch is <= budget.
std::size_t cones_for_budget(double budget) {
    for (std::size_t k = 8; k <= 4096; ++k) {
        if (theta_graph_stretch_bound(k) <= budget) return k;
    }
    throw std::invalid_argument("approx_greedy: stretch budget too tight for theta base");
}

Graph build_base(const MetricSpace& m, const ApproxParams& params, double t_base) {
    const auto* e = dynamic_cast<const EuclideanMetric*>(&m);
    if (e != nullptr && e->dim() == 2) {
        const std::size_t k = params.theta_cones_override != 0
                                  ? params.theta_cones_override
                                  : cones_for_budget(t_base);
        return theta_graph_sweep(*e, k);
    }
    // Generic doubling metric: net-tree spanner with budget eps' = t_base - 1.
    return net_spanner(m, NetSpannerOptions{.epsilon = t_base - 1.0,
                                            .degree_cap = params.net_degree_cap});
}

}  // namespace

BaseSpannerCandidateSource::BaseSpannerCandidateSource(const MetricSpace& m,
                                                       const BuildOptions& options)
    : m_(m), params_(options.approx), base_(m.size()) {
    const double eps = params_.epsilon;
    if (!(eps > 0.0) || eps > 1.0) {
        throw std::invalid_argument(
            "BaseSpannerCandidateSource: epsilon must be in (0, 1]");
    }
    // Split the stretch budget: (1 + eps/3) for the base, the rest for the
    // simulation; (1 + eps/3) * t_sim = 1 + eps exactly.
    t_base_ = 1.0 + eps / 3.0;
    t_sim_ = (1.0 + eps) / t_base_;
    const std::size_t n = m.size();
    if (n <= 1) return;

    {
        const Timer base_timer;
        base_ = build_base(m, params_, t_base_);
        seconds_base_ = base_timer.seconds();
    }

    // E0: edges of weight <= D/n go straight to the output, lightest
    // first (their spanner edge ids must form the prefix -- the Lemma-11
    // suite relies on it). The heavier rest of G' is streamed by
    // materialize() straight into the session's candidate buffer, so the
    // source never holds a second copy of the candidate list.
    Weight max_w = 0.0;
    for (const Edge& e : base_.edges()) max_w = std::max(max_w, e.weight);
    light_threshold_ = max_w / static_cast<double>(n);
    for (const Edge& e : base_.edges()) {
        if (e.weight <= light_threshold_) light_.push_back(e);
    }
    std::sort(light_.begin(), light_.end(), [](const Edge& a, const Edge& b) {
        return std::tie(a.weight, a.u, a.v) < std::tie(b.weight, b.u, b.v);
    });
}

void BaseSpannerCandidateSource::materialize(std::vector<GreedyCandidate>& out) {
    if (m_.size() <= 1) return;
    // The simulated candidates: G' minus E0, in the simulation's
    // historical tie order (weight, u, v) over raw endpoints.
    const std::size_t base = out.size();
    out.reserve(base + base_.num_edges() - light_.size());
    for (const Edge& e : base_.edges()) {
        if (e.weight > light_threshold_) {
            out.push_back(GreedyCandidate{e.u, e.v, e.weight});
        }
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
              [](const GreedyCandidate& a, const GreedyCandidate& b) {
                  return std::tie(a.weight, a.u, a.v) < std::tie(b.weight, b.u, b.v);
              });
}

void BaseSpannerCandidateSource::seed(Graph& h) {
    for (const Edge& e : light_) h.add_edge(e.u, e.v, e.weight);
}

void BaseSpannerCandidateSource::configure_engine(GreedyEngineOptions& options,
                                                  SpannerSession& session) {
    // The simulation runs at its own stretch budget, whatever the caller
    // put in BuildOptions::stretch.
    options.stretch = t_sim_;
    if (!params_.use_cluster_oracle) return;

    const double eps = params_.epsilon;
    const std::size_t n = m_.size();
    // Rebuild the coarse oracle at each bucket boundary, on the session's
    // serial workspace (on_bucket runs strictly before stage 2 fans out,
    // so sharing it with the insertion loop is race-free) -- no ad-hoc
    // O(n) workspace allocation per build.
    DijkstraWorkspace& oracle_ws = session.workspace();
    oracle_ws.resize(n);
    options.on_bucket = [this, eps, &oracle_ws](const Graph& spanner, Weight bucket_lo) {
        oracle_ = std::make_unique<ClusterGraph>(spanner, (eps / 16.0) * bucket_lo,
                                                 &oracle_ws);
    };
    // Sound reject-only fast path: a bound within the threshold is the
    // length of a realizable witness path. The engine counts rejects
    // (stats.prefilter_rejects) and gates the oracle off mid-run if its
    // measured cost exceeds the exact work it saves.
    options.prefilter = [this](VertexId u, VertexId v, Weight threshold) {
        return oracle_->upper_bound_distance(u, v, threshold) <= threshold;
    };
    // Concurrent variant for the parallel prefilter stage: one query
    // scratch per worker, sized from the same resolution rule the engine
    // applies.
    oracle_scratch_.resize(options.parallel_prefilter
                               ? ThreadPool::resolve_workers(options.num_threads)
                               : 1);
    options.concurrent_prefilter = [this](std::size_t worker, VertexId u, VertexId v,
                                          Weight threshold) {
        return oracle_->upper_bound_distance(u, v, threshold,
                                             oracle_scratch_[worker]) <= threshold;
    };
}

ApproxGreedyResult approx_greedy_build(SpannerSession& session, const MetricSpace& m,
                                       const BuildOptions& options, BuildReport* report) {
    // Reset-before-work: a throw below (bad options, bad epsilon) must not
    // leave a previous build's numbers in the caller's report.
    if (report != nullptr) *report = BuildReport{};
    const Timer total_timer;
    options.validate();
    const std::size_t n = m.size();

    BaseSpannerCandidateSource source(m, options);
    ApproxGreedyResult result{.spanner = Graph(n), .base = Graph(n)};
    result.t_base = source.t_base();
    result.t_sim = source.t_sim();
    if (n <= 1) {
        if (report != nullptr) *report = BuildReport{};
        result.seconds_total = total_timer.seconds();
        return result;
    }
    result.base = source.base();
    result.seconds_base = source.seconds_base();
    result.light_edges = source.light_edges();

    BuildReport local_report;
    result.spanner = session.build(source, options, &local_report);
    local_report.algorithm = "greedy-approx";
    result.buckets = local_report.stats.buckets;
    result.oracle_rejects = local_report.stats.prefilter_rejects;
    // Candidates that got past the oracle were decided by the exact kernel
    // (cached exact bounds included).
    result.exact_queries = local_report.stats.edges_examined - result.oracle_rejects;
    result.seconds_total = total_timer.seconds();
    if (report != nullptr) *report = local_report;
    return result;
}

}  // namespace gsp
