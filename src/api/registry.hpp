// The string-keyed algorithm registry.
//
// One uniform way to name, enumerate, and run every spanner construction
// the library ships -- the exact-greedy family (which runs the shared
// engine through a SpannerSession) and the baseline constructions (theta,
// yao, wspd, net, baswana-sen) -- so bench drivers, the spanner_cli
// example, and the test suites iterate algorithms instead of hard-coding
// call sites. Each entry declares what input it consumes; build() type-
// checks the input, runs the construction, and fills a BuildReport.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "api/build_options.hpp"
#include "api/build_report.hpp"
#include "api/session.hpp"
#include "graph/graph.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

/// What an algorithm consumes. kEuclidean requires an EuclideanMetric
/// (any dimension); kEuclidean2D additionally requires dim() == 2.
/// kMetric accepts any MetricSpace (including Euclidean ones).
enum class InputKind { kGraph, kMetric, kEuclidean, kEuclidean2D };

[[nodiscard]] std::string_view to_string(InputKind kind);

/// A build input: exactly one of graph / metric, matching the entry's
/// InputKind.
struct BuildInput {
    const Graph* graph = nullptr;
    const MetricSpace* metric = nullptr;

    [[nodiscard]] static BuildInput of(const Graph& g) {
        BuildInput in;
        in.graph = &g;
        return in;
    }
    [[nodiscard]] static BuildInput of(const MetricSpace& m) {
        BuildInput in;
        in.metric = &m;
        return in;
    }
};

struct AlgorithmInfo {
    std::string_view name;
    InputKind input;
    bool uses_engine = false;  ///< runs the shared greedy engine (exact family)
    bool randomized = false;   ///< output depends on BuildOptions seed fields
    std::string_view description;
};

class AlgorithmRegistry {
public:
    /// The process-wide registry of built-in algorithms.
    [[nodiscard]] static const AlgorithmRegistry& global();

    /// Infos in registration order (stable across runs; the order the CLI
    /// and benches print).
    [[nodiscard]] std::vector<const AlgorithmInfo*> algorithms() const;

    /// Lookup by name; nullptr when unknown.
    [[nodiscard]] const AlgorithmInfo* find(std::string_view name) const;

    /// Build algorithm `name` over `input` through `session`, filling
    /// `*report` (zeroed first) when given. Throws std::invalid_argument
    /// on unknown names or input-kind mismatches.
    Graph build(std::string_view name, SpannerSession& session, const BuildInput& input,
                const BuildOptions& options, BuildReport* report = nullptr) const;

private:
    using BuildFn = std::function<Graph(SpannerSession&, const BuildInput&,
                                        const BuildOptions&, BuildReport*)>;
    struct Entry {
        AlgorithmInfo info;
        BuildFn fn;
    };

    AlgorithmRegistry();

    std::vector<Entry> entries_;
};

}  // namespace gsp
