#include "api/build_options.hpp"

#include <stdexcept>

namespace gsp {

void BuildOptions::validate() const {
    if (stretch < 1.0) {
        throw std::invalid_argument("BuildOptions: stretch must be >= 1");
    }
    if (!(engine.bucket_ratio > 1.0)) {
        throw std::invalid_argument("BuildOptions: engine.bucket_ratio must be > 1");
    }
    if (engine.parallel_batch == 0) {
        throw std::invalid_argument("BuildOptions: engine.parallel_batch must be >= 1");
    }
    if (engine.sketch_ways == 0 ||
        (engine.sketch_ways & (engine.sketch_ways - 1)) != 0) {
        throw std::invalid_argument(
            "BuildOptions: engine.sketch_ways must be a power of two >= 1");
    }
    if (!(engine.parallel_accept_gate >= 0.0)) {
        throw std::invalid_argument(
            "BuildOptions: engine.parallel_accept_gate must be >= 0");
    }
}

}  // namespace gsp
