// A small persistent fork-join executor for the greedy engine's parallel
// stages, with per-worker deques and work stealing.
//
// Design constraints, in order:
//  * the caller participates: worker 0 is the calling thread, so a pool of
//    size 1 degenerates to an inline loop with zero synchronization;
//  * load balance by *stealing*, not by a shared cursor: phase-A probe
//    tasks have wildly uneven costs (one source's ball can be 100x its
//    neighbor's), and a single atomic cursor makes every claim a
//    cross-core round trip. Each worker owns a contiguous task range
//    (its deque); the owner retires tasks from the high end (LIFO-local:
//    the range tail is what it touched last and is hottest in cache) and
//    exhausted workers steal from the low end of the fullest victim
//    (FIFO-steal: the oldest tasks, coldest for the owner). Every
//    *result* is written to task-indexed slots, so the outcome is
//    independent of which worker ran what;
//  * the pool is reused across buckets and runs: workers park on a
//    condition variable between jobs instead of being respawned.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gsp {

class ThreadPool {
public:
    /// A job body: invoked once per task index in [0, num_tasks), with the
    /// claiming worker's id in [0, num_workers()). Distinct workers run
    /// concurrently; one worker's calls are sequential.
    using TaskFn = std::function<void(std::size_t worker, std::size_t task)>;

    /// Create a pool with `workers` total workers (>= 1). Spawns
    /// `workers - 1` threads; worker 0 is whichever thread calls run().
    explicit ThreadPool(std::size_t workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t num_workers() const { return threads_.size() + 1; }

    /// Run fn over all task indices and block until every task finished.
    /// Tasks are dealt out as contiguous per-worker ranges; idle workers
    /// steal from the fullest remaining range. The first exception thrown
    /// by any task is rethrown here (remaining tasks are abandoned; the
    /// pool stays usable).
    void run(std::size_t num_tasks, const TaskFn& fn);

    /// Cumulative count of successful steals (a task retired by a worker
    /// other than the range's initial owner). Monotone across jobs; diff
    /// around a run to observe load-balancing activity.
    [[nodiscard]] std::size_t steal_count() const {
        // Diagnostic read of a commutative counter; never a decision input.
        // gsp-lint: allow(gsp-relaxed-atomic) commutative diagnostics counter
        return steals_.load(std::memory_order_relaxed);
    }

    /// Pick a worker count: explicit request, or hardware concurrency for 0.
    [[nodiscard]] static std::size_t resolve_workers(std::size_t requested);

private:
    /// One worker's task deque: the contiguous index range [lo, hi). The
    /// owner pops from `hi` (LIFO-local), thieves claim from `lo`
    /// (FIFO-steal). A plain mutex per deque keeps the memory model simple
    /// (TSan-clean by construction); contention is rare because a worker
    /// only locks its *own* deque uncontended until someone steals, and
    /// steals lock one victim at a time.
    struct alignas(64) Deque {
        std::mutex mu;
        std::size_t lo = 0;
        std::size_t hi = 0;
    };

    void worker_loop();
    void drain(std::size_t worker);
    /// Claim one task for `worker`: its own deque first, then steal.
    /// Returns false when every deque is empty.
    bool claim(std::size_t worker, std::size_t& task);
    void abandon_all();

    std::vector<std::thread> threads_;
    std::vector<Deque> deques_;  ///< one per worker, sized at construction

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    const TaskFn* fn_ = nullptr;
    std::size_t busy_ = 0;        ///< pool threads still draining the current job
    std::size_t assigned_workers_ = 0;  ///< worker-id dispenser for pool threads
    std::uint64_t generation_ = 0;
    std::exception_ptr first_error_;
    std::atomic<std::size_t> steals_{0};
    bool stop_ = false;
};

}  // namespace gsp
