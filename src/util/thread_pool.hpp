// A small persistent fork-join executor for the greedy engine's parallel
// prefilter stage.
//
// Design constraints, in order:
//  * the caller participates: worker 0 is the calling thread, so a pool of
//    size 1 degenerates to an inline loop with zero synchronization;
//  * tasks are claimed from a shared atomic cursor (dynamic load balance --
//    source groups vary wildly in cost), while every *result* is written to
//    task-indexed slots, so the outcome is independent of scheduling;
//  * the pool is reused across buckets and runs: workers park on a
//    condition variable between jobs instead of being respawned.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gsp {

class ThreadPool {
public:
    /// A job body: invoked once per task index in [0, num_tasks), with the
    /// claiming worker's id in [0, num_workers()). Distinct workers run
    /// concurrently; one worker's calls are sequential.
    using TaskFn = std::function<void(std::size_t worker, std::size_t task)>;

    /// Create a pool with `workers` total workers (>= 1). Spawns
    /// `workers - 1` threads; worker 0 is whichever thread calls run().
    explicit ThreadPool(std::size_t workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t num_workers() const { return threads_.size() + 1; }

    /// Run fn over all task indices and block until every task finished.
    /// The first exception thrown by any task is rethrown here (remaining
    /// tasks are abandoned; the pool stays usable).
    void run(std::size_t num_tasks, const TaskFn& fn);

    /// Pick a worker count: explicit request, or hardware concurrency for 0.
    [[nodiscard]] static std::size_t resolve_workers(std::size_t requested);

private:
    void worker_loop();
    void drain(std::size_t worker);

    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    const TaskFn* fn_ = nullptr;
    std::size_t num_tasks_ = 0;
    std::atomic<std::size_t> next_task_{0};
    std::size_t busy_ = 0;        ///< pool threads still draining the current job
    std::size_t assigned_workers_ = 0;  ///< worker-id dispenser for pool threads
    std::uint64_t generation_ = 0;
    std::exception_ptr first_error_;
    bool stop_ = false;
};

}  // namespace gsp
