// A monotone bucket (calendar) queue for bounded Dijkstra probes.
//
// The greedy kernel's probes have two properties a general-purpose heap
// cannot exploit: keys are nonnegative path lengths capped by the probe
// radius (known up front), and the pop sequence is monotone -- every
// pushed key is a popped key plus a nonnegative edge weight. Hashing keys
// into B equal-width buckets over [0, limit] then makes push O(1) and pop
// amortized O(1 + items/B): the cursor only ever moves forward, a pushed
// key can never land behind it, and the minimum of the current bucket is
// the global minimum (every later bucket's keys are at least the current
// bucket's upper edge).
//
// Within a bucket, pop scans for the minimum instead of keeping the bucket
// ordered. That scan is the price of O(1) pushes, and it is a contiguous
// sweep over a flat array of {key, vertex} pairs -- the same
// cache-friendly shape the batched probe's bound sweep uses.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace gsp {

class BucketQueue {
public:
    struct Item {
        Weight key;
        VertexId vertex;
    };

    /// Prepare for one probe bounded by `limit`; `expected` sizes the
    /// bucket count (roughly one bucket per expected item, clamped to a
    /// power of two in [64, 4096]). Leftover items from an abandoned probe
    /// are discarded -- but only the buckets that probe actually touched
    /// are cleared (the dirty list), so an early-exited probe that spread
    /// 50 items over 2048 warm buckets costs 50 clears, not 2048. Bucket
    /// capacities stay warm across probes.
    void reset(Weight limit, std::size_t expected) {
        for (const std::size_t b : dirty_) buckets_[b].clear();
        dirty_.clear();
        std::size_t want = 64;
        while (want < expected && want < kMaxBuckets) want <<= 1;
        if (buckets_.size() < want) buckets_.resize(want);
        num_ = want;
        cur_ = 0;
        size_ = 0;
        inv_width_ = limit > 0.0 ? static_cast<double>(num_) / limit : 0.0;
    }

    /// Monotone push: `key` must be >= the last popped key (Dijkstra's
    /// invariant). The index clamp below is float-safety only -- a key can
    /// round into the bucket just behind the cursor, never further back.
    void push(Weight key, VertexId v) {
        std::size_t idx = num_ - 1;
        const double scaled = static_cast<double>(key) * inv_width_;
        if (scaled < static_cast<double>(num_ - 1)) {
            idx = static_cast<std::size_t>(scaled);
        }
        if (idx < cur_) idx = cur_;
        if (buckets_[idx].empty()) dirty_.push_back(idx);
        buckets_[idx].push_back({key, v});
        ++size_;
    }

    /// Remove and return the global minimum. Precondition: !empty().
    Item pop_min() {
        while (buckets_[cur_].empty()) ++cur_;
        std::vector<Item>& bucket = buckets_[cur_];
        std::size_t best = 0;
        for (std::size_t i = 1; i < bucket.size(); ++i) {
            if (bucket[i].key < bucket[best].key) best = i;
        }
        const Item out = bucket[best];
        bucket[best] = bucket.back();
        bucket.pop_back();
        --size_;
        return out;
    }

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] std::size_t size() const { return size_; }

private:
    /// Bucket-count ceiling: past this the per-probe reset cost and the
    /// resident footprint outgrow what the within-bucket scan saves.
    static constexpr std::size_t kMaxBuckets = 4096;

    std::vector<std::vector<Item>> buckets_;
    std::vector<std::size_t> dirty_;  ///< buckets pushed into since the last reset
    std::size_t num_ = 0;    ///< active bucket count (power of two)
    std::size_t cur_ = 0;    ///< cursor: no item lives below this bucket
    std::size_t size_ = 0;   ///< live items across all buckets
    double inv_width_ = 0.0; ///< num_ / limit (0 when limit is 0)
};

}  // namespace gsp
