// Wall-clock timing for benchmarks and runtime-scaling experiments.
#pragma once

#include <chrono>

namespace gsp {

/// Monotonic wall-clock stopwatch. Starts on construction.
class Timer {
public:
    Timer() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    /// Seconds elapsed since construction / last reset.
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction / last reset.
    [[nodiscard]] double millis() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace gsp
