#include "util/thread_pool.hpp"

#include <stdexcept>

namespace gsp {

ThreadPool::ThreadPool(std::size_t workers) {
    if (workers == 0) {
        throw std::invalid_argument("ThreadPool: workers must be >= 1");
    }
    threads_.reserve(workers - 1);
    for (std::size_t i = 1; i < workers; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::resolve_workers(std::size_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::run(std::size_t num_tasks, const TaskFn& fn) {
    if (num_tasks == 0) return;
    if (threads_.empty()) {
        // Single-worker pool: no synchronization, just the loop.
        for (std::size_t task = 0; task < num_tasks; ++task) fn(0, task);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        num_tasks_ = num_tasks;
        next_task_.store(0, std::memory_order_relaxed);
        first_error_ = nullptr;
        busy_ = threads_.size();
        ++generation_;
    }
    cv_start_.notify_all();

    drain(0);  // the caller is worker 0

    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return busy_ == 0; });
    fn_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop() {
    // Pool thread i is worker i + 1 (worker 0 is the caller).
    std::size_t my_generation = 0;
    std::size_t worker = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Assign stable worker ids by spawn order: the id is this thread's
        // index in threads_, which is still being filled; derive it from a
        // running counter instead.
        worker = ++assigned_workers_;
    }
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_start_.wait(lock, [&] { return stop_ || generation_ != my_generation; });
            if (stop_) return;
            my_generation = generation_;
        }
        drain(worker);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--busy_ == 0) cv_done_.notify_one();
        }
    }
}

void ThreadPool::drain(std::size_t worker) {
    const TaskFn& fn = *fn_;
    const std::size_t total = num_tasks_;
    for (;;) {
        const std::size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
        if (task >= total) return;
        try {
            fn(worker, task);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!first_error_) first_error_ = std::current_exception();
            // Abandon the remaining tasks: park the cursor at the end.
            next_task_.store(total, std::memory_order_relaxed);
            return;
        }
    }
}

}  // namespace gsp
