#include "util/thread_pool.hpp"

#include <stdexcept>

namespace gsp {

ThreadPool::ThreadPool(std::size_t workers) {
    if (workers == 0) {
        throw std::invalid_argument("ThreadPool: workers must be >= 1");
    }
    deques_ = std::vector<Deque>(workers);
    threads_.reserve(workers - 1);
    for (std::size_t i = 1; i < workers; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::resolve_workers(std::size_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::run(std::size_t num_tasks, const TaskFn& fn) {
    if (num_tasks == 0) return;
    if (threads_.empty()) {
        // Single-worker pool: no synchronization, just the loop.
        for (std::size_t task = 0; task < num_tasks; ++task) fn(0, task);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        first_error_ = nullptr;
        busy_ = threads_.size();
        ++generation_;
        // Deal the tasks as contiguous ranges, one per worker; remainders
        // go to the earliest workers so every range differs by <= 1.
        const std::size_t workers = deques_.size();
        const std::size_t base = num_tasks / workers;
        const std::size_t extra = num_tasks % workers;
        std::size_t next = 0;
        for (std::size_t w = 0; w < workers; ++w) {
            std::lock_guard<std::mutex> dq(deques_[w].mu);
            deques_[w].lo = next;
            next += base + (w < extra ? 1 : 0);
            deques_[w].hi = next;
        }
    }
    cv_start_.notify_all();

    drain(0);  // the caller is worker 0

    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return busy_ == 0; });
    fn_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop() {
    // Pool thread i is worker i + 1 (worker 0 is the caller).
    std::size_t my_generation = 0;
    std::size_t worker = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Assign stable worker ids by spawn order: the id is this thread's
        // index in threads_, which is still being filled; derive it from a
        // running counter instead.
        worker = ++assigned_workers_;
    }
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_start_.wait(lock, [&] { return stop_ || generation_ != my_generation; });
            if (stop_) return;
            my_generation = generation_;
        }
        drain(worker);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--busy_ == 0) cv_done_.notify_one();
        }
    }
}

bool ThreadPool::claim(std::size_t worker, std::size_t& task) {
    // LIFO-local: pop the high end of our own range.
    {
        Deque& mine = deques_[worker];
        std::lock_guard<std::mutex> lock(mine.mu);
        if (mine.lo < mine.hi) {
            task = --mine.hi;
            return true;
        }
    }
    // FIFO-steal: take the low end of the fullest victim. The size scan
    // is racy-by-design (sizes move under us); the claim itself re-checks
    // under the victim's lock, and a victim drained in between forces a
    // rescan -- other deques may still hold work. The rescan loop
    // terminates because no job ever refills a deque: sizes only shrink,
    // so a scan that finds every deque empty is final.
    const std::size_t workers = deques_.size();
    for (;;) {
        std::size_t victim = workers;
        std::size_t victim_size = 0;
        for (std::size_t i = 1; i < workers; ++i) {
            const std::size_t w = (worker + i) % workers;
            Deque& d = deques_[w];
            std::lock_guard<std::mutex> lock(d.mu);
            const std::size_t size = d.hi - d.lo;
            if (size > victim_size) {
                victim = w;
                victim_size = size;
            }
        }
        if (victim == workers) return false;
        Deque& d = deques_[victim];
        std::lock_guard<std::mutex> lock(d.mu);
        if (d.lo >= d.hi) continue;  // drained between the scan and the claim
        task = d.lo++;
        // Commutative monotone counter; never a decision input, read only
        // for diagnostics after the join.
        // gsp-lint: allow(gsp-relaxed-atomic) commutative diagnostics counter
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
}

void ThreadPool::abandon_all() {
    for (Deque& d : deques_) {
        std::lock_guard<std::mutex> lock(d.mu);
        d.lo = d.hi;
    }
}

void ThreadPool::drain(std::size_t worker) {
    const TaskFn& fn = *fn_;
    std::size_t task = 0;
    while (claim(worker, task)) {
        try {
            fn(worker, task);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (!first_error_) first_error_ = std::current_exception();
            }
            // Abandon the remaining tasks: empty every deque.
            abandon_all();
            return;
        }
    }
}

}  // namespace gsp
