// Machine-readable contract annotations for the invariants the engine's
// optimisations rest on (and that PRs 2-9 argued only in prose).
//
// Every greedy decision must be a pure function of (candidate order, exact
// distances): that is what makes the chunked / parallel / SIMD builds
// bit-identical to the serial scalar reference. The property tests and the
// sanitizer CI legs enforce that contract *dynamically*; these macros make
// it *static*. Each annotation names one invariant class, and
// scripts/lint/gsp_lint.py carries one checker per annotation (plus two
// global checks), run at zero findings by the static-analysis CI job.
//
//   GSP_HOT_PATH       The function runs inside the per-candidate /
//                      per-edge inner loops of a warm build. No heap
//                      allocation (new / malloc / make_unique /
//                      make_shared) and no std::stable_sort-class
//                      temporary-buffer algorithms in its body. Warm
//                      buffers follow the resize-not-shrink idiom, whose
//                      steady state allocates nothing.
//                      [checker: gsp-hot-path-alloc]
//
//   GSP_DECISION_PURE  The function's result feeds a greedy decision, so
//                      it must be a deterministic function of its inputs
//                      on every backend, schedule, and run: no
//                      FP-contraction-sensitive math (see GSP_NO_FMA
//                      below), no iteration over unordered containers, no
//                      pointer-keyed ordering (addresses differ across
//                      runs), no rand/time/address-based seeding.
//                      [checkers: gsp-decision-pure, gsp-no-fma]
//
//   GSP_SERIAL_ONLY    The function mutates state owned by the serialized
//                      insertion loop (sketch records, certificate
//                      activation, session buffers) and must never be
//                      reached from a ThreadPool task body.
//                      [checker: gsp-serial-only]
//
//   GSP_EPOCH_GUARDED  The field is epoch- or scope-tagged: its raw value
//                      is meaningless without the tag check its accessor
//                      performs (BoundSketch::lower_bound_at,
//                      CertificateStore::snapshot_distance / load /
//                      published_radius). Readable only inside the
//                      declaring class's own translation units; everyone
//                      else goes through the checked accessors.
//                      [checker: gsp-epoch-guarded]
//
// Under clang (and libclang, which is how gsp_lint.py's clang engine sees
// the code) the macros expand to annotate attributes so cursor walks can
// find them; under gcc they expand to nothing. The linter's textual engine
// keys on the macro tokens themselves, so annotations cost nothing at
// runtime on every compiler.
#pragma once

#if defined(__clang__) || defined(GSP_LINT)
#define GSP_ANNOTATE(tag) __attribute__((annotate(tag)))
#else
#define GSP_ANNOTATE(tag)
#endif

#define GSP_HOT_PATH GSP_ANNOTATE("gsp::hot_path")
#define GSP_DECISION_PURE GSP_ANNOTATE("gsp::decision_pure")
#define GSP_SERIAL_ONLY GSP_ANNOTATE("gsp::serial_only")
#define GSP_EPOCH_GUARDED GSP_ANNOTATE("gsp::epoch_guarded")
