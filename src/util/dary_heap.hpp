// Implicit d-ary min-heap.
//
// The binary std::push_heap/pop_heap pair was the hot instruction stream of
// every Dijkstra query in the greedy kernel. A 4-ary layout halves the tree
// height (fewer sift levels per pop) and keeps the four children of a node
// in at most two cache lines, trading a slightly wider min-of-children scan
// -- the standard win for decrease-key-free Dijkstra workloads where pushes
// outnumber pops and most sifts terminate early. bench_runtime's heap
// section measures the 2-ary vs 4-ary delta on a replayed kernel workload.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace gsp {

/// Min-heap over T using `operator>` (the convention of the Dijkstra
/// QueueItem). Arity is a compile-time constant; 4 is the tuned default for
/// the spanner kernel, 2 reproduces the classic binary heap for benches.
template <class T, std::size_t Arity = 4>
class DaryHeap {
    static_assert(Arity >= 2, "DaryHeap: arity must be >= 2");

public:
    [[nodiscard]] bool empty() const { return items_.empty(); }
    [[nodiscard]] std::size_t size() const { return items_.size(); }
    [[nodiscard]] std::size_t capacity() const { return items_.capacity(); }
    void clear() { items_.clear(); }  // keeps capacity, like vector::clear
    void reserve(std::size_t n) { items_.reserve(n); }

    /// The minimum element. Precondition: !empty().
    [[nodiscard]] const T& min() const { return items_.front(); }

    void push(T item) {
        items_.push_back(std::move(item));
        sift_up(items_.size() - 1);
    }

    /// Remove and return the minimum element. Precondition: !empty().
    T pop_min() {
        T out = std::move(items_.front());
        if (items_.size() > 1) {
            items_.front() = std::move(items_.back());
            items_.pop_back();
            sift_down(0);
        } else {
            items_.pop_back();
        }
        return out;
    }

private:
    void sift_up(std::size_t i) {
        T item = std::move(items_[i]);
        while (i > 0) {
            const std::size_t parent = (i - 1) / Arity;
            if (!(items_[parent] > item)) break;
            items_[i] = std::move(items_[parent]);
            i = parent;
        }
        items_[i] = std::move(item);
    }

    void sift_down(std::size_t i) {
        const std::size_t n = items_.size();
        T item = std::move(items_[i]);
        for (;;) {
            const std::size_t first = Arity * i + 1;
            if (first >= n) break;
            const std::size_t last = std::min(first + Arity, n);
            std::size_t best = first;
            for (std::size_t c = first + 1; c < last; ++c) {
                if (items_[best] > items_[c]) best = c;
            }
            if (!(item > items_[best])) break;
            items_[i] = std::move(items_[best]);
            i = best;
        }
        items_[i] = std::move(item);
    }

    std::vector<T> items_;
};

}  // namespace gsp
