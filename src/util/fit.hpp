// Least-squares fits used by the scaling experiments.
//
// The paper's size/lightness/runtime statements are asymptotic
// (O(n^{1+1/k}), O(n log n), ...). The benches check the *shape* of a
// measurement by fitting `y = c * x^a` on a log-log scale and comparing the
// exponent `a` to the theory value.
#pragma once

#include <span>

namespace gsp {

struct PowerFit {
    double exponent = 0.0;      ///< a in y = c * x^a
    double coefficient = 0.0;   ///< c in y = c * x^a
    double r_squared = 0.0;     ///< goodness of the log-log linear fit
};

/// Fit y = c * x^a by linear least squares in (log x, log y).
/// Requires xs.size() == ys.size() >= 2 and all values strictly positive.
[[nodiscard]] PowerFit fit_power_law(std::span<const double> xs, std::span<const double> ys);

/// Slope of the best-fit line through (xs, ys) by ordinary least squares.
/// Requires at least two points.
[[nodiscard]] double fit_slope(std::span<const double> xs, std::span<const double> ys);

}  // namespace gsp
