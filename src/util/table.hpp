// Fixed-width table printing for the benchmark harnesses.
//
// Every experiment binary prints aligned, human-readable tables whose rows
// mirror the series the paper reports; this module keeps that formatting in
// one place.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace gsp {

/// Collects rows of string cells and prints them with aligned columns.
/// Also supports CSV emission for downstream plotting.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Append a row; it must have exactly as many cells as the header.
    void add_row(std::vector<std::string> cells);

    /// Number of data rows (excluding the header).
    [[nodiscard]] std::size_t rows() const { return rows_.size(); }

    /// Render with aligned columns, a rule under the header, 2-space gutters.
    void print(std::ostream& os) const;

    /// Render as RFC-4180-ish CSV (no quoting needed for our numeric cells).
    void print_csv(std::ostream& os) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant decimal places, trimming noise.
[[nodiscard]] std::string fmt(double value, int digits = 3);

/// Format a ratio as e.g. "12.3x".
[[nodiscard]] std::string fmt_ratio(double value, int digits = 2);

}  // namespace gsp
