#include "util/fit.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace gsp {

double fit_slope(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size() || xs.size() < 2) {
        throw std::invalid_argument("fit_slope: need >= 2 paired points");
    }
    const auto n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    if (denom == 0.0) throw std::invalid_argument("fit_slope: degenerate x values");
    return (n * sxy - sx * sy) / denom;
}

PowerFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size() || xs.size() < 2) {
        throw std::invalid_argument("fit_power_law: need >= 2 paired points");
    }
    std::vector<double> lx(xs.size()), ly(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] <= 0.0 || ys[i] <= 0.0) {
            throw std::invalid_argument("fit_power_law: values must be positive");
        }
        lx[i] = std::log(xs[i]);
        ly[i] = std::log(ys[i]);
    }
    const double a = fit_slope(lx, ly);
    // Intercept and R^2 on the log-log scale.
    const auto n = static_cast<double>(lx.size());
    double mx = 0, my = 0;
    for (std::size_t i = 0; i < lx.size(); ++i) {
        mx += lx[i];
        my += ly[i];
    }
    mx /= n;
    my /= n;
    const double b = my - a * mx;
    double ss_res = 0, ss_tot = 0;
    for (std::size_t i = 0; i < lx.size(); ++i) {
        const double pred = a * lx[i] + b;
        ss_res += (ly[i] - pred) * (ly[i] - pred);
        ss_tot += (ly[i] - my) * (ly[i] - my);
    }
    PowerFit fit;
    fit.exponent = a;
    fit.coefficient = std::exp(b);
    fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
    return fit;
}

}  // namespace gsp
