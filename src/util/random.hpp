// Seeded random-number utilities.
//
// Every randomized component in the library takes an explicit `Rng` (or a
// 64-bit seed) so that all experiments are reproducible; there is no global
// random state anywhere in the library.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace gsp {

/// A thin wrapper over std::mt19937_64 with the handful of draw helpers the
/// library needs. Copyable (copies fork the stream state).
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Uniform index in [0, n). Requires n > 0.
    std::size_t index(std::size_t n) {
        if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
        return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }

    /// Uniform real in [lo, hi).
    double uniform(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Standard uniform in [0, 1).
    double uniform01() { return uniform(0.0, 1.0); }

    /// Gaussian with the given mean and standard deviation.
    double normal(double mean, double stddev) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Bernoulli draw with success probability p.
    bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    /// Uniformly chosen element of a non-empty span.
    template <typename T>
    const T& pick(std::span<const T> v) {
        if (v.empty()) throw std::invalid_argument("Rng::pick: empty span");
        return v[index(v.size())];
    }

    /// Derive an independent child stream (for splitting work deterministically).
    Rng fork() { return Rng(engine_()); }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace gsp
