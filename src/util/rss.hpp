// Process peak-RSS probe.
//
// One tiny wrapper over getrusage(RUSAGE_SELF).ru_maxrss, normalized to
// KiB (Linux reports KiB already; macOS reports bytes). The value is the
// process-lifetime high-water mark -- monotone non-decreasing -- so
// per-phase attribution is done by sampling before and after a phase and
// reporting both the running peak and the delta (a zero delta means the
// phase fit inside memory some earlier phase already touched).
//
// Shared by BuildReport (peak RSS per build) and the bench harness (the
// per-probe mem rows of BENCH_greedy.json v5); previously the bench read
// it once at process exit, silently attributing the global maximum to
// every row.
#pragma once

#include <cstddef>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace gsp {

/// The process peak resident set size in KiB so far; 0 where unsupported.
inline std::size_t process_peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
    return static_cast<std::size_t>(usage.ru_maxrss) / 1024;  // bytes -> KiB
#else
    return static_cast<std::size_t>(usage.ru_maxrss);  // already KiB
#endif
#else
    return 0;
#endif
}

}  // namespace gsp
