// A minimal ordered JSON writer.
//
// The one serialization substrate every machine-readable artifact shares:
// BuildReport::to_json (src/api/build_report) and the BENCH_greedy.json
// emitters (bench/greedy_kernel_bench.hpp) all build their documents
// through it, instead of each hand-rolling `out << "\"key\": "` streams
// that drift apart. Deliberately tiny: objects, arrays, scalars, insertion
// order preserved, no parsing, no dependencies.
#pragma once

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gsp {

class JsonWriter {
public:
    JsonWriter& begin_object() { return open('{'); }
    JsonWriter& end_object() { return close('}'); }
    JsonWriter& begin_array() { return open('['); }
    JsonWriter& end_array() { return close(']'); }

    /// Start a member inside an object; follow with a value or begin_*.
    JsonWriter& key(std::string_view name) {
        separate();
        write_string(name);
        out_ << ": ";
        pending_value_ = true;
        return *this;
    }

    JsonWriter& value(double v) {
        separate();
        if (std::isfinite(v)) {
            out_ << v;  // default ostream precision, as the benches always used
        } else {
            out_ << "null";  // "inf"/"nan" are not JSON
        }
        return *this;
    }
    JsonWriter& value(std::size_t v) {
        separate();
        out_ << v;
        return *this;
    }
    JsonWriter& value(int v) {
        separate();
        out_ << v;
        return *this;
    }
    JsonWriter& value(bool v) {
        separate();
        out_ << (v ? "true" : "false");
        return *this;
    }
    JsonWriter& value(std::string_view v) {
        separate();
        write_string(v);
        return *this;
    }
    JsonWriter& value(const char* v) { return value(std::string_view(v)); }

    /// key + scalar in one call.
    template <class T>
    JsonWriter& member(std::string_view name, T v) {
        key(name);
        return value(v);
    }

    [[nodiscard]] std::string str() const { return out_.str(); }

private:
    JsonWriter& open(char c) {
        separate();
        out_ << c;
        first_.push_back(true);
        return *this;
    }
    JsonWriter& close(char c) {
        first_.pop_back();
        out_ << c;
        return *this;
    }
    /// Comma placement: a value directly after key() never separates; any
    /// other value/opening in a container separates unless it is first.
    void separate() {
        if (pending_value_) {
            pending_value_ = false;
            return;
        }
        if (first_.empty()) return;
        if (first_.back()) {
            first_.back() = false;
        } else {
            out_ << ", ";
        }
    }
    void write_string(std::string_view s) {
        out_ << '"';
        for (const char c : s) {
            switch (c) {
                case '"': out_ << "\\\""; break;
                case '\\': out_ << "\\\\"; break;
                case '\n': out_ << "\\n"; break;
                case '\t': out_ << "\\t"; break;
                default: out_ << c;
            }
        }
        out_ << '"';
    }

    std::ostringstream out_;
    std::vector<bool> first_;     ///< per open container: no member yet?
    bool pending_value_ = false;  ///< key() emitted, value must not separate
};

}  // namespace gsp
