#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gsp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size()) {
        throw std::invalid_argument("Table::add_row: cell count does not match header");
    }
    rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
    }
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int digits) {
    if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
    if (std::isnan(value)) return "nan";
    std::ostringstream ss;
    ss.setf(std::ios::fixed);
    ss.precision(digits);
    ss << value;
    std::string s = ss.str();
    if (s.find('.') != std::string::npos) {
        while (s.back() == '0') s.pop_back();
        if (s.back() == '.') s.pop_back();
    }
    return s;
}

std::string fmt_ratio(double value, int digits) { return fmt(value, digits) + "x"; }

}  // namespace gsp
