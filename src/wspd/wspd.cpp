#include "wspd/wspd.hpp"

#include <functional>
#include <stdexcept>
#include <vector>

namespace gsp {

namespace {

/// Both cells fit in balls of radius max(r_a, r_b) around their centers;
/// well-separated iff the gap between those balls is >= s * that radius.
bool well_separated(const QuadTree& t, std::uint32_t a, std::uint32_t b, double s) {
    const double r = std::max(t.enclosing_radius(a), t.enclosing_radius(b));
    return t.center_distance(a, b) - 2.0 * r >= s * r;
}

}  // namespace

std::vector<WspdPair> well_separated_pairs(const QuadTree& tree, double separation) {
    if (!(separation > 0.0)) {
        throw std::invalid_argument("well_separated_pairs: separation must be > 0");
    }
    std::vector<WspdPair> result;

    const std::function<void(std::uint32_t, std::uint32_t)> pairs =
        [&](std::uint32_t a, std::uint32_t b) {
            if (a == b) {
                const auto& node = tree.node(a);
                if (node.count <= 1) return;
                for (std::size_t i = 0; i < node.children.size(); ++i) {
                    for (std::size_t j = i; j < node.children.size(); ++j) {
                        pairs(node.children[i], node.children[j]);
                    }
                }
                return;
            }
            if (well_separated(tree, a, b, separation)) {
                result.push_back({a, b});
                return;
            }
            // Split the node with the larger cell (ties: larger count).
            const auto& na = tree.node(a);
            const auto& nb = tree.node(b);
            const bool split_a = na.children.empty()    ? false
                                 : nb.children.empty() ? true
                                 : na.half_size != nb.half_size
                                     ? na.half_size > nb.half_size
                                     : na.count >= nb.count;
            if (split_a) {
                for (std::uint32_t c : na.children) pairs(c, b);
            } else if (!nb.children.empty()) {
                for (std::uint32_t c : nb.children) pairs(a, c);
            } else {
                // Two singleton leaves that are not yet separated can only
                // happen for coincident points, which QuadTree rejects.
                throw std::logic_error("well_separated_pairs: cannot split leaves");
            }
        };
    pairs(tree.root(), tree.root());
    return result;
}

namespace {

void collect_points(const QuadTree& t, std::uint32_t id, std::vector<VertexId>& out) {
    const auto& node = t.node(id);
    if (node.children.empty()) {
        out.insert(out.end(), node.points.begin(), node.points.end());
        return;
    }
    for (std::uint32_t c : node.children) collect_points(t, c, out);
}

}  // namespace

bool check_separation(const QuadTree& tree, const std::vector<WspdPair>& pairs,
                      double separation) {
    for (const WspdPair& pr : pairs) {
        // Check the *point sets*, not just the cells: every cross distance
        // must be >= s * max enclosing radius (a consequence of the cell
        // condition, verified directly here).
        std::vector<VertexId> pa, pb;
        collect_points(tree, pr.a, pa);
        collect_points(tree, pr.b, pb);
        const double r = std::max(tree.enclosing_radius(pr.a), tree.enclosing_radius(pr.b));
        for (VertexId x : pa) {
            for (VertexId y : pb) {
                if (tree.metric().distance(x, y) < separation * r) return false;
            }
        }
    }
    return true;
}

bool check_unique_coverage(const QuadTree& tree, const std::vector<WspdPair>& pairs) {
    const std::size_t n = tree.metric().size();
    std::vector<std::vector<int>> covered(n, std::vector<int>(n, 0));
    for (const WspdPair& pr : pairs) {
        std::vector<VertexId> pa, pb;
        collect_points(tree, pr.a, pa);
        collect_points(tree, pr.b, pb);
        for (VertexId x : pa) {
            for (VertexId y : pb) {
                if (x == y) return false;  // a point paired with itself
                ++covered[std::min(x, y)][std::max(x, y)];
            }
        }
    }
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            if (covered[i][j] != 1) return false;
        }
    }
    return true;
}

}  // namespace gsp
