#include "wspd/quadtree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gsp {

QuadTree::QuadTree(const EuclideanMetric& m) : m_(m) {
    const std::size_t n = m.size();
    if (n == 0) throw std::invalid_argument("QuadTree: empty point set");
    const std::size_t d = m.dim();

    // Bounding cube.
    std::vector<double> lo(d, kInfiniteWeight), hi(d, -kInfiniteWeight);
    for (VertexId p = 0; p < n; ++p) {
        const auto pt = m.point(p);
        for (std::size_t k = 0; k < d; ++k) {
            lo[k] = std::min(lo[k], pt[k]);
            hi[k] = std::max(hi[k], pt[k]);
        }
    }
    double side = 0.0;
    for (std::size_t k = 0; k < d; ++k) side = std::max(side, hi[k] - lo[k]);
    if (side == 0.0) side = 1.0;  // all points coincide; any positive cell works
    side *= 1.0 + 1e-12;          // keep max-coordinate points strictly inside
    std::vector<double> center(d);
    for (std::size_t k = 0; k < d; ++k) center[k] = lo[k] + side / 2.0;

    std::vector<VertexId> all(n);
    for (VertexId p = 0; p < n; ++p) all[p] = p;
    build(std::move(all), std::move(center), side / 2.0, kNoNode);
}

std::uint32_t QuadTree::build(std::vector<VertexId> pts, std::vector<double> center,
                              double half_size, std::uint32_t parent) {
    const std::size_t d = m_.dim();
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back({});
    {
        Node& node = nodes_.back();
        node.parent = parent;
        node.count = pts.size();
        node.representative = pts.front();
    }

    if (pts.size() == 1) {
        // Collapse the singleton's cell to the point itself: enclosing
        // radius 0 makes any distinct pair of leaves well-separated, which
        // the WSPD recursion depends on.
        Node& node = nodes_[id];
        const auto pt = m_.point(pts[0]);
        node.center.assign(pt.begin(), pt.end());
        node.half_size = 0.0;
        node.points = std::move(pts);
        return id;
    }

    // Path compression: shrink the cell while all points share one child,
    // so chains of singleton-occupancy cells cost no nodes.
    auto child_index = [&](VertexId p, const std::vector<double>& c) {
        std::size_t idx = 0;
        const auto pt = m_.point(p);
        for (std::size_t k = 0; k < d; ++k) {
            if (pt[k] >= c[k]) idx |= (std::size_t{1} << k);
        }
        return idx;
    };
    for (;;) {
        const std::size_t first = child_index(pts[0], center);
        bool all_same = true;
        for (std::size_t i = 1; i < pts.size(); ++i) {
            if (child_index(pts[i], center) != first) {
                all_same = false;
                break;
            }
        }
        if (!all_same) break;
        // Descend into that child cell without creating a node.
        half_size /= 2.0;
        for (std::size_t k = 0; k < d; ++k) {
            center[k] += ((first >> k) & 1u) ? half_size : -half_size;
        }
        if (half_size <= 0.0 || !std::isfinite(half_size)) {
            throw std::logic_error("QuadTree: degenerate subdivision (duplicate points?)");
        }
    }

    // Partition into child cells.
    const std::size_t fanout = std::size_t{1} << d;
    std::vector<std::vector<VertexId>> buckets(fanout);
    for (VertexId p : pts) buckets[child_index(p, center)].push_back(p);

    nodes_[id].center = center;
    nodes_[id].half_size = half_size;
    for (std::size_t b = 0; b < fanout; ++b) {
        if (buckets[b].empty()) continue;
        std::vector<double> child_center(center);
        const double quarter = half_size / 2.0;
        for (std::size_t k = 0; k < d; ++k) {
            child_center[k] += ((b >> k) & 1u) ? quarter : -quarter;
        }
        const std::uint32_t child =
            build(std::move(buckets[b]), std::move(child_center), quarter, id);
        nodes_[id].children.push_back(child);
    }
    return id;
}

double QuadTree::enclosing_radius(std::uint32_t id) const {
    const Node& node = nodes_.at(id);
    return node.half_size * std::sqrt(static_cast<double>(m_.dim()));
}

double QuadTree::center_distance(std::uint32_t a, std::uint32_t b) const {
    const Node& na = nodes_.at(a);
    const Node& nb = nodes_.at(b);
    double sum = 0.0;
    for (std::size_t k = 0; k < m_.dim(); ++k) {
        const double diff = na.center[k] - nb.center[k];
        sum += diff * diff;
    }
    return std::sqrt(sum);
}

bool QuadTree::check_invariants() const {
    std::vector<int> seen(m_.size(), 0);
    for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
        const Node& node = nodes_[id];
        if (node.count == 0) return false;
        if (node.children.empty()) {
            if (node.points.size() != node.count) return false;
            for (VertexId p : node.points) {
                ++seen[p];
                // Point inside the cell box.
                const auto pt = m_.point(p);
                for (std::size_t k = 0; k < m_.dim(); ++k) {
                    if (std::abs(pt[k] - node.center[k]) > node.half_size * (1 + 1e-9)) {
                        return false;
                    }
                }
            }
        } else {
            std::size_t child_total = 0;
            for (std::uint32_t c : node.children) {
                if (nodes_[c].parent != id) return false;
                if (nodes_[c].half_size > node.half_size) return false;
                child_total += nodes_[c].count;
            }
            if (child_total != node.count) return false;
        }
    }
    for (int s : seen) {
        if (s != 1) return false;
    }
    return true;
}

}  // namespace gsp
