// Well-separated pair decomposition (Callahan-Kosaraju) on the quadtree.
//
// A pair of quadtree cells (A, B) is s-well-separated when the cells can be
// enclosed in balls of radius r with d(centers) - 2r >= s * r. The WSPD is
// a set of such pairs covering every ordered pair of distinct points
// exactly once; its size is n * s^O(d). Substrate for the WSPD spanner
// baseline in the [FG05] comparison experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "wspd/quadtree.hpp"

namespace gsp {

struct WspdPair {
    std::uint32_t a = 0;  ///< quadtree node id
    std::uint32_t b = 0;  ///< quadtree node id
};

/// Compute an s-WSPD of the quadtree's point set. Requires s > 0.
std::vector<WspdPair> well_separated_pairs(const QuadTree& tree, double separation);

/// Check the defining property on every returned pair: the two point sets
/// are s-separated relative to the larger enclosing radius. For tests.
[[nodiscard]] bool check_separation(const QuadTree& tree, const std::vector<WspdPair>& pairs,
                                    double separation);

/// Check the coverage property: every unordered pair of distinct points is
/// covered by exactly one WSPD pair. O(n^2 + total pair content); for tests.
[[nodiscard]] bool check_unique_coverage(const QuadTree& tree,
                                         const std::vector<WspdPair>& pairs);

}  // namespace gsp
