// Compressed quadtree over Euclidean point sets (any fixed dimension).
//
// The substrate for the well-separated pair decomposition: each node is a
// hypercube cell holding the points inside it; subdivision recurses until a
// cell holds at most one point, skipping levels where all points fall into
// a single child (path compression, which bounds the tree size by O(n)
// regardless of the point spread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "metric/euclidean.hpp"

namespace gsp {

class QuadTree {
public:
    static constexpr std::uint32_t kNoNode = 0xffffffffu;

    struct Node {
        std::vector<double> center;      ///< cell center
        double half_size = 0.0;          ///< half the cell side length
        std::uint32_t parent = kNoNode;
        std::vector<std::uint32_t> children;  ///< non-empty children only
        std::vector<VertexId> points;    ///< points, only for leaves
        VertexId representative = kNoVertex;  ///< some point in the subtree
        std::size_t count = 0;           ///< points in the subtree
    };

    /// Build over all points of m. Requires at least one point.
    explicit QuadTree(const EuclideanMetric& m);

    [[nodiscard]] const Node& node(std::uint32_t id) const { return nodes_.at(id); }
    [[nodiscard]] std::uint32_t root() const { return 0; }
    [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
    [[nodiscard]] const EuclideanMetric& metric() const { return m_; }

    /// Radius of the ball centered at the cell center that encloses the
    /// whole cell (half the cell diagonal).
    [[nodiscard]] double enclosing_radius(std::uint32_t id) const;

    /// Distance between the cell centers of two nodes.
    [[nodiscard]] double center_distance(std::uint32_t a, std::uint32_t b) const;

    /// Verify structural invariants (children inside parents, counts add up,
    /// every point in exactly one leaf). Quadratic-ish; for tests.
    [[nodiscard]] bool check_invariants() const;

private:
    std::uint32_t build(std::vector<VertexId> pts, std::vector<double> center,
                        double half_size, std::uint32_t parent);

    const EuclideanMetric& m_;
    std::vector<Node> nodes_;
};

}  // namespace gsp
