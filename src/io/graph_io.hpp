// Plain-text interchange formats, so the library runs on user data:
//   * graphs: an edge-list format ("n m" header, then "u v w" lines);
//   * point sets: TSV, one point per row;
//   * DOT export for quick visualization of small spanners.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "metric/euclidean.hpp"

namespace gsp {

/// Write "n m\n" then one "u v w" line per edge (full precision).
void write_graph(std::ostream& os, const Graph& g);

/// Parse the write_graph format. Throws std::invalid_argument on malformed
/// input (bad counts, out-of-range endpoints, non-positive weights).
Graph read_graph(std::istream& is);

/// Write "n dim\n" then one whitespace-separated coordinate row per point.
void write_points(std::ostream& os, const EuclideanMetric& m);

/// Parse the write_points format.
EuclideanMetric read_points(std::istream& is);

/// Graphviz DOT (undirected), edge labels = weights; intended for small
/// graphs (the Figure-1 instance renders nicely).
void write_dot(std::ostream& os, const Graph& g, const std::string& name = "spanner");

}  // namespace gsp
