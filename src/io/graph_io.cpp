#include "io/graph_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace gsp {

void write_graph(std::ostream& os, const Graph& g) {
    const auto old_precision = os.precision(std::numeric_limits<double>::max_digits10);
    os << g.num_vertices() << ' ' << g.num_edges() << '\n';
    for (const Edge& e : g.edges()) {
        os << e.u << ' ' << e.v << ' ' << e.weight << '\n';
    }
    os.precision(old_precision);
}

Graph read_graph(std::istream& is) {
    std::size_t n = 0;
    std::size_t m = 0;
    if (!(is >> n >> m)) throw std::invalid_argument("read_graph: missing header");
    Graph g(n);
    for (std::size_t i = 0; i < m; ++i) {
        VertexId u = 0;
        VertexId v = 0;
        Weight w = 0.0;
        if (!(is >> u >> v >> w)) {
            throw std::invalid_argument("read_graph: truncated edge list");
        }
        g.add_edge(u, v, w);  // add_edge validates range/weight
    }
    return g;
}

void write_points(std::ostream& os, const EuclideanMetric& m) {
    const auto old_precision = os.precision(std::numeric_limits<double>::max_digits10);
    os << m.size() << ' ' << m.dim() << '\n';
    for (VertexId p = 0; p < m.size(); ++p) {
        const auto pt = m.point(p);
        for (std::size_t k = 0; k < pt.size(); ++k) {
            os << pt[k] << (k + 1 < pt.size() ? '\t' : '\n');
        }
    }
    os.precision(old_precision);
}

EuclideanMetric read_points(std::istream& is) {
    std::size_t n = 0;
    std::size_t dim = 0;
    if (!(is >> n >> dim)) throw std::invalid_argument("read_points: missing header");
    if (dim == 0) throw std::invalid_argument("read_points: dim must be >= 1");
    std::vector<double> coords;
    coords.reserve(n * dim);
    for (std::size_t i = 0; i < n * dim; ++i) {
        double c = 0.0;
        if (!(is >> c)) throw std::invalid_argument("read_points: truncated coordinates");
        coords.push_back(c);
    }
    return EuclideanMetric(dim, std::move(coords));
}

void write_dot(std::ostream& os, const Graph& g, const std::string& name) {
    os << "graph " << name << " {\n";
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        os << "  " << v << ";\n";
    }
    for (const Edge& e : g.edges()) {
        os << "  " << e.u << " -- " << e.v << " [label=\"" << e.weight << "\"];\n";
    }
    os << "}\n";
}

}  // namespace gsp
