// Spanner auditing: the quantities every experiment reports.
//
// size |H|, weight w(H), lightness w(H)/w(MST), maximum degree, and the
// *exact* maximum stretch. Stretch is verified the way Section 2 of the
// paper licenses: it suffices to check the pairs that are edges of the
// input (graph case) -- and for metric inputs, all pairs.
//
// Every auditor has a workspace-taking overload so callers in tight loops
// (benches sweeping configurations, per-bucket re-audits) reuse one
// DijkstraWorkspace instead of paying an O(n) allocation per call, and a
// pool-taking overload that borrows workspace 0 of a DijkstraWorkspacePool
// -- pass SpannerSession::workspace_pool() so audits between builds share
// the session's arenas (zero allocation on the audit path). The plain
// overloads allocate a local workspace and delegate.
#pragma once

#include <cstddef>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

struct SpannerAudit {
    std::size_t vertices = 0;
    std::size_t edges = 0;
    double weight = 0.0;
    double lightness = 0.0;    ///< w(H) / w(MST of the *input*)
    std::size_t max_degree = 0;
    double avg_degree = 0.0;
    double max_stretch = 0.0;  ///< max over checked pairs of delta_H / d_input
};

/// Exact maximum stretch of h w.r.t. the edges of g: one Dijkstra on h per
/// distinct edge source. Requires matching vertex counts.
double max_stretch_over_edges(const Graph& g, const Graph& h, DijkstraWorkspace& ws);
double max_stretch_over_edges(const Graph& g, const Graph& h,
                              DijkstraWorkspacePool& pool);
double max_stretch_over_edges(const Graph& g, const Graph& h);

/// Exact maximum stretch of h w.r.t. all pairs of the metric m: n Dijkstra
/// runs on h. Infinite if h fails to connect some pair.
double max_stretch_metric(const MetricSpace& m, const Graph& h, DijkstraWorkspace& ws);
double max_stretch_metric(const MetricSpace& m, const Graph& h,
                          DijkstraWorkspacePool& pool);
double max_stretch_metric(const MetricSpace& m, const Graph& h);

/// Lower bound on the maximum stretch from `sources` randomly chosen source
/// vertices (each checked against all targets). Exact when sources >= n.
/// For the large-n benches where the full O(n^2) audit is too slow.
double max_stretch_metric_sampled(const MetricSpace& m, const Graph& h,
                                  std::size_t sources, std::uint64_t seed,
                                  DijkstraWorkspace& ws);
double max_stretch_metric_sampled(const MetricSpace& m, const Graph& h,
                                  std::size_t sources, std::uint64_t seed,
                                  DijkstraWorkspacePool& pool);
double max_stretch_metric_sampled(const MetricSpace& m, const Graph& h,
                                  std::size_t sources, std::uint64_t seed);

/// Full audit of spanner h for graph input g (throws if g disconnected,
/// since lightness is undefined).
SpannerAudit audit_graph_spanner(const Graph& g, const Graph& h, DijkstraWorkspace& ws);
SpannerAudit audit_graph_spanner(const Graph& g, const Graph& h,
                                 DijkstraWorkspacePool& pool);
SpannerAudit audit_graph_spanner(const Graph& g, const Graph& h);

/// Full audit of spanner h for metric input m.
SpannerAudit audit_metric_spanner(const MetricSpace& m, const Graph& h,
                                  DijkstraWorkspace& ws);
SpannerAudit audit_metric_spanner(const MetricSpace& m, const Graph& h,
                                  DijkstraWorkspacePool& pool);
SpannerAudit audit_metric_spanner(const MetricSpace& m, const Graph& h);

}  // namespace gsp
