#include "analysis/audit.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "util/random.hpp"

namespace gsp {

double max_stretch_over_edges(const Graph& g, const Graph& h, DijkstraWorkspace& ws) {
    if (g.num_vertices() != h.num_vertices()) {
        throw std::invalid_argument("max_stretch_over_edges: vertex count mismatch");
    }
    // Group the edges of g by source endpoint so one Dijkstra per distinct
    // source covers them all.
    std::vector<std::vector<std::pair<VertexId, Weight>>> queries(g.num_vertices());
    for (const Edge& e : g.edges()) {
        queries[e.u].push_back({e.v, e.weight});
    }
    ws.resize(h.num_vertices());
    double worst = 0.0;
    for (VertexId s = 0; s < g.num_vertices(); ++s) {
        if (queries[s].empty()) continue;
        const auto& dist = ws.all_distances(h, s, kInfiniteWeight);
        for (const auto& [target, w] : queries[s]) {
            worst = std::max(worst, dist[target] / w);
        }
    }
    return worst;
}

double max_stretch_over_edges(const Graph& g, const Graph& h,
                              DijkstraWorkspacePool& pool) {
    pool.configure(1, h.num_vertices());
    return max_stretch_over_edges(g, h, pool.at(0));
}

double max_stretch_over_edges(const Graph& g, const Graph& h) {
    DijkstraWorkspace ws(h.num_vertices());
    return max_stretch_over_edges(g, h, ws);
}

double max_stretch_metric(const MetricSpace& m, const Graph& h, DijkstraWorkspace& ws) {
    if (m.size() != h.num_vertices()) {
        throw std::invalid_argument("max_stretch_metric: size mismatch");
    }
    ws.resize(h.num_vertices());
    double worst = 0.0;
    for (VertexId s = 0; s < m.size(); ++s) {
        const auto& dist = ws.all_distances(h, s, kInfiniteWeight);
        for (VertexId v = s + 1; v < m.size(); ++v) {
            worst = std::max(worst, dist[v] / m.distance(s, v));
        }
    }
    return worst;
}

double max_stretch_metric(const MetricSpace& m, const Graph& h,
                          DijkstraWorkspacePool& pool) {
    pool.configure(1, h.num_vertices());
    return max_stretch_metric(m, h, pool.at(0));
}

double max_stretch_metric(const MetricSpace& m, const Graph& h) {
    DijkstraWorkspace ws(h.num_vertices());
    return max_stretch_metric(m, h, ws);
}

double max_stretch_metric_sampled(const MetricSpace& m, const Graph& h,
                                  std::size_t sources, std::uint64_t seed,
                                  DijkstraWorkspace& ws) {
    if (m.size() != h.num_vertices()) {
        throw std::invalid_argument("max_stretch_metric_sampled: size mismatch");
    }
    if (sources >= m.size()) return max_stretch_metric(m, h, ws);
    Rng rng(seed);
    ws.resize(h.num_vertices());
    double worst = 0.0;
    for (std::size_t i = 0; i < sources; ++i) {
        const auto s = static_cast<VertexId>(rng.index(m.size()));
        const auto& dist = ws.all_distances(h, s, kInfiniteWeight);
        for (VertexId v = 0; v < m.size(); ++v) {
            if (v == s) continue;
            worst = std::max(worst, dist[v] / m.distance(s, v));
        }
    }
    return worst;
}

double max_stretch_metric_sampled(const MetricSpace& m, const Graph& h,
                                  std::size_t sources, std::uint64_t seed,
                                  DijkstraWorkspacePool& pool) {
    pool.configure(1, h.num_vertices());
    return max_stretch_metric_sampled(m, h, sources, seed, pool.at(0));
}

double max_stretch_metric_sampled(const MetricSpace& m, const Graph& h,
                                  std::size_t sources, std::uint64_t seed) {
    DijkstraWorkspace ws(h.num_vertices());
    return max_stretch_metric_sampled(m, h, sources, seed, ws);
}

namespace {

SpannerAudit basic_stats(const Graph& h) {
    SpannerAudit a;
    a.vertices = h.num_vertices();
    a.edges = h.num_edges();
    a.weight = h.total_weight();
    a.max_degree = h.max_degree();
    a.avg_degree =
        a.vertices == 0 ? 0.0 : 2.0 * static_cast<double>(a.edges) / static_cast<double>(a.vertices);
    return a;
}

}  // namespace

SpannerAudit audit_graph_spanner(const Graph& g, const Graph& h, DijkstraWorkspace& ws) {
    SpannerAudit a = basic_stats(h);
    a.lightness = a.weight / mst_weight(g);
    a.max_stretch = max_stretch_over_edges(g, h, ws);
    return a;
}

SpannerAudit audit_graph_spanner(const Graph& g, const Graph& h,
                                 DijkstraWorkspacePool& pool) {
    pool.configure(1, h.num_vertices());
    return audit_graph_spanner(g, h, pool.at(0));
}

SpannerAudit audit_graph_spanner(const Graph& g, const Graph& h) {
    DijkstraWorkspace ws(h.num_vertices());
    return audit_graph_spanner(g, h, ws);
}

SpannerAudit audit_metric_spanner(const MetricSpace& m, const Graph& h,
                                  DijkstraWorkspace& ws) {
    SpannerAudit a = basic_stats(h);
    a.lightness = a.weight / metric_mst_weight(m);
    a.max_stretch = max_stretch_metric(m, h, ws);
    return a;
}

SpannerAudit audit_metric_spanner(const MetricSpace& m, const Graph& h,
                                  DijkstraWorkspacePool& pool) {
    pool.configure(1, h.num_vertices());
    return audit_metric_spanner(m, h, pool.at(0));
}

SpannerAudit audit_metric_spanner(const MetricSpace& m, const Graph& h) {
    DijkstraWorkspace ws(h.num_vertices());
    return audit_metric_spanner(m, h, ws);
}

}  // namespace gsp
