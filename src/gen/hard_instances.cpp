#include "gen/hard_instances.hpp"

#include <cmath>
#include <stdexcept>

namespace gsp {

Figure1Instance figure1_instance(const Graph& h, double eps, VertexId star_center) {
    if (!(eps > 0.0)) throw std::invalid_argument("figure1_instance: eps must be > 0");
    if (star_center >= h.num_vertices()) {
        throw std::invalid_argument("figure1_instance: star center out of range");
    }
    for (const Edge& e : h.edges()) {
        if (e.weight != 1.0) {
            throw std::invalid_argument("figure1_instance: H must have unit weights");
        }
    }
    Figure1Instance inst;
    inst.graph = Graph(h.num_vertices());
    for (const Edge& e : h.edges()) inst.graph.add_edge(e.u, e.v, 1.0);
    inst.h_edges = h.num_edges();
    inst.star_center = star_center;
    inst.star_weight = 1.0 + eps;
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
        if (v == star_center || h.has_edge(star_center, v)) continue;
        inst.graph.add_edge(star_center, v, inst.star_weight);
    }
    return inst;
}

MatrixMetric geometric_star_metric(std::size_t n, double base) {
    if (n < 2) throw std::invalid_argument("geometric_star_metric: n >= 2");
    if (!(base > 1.0)) throw std::invalid_argument("geometric_star_metric: base > 1");
    std::vector<double> arm(n, 0.0);
    for (std::size_t i = 1; i < n; ++i) {
        arm[i] = std::pow(base, static_cast<double>(i));
        if (!std::isfinite(arm[i])) {
            throw std::invalid_argument("geometric_star_metric: base^n overflows");
        }
    }
    std::vector<std::vector<Weight>> d(n, std::vector<Weight>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            if (i == 0) {
                d[i][j] = arm[j];
            } else if (j == 0) {
                d[i][j] = arm[i];
            } else {
                d[i][j] = arm[i] + arm[j];
            }
        }
    }
    // Shortest-path metric of a star tree: triangle inequality holds exactly,
    // but run validation anyway for modest sizes (it is the whole point of
    // shipping an adversarial instance that it is *verified* to be a metric).
    return MatrixMetric(std::move(d), /*validate_triangle=*/n <= 512);
}

}  // namespace gsp
