// Random-graph generators for the general-graph experiments.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace gsp {

struct WeightRange {
    double lo = 1.0;
    double hi = 2.0;
};

/// Erdos-Renyi G(n, p) with uniform weights; when `ensure_connected`, a
/// random spanning tree is added first so the result is always connected.
Graph erdos_renyi(std::size_t n, double p, WeightRange w, Rng& rng,
                  bool ensure_connected = true);

/// G(n, m): exactly m distinct random edges (plus a connecting tree when
/// requested). m counts the extra edges beyond the tree.
Graph random_graph_nm(std::size_t n, std::size_t m, WeightRange w, Rng& rng,
                      bool ensure_connected = true);

/// Preferential-attachment graph: each new vertex attaches to `attach`
/// existing vertices with probability proportional to degree.
Graph preferential_attachment(std::size_t n, std::size_t attach, WeightRange w, Rng& rng);

/// rows x cols grid graph with uniform weights.
Graph grid_graph(std::size_t rows, std::size_t cols, WeightRange w, Rng& rng);

/// d-dimensional hypercube graph (2^d vertices) with uniform weights.
Graph hypercube_graph(std::size_t d, WeightRange w, Rng& rng);

/// Random geometric graph: n uniform points in [0,1]^2, edges between
/// pairs within `radius`, weighted by Euclidean distance. Optionally force
/// connectivity by linking consecutive points of a random tour.
Graph random_geometric(std::size_t n, double radius, Rng& rng,
                       bool ensure_connected = true);

/// Clustered-euclidean geometric graph: n points in `clusters` Gaussian
/// blobs (centers uniform in [0, extent]^2, standard deviation `spread`),
/// one edge per pair within `radius`, weighted by Euclidean distance.
/// With radius a few multiples of spread, the candidate set is dominated
/// by dense intra-cluster edges whose endpoints have many near-parallel
/// alternatives of almost equal length -- the accept-heavy regime of the
/// greedy at moderate stretch (the two-phase bench probe's instance).
Graph clustered_geometric(std::size_t n, std::size_t clusters, double extent,
                          double spread, double radius, Rng& rng,
                          bool ensure_connected = true);

}  // namespace gsp
