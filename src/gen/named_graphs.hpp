// Named graphs: the concrete instances the paper's examples rely on.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace gsp {

/// The Petersen graph: 10 vertices, 15 edges, girth 5, unit weights.
/// This is exactly the `H` of the paper's Figure 1.
Graph petersen_graph();

/// Generalized Petersen graph GP(n, k): outer n-cycle 0..n-1, inner
/// vertices n..2n-1 joined as an {n, k}-star polygon, plus spokes.
/// Requires n >= 3 and 1 <= k < n/2. GP(5, 2) is the Petersen graph.
Graph generalized_petersen(std::size_t n, std::size_t k);

/// Simple n-cycle with the given uniform weight.
Graph cycle_graph(std::size_t n, Weight w = 1.0);

/// Complete graph with unit weights.
Graph complete_unit_graph(std::size_t n);

}  // namespace gsp
