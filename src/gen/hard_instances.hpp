// Adversarial instances discussed by the paper.
//
//  * Figure 1: a high-girth graph H (all weights 1) unioned with a star S
//    whose non-H edges weigh 1 + eps. The greedy t-spanner keeps all of H
//    while the instance-optimal t-spanner is (close to) the star -- the
//    canonical witness that greedy is only *existentially* optimal.
//
//  * Degree blow-up (paper §5, citing [HM06, Smi09]): a doubling metric on
//    which the greedy (1+eps)-spanner has maximum degree n-1. We use the
//    "geometric star" metric: arms of length base^i hanging off one hub.
//    Each hub edge is forced (no alternative path exists when it is
//    examined) while all arm-to-arm pairs ride the hub exactly, so greedy
//    returns precisely the star. Doubling dimension stays O(1) because the
//    arm lengths grow geometrically (a ball of radius r sees O(1) arms of
//    length ~r plus one ball around the hub).
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "metric/matrix_metric.hpp"

namespace gsp {

struct Figure1Instance {
    Graph graph;                 ///< H union S
    std::size_t h_edges = 0;     ///< edge ids [0, h_edges) are the H edges
    VertexId star_center = 0;    ///< root of S
    double star_weight = 0.0;    ///< weight of the non-H star edges (1+eps)
};

/// Build the Figure-1 instance over an arbitrary unit-weight, connected,
/// triangle-free "high-girth" graph H. Star edges that coincide with H
/// edges keep weight 1 (as in the paper); the others get weight 1 + eps.
Figure1Instance figure1_instance(const Graph& h, double eps, VertexId star_center = 0);

/// The geometric-star metric on n points: point 0 is the hub; point i >= 1
/// sits at distance base^i from the hub and base^i + base^j from point j.
/// Requires 2 <= n and base^n within double range (n <= 900 at base 2).
MatrixMetric geometric_star_metric(std::size_t n, double base = 2.0);

}  // namespace gsp
