#include "gen/graphs.hpp"

#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

namespace gsp {

namespace {

double draw(const WeightRange& w, Rng& rng) {
    if (w.lo > w.hi) throw std::invalid_argument("WeightRange: lo > hi");
    return w.lo == w.hi ? w.lo : rng.uniform(w.lo, w.hi);
}

void add_random_tree(Graph& g, const WeightRange& w, Rng& rng) {
    for (VertexId v = 1; v < g.num_vertices(); ++v) {
        g.add_edge(static_cast<VertexId>(rng.index(v)), v, draw(w, rng));
    }
}

}  // namespace

Graph erdos_renyi(std::size_t n, double p, WeightRange w, Rng& rng, bool ensure_connected) {
    Graph g(n);
    if (ensure_connected && n > 0) add_random_tree(g, w, rng);
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            if (rng.chance(p) && !g.has_edge(i, j)) g.add_edge(i, j, draw(w, rng));
        }
    }
    return g;
}

Graph random_graph_nm(std::size_t n, std::size_t m, WeightRange w, Rng& rng,
                      bool ensure_connected) {
    Graph g(n);
    if (n < 2) return g;
    if (ensure_connected) add_random_tree(g, w, rng);
    const std::size_t max_extra = n * (n - 1) / 2 - g.num_edges();
    if (m > max_extra) m = max_extra;
    std::size_t added = 0;
    std::set<std::pair<VertexId, VertexId>> used;
    for (const Edge& e : g.edges()) {
        used.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
    }
    while (added < m) {
        const auto u = static_cast<VertexId>(rng.index(n));
        const auto v = static_cast<VertexId>(rng.index(n));
        if (u == v) continue;
        const auto key = std::make_pair(std::min(u, v), std::max(u, v));
        if (used.contains(key)) continue;
        used.insert(key);
        g.add_edge(u, v, draw(w, rng));
        ++added;
    }
    return g;
}

Graph preferential_attachment(std::size_t n, std::size_t attach, WeightRange w, Rng& rng) {
    if (attach == 0) throw std::invalid_argument("preferential_attachment: attach >= 1");
    Graph g(n);
    if (n == 0) return g;
    // Degree-proportional sampling via the repeated-endpoints trick.
    std::vector<VertexId> endpoint_pool;
    for (VertexId v = 1; v < n; ++v) {
        std::set<VertexId> targets;
        const std::size_t want = std::min<std::size_t>(attach, v);
        while (targets.size() < want) {
            VertexId t;
            if (endpoint_pool.empty() || rng.chance(0.1)) {
                t = static_cast<VertexId>(rng.index(v));  // uniform fallback mixes in new vertices
            } else {
                t = endpoint_pool[rng.index(endpoint_pool.size())];
            }
            if (t < v) targets.insert(t);
        }
        for (VertexId t : targets) {
            g.add_edge(t, v, draw(w, rng));
            endpoint_pool.push_back(t);
            endpoint_pool.push_back(v);
        }
    }
    return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols, WeightRange w, Rng& rng) {
    Graph g(rows * cols);
    auto id = [cols](std::size_t r, std::size_t c) {
        return static_cast<VertexId>(r * cols + c);
    };
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), draw(w, rng));
            if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), draw(w, rng));
        }
    }
    return g;
}

Graph hypercube_graph(std::size_t d, WeightRange w, Rng& rng) {
    if (d > 24) throw std::invalid_argument("hypercube_graph: d too large");
    const std::size_t n = std::size_t{1} << d;
    Graph g(n);
    for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t bit = 0; bit < d; ++bit) {
            const std::size_t u = v ^ (std::size_t{1} << bit);
            if (u > v) {
                g.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(u), draw(w, rng));
            }
        }
    }
    return g;
}

Graph random_geometric(std::size_t n, double radius, Rng& rng, bool ensure_connected) {
    std::vector<double> xs(n), ys(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = rng.uniform01();
        ys[i] = rng.uniform01();
    }
    Graph g(n);
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            const double dx = xs[i] - xs[j];
            const double dy = ys[i] - ys[j];
            const double d = std::sqrt(dx * dx + dy * dy);
            if (d <= radius && d > 0.0) g.add_edge(i, j, d);
        }
    }
    if (ensure_connected) {
        // Link consecutive points in x-order where components break.
        std::vector<VertexId> by_x(n);
        for (VertexId i = 0; i < n; ++i) by_x[i] = i;
        std::sort(by_x.begin(), by_x.end(),
                  [&](VertexId a, VertexId b) { return xs[a] < xs[b]; });
        for (std::size_t i = 0; i + 1 < n; ++i) {
            const VertexId a = by_x[i];
            const VertexId b = by_x[i + 1];
            if (!g.has_edge(a, b)) {
                const double dx = xs[a] - xs[b];
                const double dy = ys[a] - ys[b];
                const double d = std::max(std::sqrt(dx * dx + dy * dy), 1e-9);
                g.add_edge(a, b, d);
            }
        }
    }
    return g;
}

Graph clustered_geometric(std::size_t n, std::size_t clusters, double extent,
                          double spread, double radius, Rng& rng,
                          bool ensure_connected) {
    if (clusters == 0) throw std::invalid_argument("clustered_geometric: clusters == 0");
    std::vector<double> cx(clusters), cy(clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
        cx[c] = rng.uniform(0.0, extent);
        cy[c] = rng.uniform(0.0, extent);
    }
    std::vector<double> xs(n), ys(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = i % clusters;  // balanced blobs
        xs[i] = rng.normal(cx[c], spread);
        ys[i] = rng.normal(cy[c], spread);
    }
    Graph g(n);
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            const double dx = xs[i] - xs[j];
            const double dy = ys[i] - ys[j];
            const double d = std::sqrt(dx * dx + dy * dy);
            if (d <= radius && d > 0.0) g.add_edge(i, j, d);
        }
    }
    if (ensure_connected) {
        std::vector<VertexId> by_x(n);
        for (VertexId i = 0; i < n; ++i) by_x[i] = i;
        std::sort(by_x.begin(), by_x.end(),
                  [&](VertexId a, VertexId b) { return xs[a] < xs[b]; });
        for (std::size_t i = 0; i + 1 < n; ++i) {
            const VertexId a = by_x[i];
            const VertexId b = by_x[i + 1];
            if (!g.has_edge(a, b)) {
                const double dx = xs[a] - xs[b];
                const double dy = ys[a] - ys[b];
                const double d = std::max(std::sqrt(dx * dx + dy * dy), 1e-9);
                g.add_edge(a, b, d);
            }
        }
    }
    return g;
}

}  // namespace gsp
