// Point-line incidence graphs of projective planes PG(2, q).
//
// For a prime q, the incidence graph is bipartite with q^2+q+1 points and
// q^2+q+1 lines, is (q+1)-regular, has girth 6, and has m = Theta(n^{3/2})
// edges -- the densest known girth-6 graphs. These are the extremal
// instances for the greedy (2k-1)-spanner size bound at k = 2: any
// t-spanner with t < 5 of the unit-weight incidence graph must keep *every*
// edge, so the greedy spanner is the whole graph and the O(n^{1+1/2}) size
// bound is tight on this family (paper §1.1, §3; Erdos girth conjecture).
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace gsp {

/// Incidence graph of PG(2, q). Requires q prime, 2 <= q <= 101.
/// Vertices [0, q^2+q+1) are points, the rest are lines; unit weights.
Graph projective_plane_incidence(std::size_t q);

/// True iff q is a prime our generator accepts.
[[nodiscard]] bool is_supported_prime(std::size_t q);

}  // namespace gsp
