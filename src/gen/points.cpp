#include "gen/points.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace gsp {

EuclideanMetric uniform_points(std::size_t n, std::size_t dim, double extent, Rng& rng) {
    std::vector<double> coords;
    coords.reserve(n * dim);
    for (std::size_t i = 0; i < n * dim; ++i) coords.push_back(rng.uniform(0.0, extent));
    return EuclideanMetric(dim, std::move(coords));
}

void stream_clustered_points(std::size_t n, std::size_t dim, std::size_t clusters,
                             double extent, double spread, Rng& rng,
                             const std::function<void(std::span<const double>)>& sink) {
    if (clusters == 0) {
        throw std::invalid_argument("clustered_points: clusters must be >= 1");
    }
    std::vector<double> centers;
    centers.reserve(clusters * dim);
    for (std::size_t i = 0; i < clusters * dim; ++i) {
        centers.push_back(rng.uniform(0.0, extent));
    }
    std::vector<double> point(dim);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = rng.index(clusters);
        for (std::size_t k = 0; k < dim; ++k) {
            point[k] = rng.normal(centers[c * dim + k], spread);
        }
        sink(point);
    }
}

EuclideanMetric clustered_points(std::size_t n, std::size_t dim, std::size_t clusters,
                                 double extent, double spread, Rng& rng) {
    std::vector<double> coords;
    coords.reserve(n * dim);
    stream_clustered_points(n, dim, clusters, extent, spread, rng,
                            [&](std::span<const double> p) {
                                coords.insert(coords.end(), p.begin(), p.end());
                            });
    return EuclideanMetric(dim, std::move(coords));
}

EuclideanMetric circle_points(std::size_t n, double radius) {
    std::vector<double> coords;
    coords.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = 2.0 * std::numbers::pi * static_cast<double>(i) /
                         static_cast<double>(n);
        coords.push_back(radius * std::cos(a));
        coords.push_back(radius * std::sin(a));
    }
    return EuclideanMetric(2, std::move(coords));
}

EuclideanMetric grid_points(std::size_t rows, std::size_t cols) {
    std::vector<double> coords;
    coords.reserve(rows * cols * 2);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            coords.push_back(static_cast<double>(c));
            coords.push_back(static_cast<double>(r));
        }
    }
    return EuclideanMetric(2, std::move(coords));
}

EuclideanMetric exponential_spiral(std::size_t n, double base) {
    if (!(base > 1.0)) throw std::invalid_argument("exponential_spiral: base must be > 1");
    std::vector<double> coords;
    coords.reserve(n * 2);
    const double golden = 2.39996322972865332;  // radians; spreads angles evenly
    for (std::size_t i = 0; i < n; ++i) {
        const double r = std::pow(base, static_cast<double>(i) / 4.0);
        const double a = golden * static_cast<double>(i);
        coords.push_back(r * std::cos(a));
        coords.push_back(r * std::sin(a));
    }
    return EuclideanMetric(2, std::move(coords));
}

}  // namespace gsp
