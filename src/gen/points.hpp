// Euclidean point-set generators for the experiments.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "metric/euclidean.hpp"
#include "util/random.hpp"

namespace gsp {

/// n points uniform in the axis-aligned cube [0, extent]^dim.
EuclideanMetric uniform_points(std::size_t n, std::size_t dim, double extent, Rng& rng);

/// n points in `clusters` Gaussian blobs whose centers are uniform in the
/// cube [0, extent]^dim; blob standard deviation `spread`.
EuclideanMetric clustered_points(std::size_t n, std::size_t dim, std::size_t clusters,
                                 double extent, double spread, Rng& rng);

/// Streaming form of clustered_points: invoke `sink` once per point with
/// that point's `dim` coordinates, holding only the cluster centers --
/// the n = 10^6-capable generator of the memory probe, which appends
/// straight into one flat coordinate array. Identical RNG consumption to
/// clustered_points (which delegates here), so the same seed yields the
/// same point set through either form.
void stream_clustered_points(std::size_t n, std::size_t dim, std::size_t clusters,
                             double extent, double spread, Rng& rng,
                             const std::function<void(std::span<const double>)>& sink);

/// n points evenly spaced on a circle of the given radius (2D). A classic
/// bad case for cone spanners and a good case for the greedy.
EuclideanMetric circle_points(std::size_t n, double radius);

/// rows x cols unit grid (2D).
EuclideanMetric grid_points(std::size_t rows, std::size_t cols);

/// n points on an exponential spiral r = base^k (2D): bounded doubling
/// dimension with an enormous aspect ratio -- a stress test for the net
/// hierarchy and bucketed algorithms.
EuclideanMetric exponential_spiral(std::size_t n, double base = 1.5);

}  // namespace gsp
