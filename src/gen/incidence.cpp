#include "gen/incidence.hpp"

#include <stdexcept>
#include <vector>

namespace gsp {

bool is_supported_prime(std::size_t q) {
    if (q < 2 || q > 101) return false;
    for (std::size_t d = 2; d * d <= q; ++d) {
        if (q % d == 0) return false;
    }
    return true;
}

Graph projective_plane_incidence(std::size_t q) {
    if (!is_supported_prime(q)) {
        throw std::invalid_argument("projective_plane_incidence: q must be prime in [2, 101]");
    }
    // Homogeneous coordinates over GF(q), normalized so the first nonzero
    // coordinate is 1: (1, a, b), (0, 1, a), (0, 0, 1).
    std::vector<std::array<std::size_t, 3>> reps;
    reps.reserve(q * q + q + 1);
    for (std::size_t a = 0; a < q; ++a) {
        for (std::size_t b = 0; b < q; ++b) reps.push_back({1, a, b});
    }
    for (std::size_t a = 0; a < q; ++a) reps.push_back({0, 1, a});
    reps.push_back({0, 0, 1});

    const std::size_t count = reps.size();  // q^2 + q + 1
    Graph g(2 * count);
    // Point i is incident to line j iff <rep_i, rep_j> == 0 (mod q).
    for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t j = 0; j < count; ++j) {
            const std::size_t dot = reps[i][0] * reps[j][0] + reps[i][1] * reps[j][1] +
                                    reps[i][2] * reps[j][2];
            if (dot % q == 0) {
                g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(count + j), 1.0);
            }
        }
    }
    return g;
}

}  // namespace gsp
