#include "gen/named_graphs.hpp"

#include <stdexcept>

namespace gsp {

Graph generalized_petersen(std::size_t n, std::size_t k) {
    if (n < 3) throw std::invalid_argument("generalized_petersen: n >= 3");
    if (k < 1 || 2 * k >= n) throw std::invalid_argument("generalized_petersen: 1 <= k < n/2");
    Graph g(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto outer = static_cast<VertexId>(i);
        const auto outer_next = static_cast<VertexId>((i + 1) % n);
        const auto inner = static_cast<VertexId>(n + i);
        const auto inner_skip = static_cast<VertexId>(n + (i + k) % n);
        g.add_edge(outer, outer_next, 1.0);  // outer cycle
        g.add_edge(inner, inner_skip, 1.0);  // star polygon
        g.add_edge(outer, inner, 1.0);       // spoke
    }
    return g;
}

Graph petersen_graph() { return generalized_petersen(5, 2); }

Graph cycle_graph(std::size_t n, Weight w) {
    if (n < 3) throw std::invalid_argument("cycle_graph: n >= 3");
    Graph g(n);
    for (std::size_t i = 0; i < n; ++i) {
        g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n), w);
    }
    return g;
}

Graph complete_unit_graph(std::size_t n) {
    Graph g(n);
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) g.add_edge(i, j, 1.0);
    }
    return g;
}

}  // namespace gsp
