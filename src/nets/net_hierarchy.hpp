// Hierarchical nets for doubling metrics.
//
// An r-net of a point set is a subset that is (a) r-separated (packing) and
// (b) r-covering. The hierarchy stacks nets at geometrically growing scales
// r_0, 2 r_0, 4 r_0, ... with each level's net a subset of the level below
// (N_{l+1} is a net *of* N_l). This is the substrate of the Theorem-2
// bounded-degree spanner and of the approximate-greedy cluster phase.
//
// Construction is greedy. For generic metrics it is O(sum_l |N_l|^2);
// for EuclideanMetric inputs a uniform-grid bucketing accelerates each
// level to near-linear time (detected internally via dynamic_cast -- the
// algorithms and invariants are identical, only neighbor enumeration
// changes).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "metric/euclidean.hpp"
#include "metric/metric_space.hpp"

namespace gsp {

class NetHierarchy {
public:
    /// Build the full hierarchy: level 0 contains all points at scale
    /// r_0 = (minimum interpoint distance), and levels double the scale
    /// until a single net point remains. Requires >= 1 point.
    explicit NetHierarchy(const MetricSpace& m);

    [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
    [[nodiscard]] std::size_t num_points() const { return n_; }

    /// Net points of level l (level 0 = all points).
    [[nodiscard]] const std::vector<VertexId>& level(std::size_t l) const {
        return levels_.at(l);
    }

    /// Scale r_l of level l.
    [[nodiscard]] double scale(std::size_t l) const { return scales_.at(l); }

    /// Parent of point p at level l (a member of level l+1 within scale(l+1)
    /// of p). Requires p to be a member of level l and l+1 < num_levels().
    [[nodiscard]] VertexId parent(std::size_t l, VertexId p) const;

    /// Children at level l of a net point p of level l+1 (members of level l
    /// whose parent is p; includes p itself whenever p is in level l).
    [[nodiscard]] const std::vector<VertexId>& children(std::size_t l, VertexId p) const;

    /// True iff p belongs to the level-l net.
    [[nodiscard]] bool is_member(std::size_t l, VertexId p) const;

    /// Highest level containing p (membership is contiguous from level 0).
    [[nodiscard]] std::size_t top_level(VertexId p) const { return top_level_.at(p); }

    /// Enumerate all unordered pairs (p, q) of level-l net points with
    /// d(p, q) <= radius, invoking visit(p, q, d(p, q)). Grid-accelerated
    /// for Euclidean inputs.
    void for_each_near_pair(std::size_t l, double radius,
                            const std::function<void(VertexId, VertexId, double)>& visit) const;

    /// Verify the net invariants at every level (packing: members pairwise
    /// > scale apart; covering: every level-(l-1) member within scale of its
    /// parent). Returns false with no diagnosis on the first violation;
    /// quadratic, meant for tests.
    [[nodiscard]] bool check_invariants() const;

private:
    const MetricSpace& metric_;
    const EuclideanMetric* euclidean_;  ///< non-null when grid acceleration applies
    std::size_t n_;
    std::vector<double> scales_;
    std::vector<std::vector<VertexId>> levels_;
    /// parent_[l][p] for p in level l; kNoVertex for non-members.
    std::vector<std::vector<VertexId>> parent_;
    /// children_[l][p]: members of level l whose parent is p.
    std::vector<std::vector<std::vector<VertexId>>> children_;
    std::vector<std::size_t> top_level_;
};

/// Minimum interpoint distance; grid-accelerated for Euclidean inputs,
/// O(n^2) otherwise. Requires >= 2 points.
double min_interpoint_distance(const MetricSpace& m);

}  // namespace gsp
