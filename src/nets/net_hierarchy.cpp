#include "nets/net_hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

namespace gsp {

namespace {

/// Uniform-grid bucket index over a subset of Euclidean points. Cells are
/// cubes of side h; all pairs within distance <= h land in neighboring
/// cells, so a 3^d neighborhood scan is exhaustive for radius h.
class GridIndex {
public:
    GridIndex(const EuclideanMetric& m, double cell) : m_(m), cell_(cell) {}

    void insert(VertexId p) { cells_[key(p)].push_back(p); }

    /// Visit all already-inserted points q in the 3^d neighborhood of p's
    /// cell. The callback may be invoked for points farther than `cell_`;
    /// callers re-check distances.
    template <typename Visit>
    void for_each_neighbor(VertexId p, Visit&& visit) const {
        const auto base = coords(p);
        std::vector<std::int64_t> probe(base);
        scan(base, probe, 0, visit);
    }

private:
    using Key = std::uint64_t;

    [[nodiscard]] std::vector<std::int64_t> coords(VertexId p) const {
        const auto pt = m_.point(p);
        std::vector<std::int64_t> c(pt.size());
        for (std::size_t k = 0; k < pt.size(); ++k) {
            c[k] = static_cast<std::int64_t>(std::floor(pt[k] / cell_));
        }
        return c;
    }

    [[nodiscard]] static Key hash_coords(const std::vector<std::int64_t>& c) {
        Key h = 1469598103934665603ull;
        for (std::int64_t x : c) {
            h ^= static_cast<Key>(x) + 0x9e3779b97f4a7c15ull;
            h *= 1099511628211ull;
        }
        return h;
    }

    [[nodiscard]] Key key(VertexId p) const { return hash_coords(coords(p)); }

    template <typename Visit>
    void scan(const std::vector<std::int64_t>& base, std::vector<std::int64_t>& probe,
              std::size_t axis, Visit&& visit) const {
        if (axis == base.size()) {
            const auto it = cells_.find(hash_coords(probe));
            if (it != cells_.end()) {
                for (VertexId q : it->second) visit(q);
            }
            return;
        }
        for (std::int64_t d = -1; d <= 1; ++d) {
            probe[axis] = base[axis] + d;
            scan(base, probe, axis + 1, visit);
        }
        probe[axis] = base[axis];
    }

    const EuclideanMetric& m_;
    double cell_;
    std::unordered_map<Key, std::vector<VertexId>> cells_;
};

/// Grid acceleration only pays off in low dimension (3^d cell probes).
bool grid_applicable(const EuclideanMetric* e) { return e != nullptr && e->dim() <= 3; }

}  // namespace

double min_interpoint_distance(const MetricSpace& m) {
    const std::size_t n = m.size();
    if (n < 2) throw std::invalid_argument("min_interpoint_distance: need >= 2 points");

    const auto* e = dynamic_cast<const EuclideanMetric*>(&m);
    if (!grid_applicable(e)) {
        Weight best = kInfiniteWeight;
        for (VertexId i = 0; i < n; ++i) {
            for (VertexId j = i + 1; j < n; ++j) best = std::min(best, m.distance(i, j));
        }
        return best;
    }

    // Bounding-box heuristic cell size, doubled until some pair is found in
    // a 3^d neighborhood; one refinement pass then makes the answer exact.
    const std::size_t d = e->dim();
    std::vector<double> lo(d, kInfiniteWeight), hi(d, -kInfiniteWeight);
    for (VertexId p = 0; p < n; ++p) {
        const auto pt = e->point(p);
        for (std::size_t k = 0; k < d; ++k) {
            lo[k] = std::min(lo[k], pt[k]);
            hi[k] = std::max(hi[k], pt[k]);
        }
    }
    double extent = 0.0;
    for (std::size_t k = 0; k < d; ++k) extent = std::max(extent, hi[k] - lo[k]);
    if (extent == 0.0) return 0.0;  // duplicate points collapse the box

    double h = extent / std::max(1.0, std::pow(static_cast<double>(n), 1.0 / static_cast<double>(d)));
    auto pass = [&](double cell) {
        GridIndex grid(*e, cell);
        Weight best = kInfiniteWeight;
        for (VertexId p = 0; p < n; ++p) {
            grid.for_each_neighbor(p, [&](VertexId q) {
                best = std::min(best, static_cast<Weight>(e->distance(p, q)));
            });
            grid.insert(p);
        }
        return best;
    };
    Weight found = pass(h);
    while (found == kInfiniteWeight) {
        h *= 2.0;
        found = pass(h);
    }
    // `found` is an upper bound; a grid at cell = found sees every pair at
    // distance <= found, so one more pass is exact.
    return found <= h ? found : pass(found);
}

NetHierarchy::NetHierarchy(const MetricSpace& m)
    : metric_(m),
      euclidean_(dynamic_cast<const EuclideanMetric*>(&m)),
      n_(m.size()) {
    if (n_ == 0) throw std::invalid_argument("NetHierarchy: empty metric");
    if (!grid_applicable(euclidean_)) euclidean_ = nullptr;

    // Level 0: every point, at the minimum-distance scale.
    std::vector<VertexId> base(n_);
    for (VertexId p = 0; p < n_; ++p) base[p] = p;
    const double r0 = n_ >= 2 ? min_interpoint_distance(m) : 1.0;
    if (r0 <= 0.0) throw std::invalid_argument("NetHierarchy: duplicate points");
    levels_.push_back(std::move(base));
    scales_.push_back(r0);

    while (levels_.back().size() > 1) {
        const std::vector<VertexId>& prev = levels_.back();
        const double r = scales_.back() * 2.0;

        std::vector<VertexId> net;
        std::vector<VertexId> parent_of(n_, kNoVertex);
        if (euclidean_ != nullptr) {
            GridIndex grid(*euclidean_, r);
            for (VertexId p : prev) {
                bool covered = false;
                grid.for_each_neighbor(p, [&](VertexId q) {
                    if (!covered && metric_.distance(p, q) <= r) covered = true;
                });
                if (!covered) {
                    net.push_back(p);
                    grid.insert(p);
                }
            }
            // Parents: the nearest net point within r (exists by greedy cover).
            GridIndex net_grid(*euclidean_, r);
            for (VertexId q : net) net_grid.insert(q);
            for (VertexId p : prev) {
                Weight best = kInfiniteWeight;
                net_grid.for_each_neighbor(p, [&](VertexId q) {
                    const Weight dq = metric_.distance(p, q);
                    if (dq < best) {
                        best = dq;
                        parent_of[p] = q;
                    }
                });
            }
        } else {
            for (VertexId p : prev) {
                bool covered = false;
                for (VertexId q : net) {
                    if (metric_.distance(p, q) <= r) {
                        covered = true;
                        break;
                    }
                }
                if (!covered) net.push_back(p);
            }
            for (VertexId p : prev) {
                Weight best = kInfiniteWeight;
                for (VertexId q : net) {
                    const Weight dq = metric_.distance(p, q);
                    if (dq < best) {
                        best = dq;
                        parent_of[p] = q;
                    }
                }
            }
        }

        parent_.push_back(std::move(parent_of));
        levels_.push_back(std::move(net));
        scales_.push_back(r);
    }

    // Children lists per level transition.
    children_.resize(parent_.size());
    for (std::size_t l = 0; l < parent_.size(); ++l) {
        children_[l].resize(n_);
        for (VertexId p : levels_[l]) {
            children_[l][parent_[l][p]].push_back(p);
        }
    }

    top_level_.assign(n_, 0);
    for (std::size_t l = 1; l < levels_.size(); ++l) {
        for (VertexId p : levels_[l]) top_level_[p] = l;
    }
}

VertexId NetHierarchy::parent(std::size_t l, VertexId p) const {
    const VertexId result = parent_.at(l).at(p);
    if (result == kNoVertex) {
        throw std::invalid_argument("NetHierarchy::parent: p not a member of level l");
    }
    return result;
}

const std::vector<VertexId>& NetHierarchy::children(std::size_t l, VertexId p) const {
    return children_.at(l).at(p);
}

bool NetHierarchy::is_member(std::size_t l, VertexId p) const {
    const auto& lv = levels_.at(l);
    return std::binary_search(lv.begin(), lv.end(), p);
}

void NetHierarchy::for_each_near_pair(
    std::size_t l, double radius,
    const std::function<void(VertexId, VertexId, double)>& visit) const {
    const auto& members = levels_.at(l);
    if (euclidean_ != nullptr) {
        // Cells of side `radius` would make 3^d probes exhaustive, but for
        // radius >> scale the buckets get dense; exhaustiveness is what
        // matters, so cell = radius is the correct (and standard) choice.
        GridIndex grid(*euclidean_, radius);
        for (VertexId p : members) {
            grid.for_each_neighbor(p, [&](VertexId q) {
                const double d = metric_.distance(p, q);
                if (d <= radius) visit(std::min(p, q), std::max(p, q), d);
            });
            grid.insert(p);
        }
    } else {
        for (std::size_t i = 0; i < members.size(); ++i) {
            for (std::size_t j = i + 1; j < members.size(); ++j) {
                const double d = metric_.distance(members[i], members[j]);
                if (d <= radius) {
                    visit(std::min(members[i], members[j]),
                          std::max(members[i], members[j]), d);
                }
            }
        }
    }
}

bool NetHierarchy::check_invariants() const {
    for (std::size_t l = 0; l + 1 < levels_.size(); ++l) {
        const double r_next = scales_[l + 1];
        // Packing at level l+1: members pairwise > r_{l+1} apart.
        const auto& net = levels_[l + 1];
        for (std::size_t i = 0; i < net.size(); ++i) {
            for (std::size_t j = i + 1; j < net.size(); ++j) {
                if (metric_.distance(net[i], net[j]) <= r_next) return false;
            }
        }
        // Covering: every level-l member within r_{l+1} of its parent, and
        // the parent is a member of level l+1.
        for (VertexId p : levels_[l]) {
            const VertexId par = parent_[l][p];
            if (par == kNoVertex) return false;
            if (!is_member(l + 1, par)) return false;
            if (metric_.distance(p, par) > r_next) return false;
        }
        // Nesting: level l+1 is a subset of level l.
        for (VertexId p : net) {
            if (!is_member(l, p)) return false;
        }
    }
    return levels_.empty() ? false : levels_.back().size() >= 1;
}

}  // namespace gsp
