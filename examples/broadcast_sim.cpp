// Broadcast on a spanner backbone -- the paper's opening motivation
// ([ABP90, ABP91]: "light and sparse spanners are particularly useful for
// efficient broadcast protocols ... efficiency is measured with respect to
// both the total communication cost (the spanner's weight) and the speed of
// message delivery (the spanner's stretch)").
//
// Scenario: a wireless-ish network of n stations (random geometric graph).
// A root floods a message to everyone. Flooding the raw network sends one
// message per edge (cost = w(G)); flooding a spanner costs only w(H), at
// the price of slightly later delivery. The simulation measures exactly
// the trade the paper quantifies: cost ratio vs delivery-time stretch.
#include <algorithm>
#include <iostream>

#include "core/greedy.hpp"
#include "gen/graphs.hpp"
#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace gsp;

struct FloodReport {
    double total_cost = 0.0;    ///< sum of edge weights traversed (all edges once)
    double completion = 0.0;    ///< time the last station hears the message
};

/// Synchronous flood: the message crosses every edge once; station v hears
/// it at time delta(root, v) (transmission time = edge weight).
FloodReport flood(const Graph& g, VertexId root) {
    FloodReport report;
    report.total_cost = g.total_weight();
    const auto dist = dijkstra_all(g, root);
    for (Weight d : dist) report.completion = std::max(report.completion, d);
    return report;
}

}  // namespace

int main() {
    using namespace gsp;
    Rng rng(2024);
    const std::size_t n = 600;
    const Graph net = random_geometric(n, 0.09, rng);
    const VertexId root = 0;

    std::cout << "== Broadcast simulation on a " << n << "-station radio network ==\n"
              << "network: " << net.summary() << "\n\n";

    const FloodReport raw = flood(net, root);

    Table table({"backbone", "edges", "total cost", "vs raw", "completion time",
                 "delivery stretch"});
    auto add = [&](const std::string& name, const Graph& h) {
        const FloodReport r = flood(h, root);
        table.add_row({name, std::to_string(h.num_edges()), fmt(r.total_cost, 2),
                       fmt_ratio(r.total_cost / raw.total_cost),
                       fmt(r.completion, 3), fmt_ratio(r.completion / raw.completion)});
    };

    add("raw network (flood all)", net);
    const MstResult mst = kruskal_mst(net);
    add("MST (minimum cost)", net.edge_subgraph(mst.edges));
    for (double t : {1.5, 2.0, 4.0}) {
        add("greedy t=" + fmt(t), greedy_spanner(net, t));
    }
    table.print(std::cout);

    std::cout << "\nReading: the MST minimizes cost but can delay delivery badly; the "
                 "greedy spanner's cost\napproaches the MST's (lightness -> 1 as t grows) "
                 "while its completion time stays within\nthe stretch guarantee -- the "
                 "sweet spot the paper's broadcast motivation describes.\n";
    return 0;
}
