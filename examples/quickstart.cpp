// Quickstart: build greedy spanners of a graph and of a point set, audit
// them, and verify the paper's two signature properties (Observation 2 and
// Lemma 3) on your own data.
//
//   $ ./examples/quickstart
#include <iostream>

#include "analysis/audit.hpp"
#include "core/greedy.hpp"
#include "core/greedy_metric.hpp"
#include "core/self_optimality.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "util/random.hpp"

int main() {
    using namespace gsp;

    // --- A weighted graph ---------------------------------------------------
    Rng rng(7);
    const Graph g = erdos_renyi(/*n=*/200, /*p=*/0.1, {.lo = 1.0, .hi = 4.0}, rng);
    std::cout << "input graph:       " << g.summary() << "\n";

    const double t = 3.0;
    const Graph h = greedy_spanner(g, t);
    std::cout << "greedy 3-spanner:  " << h.summary() << "\n";

    const SpannerAudit audit = audit_graph_spanner(g, h);
    std::cout << "  stretch (exact) = " << audit.max_stretch << "  (<= " << t << ")\n"
              << "  lightness       = " << audit.lightness << "\n";

    // Observation 2: the greedy spanner contains an MST of the input.
    std::cout << "  contains MST    = " << (contains_kruskal_mst(g, h) ? "yes" : "no")
              << "\n";
    // Lemma 3: the only t-spanner of H is H itself -- no edge is removable.
    std::cout << "  removable edges = " << removable_edges(h, t).size() << " (Lemma 3)\n\n";

    // --- A metric space (2D points) -----------------------------------------
    const EuclideanMetric pts = uniform_points(/*n=*/300, /*dim=*/2, /*extent=*/100.0, rng);
    const Graph hm = greedy_spanner_metric(pts, /*t=*/1.5);
    const SpannerAudit ma = audit_metric_spanner(pts, hm);
    std::cout << "greedy (1.5)-spanner of 300 uniform points:\n"
              << "  edges = " << ma.edges << " (" << 2.0 * static_cast<double>(ma.edges) / 300.0
              << " per point), lightness = " << ma.lightness
              << ", max degree = " << ma.max_degree << ", stretch = " << ma.max_stretch
              << "\n";
    return 0;
}
