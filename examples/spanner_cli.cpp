// spanner_cli: the unified API from the command line.
//
// Enumerates the algorithm registry, generates a matching random instance
// (weighted graph or 2D point set), builds through one reusable
// SpannerSession, and prints each build's BuildReport as JSON -- the same
// serializer the bench artifacts use.
//
//   $ ./examples/spanner_cli --list                 # registry table
//   $ ./examples/spanner_cli greedy --n 512 --t 2   # one algorithm
//   $ ./examples/spanner_cli all --threads 4        # every entry, one session
//
// Flags: --n <vertices> --t <stretch> --eps <epsilon> --cones <k>
//        --sep <separation> (wspd / greedy-wspd / greedy-grid; 0 derives
//        4 + 8/eps) --k <baswana k> --threads <stage-2 workers>
//        --seed <rng seed> --audit (append the exact-stretch audit,
//        reusing the session's workspace pool -- no per-call allocation)
//        --repeat <N> (build N times through the warm session and report
//        min/median build seconds, so single-run timing noise stops
//        polluting manual comparisons; the JSON report is the first run's)
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/audit.hpp"
#include "api/registry.hpp"
#include "api/session.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

struct CliArgs {
    std::string algorithm;
    std::size_t n = 256;
    double stretch = 2.0;
    double epsilon = 0.5;
    double separation = 0.0;  ///< 0 = derive 4 + 8/eps
    std::size_t cones = 12;
    unsigned k = 2;
    std::size_t threads = 1;
    std::uint64_t seed = 7;
    std::size_t repeat = 1;
    bool list = false;
    bool audit = false;
};

int usage() {
    std::cerr << "usage: spanner_cli (--list | <algorithm> | all) [--n N] [--t T]\n"
                 "                   [--eps E] [--sep S] [--cones K] [--k K]\n"
                 "                   [--threads W] [--seed S] [--repeat N] [--audit]\n";
    return 2;
}

bool parse(int argc, char** argv, CliArgs& args) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--list") {
            args.list = true;
        } else if (arg == "--audit") {
            args.audit = true;
        } else if (arg == "--n") {
            const char* v = next();
            if (v == nullptr) return false;
            args.n = std::strtoull(v, nullptr, 10);
        } else if (arg == "--t") {
            const char* v = next();
            if (v == nullptr) return false;
            args.stretch = std::strtod(v, nullptr);
        } else if (arg == "--eps") {
            const char* v = next();
            if (v == nullptr) return false;
            args.epsilon = std::strtod(v, nullptr);
        } else if (arg == "--sep") {
            const char* v = next();
            if (v == nullptr) return false;
            args.separation = std::strtod(v, nullptr);
        } else if (arg == "--cones") {
            const char* v = next();
            if (v == nullptr) return false;
            args.cones = std::strtoull(v, nullptr, 10);
        } else if (arg == "--k") {
            const char* v = next();
            if (v == nullptr) return false;
            args.k = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--threads") {
            const char* v = next();
            if (v == nullptr) return false;
            args.threads = std::strtoull(v, nullptr, 10);
        } else if (arg == "--seed") {
            const char* v = next();
            if (v == nullptr) return false;
            args.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--repeat") {
            const char* v = next();
            if (v == nullptr) return false;
            args.repeat = std::strtoull(v, nullptr, 10);
            if (args.repeat == 0) return false;
        } else if (!arg.starts_with("--") && args.algorithm.empty()) {
            args.algorithm = std::string(arg);
        } else {
            return false;
        }
    }
    return args.list || !args.algorithm.empty();
}

void print_registry() {
    gsp::Table table({"algorithm", "input", "engine", "randomized", "description"});
    for (const gsp::AlgorithmInfo* info : gsp::AlgorithmRegistry::global().algorithms()) {
        table.add_row({std::string(info->name), std::string(gsp::to_string(info->input)),
                       info->uses_engine ? "yes" : "no",
                       info->randomized ? "yes" : "no", std::string(info->description)});
    }
    table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gsp;
    CliArgs args;
    if (!parse(argc, argv, args)) return usage();
    if (args.list) {
        print_registry();
        return 0;
    }

    const AlgorithmRegistry& registry = AlgorithmRegistry::global();
    std::vector<std::string> names;
    if (args.algorithm == "all") {
        for (const AlgorithmInfo* info : registry.algorithms()) {
            names.emplace_back(info->name);
        }
    } else if (registry.find(args.algorithm) != nullptr) {
        names.push_back(args.algorithm);
    } else {
        std::cerr << "unknown algorithm \"" << args.algorithm << "\"; --list shows all\n";
        return 2;
    }

    // Shared instances: one graph, one 2D point set.
    Rng rng(args.seed);
    const Graph g = random_graph_nm(args.n, 8 * args.n, {.lo = 1.0, .hi = 2.0}, rng);
    const EuclideanMetric pts =
        uniform_points(args.n, 2, std::sqrt(static_cast<double>(args.n)) * 10.0, rng);

    BuildOptions options;
    options.stretch = args.stretch;
    options.engine.num_threads = args.threads;
    options.approx.epsilon = args.epsilon;
    options.geometric.epsilon = args.epsilon;
    options.geometric.wspd_separation = args.separation;
    options.geometric.cones = args.cones;
    options.baswana_sen.k = args.k;
    options.baswana_sen.seed = args.seed;

    // One session for every build: warm pools, warm workspaces. The audit
    // path borrows the same workspace pool (no per-call allocation).
    SpannerSession session;
    // What the probe kernels will actually run as (the dispatch-resolved
    // answer for this machine; the per-build reports repeat it as
    // "simd_backend" so saved JSON stays self-describing).
    std::cout << "simd backend: "
              << simd::backend_label(resolve_simd_kernels(options.engine.simd_backend))
              << "\n";
    int failures = 0;
    for (const std::string& name : names) {
        const AlgorithmInfo* info = registry.find(name);
        const BuildInput input = info->input == InputKind::kGraph ? BuildInput::of(g)
                                                                  : BuildInput::of(pts);
        try {
            BuildReport report;
            const Graph h = registry.build(name, session, input, options, &report);
            std::cout << report.to_json() << "\n";
            // Per-phase timing breakdown: where the wall clock went and
            // what the cell-batched reject path amortized away.
            {
                const double us =
                    report.candidates > 0
                        ? report.seconds * 1e6 / static_cast<double>(report.candidates)
                        : 0.0;
                std::cout << "  timing: setup " << report.setup_seconds << " s, build "
                          << report.seconds << " s (" << us << " us/candidate); "
                          << report.stats.cell_balls << " cell balls / "
                          << report.stats.cell_ball_decisions << " batched decisions, "
                          << report.stats.coarse_rejects << " coarse rejects, "
                          << report.stats.dijkstra_runs << " dijkstra runs\n";
            }
            if (args.repeat > 1) {
                // Warm re-builds through the same session: the first call
                // above primed pools and workspaces, so these isolate the
                // build itself. Min is the least-perturbed run; median is
                // the robust central tendency single runs lack.
                std::vector<double> seconds;
                seconds.reserve(args.repeat);
                seconds.push_back(report.seconds);
                for (std::size_t r = 1; r < args.repeat; ++r) {
                    BuildReport repeat_report;
                    (void)registry.build(name, session, input, options,
                                         &repeat_report);
                    seconds.push_back(repeat_report.seconds);
                }
                std::sort(seconds.begin(), seconds.end());
                const std::size_t mid = seconds.size() / 2;
                const double median =
                    seconds.size() % 2 == 1
                        ? seconds[mid]
                        : 0.5 * (seconds[mid - 1] + seconds[mid]);
                std::cout << "  repeat: " << args.repeat << " warm builds, min "
                          << seconds.front() << " s, median " << median
                          << " s, max " << seconds.back() << " s\n";
            }
            if (args.audit) {
                const double stretch =
                    info->input == InputKind::kGraph
                        ? max_stretch_over_edges(g, h, session.workspace_pool())
                        : max_stretch_metric(pts, h, session.workspace_pool());
                std::cout << "  audit: exact max stretch = " << stretch
                          << " (target " << report.stretch_target << ")\n";
            }
        } catch (const std::invalid_argument& e) {
            // A bad flag combination for *this* algorithm (e.g. --eps 2
            // for greedy-approx) should not abort an `all` sweep.
            std::cerr << name << ": " << e.what() << "\n";
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}
