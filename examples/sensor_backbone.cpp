// Energy-constrained sensor-network backbone (paper §1.1: spanners "in
// wireless and sensor networks [vRW04, BSDS04, SS10]" and VLSI-style
// cost-vs-radius trades).
//
// Scenario: battery-powered sensors scattered over a field report to a
// sink. Keeping a radio link costs energy proportional to its length
// (transmit power), so the backbone's *weight* is the network's total
// maintenance power, and each sensor's *degree* is its duty-cycle load.
// The backbone must still deliver every report within a bounded detour
// (stretch), or end-to-end latency and per-hop relay energy explode.
//
// The example sweeps the stretch parameter t and prints the whole
// trade-off curve; the paper's Corollary 10 says the greedy backbone's
// weight is within a constant of the MST while keeping (1+eps) detours --
// and this is the best any construction could promise for the family.
#include <iostream>

#include "analysis/audit.hpp"
#include "core/greedy_metric.hpp"
#include "gen/points.hpp"
#include "metric/metric_space.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
    using namespace gsp;
    Rng rng(314);
    const std::size_t n = 500;
    const EuclideanMetric field = uniform_points(n, 2, 1000.0, rng);
    const double mst_power = metric_mst_weight(field);

    std::cout << "== Sensor backbone: maintenance power vs detour guarantee ==\n"
              << n << " sensors over a 1km x 1km field; power ~ total link length\n\n";

    Table table({"t (detour cap)", "links", "links/sensor", "power (x MST)",
                 "max duty (degree)", "measured worst detour"});
    for (double t : {1.05, 1.1, 1.25, 1.5, 2.0, 3.0}) {
        const Graph backbone = greedy_spanner_metric(field, t);
        const SpannerAudit a = audit_metric_spanner(field, backbone);
        table.add_row({fmt(t), std::to_string(a.edges),
                       fmt(2.0 * static_cast<double>(a.edges) / static_cast<double>(n), 2),
                       fmt(a.weight / mst_power, 3), std::to_string(a.max_degree),
                       fmt_ratio(a.max_stretch)});
    }
    table.print(std::cout);

    std::cout << "\nReading: tightening the detour cap toward 1 buys latency at a steep "
                 "power premium; by t ~ 1.5\nthe greedy backbone already runs within ~2-3x "
                 "of the theoretical minimum power (the MST)\nwhile guaranteeing every "
                 "report a <= t detour. Corollary 10 says this curve is flat in n:\n"
                 "deploying 10x more sensors does not change the power-per-sensor story.\n";
    return 0;
}
