// Compact routing over a low-degree spanner (paper §1.1: "In compact
// routing schemes, the use of low degree spanners enables the routing
// tables to be of small size ... the degree of a processor represents its
// load").
//
// Scenario: an overlay network over n peers embedded in a 2D latency space.
// Full-mesh routing gives optimal latency but each peer keeps n-1 table
// entries. Routing over a spanner keeps only `degree` entries per peer
// (next-hop per neighbor via shortest-path trees). The example compares
// table sizes and end-to-end latency inflation for the greedy and
// approximate-greedy spanners.
#include <algorithm>
#include <iostream>

#include "analysis/audit.hpp"
#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/approx_greedy.hpp"
#include "core/greedy_metric.hpp"
#include "gen/points.hpp"
#include "graph/dijkstra.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace gsp;

struct RoutingReport {
    std::size_t max_table = 0;   ///< worst per-peer routing-table size (degree)
    double avg_table = 0.0;
    double max_inflation = 0.0;  ///< worst latency vs direct
    double avg_inflation = 0.0;  ///< mean latency inflation over sampled pairs
};

RoutingReport route_over(const EuclideanMetric& latency, const Graph& overlay,
                         std::size_t samples, Rng& rng) {
    RoutingReport report;
    report.max_table = overlay.max_degree();
    report.avg_table =
        2.0 * static_cast<double>(overlay.num_edges()) / static_cast<double>(overlay.num_vertices());
    DijkstraWorkspace ws(overlay.num_vertices());
    double sum = 0.0;
    for (std::size_t i = 0; i < samples; ++i) {
        const auto s = static_cast<VertexId>(rng.index(latency.size()));
        const auto& dist = ws.all_distances(overlay, s, kInfiniteWeight);
        for (VertexId v = 0; v < latency.size(); ++v) {
            if (v == s) continue;
            const double inflation = dist[v] / latency.distance(s, v);
            report.max_inflation = std::max(report.max_inflation, inflation);
            sum += inflation;
        }
    }
    report.avg_inflation = sum / (static_cast<double>(samples) * (latency.size() - 1));
    return report;
}

}  // namespace

int main() {
    using namespace gsp;
    Rng rng(99);
    const std::size_t n = 800;
    const EuclideanMetric latency = clustered_points(n, 2, 6, 100.0, 4.0, rng);

    std::cout << "== Overlay routing over " << n
              << " peers (6 data centers, 2D latency space) ==\n\n";

    Table table({"overlay", "edges", "max table", "avg table", "max latency infl.",
                 "avg latency infl."});
    auto add = [&](const std::string& name, const Graph& overlay) {
        Rng sample_rng(5);
        const RoutingReport r = route_over(latency, overlay, 24, sample_rng);
        table.add_row({name, std::to_string(overlay.num_edges()),
                       std::to_string(r.max_table), fmt(r.avg_table, 1),
                       fmt_ratio(r.max_inflation), fmt_ratio(r.avg_inflation)});
    };

    {
        // Full mesh: the baseline everyone wants to avoid.
        Graph mesh(n);
        for (VertexId i = 0; i < n; ++i) {
            for (VertexId j = i + 1; j < n; ++j) mesh.add_edge(i, j, latency.distance(i, j));
        }
        add("full mesh", mesh);
    }
    add("greedy t=1.5", greedy_spanner_metric(latency, 1.5));
    add("greedy t=2", greedy_spanner_metric(latency, 2.0));
    {
        SpannerSession session;
        BuildOptions options;
        options.approx.epsilon = 0.5;
        options.approx.theta_cones_override = 16;
        const ApproxGreedyResult r = approx_greedy_build(session, latency, options);
        add("approx-greedy eps=0.5", r.spanner);
    }
    table.print(std::cout);

    std::cout << "\nReading: the greedy overlay shrinks the worst routing table from n-1 "
                 "entries to a handful\nwhile bounding the worst latency inflation by its "
                 "stretch t -- the compact-routing use case\nfrom the paper's introduction. "
                 "The approximate-greedy variant trades a few more edges for an\n"
                 "O(n log n) construction time (Theorem 6).\n";
    return 0;
}
