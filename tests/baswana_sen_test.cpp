#include "spanners/baswana_sen.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/audit.hpp"
#include "gen/graphs.hpp"
#include "graph/traversal.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(BaswanaSenTest, KOneReturnsDeduplicatedInput) {
    Graph g(3);
    g.add_edge(0, 1, 2.0);
    g.add_edge(0, 1, 1.0);  // parallel; only the lighter should survive
    g.add_edge(1, 2, 3.0);
    const Graph h = baswana_sen_spanner(g, 1, 42);
    EXPECT_EQ(h.num_edges(), 2u);
    EXPECT_DOUBLE_EQ(max_stretch_over_edges(g, h), 1.0);
}

TEST(BaswanaSenTest, RejectsKZero) {
    Graph g(2);
    g.add_edge(0, 1, 1.0);
    EXPECT_THROW(baswana_sen_spanner(g, 0, 1), std::invalid_argument);
}

TEST(BaswanaSenTest, EmptyGraph) {
    EXPECT_EQ(baswana_sen_spanner(Graph(5), 2, 1).num_edges(), 0u);
}

TEST(BaswanaSenTest, SpannerIsSubgraph) {
    Rng rng(5);
    const Graph g = erdos_renyi(60, 0.2, {}, rng);
    const Graph h = baswana_sen_spanner(g, 2, 99);
    for (const Edge& e : h.edges()) {
        EXPECT_TRUE(g.has_edge(e.u, e.v));
    }
}

TEST(BaswanaSenTest, PreservesConnectivity) {
    Rng rng(9);
    const Graph g = erdos_renyi(80, 0.15, {}, rng);
    ASSERT_TRUE(is_connected(g));
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        EXPECT_TRUE(is_connected(baswana_sen_spanner(g, 3, seed))) << seed;
    }
}

TEST(BaswanaSenTest, DisconnectedInputHandled) {
    Rng rng(3);
    Graph g(10);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.5);
    g.add_edge(5, 6, 2.0);
    const Graph h = baswana_sen_spanner(g, 2, 7);
    EXPECT_EQ(connected_components(h), connected_components(g));
}

// The theorem: stretch <= 2k-1, always (not in expectation).
class BaswanaSenStretchTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned, double>> {};

TEST_P(BaswanaSenStretchTest, StretchAtMost2kMinus1) {
    const auto [seed, k, p] = GetParam();
    Rng rng(seed);
    const Graph g = erdos_renyi(70, p, {.lo = 0.5, .hi = 5.0}, rng);
    for (std::uint64_t algo_seed : {10u, 20u, 30u}) {
        const Graph h = baswana_sen_spanner(g, k, algo_seed);
        EXPECT_LE(max_stretch_over_edges(g, h), 2.0 * k - 1.0 + 1e-9)
            << "seed=" << seed << " algo_seed=" << algo_seed << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BaswanaSenStretchTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(2u, 3u, 4u),
                                            ::testing::Values(0.15, 0.5)));

TEST(BaswanaSenTest, SizeScalesSubquadratically) {
    // Expected size O(k n^{1+1/k}); on a dense graph the spanner must be
    // much smaller than the input. Generous slack absorbs randomness.
    Rng rng(13);
    const std::size_t n = 150;
    const Graph g = erdos_renyi(n, 0.5, {}, rng);  // ~5600 edges
    double total = 0.0;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        total += static_cast<double>(baswana_sen_spanner(g, 2, seed).num_edges());
    }
    const double avg = total / 5.0;
    const double bound = 10.0 * 2.0 * std::pow(static_cast<double>(n), 1.5);
    EXPECT_LT(avg, bound);
    EXPECT_LT(avg, static_cast<double>(g.num_edges()));
}

TEST(BaswanaSenTest, DeterministicGivenSeed) {
    Rng rng(17);
    const Graph g = erdos_renyi(40, 0.3, {}, rng);
    const Graph a = baswana_sen_spanner(g, 3, 12345);
    const Graph b = baswana_sen_spanner(g, 3, 12345);
    EXPECT_TRUE(same_edge_set(a, b));
}

}  // namespace
}  // namespace gsp
