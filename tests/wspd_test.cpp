#include "wspd/wspd.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/audit.hpp"
#include "gen/points.hpp"
#include "graph/traversal.hpp"
#include "spanners/wspd_spanner.hpp"
#include "util/random.hpp"
#include "wspd/quadtree.hpp"

namespace gsp {
namespace {

TEST(QuadTreeTest, SinglePoint) {
    const EuclideanMetric one(2, {3.0, 4.0});
    const QuadTree tree(one);
    EXPECT_EQ(tree.num_nodes(), 1u);
    EXPECT_TRUE(tree.check_invariants());
}

TEST(QuadTreeTest, InvariantsOnRandomSets) {
    for (std::uint64_t seed : {1u, 7u, 42u}) {
        Rng rng(seed);
        const EuclideanMetric pts = uniform_points(200, 2, 100.0, rng);
        const QuadTree tree(pts);
        EXPECT_TRUE(tree.check_invariants()) << "seed=" << seed;
        // Compressed: O(n) nodes.
        EXPECT_LE(tree.num_nodes(), 4 * pts.size());
    }
}

TEST(QuadTreeTest, ThreeDimensionalPoints) {
    Rng rng(11);
    const EuclideanMetric pts = uniform_points(150, 3, 10.0, rng);
    const QuadTree tree(pts);
    EXPECT_TRUE(tree.check_invariants());
}

TEST(QuadTreeTest, PathologicalClusteredSpread) {
    // Two tight clusters far apart: compression must keep the tree small.
    std::vector<double> coords;
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        coords.push_back(rng.uniform(0.0, 1e-3));
        coords.push_back(rng.uniform(0.0, 1e-3));
    }
    for (int i = 0; i < 50; ++i) {
        coords.push_back(1e6 + rng.uniform(0.0, 1e-3));
        coords.push_back(1e6 + rng.uniform(0.0, 1e-3));
    }
    const EuclideanMetric pts(2, std::move(coords));
    const QuadTree tree(pts);
    EXPECT_TRUE(tree.check_invariants());
    EXPECT_LE(tree.num_nodes(), 4 * pts.size());
}

TEST(QuadTreeTest, RejectsDuplicates) {
    const EuclideanMetric dup(2, {1.0, 2.0, 1.0, 2.0});
    EXPECT_THROW(QuadTree{dup}, std::logic_error);
}

class WspdPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(WspdPropertyTest, SeparationAndCoverage) {
    const auto [seed, n, s] = GetParam();
    Rng rng(seed);
    const EuclideanMetric pts = uniform_points(n, 2, 50.0, rng);
    const QuadTree tree(pts);
    const auto pairs = well_separated_pairs(tree, s);
    EXPECT_TRUE(check_separation(tree, pairs, s));
    EXPECT_TRUE(check_unique_coverage(tree, pairs));
}

INSTANTIATE_TEST_SUITE_P(UniformPoints, WspdPropertyTest,
                         ::testing::Combine(::testing::Values(3u, 19u),
                                            ::testing::Values(40u, 90u),
                                            ::testing::Values(1.0, 2.0, 6.0)));

TEST(WspdTest, PairCountGrowsLinearly) {
    Rng rng(5);
    const EuclideanMetric small = uniform_points(200, 2, 100.0, rng);
    const EuclideanMetric big = uniform_points(800, 2, 200.0, rng);
    const double per_small =
        static_cast<double>(well_separated_pairs(QuadTree(small), 4.0).size()) / 200.0;
    const double per_big =
        static_cast<double>(well_separated_pairs(QuadTree(big), 4.0).size()) / 800.0;
    EXPECT_LT(per_big, per_small * 2.5);  // O(n * s^d) pairs, not O(n^2)
}

TEST(WspdSpannerTest, StretchMeetsEpsilonTarget) {
    Rng rng(21);
    for (double eps : {0.5, 1.0}) {
        const EuclideanMetric pts = uniform_points(150, 2, 100.0, rng);
        const Graph h = wspd_spanner(pts, eps);
        EXPECT_TRUE(is_connected(h));
        EXPECT_LE(max_stretch_metric(pts, h), 1.0 + eps + 1e-9);
    }
}

TEST(WspdSpannerTest, InputValidation) {
    Rng rng(1);
    const EuclideanMetric pts = uniform_points(10, 2, 1.0, rng);
    EXPECT_THROW(wspd_spanner(pts, 0.0), std::invalid_argument);
    const QuadTree tree(pts);
    EXPECT_THROW(well_separated_pairs(tree, 0.0), std::invalid_argument);
}

TEST(WspdSpannerTest, TrivialInput) {
    const EuclideanMetric one(2, {0.0, 0.0});
    EXPECT_EQ(wspd_spanner(one, 0.5).num_edges(), 0u);
}

}  // namespace
}  // namespace gsp
