// BoundSketch: the cross-bucket per-vertex bound persistence. The
// contract that keeps the engine decision-preserving: upper bounds it
// returns are witness-path lengths (sound forever), lower bounds are only
// reported at the exact insertion epoch they were measured, and records
// tighten monotonically.
#include "core/bound_sketch.hpp"

#include <gtest/gtest.h>

#include "graph/types.hpp"

namespace gsp {
namespace {

TEST(BoundSketchTest, EmptySketchKnowsNothing) {
    BoundSketch sk;
    sk.reset(8);
    EXPECT_EQ(sk.upper_bound(0, 1), kInfiniteWeight);
    EXPECT_EQ(sk.lower_bound_at(0, 1, 1), 0.0);
}

TEST(BoundSketchTest, ExactRecordServesBothDirectionsOfTheSlot) {
    BoundSketch sk;
    sk.reset(8);
    sk.record_exact(/*src=*/2, /*x=*/5, 3.5, /*epoch=*/4);
    // Queries look at slot(5, keyed 2) and slot(2, keyed 5); only the
    // former was written, and both query orders must find it.
    EXPECT_DOUBLE_EQ(sk.upper_bound(2, 5), 3.5);
    EXPECT_DOUBLE_EQ(sk.upper_bound(5, 2), 3.5);
    EXPECT_DOUBLE_EQ(sk.lower_bound_at(2, 5, 4), 3.5);
    EXPECT_DOUBLE_EQ(sk.lower_bound_at(5, 2, 4), 3.5);
}

TEST(BoundSketchTest, UpperBoundsPersistAcrossEpochs) {
    BoundSketch sk;
    sk.reset(8);
    sk.record_exact(1, 2, 2.0, 3);
    // The spanner grew since: the lower bound is expired...
    EXPECT_EQ(sk.lower_bound_at(1, 2, 7), 0.0);
    // ...but the witness path still exists, so the upper bound stands.
    EXPECT_DOUBLE_EQ(sk.upper_bound(1, 2), 2.0);
}

TEST(BoundSketchTest, MonotoneTightening) {
    BoundSketch sk;
    sk.reset(8);
    sk.record_upper(1, 2, 5.0);
    sk.record_upper(1, 2, 3.0);
    sk.record_upper(1, 2, 4.0);  // looser: ignored
    EXPECT_DOUBLE_EQ(sk.upper_bound(1, 2), 3.0);

    sk.record_far(1, 2, 2.0, 6);
    sk.record_far(1, 2, 2.5, 6);  // same epoch: raises
    EXPECT_DOUBLE_EQ(sk.lower_bound_at(1, 2, 6), 2.5);
    sk.record_far(1, 2, 1.0, 9);  // newer epoch: replaces the tag
    EXPECT_DOUBLE_EQ(sk.lower_bound_at(1, 2, 9), 1.0);
    EXPECT_EQ(sk.lower_bound_at(1, 2, 6), 0.0);  // old tag gone
    // The tightened upper bound survived the lower-bound churn.
    EXPECT_DOUBLE_EQ(sk.upper_bound(1, 2), 3.0);
}

TEST(BoundSketchTest, EvictionIsDeterministicAndForgetsTheLoser) {
    BoundSketch sk;
    sk.reset(16);
    // Sources 1 and 1 + ways map to the same way of vertex 9.
    const VertexId a = 1;
    const auto b = static_cast<VertexId>(1 + BoundSketch::kDefaultWays);
    sk.record_exact(a, 9, 2.0, 1);
    EXPECT_DOUBLE_EQ(sk.upper_bound(a, 9), 2.0);
    sk.record_exact(b, 9, 4.0, 1);
    // b evicted a: a's bound must be *forgotten*, never blended.
    EXPECT_DOUBLE_EQ(sk.upper_bound(b, 9), 4.0);
    EXPECT_EQ(sk.upper_bound(a, 9), kInfiniteWeight);
}

TEST(BoundSketchTest, DistinctWaysCoexist) {
    BoundSketch sk;
    sk.reset(16);
    // ways sources with distinct low bits all land in different ways.
    for (VertexId s = 0; s < BoundSketch::kDefaultWays; ++s) {
        sk.record_exact(s, 10, 1.0 + s, 2);
    }
    for (VertexId s = 0; s < BoundSketch::kDefaultWays; ++s) {
        EXPECT_DOUBLE_EQ(sk.upper_bound(s, 10), 1.0 + s) << "source " << s;
    }
}

TEST(BoundSketchTest, RuntimeAssociativityHoldsMoreSources) {
    // The kWays sweep knob: at `ways` associativity, `ways` sources with
    // distinct low bits coexist per vertex; the next aliasing source
    // evicts. Verify at 2 and 8 (the bench_micro sweep endpoints).
    for (const std::size_t ways : {std::size_t{2}, std::size_t{8}}) {
        BoundSketch sk;
        sk.reset(32, ways);
        EXPECT_EQ(sk.ways(), ways);
        for (VertexId s = 0; s < ways; ++s) sk.record_exact(s, 20, 1.0 + s, 2);
        for (VertexId s = 0; s < ways; ++s) {
            EXPECT_DOUBLE_EQ(sk.upper_bound(s, 20), 1.0 + s)
                << "ways " << ways << " source " << s;
        }
        const auto alias = static_cast<VertexId>(ways);  // low bits == source 0
        sk.record_exact(alias, 20, 9.0, 2);
        EXPECT_DOUBLE_EQ(sk.upper_bound(alias, 20), 9.0);
        EXPECT_EQ(sk.upper_bound(0, 20), kInfiniteWeight) << "ways " << ways;
    }
}

TEST(BoundSketchTest, RejectsNonPowerOfTwoWays) {
    BoundSketch sk;
    EXPECT_THROW(sk.reset(8, 3), std::invalid_argument);
    EXPECT_THROW(sk.reset(8, 0), std::invalid_argument);
}

TEST(BoundSketchTest, ResetClearsEverything) {
    BoundSketch sk;
    sk.reset(8);
    sk.record_exact(1, 2, 2.0, 3);
    sk.reset(8);
    EXPECT_EQ(sk.upper_bound(1, 2), kInfiniteWeight);
    EXPECT_EQ(sk.lower_bound_at(1, 2, 3), 0.0);
}

using Settled = std::vector<std::pair<VertexId, Weight>>;

TEST(CertificateStoreTest, LoadMatchesScopeEpochAndRadius) {
    CertificateStore store;
    store.reset(8, /*cap=*/16);
    const Settled settled = {{3, 0.0}, {1, 1.5}, {5, 2.0}};
    EXPECT_TRUE(store.publish(/*source=*/3, /*scope=*/7, /*epoch=*/4, /*radius=*/2.5,
                              settled));
    // Wrong scope (another batch), wrong epoch (another snapshot), or a
    // radius the ball does not cover: all refuse.
    EXPECT_FALSE(store.load(3, 6, 4, 2.5));
    EXPECT_FALSE(store.load(3, 7, 5, 2.5));
    EXPECT_FALSE(store.load(3, 7, 4, 3.0));
    EXPECT_FALSE(store.load(4, 7, 4, 2.5));  // never published
    ASSERT_TRUE(store.load(3, 7, 4, 2.5));
    EXPECT_DOUBLE_EQ(store.snapshot_distance(3), 0.0);
    EXPECT_DOUBLE_EQ(store.snapshot_distance(1), 1.5);
    EXPECT_DOUBLE_EQ(store.snapshot_distance(5), 2.0);
    // Outside the settled frontier: certified further than the radius.
    EXPECT_EQ(store.snapshot_distance(0), kInfiniteWeight);
    EXPECT_DOUBLE_EQ(store.loaded_radius(), 2.5);
}

TEST(CertificateStoreTest, LoadingAnotherSourceInvalidatesTheFirstLookup) {
    CertificateStore store;
    store.reset(8, 16);
    EXPECT_TRUE(store.publish(1, 2, 1, 4.0, Settled{{1, 0.0}, {6, 3.0}}));
    EXPECT_TRUE(store.publish(2, 2, 1, 4.0, Settled{{2, 0.0}, {7, 1.0}}));
    ASSERT_TRUE(store.load(1, 2, 1, 4.0));
    EXPECT_DOUBLE_EQ(store.snapshot_distance(6), 3.0);
    ASSERT_TRUE(store.load(2, 2, 1, 4.0));
    EXPECT_DOUBLE_EQ(store.snapshot_distance(7), 1.0);
    // Source 1's frontier must not bleed through.
    EXPECT_EQ(store.snapshot_distance(6), kInfiniteWeight);
    // Re-loading the active source is a no-op fast path, not a reset.
    ASSERT_TRUE(store.load(2, 2, 1, 4.0));
    EXPECT_DOUBLE_EQ(store.snapshot_distance(7), 1.0);
}

TEST(CertificateStoreTest, OverCapFrontiersAreDropped) {
    CertificateStore store;
    store.reset(8, /*cap=*/2);
    const Settled big = {{0, 0.0}, {1, 1.0}, {2, 2.0}};
    EXPECT_FALSE(store.publish(0, 1, 1, 5.0, big));
    EXPECT_FALSE(store.load(0, 1, 1, 5.0));
    // A previously valid certificate is invalidated by an over-cap
    // publish for the same source (it describes a newer batch).
    EXPECT_TRUE(store.publish(1, 1, 1, 5.0, Settled{{1, 0.0}}));
    EXPECT_FALSE(store.publish(1, 2, 2, 5.0, big));
    EXPECT_FALSE(store.load(1, 1, 1, 5.0));
}

TEST(CertificateStoreTest, ResetInvalidatesAllScopes) {
    CertificateStore store;
    store.reset(4, 8);
    EXPECT_TRUE(store.publish(0, 3, 2, 1.0, Settled{{0, 0.0}}));
    store.reset(4, 8);
    EXPECT_FALSE(store.load(0, 3, 2, 1.0));
}

}  // namespace
}  // namespace gsp
