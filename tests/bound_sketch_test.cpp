// BoundSketch: the cross-bucket per-vertex bound persistence. The
// contract that keeps the engine decision-preserving: upper bounds it
// returns are witness-path lengths (sound forever), lower bounds are only
// reported at the exact insertion epoch they were measured, and records
// tighten monotonically.
#include "core/bound_sketch.hpp"

#include <gtest/gtest.h>

#include "graph/types.hpp"

namespace gsp {
namespace {

TEST(BoundSketchTest, EmptySketchKnowsNothing) {
    BoundSketch sk;
    sk.reset(8);
    EXPECT_EQ(sk.upper_bound(0, 1), kInfiniteWeight);
    EXPECT_EQ(sk.lower_bound_at(0, 1, 1), 0.0);
}

TEST(BoundSketchTest, ExactRecordServesBothDirectionsOfTheSlot) {
    BoundSketch sk;
    sk.reset(8);
    sk.record_exact(/*src=*/2, /*x=*/5, 3.5, /*epoch=*/4);
    // Queries look at slot(5, keyed 2) and slot(2, keyed 5); only the
    // former was written, and both query orders must find it.
    EXPECT_DOUBLE_EQ(sk.upper_bound(2, 5), 3.5);
    EXPECT_DOUBLE_EQ(sk.upper_bound(5, 2), 3.5);
    EXPECT_DOUBLE_EQ(sk.lower_bound_at(2, 5, 4), 3.5);
    EXPECT_DOUBLE_EQ(sk.lower_bound_at(5, 2, 4), 3.5);
}

TEST(BoundSketchTest, UpperBoundsPersistAcrossEpochs) {
    BoundSketch sk;
    sk.reset(8);
    sk.record_exact(1, 2, 2.0, 3);
    // The spanner grew since: the lower bound is expired...
    EXPECT_EQ(sk.lower_bound_at(1, 2, 7), 0.0);
    // ...but the witness path still exists, so the upper bound stands.
    EXPECT_DOUBLE_EQ(sk.upper_bound(1, 2), 2.0);
}

TEST(BoundSketchTest, MonotoneTightening) {
    BoundSketch sk;
    sk.reset(8);
    sk.record_upper(1, 2, 5.0);
    sk.record_upper(1, 2, 3.0);
    sk.record_upper(1, 2, 4.0);  // looser: ignored
    EXPECT_DOUBLE_EQ(sk.upper_bound(1, 2), 3.0);

    sk.record_far(1, 2, 2.0, 6);
    sk.record_far(1, 2, 2.5, 6);  // same epoch: raises
    EXPECT_DOUBLE_EQ(sk.lower_bound_at(1, 2, 6), 2.5);
    sk.record_far(1, 2, 1.0, 9);  // newer epoch: replaces the tag
    EXPECT_DOUBLE_EQ(sk.lower_bound_at(1, 2, 9), 1.0);
    EXPECT_EQ(sk.lower_bound_at(1, 2, 6), 0.0);  // old tag gone
    // The tightened upper bound survived the lower-bound churn.
    EXPECT_DOUBLE_EQ(sk.upper_bound(1, 2), 3.0);
}

TEST(BoundSketchTest, EvictionIsDeterministicAndForgetsTheLoser) {
    BoundSketch sk;
    sk.reset(16);
    // Sources 1 and 1 + kWays map to the same way of vertex 9.
    const VertexId a = 1;
    const auto b = static_cast<VertexId>(1 + BoundSketch::kWays);
    sk.record_exact(a, 9, 2.0, 1);
    EXPECT_DOUBLE_EQ(sk.upper_bound(a, 9), 2.0);
    sk.record_exact(b, 9, 4.0, 1);
    // b evicted a: a's bound must be *forgotten*, never blended.
    EXPECT_DOUBLE_EQ(sk.upper_bound(b, 9), 4.0);
    EXPECT_EQ(sk.upper_bound(a, 9), kInfiniteWeight);
}

TEST(BoundSketchTest, DistinctWaysCoexist) {
    BoundSketch sk;
    sk.reset(16);
    // kWays sources with distinct low bits all land in different ways.
    for (VertexId s = 0; s < BoundSketch::kWays; ++s) {
        sk.record_exact(s, 10, 1.0 + s, 2);
    }
    for (VertexId s = 0; s < BoundSketch::kWays; ++s) {
        EXPECT_DOUBLE_EQ(sk.upper_bound(s, 10), 1.0 + s) << "source " << s;
    }
}

TEST(BoundSketchTest, ResetClearsEverything) {
    BoundSketch sk;
    sk.reset(8);
    sk.record_exact(1, 2, 2.0, 3);
    sk.reset(8);
    EXPECT_EQ(sk.upper_bound(1, 2), kInfiniteWeight);
    EXPECT_EQ(sk.lower_bound_at(1, 2, 3), 0.0);
}

}  // namespace
}  // namespace gsp
