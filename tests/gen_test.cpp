// Generator sanity: the experiments are only as good as their instances.
#include <gtest/gtest.h>

#include "core/greedy_metric.hpp"
#include "gen/graphs.hpp"
#include "gen/hard_instances.hpp"
#include "gen/incidence.hpp"
#include "gen/named_graphs.hpp"
#include "gen/points.hpp"
#include "graph/girth.hpp"
#include "graph/traversal.hpp"
#include "metric/doubling.hpp"
#include "metric/metric_space.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(NamedGraphsTest, PetersenShape) {
    const Graph p = petersen_graph();
    EXPECT_EQ(p.num_vertices(), 10u);
    EXPECT_EQ(p.num_edges(), 15u);
    EXPECT_EQ(p.max_degree(), 3u);
    EXPECT_EQ(unweighted_girth(p), 5u);
    EXPECT_TRUE(is_connected(p));
}

TEST(NamedGraphsTest, GeneralizedPetersenGirths) {
    // GP(n, 2) for n >= 7 has girth 8? No: known girths -- GP(5,2)=5,
    // GP(7,2)=7... we only rely on girth >= 5 for n >= 5, checked here.
    for (std::size_t n : {5u, 7u, 9u, 11u}) {
        const Graph g = generalized_petersen(n, 2);
        EXPECT_EQ(g.num_vertices(), 2 * n);
        EXPECT_EQ(g.num_edges(), 3 * n);
        EXPECT_GE(unweighted_girth(g), 5u) << "n=" << n;
    }
    EXPECT_THROW(generalized_petersen(4, 2), std::invalid_argument);
    EXPECT_THROW(generalized_petersen(5, 0), std::invalid_argument);
}

TEST(IncidenceTest, ProjectivePlaneProperties) {
    for (std::size_t q : {2u, 3u, 5u}) {
        const Graph g = projective_plane_incidence(q);
        const std::size_t count = q * q + q + 1;
        EXPECT_EQ(g.num_vertices(), 2 * count);
        EXPECT_EQ(g.num_edges(), (q + 1) * count);
        // (q+1)-regular.
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
            EXPECT_EQ(g.degree(v), q + 1) << "q=" << q << " v=" << v;
        }
        EXPECT_EQ(unweighted_girth(g), 6u) << "q=" << q;
        EXPECT_TRUE(is_connected(g));
    }
}

TEST(IncidenceTest, PrimeValidation) {
    EXPECT_TRUE(is_supported_prime(7));
    EXPECT_FALSE(is_supported_prime(4));
    EXPECT_FALSE(is_supported_prime(1));
    EXPECT_FALSE(is_supported_prime(103));
    EXPECT_THROW(projective_plane_incidence(4), std::invalid_argument);
}

TEST(Figure1Test, InstanceShape) {
    const Graph h = petersen_graph();
    const Figure1Instance inst = figure1_instance(h, 0.1);
    // 15 H edges + star edges to the 6 non-neighbors of vertex 0.
    EXPECT_EQ(inst.h_edges, 15u);
    EXPECT_EQ(inst.graph.num_edges(), 15u + 6u);
    EXPECT_EQ(inst.star_weight, 1.1);
    // The star center's degree: 3 H-neighbors + 6 new edges = 9 = n-1.
    EXPECT_EQ(inst.graph.degree(inst.star_center), 9u);
}

TEST(Figure1Test, Validation) {
    const Graph h = petersen_graph();
    EXPECT_THROW(figure1_instance(h, 0.0), std::invalid_argument);
    EXPECT_THROW(figure1_instance(h, 0.1, 99), std::invalid_argument);
    Graph weighted(2);
    weighted.add_edge(0, 1, 2.0);
    EXPECT_THROW(figure1_instance(weighted, 0.1), std::invalid_argument);
}

TEST(GeometricStarTest, IsAValidDoublingMetric) {
    const MatrixMetric star = geometric_star_metric(48, 2.0);
    EXPECT_TRUE(check_metric(star).ok());
    // Doubling estimate stays tiny even as n grows: the construction's
    // whole point is constant ddim with unbounded greedy degree.
    const DoublingEstimate est = estimate_doubling(star);
    EXPECT_LE(est.ddim_upper(), 3.0);
}

TEST(GeometricStarTest, GreedyDegreeIsNMinusOne) {
    for (std::size_t n : {16u, 32u, 64u}) {
        const MatrixMetric star = geometric_star_metric(n, 2.0);
        const Graph h = greedy_spanner_metric(star, 1.5);
        EXPECT_EQ(h.num_edges(), n - 1);
        EXPECT_EQ(h.max_degree(), n - 1) << "n=" << n;
        EXPECT_EQ(h.degree(0), n - 1);
    }
}

TEST(GeometricStarTest, Validation) {
    EXPECT_THROW(geometric_star_metric(1), std::invalid_argument);
    EXPECT_THROW(geometric_star_metric(10, 1.0), std::invalid_argument);
    EXPECT_THROW(geometric_star_metric(2000, 2.0), std::invalid_argument);  // overflow
}

TEST(PointGenTest, SizesAndRanges) {
    Rng rng(3);
    const EuclideanMetric u = uniform_points(50, 3, 10.0, rng);
    EXPECT_EQ(u.size(), 50u);
    EXPECT_EQ(u.dim(), 3u);
    for (VertexId p = 0; p < u.size(); ++p) {
        for (double c : u.point(p)) {
            EXPECT_GE(c, 0.0);
            EXPECT_LE(c, 10.0);
        }
    }
    const EuclideanMetric cl = clustered_points(64, 2, 4, 100.0, 1.0, rng);
    EXPECT_EQ(cl.size(), 64u);
    const EuclideanMetric ci = circle_points(12, 5.0);
    EXPECT_NEAR(ci.distance(0, 6), 10.0, 1e-9);  // diameter of the circle
    const EuclideanMetric gr = grid_points(4, 5);
    EXPECT_EQ(gr.size(), 20u);
    EXPECT_DOUBLE_EQ(gr.distance(0, 1), 1.0);
    EXPECT_THROW(clustered_points(10, 2, 0, 1.0, 1.0, rng), std::invalid_argument);
    EXPECT_THROW(exponential_spiral(10, 1.0), std::invalid_argument);
}

TEST(GraphGenTest, ErdosRenyiConnectivityOption) {
    Rng rng(5);
    const Graph connected = erdos_renyi(40, 0.01, {}, rng, true);
    EXPECT_TRUE(is_connected(connected));
    // Without the tree, p = 0 gives an empty graph.
    const Graph empty = erdos_renyi(40, 0.0, {}, rng, false);
    EXPECT_EQ(empty.num_edges(), 0u);
}

TEST(GraphGenTest, RandomGraphNmEdgeCount) {
    Rng rng(7);
    const Graph g = random_graph_nm(30, 50, {}, rng, true);
    EXPECT_EQ(g.num_edges(), 29u + 50u);
    EXPECT_TRUE(is_connected(g));
    // Request beyond capacity clamps.
    const Graph full = random_graph_nm(5, 100, {}, rng, true);
    EXPECT_EQ(full.num_edges(), 10u);
}

TEST(GraphGenTest, PreferentialAttachmentShape) {
    Rng rng(9);
    const Graph g = preferential_attachment(100, 2, {}, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_LE(g.num_edges(), 2u * 100u);
}

TEST(GraphGenTest, GridAndHypercube) {
    Rng rng(11);
    const Graph grid = grid_graph(4, 6, {.lo = 1.0, .hi = 1.0}, rng);
    EXPECT_EQ(grid.num_vertices(), 24u);
    EXPECT_EQ(grid.num_edges(), 4u * 5u + 3u * 6u);
    const Graph cube = hypercube_graph(4, {.lo = 1.0, .hi = 1.0}, rng);
    EXPECT_EQ(cube.num_vertices(), 16u);
    EXPECT_EQ(cube.num_edges(), 32u);
    EXPECT_EQ(unweighted_girth(cube), 4u);
}

TEST(GraphGenTest, RandomGeometricConnected) {
    Rng rng(13);
    const Graph g = random_geometric(60, 0.08, rng, true);
    EXPECT_TRUE(is_connected(g));
}

TEST(PointGenTest, StreamedClusteredPointsMatchMaterialized) {
    // The streaming emitter and clustered_points consume the RNG
    // identically: same seed, same point set, coordinate for coordinate.
    Rng rng_a(41);
    const EuclideanMetric pts = clustered_points(500, 2, 6, 90.0, 1.25, rng_a);
    Rng rng_b(41);
    std::vector<double> streamed;
    streamed.reserve(500 * 2);
    stream_clustered_points(500, 2, 6, 90.0, 1.25, rng_b,
                            [&](std::span<const double> p) {
                                streamed.insert(streamed.end(), p.begin(), p.end());
                            });
    ASSERT_EQ(streamed.size(), 1000u);
    for (std::size_t i = 0; i < 500; ++i) {
        EXPECT_EQ(pts.point(i)[0], streamed[2 * i]) << i;
        EXPECT_EQ(pts.point(i)[1], streamed[2 * i + 1]) << i;
    }
}

}  // namespace
}  // namespace gsp
