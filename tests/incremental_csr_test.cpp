// IncrementalCsrView: the gap-buffered incremental adjacency behind the
// greedy engine's csr_snapshot optimisation. The contract is exactness
// under arbitrary insert/merge sequences -- after any interleaving of
// refresh() and add_edge() mirroring a growing Graph, the view must
// enumerate exactly the adjacency a freshly frozen CsrView would, across
// relocations and arena compactions, and Dijkstra answers must agree.
#include "graph/incremental_csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "gen/graphs.hpp"
#include "graph/csr_view.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

/// Canonical (to, weight, edge-id) multiset of a vertex's neighbors.
template <class View>
std::vector<std::tuple<VertexId, Weight, EdgeId>> adjacency_of(const View& v,
                                                               VertexId u) {
    std::vector<std::tuple<VertexId, Weight, EdgeId>> out;
    for (const HalfEdge& h : v.neighbors(u)) {
        out.emplace_back(h.to, h.weight, h.edge);
    }
    std::sort(out.begin(), out.end());
    return out;
}

/// The view must describe the same multigraph as a fresh frozen CSR of g.
void expect_matches_fresh_csr(const IncrementalCsrView& view, const Graph& g,
                              const std::string& label) {
    ASSERT_EQ(view.num_vertices(), g.num_vertices()) << label;
    ASSERT_EQ(view.num_half_edges(), 2 * g.num_edges()) << label;
    const CsrView fresh(g);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
        EXPECT_EQ(adjacency_of(view, u), adjacency_of(fresh, u))
            << label << " vertex " << u;
    }
}

/// The issue's instance families: Erdos-Renyi, grid, Euclidean.
std::vector<std::pair<std::string, Graph>> instance_family(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::pair<std::string, Graph>> out;
    out.emplace_back("erdos_renyi", erdos_renyi(50, 0.15, {.lo = 0.5, .hi = 3.0}, rng));
    out.emplace_back("grid", grid_graph(7, 8, {.lo = 1.0, .hi = 2.0}, rng));
    out.emplace_back("euclidean", random_geometric(60, 0.3, rng));
    return out;
}

TEST(IncrementalCsrTest, RefreshMatchesFreshCsr) {
    for (const auto& [name, g] : instance_family(5)) {
        IncrementalCsrView view;
        EXPECT_TRUE(view.refresh(g));  // first sync is a full build
        expect_matches_fresh_csr(view, g, name);
        EXPECT_EQ(view.rebuilds(), 1u);
        // Nothing changed: the explicit no-op fast path.
        EXPECT_FALSE(view.refresh(g));
        EXPECT_EQ(view.rebuilds(), 1u);
    }
}

TEST(IncrementalCsrTest, RandomizedInsertMergeEquivalence) {
    // The satellite property test: arbitrary insert/refresh sequences over
    // every generator family must keep the view identical to a fresh
    // frozen CSR at every checkpoint, across gap exhaustion (relocations)
    // and merge-on-threshold compactions.
    for (const std::uint64_t seed : {3u, 17u, 101u}) {
        for (auto& [name, g] : instance_family(seed)) {
            Rng rng(seed * 977 + 13);
            IncrementalCsrView view;
            ASSERT_TRUE(view.refresh(g));
            const std::size_t n = g.num_vertices();
            for (int round = 0; round < 6; ++round) {
                // A burst of random insertions mirrored into the view.
                const std::size_t burst = rng.index(40) + 10;
                for (std::size_t k = 0; k < burst; ++k) {
                    auto u = static_cast<VertexId>(rng.index(n));
                    auto v = static_cast<VertexId>(rng.index(n));
                    if (u == v) v = (v + 1) % static_cast<VertexId>(n);
                    const Weight w = rng.uniform(0.1, 3.0);
                    const EdgeId id = g.add_edge(u, v, w);
                    view.add_edge(u, v, w, id);
                }
                expect_matches_fresh_csr(view, g, name + " round " +
                                                     std::to_string(round));
                // Interleave no-op refreshes: must never rebuild (the
                // mirror is exact) and must never corrupt the layout.
                EXPECT_FALSE(view.refresh(g)) << name;
            }
            // Heavy same-vertex appends force relocations (gap exhaustion)
            // and eventually a compaction.
            const auto hub = static_cast<VertexId>(rng.index(n));
            for (int k = 0; k < 200; ++k) {
                const auto v = static_cast<VertexId>(rng.index(n));
                if (v == hub) continue;
                const Weight w = rng.uniform(0.1, 1.0);
                const EdgeId id = g.add_edge(hub, v, w);
                view.add_edge(hub, v, w, id);
            }
            EXPECT_GT(view.relocations(), 0u) << name;
            expect_matches_fresh_csr(view, g, name + " hub-heavy");
        }
    }
}

TEST(IncrementalCsrTest, CompactionPreservesAdjacency) {
    // Drive the arena into repeated relocations until merge-on-threshold
    // fires, then verify exactness straight after.
    Graph g(16);
    IncrementalCsrView view;
    ASSERT_TRUE(view.refresh(g));
    Rng rng(99);
    bool compacted = false;
    for (int k = 0; k < 3000 && !compacted; ++k) {
        const auto u = static_cast<VertexId>(rng.index(16));
        auto v = static_cast<VertexId>(rng.index(16));
        if (u == v) v = (v + 1) % 16;
        const EdgeId id = g.add_edge(u, v, 1.0 + 0.001 * k);
        view.add_edge(u, v, g.edge(id).weight, id);
        compacted = view.compactions() > 0;
    }
    EXPECT_TRUE(compacted) << "threshold never fired after 3000 insertions";
    expect_matches_fresh_csr(view, g, "post-compaction");
}

TEST(IncrementalCsrTest, DijkstraAgreesWithGraph) {
    Rng rng(11);
    Graph g = erdos_renyi(50, 0.12, {.lo = 0.5, .hi = 3.0}, rng);
    IncrementalCsrView view;
    ASSERT_TRUE(view.refresh(g));
    for (int i = 0; i < 30; ++i) {
        const auto u = static_cast<VertexId>(rng.index(50));
        const auto v = static_cast<VertexId>(rng.index(50));
        if (u == v) continue;
        const EdgeId id = g.add_edge(u, v, rng.uniform(0.1, 1.0));
        view.add_edge(u, v, g.edge(id).weight, id);
    }
    DijkstraWorkspace ws_graph(50);
    DijkstraWorkspace ws_view(50);
    for (VertexId s = 0; s < 10; ++s) {
        for (VertexId t = 10; t < 20; ++t) {
            for (const Weight limit : {2.0, 5.0, kInfiniteWeight}) {
                EXPECT_DOUBLE_EQ(ws_view.distance(view, s, t, limit),
                                 ws_graph.distance(g, s, t, limit))
                    << s << "->" << t << " limit " << limit;
                EXPECT_DOUBLE_EQ(
                    ws_view.distance_bidirectional(view, s, t, limit),
                    ws_graph.distance_bidirectional(g, s, t, limit))
                    << s << "->" << t << " limit " << limit;
            }
        }
    }
}

TEST(IncrementalCsrTest, RebuildsOnShapeMismatch) {
    // Engine reuse across runs: a different (smaller/empty) graph with the
    // same object must trigger a full rebuild, not a stale no-op.
    Rng rng(7);
    Graph g1 = erdos_renyi(30, 0.3, {.lo = 1.0, .hi = 2.0}, rng);
    IncrementalCsrView view;
    ASSERT_TRUE(view.refresh(g1));
    Graph g2(30);  // same n, zero edges
    EXPECT_TRUE(view.refresh(g2));
    expect_matches_fresh_csr(view, g2, "fresh empty run");
    Graph g3(12);  // smaller vertex set
    EXPECT_TRUE(view.refresh(g3));
    EXPECT_EQ(view.num_vertices(), 12u);
}

TEST(IncrementalCsrTest, InsertLogEnumeratesEdgesSinceAnyMark) {
    // The phase-B repair feed: a mark captured at a snapshot boundary must
    // see exactly the edges mirrored after it, oldest first; a full
    // rebuild resets the log. Logging is opt-in -- consumers that never
    // repair must not pay for it.
    Graph g(6);
    g.add_edge(0, 1, 1.0);
    IncrementalCsrView view;
    ASSERT_TRUE(view.refresh(g));
    EXPECT_EQ(view.insert_log_size(), 0u);  // rebuild starts a fresh log

    // Off by default: nothing recorded.
    const EdgeId e0 = g.add_edge(4, 5, 3.0);
    view.add_edge(4, 5, 3.0, e0);
    EXPECT_EQ(view.insert_log_size(), 0u);
    view.set_log_inserts(true);

    const std::size_t mark0 = view.insert_log_size();
    const EdgeId e1 = g.add_edge(1, 2, 2.0);
    view.add_edge(1, 2, 2.0, e1);
    const std::size_t mark1 = view.insert_log_size();
    const EdgeId e2 = g.add_edge(3, 4, 0.5);
    view.add_edge(3, 4, 0.5, e2);

    const auto all = view.inserts_since(mark0);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].u, 1u);
    EXPECT_EQ(all[0].v, 2u);
    EXPECT_DOUBLE_EQ(all[0].weight, 2.0);
    EXPECT_EQ(all[1].u, 3u);
    EXPECT_DOUBLE_EQ(all[1].weight, 0.5);

    const auto tail = view.inserts_since(mark1);
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail[0].v, 4u);

    EXPECT_TRUE(view.inserts_since(view.insert_log_size()).empty());

    // Batch-boundary truncation keeps the log O(accepts per batch).
    view.clear_insert_log();
    EXPECT_EQ(view.insert_log_size(), 0u);
    const EdgeId e3 = g.add_edge(0, 5, 1.5);
    view.add_edge(0, 5, 1.5, e3);
    ASSERT_EQ(view.inserts_since(0).size(), 1u);
    EXPECT_EQ(view.inserts_since(0)[0].v, 5u);

    // A shape mismatch forces a rebuild; the log must not leak across it.
    Graph fresh(6);
    ASSERT_TRUE(view.refresh(fresh));
    EXPECT_EQ(view.insert_log_size(), 0u);
}

TEST(IncrementalCsrTest, RebuildsForDifferentGraphWithEqualCounts) {
    // The stale-mirror trap: a *different* graph whose vertex and edge
    // counts coincide must not be served the old adjacency. The last-edge
    // fingerprint catches it.
    Graph g1(5);
    g1.add_edge(0, 1, 1.0);
    g1.add_edge(2, 3, 2.0);
    IncrementalCsrView view;
    ASSERT_TRUE(view.refresh(g1));
    Graph g2(5);
    g2.add_edge(0, 1, 1.0);
    g2.add_edge(2, 4, 5.0);  // same n, same m, different newest edge
    EXPECT_TRUE(view.refresh(g2));
    expect_matches_fresh_csr(view, g2, "equal-count different graph");
}

}  // namespace
}  // namespace gsp
