// Chunked-vs-materialized bit-identity: a build routed through the
// streaming candidate path (BuildOptions::Chunking::kChunked) must return
// the same edge set and the same decision stats as the materializing path
// (kMaterialize), across every source family {graph, metric, wspd, grid},
// thread counts {1, 2, 4, hardware}, and chunk sizes down to a single
// candidate per pull. Chunk boundaries only ever split weight buckets,
// which the engine's bucketing makes decision preserving -- this suite is
// that claim, property-tested.
#include "api/session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/build_options.hpp"
#include "api/candidate_source.hpp"
#include "api/grid_source.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 4, 0};
const std::size_t kChunkCaps[] = {1, 64, 1 << 16};

/// Decision stats (schedule-independent counters) must match exactly;
/// wall clock and the memory counters legitimately differ between paths.
void expect_decisions_equal(const GreedyStats& a, const GreedyStats& b,
                            const std::string& label) {
    EXPECT_EQ(a.edges_examined, b.edges_examined) << label;
    EXPECT_EQ(a.edges_added, b.edges_added) << label;
    EXPECT_EQ(a.candidates_streamed, b.candidates_streamed) << label;
}

/// Build twice -- materializing reference vs chunked at every chunk cap --
/// and compare edge sets and decision stats.
void check_source(CandidateSource& source, BuildOptions options, const std::string& what) {
    options.chunking = BuildOptions::Chunking::kMaterialize;
    SpannerSession reference_session;
    BuildReport reference_report;
    const Graph reference =
        reference_session.build(source, options, &reference_report);

    for (const std::size_t threads : kThreadCounts) {
        for (const std::size_t cap : kChunkCaps) {
            const std::string label =
                what + " threads=" + std::to_string(threads) + " cap=" + std::to_string(cap);
            BuildOptions chunked = options;
            chunked.chunking = BuildOptions::Chunking::kChunked;
            chunked.engine.num_threads = threads;
            chunked.engine.chunk_soft_cap = cap;
            SpannerSession session;
            BuildReport report;
            const Graph h = session.build(source, chunked, &report);
            EXPECT_TRUE(same_edge_set(h, reference)) << label;
            expect_decisions_equal(report.stats, reference_report.stats, label);
            EXPECT_EQ(report.candidates, reference_report.candidates) << label;
            EXPECT_EQ(report.edges, reference_report.edges) << label;
            EXPECT_EQ(report.weight, reference_report.weight) << label;
        }
    }
}

class ChunkedEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChunkedEquivalenceTest, GraphSourceFallbackChunking) {
    Rng rng(GetParam());
    const Graph g = erdos_renyi(60, 0.25, {.lo = 0.5, .hi = 3.0}, rng);
    GraphCandidateSource source(g);
    ASSERT_EQ(source.chunk_support(), ChunkSupport::kFallback);
    BuildOptions options;
    options.stretch = 1.8;
    check_source(source, options, "graph");
}

TEST_P(ChunkedEquivalenceTest, MetricSourceFallbackChunking) {
    Rng rng(GetParam() ^ 0x9e1);
    const EuclideanMetric pts = uniform_points(42, 2, 50.0, rng);
    MetricCandidateSource source(pts);
    ASSERT_EQ(source.chunk_support(), ChunkSupport::kFallback);
    BuildOptions options;
    options.stretch = 1.4;
    check_source(source, options, "metric");
}

TEST_P(ChunkedEquivalenceTest, WspdSourceStreamsIdentically) {
    Rng rng(GetParam() ^ 0x44f);
    const EuclideanMetric pts = clustered_points(110, 2, 4, 70.0, 1.2, rng);
    WspdCandidateSource source(pts, 9.0);
    ASSERT_EQ(source.chunk_support(), ChunkSupport::kStreaming);
    BuildOptions options;
    options.stretch = 1.5;
    check_source(source, options, "wspd");
}

TEST_P(ChunkedEquivalenceTest, GridSourceStreamsIdentically) {
    Rng rng(GetParam() ^ 0xb33);
    const EuclideanMetric pts = uniform_points(100, 2, 60.0, rng);
    GridCandidateSource source(pts, 8.0);
    ASSERT_EQ(source.chunk_support(), ChunkSupport::kStreaming);
    BuildOptions options;
    options.stretch = 1.6;
    check_source(source, options, "grid");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkedEquivalenceTest, ::testing::Values(2u, 83u, 641u));

TEST(ChunkedEquivalenceTest, StreamedChunksMatchMaterializeForStreamingSources) {
    // The raw chunk sequence (not just the resulting spanner) must be the
    // materialized sequence, for both streaming generators.
    Rng rng(19);
    const EuclideanMetric pts = clustered_points(90, 2, 3, 40.0, 0.8, rng);
    const auto check_sequence = [](CandidateSource& source, const char* what) {
        std::vector<GreedyCandidate> full;
        source.materialize(full);
        for (const std::size_t cap : {std::size_t{1}, std::size_t{17}, std::size_t{4096}}) {
            const auto chunks = source.chunks();
            std::vector<GreedyCandidate> streamed;
            std::vector<GreedyCandidate> buf;
            while (chunks->next_chunk(cap, buf)) {
                streamed.insert(streamed.end(), buf.begin(), buf.end());
                buf.clear();
            }
            ASSERT_EQ(streamed.size(), full.size()) << what << " cap=" << cap;
            for (std::size_t i = 0; i < full.size(); ++i) {
                EXPECT_EQ(streamed[i].u, full[i].u) << what << " cap=" << cap << " " << i;
                EXPECT_EQ(streamed[i].v, full[i].v) << what << " cap=" << cap << " " << i;
                EXPECT_EQ(streamed[i].weight, full[i].weight)
                    << what << " cap=" << cap << " " << i;
            }
        }
    };
    WspdCandidateSource wspd(pts, 8.0);
    GridCandidateSource grid(pts, 8.0);
    check_sequence(wspd, "wspd");
    check_sequence(grid, "grid");
}

TEST(ChunkedEquivalenceTest, AutoChunksExactlyTheStreamingSources) {
    Rng rng(7);
    const EuclideanMetric pts = uniform_points(60, 2, 30.0, rng);
    const Graph g = erdos_renyi(40, 0.3, {.lo = 1.0, .hi = 2.0}, rng);
    BuildOptions options;
    options.stretch = 1.7;
    SpannerSession session;

    // kAuto + streaming source: the buffer peak must stay strictly below
    // the full candidate list (the source really streamed).
    GridCandidateSource grid(pts, 8.0);
    BuildReport report;
    (void)session.build(grid, options, &report);
    ASSERT_GT(report.candidates, 0u);
    EXPECT_LE(report.stats.candidate_buffer_peak_bytes,
              report.candidates * sizeof(GreedyCandidate));

    // kAuto + fallback source: the materializing path reports the full
    // list as its peak.
    GraphCandidateSource graph_source(g);
    (void)session.build(graph_source, options, &report);
    EXPECT_EQ(report.stats.candidate_buffer_peak_bytes,
              report.candidates * sizeof(GreedyCandidate));
}

}  // namespace
}  // namespace gsp
