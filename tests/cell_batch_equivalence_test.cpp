// Cell-batched rejection bit-identity: a grid-streamed build with
// EngineTuning::CellBatching::kOn (one drained ball per cell anchor
// deciding that cell's candidates at once, plus via-landmark coarse
// rejects) must return the same edge set and the same decision stats as
// the per-candidate path (kOff), across {uniform, clustered} point sets,
// thread counts {1, 2, 4, hardware}, and chunking {auto-streamed,
// materialized}. Every shortcut the batched path takes is a sound upper
// or lower bound compared against the same exact threshold, so decisions
// -- not just the spanner -- must be preserved bit for bit.
#include "api/session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "api/build_options.hpp"
#include "api/grid_source.hpp"
#include "gen/points.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 4, 0};
const BuildOptions::Chunking kChunkings[] = {BuildOptions::Chunking::kChunked,
                                             BuildOptions::Chunking::kMaterialize};

const char* chunking_name(BuildOptions::Chunking c) {
    return c == BuildOptions::Chunking::kChunked ? "chunked" : "materialize";
}

/// Schedule-independent decision counters must match exactly between the
/// batched and per-candidate paths; probe-strategy counters (dijkstra
/// runs, cache hits, cell balls) legitimately differ.
void expect_decisions_equal(const GreedyStats& a, const GreedyStats& b,
                            const std::string& label) {
    EXPECT_EQ(a.edges_examined, b.edges_examined) << label;
    EXPECT_EQ(a.edges_added, b.edges_added) << label;
    EXPECT_EQ(a.candidates_streamed, b.candidates_streamed) << label;
}

/// Reference build: per-candidate rejection (kOff), single thread,
/// materialized. Every batched variant must reproduce its decisions.
void check_points(const EuclideanMetric& pts, double separation, const std::string& what) {
    BuildOptions options;
    options.stretch = 2.0;
    options.chunking = BuildOptions::Chunking::kMaterialize;
    options.engine.cell_batching = EngineTuning::CellBatching::kOff;

    GridCandidateSource reference_source(pts, separation);
    SpannerSession reference_session;
    BuildReport reference_report;
    const Graph reference =
        reference_session.build(reference_source, options, &reference_report);

    for (const std::size_t threads : kThreadCounts) {
        for (const BuildOptions::Chunking chunking : kChunkings) {
            const std::string label = what + " threads=" + std::to_string(threads) +
                                      " chunking=" + chunking_name(chunking);
            BuildOptions batched = options;
            batched.chunking = chunking;
            batched.engine.num_threads = threads;
            batched.engine.cell_batching = EngineTuning::CellBatching::kOn;
            GridCandidateSource source(pts, separation);
            SpannerSession session;
            BuildReport report;
            const Graph h = session.build(source, batched, &report);
            EXPECT_TRUE(same_edge_set(h, reference)) << label;
            expect_decisions_equal(report.stats, reference_report.stats, label);
            EXPECT_EQ(report.edges, reference_report.edges) << label;
            EXPECT_EQ(report.weight, reference_report.weight) << label;
        }
    }
}

class CellBatchEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CellBatchEquivalenceTest, UniformPointsDecideIdentically) {
    Rng rng(GetParam());
    const EuclideanMetric pts = uniform_points(320, 2, 180.0, rng);
    check_points(pts, 5.0, "uniform");
}

TEST_P(CellBatchEquivalenceTest, ClusteredPointsDecideIdentically) {
    Rng rng(GetParam() ^ 0x5eed);
    const EuclideanMetric pts = clustered_points(300, 2, 6, 160.0, 1.5, rng);
    check_points(pts, 5.0, "clustered");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellBatchEquivalenceTest,
                         ::testing::Values(11u, 407u, 9001u));

TEST(CellBatchEquivalenceTest, GridSourceDefaultsToCellBatching) {
    // kAuto + grid source flips to kOn via configure_engine: the batched
    // machinery must actually engage (cell balls amortize the rejects)
    // while the decisions match an explicit kOff build.
    Rng rng(77);
    const EuclideanMetric pts = uniform_points(480, 2, 220.0, rng);

    BuildOptions off;
    off.stretch = 2.0;
    off.engine.cell_batching = EngineTuning::CellBatching::kOff;
    GridCandidateSource off_source(pts, 5.0);
    SpannerSession off_session;
    BuildReport off_report;
    const Graph reference = off_session.build(off_source, off, &off_report);
    EXPECT_EQ(off_report.stats.cell_balls, 0u);
    EXPECT_EQ(off_report.stats.cell_ball_decisions, 0u);

    BuildOptions auto_opts;
    auto_opts.stretch = 2.0;
    ASSERT_EQ(auto_opts.engine.cell_batching, EngineTuning::CellBatching::kAuto);
    GridCandidateSource source(pts, 5.0);
    SpannerSession session;
    BuildReport report;
    const Graph h = session.build(source, auto_opts, &report);
    EXPECT_TRUE(same_edge_set(h, reference));
    EXPECT_EQ(report.stats.edges_added, off_report.stats.edges_added);
    EXPECT_GT(report.stats.cell_balls, 0u);
    EXPECT_GE(report.stats.cell_ball_decisions, report.stats.cell_balls);
}

TEST(CellBatchEquivalenceTest, CellCountersAreThreadCountInvariant) {
    // The prefilter's verdict bitset is commutative (relaxed fetch_or) and
    // groups partition the batch deterministically, so the batched
    // counters -- not just the decisions -- are a pure function of the
    // input at every *parallel* worker count. (The serial path probes
    // differently, so thread count 1 is covered by the decision-identity
    // sweeps above, not by counter equality.)
    Rng rng(131);
    const EuclideanMetric pts = uniform_points(360, 2, 200.0, rng);

    BuildOptions options;
    options.stretch = 2.0;
    options.engine.num_threads = 2;
    GridCandidateSource first_source(pts, 5.0);
    SpannerSession first_session;
    BuildReport first;
    const Graph reference = first_session.build(first_source, options, &first);

    for (const std::size_t threads : {std::size_t{3}, std::size_t{4}, std::size_t{8}}) {
        options.engine.num_threads = threads;
        GridCandidateSource source(pts, 5.0);
        SpannerSession session;
        BuildReport report;
        const Graph h = session.build(source, options, &report);
        const std::string label = "threads=" + std::to_string(threads);
        EXPECT_TRUE(same_edge_set(h, reference)) << label;
        EXPECT_EQ(report.stats.cell_balls, first.stats.cell_balls) << label;
        EXPECT_EQ(report.stats.cell_ball_decisions, first.stats.cell_ball_decisions)
            << label;
        EXPECT_EQ(report.stats.coarse_rejects, first.stats.coarse_rejects) << label;
    }
}

}  // namespace
}  // namespace gsp
