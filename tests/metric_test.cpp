#include "metric/metric_space.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/mst.hpp"
#include "graph/shortest_paths.hpp"
#include "metric/euclidean.hpp"
#include "metric/graph_metric.hpp"
#include "metric/matrix_metric.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

EuclideanMetric random_points(std::size_t n, std::size_t dim, Rng& rng) {
    std::vector<double> coords;
    coords.reserve(n * dim);
    for (std::size_t i = 0; i < n * dim; ++i) coords.push_back(rng.uniform(0.0, 100.0));
    return EuclideanMetric(dim, std::move(coords));
}

TEST(EuclideanMetricTest, KnownDistances) {
    const EuclideanMetric m(2, {0.0, 0.0, 3.0, 4.0, 0.0, 1.0});
    EXPECT_EQ(m.size(), 3u);
    EXPECT_DOUBLE_EQ(m.distance(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(m.distance(0, 2), 1.0);
    EXPECT_DOUBLE_EQ(m.distance(1, 2), std::sqrt(9.0 + 9.0));
    EXPECT_DOUBLE_EQ(m.distance(1, 1), 0.0);
    EXPECT_DOUBLE_EQ(m.squared_distance(0, 1), 25.0);
}

TEST(EuclideanMetricTest, PointAccessor) {
    const EuclideanMetric m(3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
    const auto p = m.point(1);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_DOUBLE_EQ(p[0], 4.0);
    EXPECT_THROW((void)m.point(2), std::out_of_range);
}

TEST(EuclideanMetricTest, RejectsBadShapes) {
    EXPECT_THROW(EuclideanMetric(0, {}), std::invalid_argument);
    EXPECT_THROW(EuclideanMetric(2, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(EuclideanMetricTest, Make2dHelper) {
    const std::vector<std::pair<double, double>> pts = {{0, 0}, {1, 0}};
    const EuclideanMetric m = make_euclidean_2d(pts);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_DOUBLE_EQ(m.distance(0, 1), 1.0);
}

TEST(EuclideanMetricTest, SatisfiesMetricAxioms) {
    Rng rng(5);
    const EuclideanMetric m = random_points(25, 3, rng);
    EXPECT_TRUE(check_metric(m).ok());
}

TEST(MatrixMetricTest, AcceptsValidMetric) {
    const MatrixMetric m({{0, 1, 2}, {1, 0, 1.5}, {2, 1.5, 0}});
    EXPECT_EQ(m.size(), 3u);
    EXPECT_DOUBLE_EQ(m.distance(0, 2), 2.0);
    EXPECT_TRUE(check_metric(m).ok());
}

TEST(MatrixMetricTest, RejectsNonSquare) {
    EXPECT_THROW(MatrixMetric({{0, 1}, {1, 0}, {2, 2}}), std::invalid_argument);
}

TEST(MatrixMetricTest, RejectsAsymmetry) {
    EXPECT_THROW(MatrixMetric({{0, 1}, {2, 0}}), std::invalid_argument);
}

TEST(MatrixMetricTest, RejectsNonzeroDiagonal) {
    EXPECT_THROW(MatrixMetric({{1, 1}, {1, 0}}), std::invalid_argument);
}

TEST(MatrixMetricTest, RejectsTriangleViolation) {
    // d(0,2)=10 > d(0,1)+d(1,2)=2.
    EXPECT_THROW(MatrixMetric({{0, 1, 10}, {1, 0, 1}, {10, 1, 0}}), std::invalid_argument);
    // Same matrix passes when triangle validation is off (documented escape
    // hatch for intermediate constructions).
    EXPECT_NO_THROW(MatrixMetric({{0, 1, 10}, {1, 0, 1}, {10, 1, 0}}, false));
}

TEST(CheckMetricTest, FlagsTriangleViolationMagnitude) {
    const MatrixMetric bad({{0, 1, 10}, {1, 0, 1}, {10, 1, 0}}, false);
    const MetricCheck c = check_metric(bad);
    EXPECT_FALSE(c.ok());
    EXPECT_FALSE(c.triangle);
    EXPECT_NEAR(c.worst_violation, 8.0, 1e-12);
}

TEST(GraphMetricTest, MatchesFloydWarshall) {
    Rng rng(13);
    Graph g(12);
    for (VertexId v = 1; v < 12; ++v) {
        g.add_edge(static_cast<VertexId>(rng.index(v)), v, rng.uniform(0.5, 3.0));
    }
    for (int extra = 0; extra < 8; ++extra) {
        const auto u = static_cast<VertexId>(rng.index(12));
        const auto v = static_cast<VertexId>(rng.index(12));
        if (u != v && !g.has_edge(u, v)) g.add_edge(u, v, rng.uniform(0.5, 3.0));
    }
    const GraphMetric m(g);
    const auto fw = floyd_warshall(g);
    for (VertexId i = 0; i < 12; ++i) {
        for (VertexId j = 0; j < 12; ++j) {
            EXPECT_NEAR(m.distance(i, j), fw[i][j], 1e-9);
        }
    }
    EXPECT_TRUE(check_metric(m).ok());
}

TEST(GraphMetricTest, RejectsDisconnected) {
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    EXPECT_THROW(GraphMetric{g}, std::invalid_argument);
}

TEST(CompleteGraphTest, HasAllPairs) {
    const EuclideanMetric m(1, {0.0, 1.0, 3.0});
    const Graph g = complete_graph(m);
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_DOUBLE_EQ(g.total_weight(), 1.0 + 3.0 + 2.0);
}

TEST(MetricMstTest, MatchesKruskalOnCompleteGraph) {
    Rng rng(31);
    const EuclideanMetric m = random_points(40, 2, rng);
    const Weight implicit = metric_mst_weight(m);
    const Weight explicit_w = kruskal_mst(complete_graph(m)).weight;
    EXPECT_NEAR(implicit, explicit_w, 1e-9);
    const auto edges = metric_mst_edges(m);
    EXPECT_EQ(edges.size(), m.size() - 1);
    Weight sum = 0;
    for (const Edge& e : edges) sum += e.weight;
    EXPECT_NEAR(sum, implicit, 1e-9);
}

TEST(MetricExtremaTest, DiameterAndMinDistance) {
    const EuclideanMetric m(1, {0.0, 1.0, 10.0});
    EXPECT_DOUBLE_EQ(metric_diameter(m), 10.0);
    EXPECT_DOUBLE_EQ(metric_min_distance(m), 1.0);
}

}  // namespace
}  // namespace gsp
