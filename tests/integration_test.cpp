// Cross-module integration tests: properties that tie several subsystems
// together, mirroring how the paper's arguments compose.
#include <gtest/gtest.h>

#include "analysis/audit.hpp"
#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/approx_greedy.hpp"
#include "core/greedy.hpp"
#include "core/greedy_metric.hpp"
#include "core/self_optimality.hpp"
#include "exact/optimal_spanner.hpp"
#include "gen/graphs.hpp"
#include "gen/hard_instances.hpp"
#include "gen/incidence.hpp"
#include "gen/named_graphs.hpp"
#include "gen/points.hpp"
#include "graph/girth.hpp"
#include "graph/mst.hpp"
#include "metric/doubling.hpp"
#include "metric/graph_metric.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(IntegrationTest, GreedyOutputIsInsertionOrderInvariant) {
    // Ties are broken by (weight, canonical endpoints), never by edge id,
    // so shuffling the input edge list cannot change the spanner.
    Rng rng(5);
    const Graph g = erdos_renyi(40, 0.3, {.lo = 1.0, .hi = 1.0}, rng);  // all ties!
    std::vector<Edge> edges(g.edges().begin(), g.edges().end());
    Rng shuffle_rng(9);
    shuffle_rng.shuffle(edges);
    const Graph shuffled(g.num_vertices(), edges);
    for (double t : {1.5, 3.0}) {
        EXPECT_TRUE(same_edge_set(greedy_spanner(g, t), greedy_spanner(shuffled, t)))
            << "t=" << t;
    }
}

TEST(IntegrationTest, Observation9DoublingDimensionAtMostDoubles) {
    // The metric induced by a t-spanner (t <= 2) has ddim <= 2 * ddim(M).
    // Executable form with greedy (1.5)-spanners of 2D point sets, using
    // the packing lower bound vs the cover upper bound consistently.
    Rng rng(11);
    const EuclideanMetric pts = uniform_points(80, 2, 50.0, rng);
    const DoublingEstimate base = estimate_doubling(pts);
    const Graph h = greedy_spanner_metric(pts, 1.5);
    const GraphMetric mh(h);
    const DoublingEstimate stretched = estimate_doubling(mh);
    // Compare like-for-like estimates with the observation's factor 2
    // (plus 1 for estimator noise).
    EXPECT_LE(stretched.ddim_upper(), 2.0 * base.ddim_upper() + 1.0);
}

TEST(IntegrationTest, StretchComposesMultiplicatively) {
    // A t2-spanner of (the metric of) a t1-spanner is a t1*t2-spanner of
    // the original -- the "transitivity" §5.1 relies on.
    Rng rng(13);
    const EuclideanMetric pts = uniform_points(70, 2, 50.0, rng);
    const Graph h1 = greedy_spanner_metric(pts, 1.3);
    const GraphMetric m1(h1);
    const Graph h2 = greedy_spanner_metric(m1, 1.4);
    // h2's edges are pairs of M_H1; map them back onto h1 paths? h2 is a
    // graph over the same vertex ids with metric weights, so measuring it
    // against the original metric directly is the composition claim.
    EXPECT_LE(max_stretch_metric(pts, h2), 1.3 * 1.4 + 1e-9);
}

TEST(IntegrationTest, ExactSolverConfirmsGirthRigidity) {
    // PG(2,2) incidence graph: girth 6, so at t = 3 *every* edge is forced
    // and the exact optimum is the graph itself -- instantly, because the
    // branch-and-bound's forced-edge preprocessing proves it.
    const Graph g = projective_plane_incidence(2);
    const auto r = optimal_spanner(g, 3.0);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.spanner.num_edges(), g.num_edges());
    // And the greedy finds the same thing (it IS optimal here).
    EXPECT_EQ(greedy_spanner(g, 3.0).num_edges(), g.num_edges());
}

TEST(IntegrationTest, TreeInputIsItsOwnGreedySpanner) {
    Rng rng(17);
    Graph tree(60);
    for (VertexId v = 1; v < 60; ++v) {
        tree.add_edge(static_cast<VertexId>(rng.index(v)), v, rng.uniform(0.5, 3.0));
    }
    for (double t : {1.0, 2.0, 10.0}) {
        EXPECT_TRUE(same_edge_set(greedy_spanner(tree, t), tree));
        EXPECT_TRUE(removable_edges(tree, t).empty());
    }
}

TEST(IntegrationTest, HugeStretchMetricGreedyIsMetricMst) {
    Rng rng(19);
    const EuclideanMetric pts = uniform_points(50, 2, 20.0, rng);
    const Graph h = greedy_spanner_metric(pts, 1e9);
    EXPECT_EQ(h.num_edges(), pts.size() - 1);
    EXPECT_NEAR(h.total_weight(), metric_mst_weight(pts), 1e-9);
}

TEST(IntegrationTest, SampledStretchIsConsistentWithExact) {
    Rng rng(23);
    const EuclideanMetric pts = uniform_points(60, 2, 50.0, rng);
    const Graph h = greedy_spanner_metric(pts, 1.5);
    const double exact = max_stretch_metric(pts, h);
    const double sampled = max_stretch_metric_sampled(pts, h, 10, 7);
    EXPECT_LE(sampled, exact + 1e-12);        // sampling can only miss the max
    const double full = max_stretch_metric_sampled(pts, h, pts.size(), 7);
    EXPECT_DOUBLE_EQ(full, exact);            // sources >= n falls back to exact
}

TEST(IntegrationTest, ApproxGreedyBucketRatioInsensitivity) {
    // mu only trades oracle rebuilds for query speed; correctness must not
    // depend on it.
    Rng rng(29);
    const EuclideanMetric pts = uniform_points(150, 2, 80.0, rng);
    for (double mu : {1.5, 2.0, 4.0}) {
        SpannerSession session;
        BuildOptions options;
        options.approx.epsilon = 0.5;
        options.engine.bucket_ratio = mu;
        const ApproxGreedyResult r = approx_greedy_build(session, pts, options);
        EXPECT_LE(max_stretch_metric(pts, r.spanner), 1.5 + 1e-9) << "mu=" << mu;
    }
}

TEST(IntegrationTest, GreedySpannerOfDisconnectedMetricCompletionGraph) {
    // A disconnected *graph* whose components are metric completions: the
    // greedy must span each component and the components must stay apart.
    Rng rng(31);
    Graph g(20);
    for (VertexId i = 0; i < 10; ++i) {
        for (VertexId j = i + 1; j < 10; ++j) {
            g.add_edge(i, j, rng.uniform(1.0, 2.0));
            g.add_edge(i + 10, j + 10, rng.uniform(1.0, 2.0));
        }
    }
    const Graph h = greedy_spanner(g, 2.0);
    EXPECT_LE(max_stretch_over_edges(g, h), 2.0 + 1e-9);
    for (const Edge& e : h.edges()) {
        EXPECT_EQ(e.u < 10, e.v < 10) << "edge crosses components";
    }
}

TEST(IntegrationTest, Figure1GreedyIsLemma3Fixpoint) {
    // The Figure-1 greedy spanner -- despite being 1.67x larger than the
    // optimum -- is itself un-improvable, which is the paper's whole point.
    const auto inst = figure1_instance(petersen_graph(), 0.1);
    const Graph h = greedy_spanner(inst.graph, 3.0);
    EXPECT_TRUE(greedy_is_fixpoint(inst.graph, 3.0));
    EXPECT_TRUE(removable_edges(h, 3.0).empty());
    EXPECT_TRUE(contains_kruskal_mst(inst.graph, h));
}

}  // namespace
}  // namespace gsp
