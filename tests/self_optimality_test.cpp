// Tests for the executable proof machinery of Sections 3-4:
// Lemma 3 (fixpoint + criticality), Observation 2/6, Lemma 7/8 transfer,
// Observation 12.
#include "core/self_optimality.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/greedy.hpp"
#include "core/greedy_metric.hpp"
#include "graph/graph.hpp"
#include "graph/mst.hpp"
#include "metric/euclidean.hpp"
#include "metric/graph_metric.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

Graph random_connected_graph(std::size_t n, double extra_p, Rng& rng) {
    Graph g(n);
    for (VertexId v = 1; v < n; ++v) {
        g.add_edge(static_cast<VertexId>(rng.index(v)), v, rng.uniform(0.1, 10.0));
    }
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            if (!g.has_edge(i, j) && rng.chance(extra_p)) {
                g.add_edge(i, j, rng.uniform(0.1, 10.0));
            }
        }
    }
    return g;
}

EuclideanMetric random_points(std::size_t n, Rng& rng) {
    std::vector<double> coords;
    for (std::size_t i = 0; i < 2 * n; ++i) coords.push_back(rng.uniform(0.0, 10.0));
    return EuclideanMetric(2, std::move(coords));
}

// --- Lemma 3: fixpoint form -------------------------------------------------

class FixpointTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(FixpointTest, GreedyOfGreedyIsGreedy) {
    const auto [seed, n, t] = GetParam();
    Rng rng(seed);
    const Graph g = random_connected_graph(n, 0.3, rng);
    EXPECT_TRUE(greedy_is_fixpoint(g, t));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, FixpointTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                                            ::testing::Values(20u, 40u),
                                            ::testing::Values(1.2, 2.0, 3.0, 7.0)));

// --- Lemma 3: criticality form ----------------------------------------------

class CriticalityTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(CriticalityTest, GreedySpannerHasNoRemovableEdge) {
    const auto [seed, t] = GetParam();
    Rng rng(seed);
    const Graph g = random_connected_graph(35, 0.4, rng);
    const Graph h = greedy_spanner(g, t);
    EXPECT_TRUE(removable_edges(h, t).empty());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CriticalityTest,
                         ::testing::Combine(::testing::Values(11u, 12u, 13u),
                                            ::testing::Values(1.5, 2.0, 4.0)));

TEST(CriticalityTest, NonGreedySpannerHasRemovableEdges) {
    // The complete unit-weight K4 is a valid 2-spanner of itself but is far
    // from greedy: every edge has a 2-hop witness of weight 2 <= 2*1.
    Graph k4(4);
    for (VertexId i = 0; i < 4; ++i) {
        for (VertexId j = i + 1; j < 4; ++j) k4.add_edge(i, j, 1.0);
    }
    EXPECT_EQ(removable_edges(k4, 2.0).size(), 6u);
    // At t = 1.5 no edge is removable (witness paths have weight 2 > 1.5).
    EXPECT_TRUE(removable_edges(k4, 1.5).empty());
}

// --- Observation 2 ------------------------------------------------------------

TEST(MstContainmentTest, GreedyContainsKruskalMstOnTies) {
    // All weights equal: ties must be broken identically by Kruskal and the
    // greedy loop for Observation 2 to hold *exactly*.
    Graph g(5);
    for (VertexId i = 0; i < 5; ++i) {
        for (VertexId j = i + 1; j < 5; ++j) g.add_edge(i, j, 1.0);
    }
    const Graph h = greedy_spanner(g, 3.0);
    EXPECT_TRUE(contains_kruskal_mst(g, h));
}

TEST(MstContainmentTest, DetectsMissingMstEdge) {
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    Graph h(3);
    h.add_edge(0, 1, 1.0);  // missing the (1,2) MST edge
    EXPECT_FALSE(contains_kruskal_mst(g, h));
}

// --- Lemma 7 / Lemma 8 transfer ----------------------------------------------

class TransferTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(TransferTest, SpannersOfInducedMetricAreNoBetter) {
    const auto [seed, n, t] = GetParam();
    Rng rng(seed);
    const EuclideanMetric m = random_points(n, rng);
    const Graph h = greedy_spanner_metric(m, t);
    const TransferGap gap = transfer_gaps(h, t);
    // Lemma 7: any t-spanner of M_H weighs at least w(H).
    EXPECT_GE(gap.weight_gap, -1e-9);
    // Lemma 8 (t < 2): any t-spanner of M_H has at least |H| edges.
    if (t < 2.0) {
        EXPECT_GE(gap.size_gap, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPointSets, TransferTest,
                         ::testing::Combine(::testing::Values(7u, 8u, 9u),
                                            ::testing::Values(12u, 25u),
                                            ::testing::Values(1.1, 1.5, 1.9)));

// --- Observation 12 -----------------------------------------------------------

TEST(MstInflationTest, SpannerMstWeightWithinStretchFactor) {
    Rng rng(77);
    const Graph g = random_connected_graph(30, 0.35, rng);
    for (double t : {1.25, 2.0, 3.0}) {
        const Graph h = greedy_spanner(g, t);
        // H is a t-spanner of G: its MST cannot be heavier than t * MST(G)...
        EXPECT_LE(mst_inflation(g, h), t + 1e-9);
        // ...and by Observation 2 they are in fact *equal*.
        EXPECT_NEAR(mst_inflation(g, h), 1.0, 1e-12);
    }
}

TEST(MetricMstGapTest, ZeroForGreedySpanners) {
    Rng rng(31);
    const EuclideanMetric m = random_points(30, rng);
    const Graph h = greedy_spanner_metric(m, 1.3);
    EXPECT_NEAR(metric_mst_gap(m, h), 0.0, 1e-9);
}

// --- The paper's Figure-1 moral, in miniature --------------------------------

TEST(ExistentialVsInstanceTest, GreedyCanExceedInstanceOptimum) {
    // 5-cycle with unit weights (girth 5 > t + 1 = 4, so the whole cycle
    // survives greedy at t = 3) plus a chord of weight 1+eps. The greedy
    // keeps all 5 cycle edges and rejects the chord, even though spanners
    // using the chord could be lighter for *this* instance. This is the
    // mechanism of the paper's Figure 1: greedy is not instance-optimal,
    // only existentially optimal.
    Graph g(5);
    for (VertexId i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5, 1.0);
    g.add_edge(0, 2, 1.1);
    const Graph h = greedy_spanner(g, 3.0);
    // Each unit edge: alternative path weight 4 > 3. Chord: path 0-1-2 of
    // weight 2 <= 3 * 1.1 -> rejected.
    EXPECT_EQ(h.num_edges(), 5u);
    EXPECT_FALSE(h.has_edge(0, 2));
    // Yet h is itself un-improvable (Lemma 3): no removable edges at t = 3.
    EXPECT_TRUE(removable_edges(h, 3.0).empty());
}

}  // namespace
}  // namespace gsp
