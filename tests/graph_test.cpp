#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/types.hpp"

namespace gsp {
namespace {

TEST(GraphTest, EmptyGraph) {
    Graph g;
    EXPECT_EQ(g.num_vertices(), 0u);
    EXPECT_EQ(g.num_edges(), 0u);
    EXPECT_TRUE(g.empty());
    EXPECT_EQ(g.max_degree(), 0u);
    EXPECT_EQ(g.total_weight(), 0.0);
}

TEST(GraphTest, AddEdgeBasics) {
    Graph g(4);
    const EdgeId e0 = g.add_edge(0, 1, 2.5);
    const EdgeId e1 = g.add_edge(1, 2, 1.0);
    EXPECT_EQ(e0, 0u);
    EXPECT_EQ(e1, 1u);
    EXPECT_EQ(g.num_edges(), 2u);
    EXPECT_DOUBLE_EQ(g.total_weight(), 3.5);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_TRUE(g.has_edge(2, 1));
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_EQ(g.degree(1), 2u);
    EXPECT_EQ(g.degree(3), 0u);
    EXPECT_EQ(g.max_degree(), 2u);
}

TEST(GraphTest, AdjacencyMirrorsEdges) {
    Graph g(3);
    g.add_edge(0, 2, 4.0);
    ASSERT_EQ(g.neighbors(0).size(), 1u);
    ASSERT_EQ(g.neighbors(2).size(), 1u);
    EXPECT_EQ(g.neighbors(0)[0].to, 2u);
    EXPECT_EQ(g.neighbors(0)[0].weight, 4.0);
    EXPECT_EQ(g.neighbors(0)[0].edge, 0u);
    EXPECT_EQ(g.neighbors(2)[0].to, 0u);
}

TEST(GraphTest, RejectsSelfLoop) {
    Graph g(3);
    EXPECT_THROW(g.add_edge(1, 1, 1.0), std::invalid_argument);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
    Graph g(3);
    EXPECT_THROW(g.add_edge(0, 3, 1.0), std::out_of_range);
    EXPECT_THROW(g.add_edge(7, 0, 1.0), std::out_of_range);
}

TEST(GraphTest, RejectsBadWeights) {
    Graph g(3);
    EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
    EXPECT_THROW(g.add_edge(0, 1, -2.0), std::invalid_argument);
    EXPECT_THROW(g.add_edge(0, 1, std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
    EXPECT_THROW(g.add_edge(0, 1, std::numeric_limits<double>::quiet_NaN()),
                 std::invalid_argument);
}

TEST(GraphTest, AddEdgeUniqueRejectsDuplicates) {
    Graph g(3);
    g.add_edge_unique(0, 1, 1.0);
    EXPECT_THROW(g.add_edge_unique(1, 0, 2.0), std::invalid_argument);
    // Plain add_edge allows parallels (some constructions need them).
    EXPECT_NO_THROW(g.add_edge(1, 0, 2.0));
    EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphTest, ConstructFromEdgeList) {
    const std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}};
    Graph g(4, edges);
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
}

TEST(GraphTest, EdgeSubgraph) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(2, 3, 3.0);
    const std::vector<EdgeId> keep = {0, 2};
    const Graph sub = g.edge_subgraph(keep);
    EXPECT_EQ(sub.num_vertices(), 4u);
    EXPECT_EQ(sub.num_edges(), 2u);
    EXPECT_TRUE(sub.has_edge(0, 1));
    EXPECT_FALSE(sub.has_edge(1, 2));
    EXPECT_TRUE(sub.has_edge(2, 3));
}

TEST(GraphTest, SameEdgeSetIsOrderInsensitive) {
    Graph a(3);
    a.add_edge(0, 1, 1.0);
    a.add_edge(1, 2, 2.0);
    Graph b(3);
    b.add_edge(2, 1, 2.0);  // reversed orientation, different insertion order
    b.add_edge(1, 0, 1.0);
    EXPECT_TRUE(same_edge_set(a, b));
}

TEST(GraphTest, SameEdgeSetDetectsWeightDifference) {
    Graph a(2);
    a.add_edge(0, 1, 1.0);
    Graph b(2);
    b.add_edge(0, 1, 1.5);
    EXPECT_FALSE(same_edge_set(a, b));
}

TEST(GraphTest, SameEdgeSetDetectsSizeMismatch) {
    Graph a(2);
    a.add_edge(0, 1, 1.0);
    Graph b(3);
    b.add_edge(0, 1, 1.0);
    EXPECT_FALSE(same_edge_set(a, b));  // vertex counts differ
}

TEST(GraphTest, SummaryMentionsCounts) {
    Graph g(2);
    g.add_edge(0, 1, 1.0);
    const std::string s = g.summary();
    EXPECT_NE(s.find("n=2"), std::string::npos);
    EXPECT_NE(s.find("m=1"), std::string::npos);
}

}  // namespace
}  // namespace gsp
