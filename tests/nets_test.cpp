#include "nets/net_hierarchy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/points.hpp"
#include "metric/matrix_metric.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

MatrixMetric as_matrix(const EuclideanMetric& e) {
    const std::size_t n = e.size();
    std::vector<std::vector<Weight>> d(n, std::vector<Weight>(n, 0.0));
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = 0; j < n; ++j) d[i][j] = e.distance(i, j);
    }
    return MatrixMetric(std::move(d), /*validate_triangle=*/false);
}

TEST(MinDistanceTest, MatchesBruteForce) {
    Rng rng(3);
    const EuclideanMetric pts = uniform_points(200, 2, 10.0, rng);
    Weight brute = kInfiniteWeight;
    for (VertexId i = 0; i < pts.size(); ++i) {
        for (VertexId j = i + 1; j < pts.size(); ++j) {
            brute = std::min(brute, pts.distance(i, j));
        }
    }
    EXPECT_NEAR(min_interpoint_distance(pts), brute, 1e-12);
}

TEST(MinDistanceTest, GenericMetricPath) {
    const MatrixMetric m({{0, 3, 5}, {3, 0, 4}, {5, 4, 0}});
    EXPECT_DOUBLE_EQ(min_interpoint_distance(m), 3.0);
}

TEST(MinDistanceTest, RequiresTwoPoints) {
    const EuclideanMetric one(1, {0.0});
    EXPECT_THROW(min_interpoint_distance(one), std::invalid_argument);
}

TEST(NetHierarchyTest, InvariantsOnUniformPoints) {
    Rng rng(7);
    const EuclideanMetric pts = uniform_points(300, 2, 100.0, rng);
    const NetHierarchy nets(pts);
    EXPECT_TRUE(nets.check_invariants());
    EXPECT_EQ(nets.level(0).size(), pts.size());
    EXPECT_EQ(nets.level(nets.num_levels() - 1).size(), 1u);
    // Scales double.
    for (std::size_t l = 1; l < nets.num_levels(); ++l) {
        EXPECT_DOUBLE_EQ(nets.scale(l), 2.0 * nets.scale(l - 1));
    }
    // Level sizes never grow.
    for (std::size_t l = 1; l < nets.num_levels(); ++l) {
        EXPECT_LE(nets.level(l).size(), nets.level(l - 1).size());
    }
}

TEST(NetHierarchyTest, GridAndGenericPathsAgree) {
    Rng rng(11);
    const EuclideanMetric pts = uniform_points(120, 2, 50.0, rng);
    const MatrixMetric mirror = as_matrix(pts);
    const NetHierarchy grid_nets(pts);
    const NetHierarchy generic_nets(mirror);
    ASSERT_EQ(grid_nets.num_levels(), generic_nets.num_levels());
    for (std::size_t l = 0; l < grid_nets.num_levels(); ++l) {
        EXPECT_EQ(grid_nets.level(l), generic_nets.level(l)) << "level " << l;
    }
}

TEST(NetHierarchyTest, ParentsAndChildrenAreConsistent) {
    Rng rng(13);
    const EuclideanMetric pts = uniform_points(150, 2, 50.0, rng);
    const NetHierarchy nets(pts);
    for (std::size_t l = 0; l + 1 < nets.num_levels(); ++l) {
        for (VertexId p : nets.level(l)) {
            const VertexId par = nets.parent(l, p);
            const auto& kids = nets.children(l, par);
            EXPECT_NE(std::find(kids.begin(), kids.end(), p), kids.end());
        }
    }
    // Non-members have no parent.
    const std::size_t top = nets.num_levels() - 1;
    if (top >= 1) {
        // Some point is absent from level 1 in a 150-point set.
        VertexId missing = kNoVertex;
        for (VertexId p : nets.level(0)) {
            if (!nets.is_member(1, p)) {
                missing = p;
                break;
            }
        }
        if (missing != kNoVertex && top >= 2) {
            EXPECT_THROW((void)nets.parent(1, missing), std::invalid_argument);
        }
    }
}

TEST(NetHierarchyTest, NearPairEnumerationMatchesBruteForce) {
    Rng rng(17);
    const EuclideanMetric pts = uniform_points(100, 2, 30.0, rng);
    const NetHierarchy nets(pts);
    const std::size_t l = std::min<std::size_t>(2, nets.num_levels() - 1);
    const double radius = 3.0 * nets.scale(l);
    std::set<std::pair<VertexId, VertexId>> enumerated;
    nets.for_each_near_pair(l, radius, [&](VertexId a, VertexId b, double d) {
        EXPECT_LE(d, radius + 1e-12);
        EXPECT_NEAR(d, pts.distance(a, b), 1e-12);
        const bool inserted = enumerated.insert({a, b}).second;
        EXPECT_TRUE(inserted) << "duplicate pair";
    });
    const auto& members = nets.level(l);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
            if (pts.distance(members[i], members[j]) <= radius) ++expected;
        }
    }
    EXPECT_EQ(enumerated.size(), expected);
}

TEST(NetHierarchyTest, HugeAspectRatioStaysShallow) {
    // Exponentially spread points: the hierarchy must have ~log(aspect)
    // levels, not choke.
    const EuclideanMetric pts = exponential_spiral(60, 1.6);
    const NetHierarchy nets(pts);
    EXPECT_TRUE(nets.check_invariants());
    EXPECT_LT(nets.num_levels(), 120u);
}

TEST(NetHierarchyTest, RejectsDegenerateInputs) {
    const EuclideanMetric empty(2, {});
    EXPECT_THROW(NetHierarchy{empty}, std::invalid_argument);
    const EuclideanMetric dup(2, {1.0, 1.0, 1.0, 1.0});
    EXPECT_THROW(NetHierarchy{dup}, std::invalid_argument);
}

TEST(NetHierarchyTest, SinglePointHierarchy) {
    const EuclideanMetric one(2, {5.0, 5.0});
    const NetHierarchy nets(one);
    EXPECT_EQ(nets.num_levels(), 1u);
    EXPECT_EQ(nets.level(0).size(), 1u);
}

}  // namespace
}  // namespace gsp
