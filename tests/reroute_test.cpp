// Tests for the §5-Remark combination transform (light spanner rerouted
// through a bounded-degree spanner).
#include "spanners/reroute.hpp"

#include <gtest/gtest.h>

#include "analysis/audit.hpp"
#include "core/greedy_metric.hpp"
#include "gen/hard_instances.hpp"
#include "gen/points.hpp"
#include "spanners/net_spanner.hpp"
#include "spanners/theta_graph.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(RerouteTest, ResultIsSubgraphOfH2) {
    Rng rng(3);
    const EuclideanMetric pts = uniform_points(100, 2, 50.0, rng);
    const Graph h1 = greedy_spanner_metric(pts, 1.5);  // light
    const Graph h2 = theta_graph(pts, 12);             // bounded out-degree
    const Graph h = reroute_through(h1, h2);
    EXPECT_LE(h.num_edges(), h2.num_edges());
    for (const Edge& e : h.edges()) {
        EXPECT_TRUE(h2.has_edge(e.u, e.v));
    }
    EXPECT_LE(h.max_degree(), h2.max_degree());
}

TEST(RerouteTest, StretchComposes) {
    Rng rng(7);
    const EuclideanMetric pts = uniform_points(80, 2, 50.0, rng);
    const double t1 = 1.5;
    const Graph h1 = greedy_spanner_metric(pts, t1);
    const Graph h2 = theta_graph(pts, 16);
    const double t2 = max_stretch_metric(pts, h2);
    const Graph h = reroute_through(h1, h2);
    EXPECT_LE(max_stretch_metric(pts, h), t1 * t2 + 1e-9);
}

TEST(RerouteTest, TamesGreedyHubOnStarMetric) {
    // The Remark's use case: H1 light but high degree (the greedy on the
    // star metric has hub degree n-1); H2 bounded degree. The reroute must
    // keep H2's degree while staying reasonably light.
    const std::size_t n = 96;
    const MatrixMetric star = geometric_star_metric(n, 1.7);
    const Graph h1 = greedy_spanner_metric(star, 1.5);
    ASSERT_EQ(h1.max_degree(), n - 1);
    const Graph h2 = net_spanner(star, NetSpannerOptions{.epsilon = 0.5, .degree_cap = 12});
    const Graph h = reroute_through(h1, h2);
    EXPECT_LE(h.max_degree(), h2.max_degree());
    EXPECT_LT(h.max_degree(), n / 3);
    // Weight within (1 + eps) * t1-ish of the light spanner.
    EXPECT_LE(h.total_weight(), 1.5 * 1.5 * h1.total_weight() + 1e-9);
}

TEST(RerouteTest, IdentityWhenH1SubgraphOfH2) {
    // Rerouting H2 through itself keeps exactly the union of shortest-path
    // trees' used edges -- for H1 == H2 every H1 edge is its own shortest
    // path (edges are metric distances), so nothing is lost.
    Rng rng(11);
    const EuclideanMetric pts = uniform_points(50, 2, 30.0, rng);
    const Graph h2 = greedy_spanner_metric(pts, 1.3);
    const Graph h = reroute_through(h2, h2);
    EXPECT_TRUE(same_edge_set(h, h2));
}

TEST(RerouteTest, Validation) {
    Graph a(3);
    a.add_edge(0, 1, 1.0);
    Graph b(4);
    EXPECT_THROW(reroute_through(a, b), std::invalid_argument);
    Graph disconnected(3);
    disconnected.add_edge(1, 2, 1.0);
    EXPECT_THROW(reroute_through(a, disconnected), std::invalid_argument);
}

}  // namespace
}  // namespace gsp
