// The grid-pruned candidate source (geom/uniform_grid + api/grid_source):
//
//  * the window sweep emits candidates in non-decreasing weight order,
//    duplicate-free, matching materialize() chunk by chunk;
//  * near pairs are enumerated *exactly*: the emitted candidates below
//    the near cutoff are precisely the brute-force pairs closer than the
//    cutoff;
//  * every pair of the metric is covered (its covering_candidate -- the
//    pair itself when near, the assigned level's representative pair
//    otherwise -- appears in the stream), the structural fact behind the
//    dumbbell stretch bound;
//  * a greedy build over the source audits within
//    wspd_greedy_stretch_bound(t, s) of the full metric;
//  * the registry entry wires it all up ("greedy-grid").
#include "api/grid_source.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "analysis/audit.hpp"
#include "api/registry.hpp"
#include "api/session.hpp"
#include "gen/points.hpp"
#include "geom/uniform_grid.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

std::vector<GreedyCandidate> drain(GridChunkSource& source, std::size_t soft_cap) {
    std::vector<GreedyCandidate> all;
    std::vector<GreedyCandidate> chunk;
    while (source.next_chunk(soft_cap, chunk)) {
        EXPECT_FALSE(chunk.empty()) << "true return must mean appended candidates";
        all.insert(all.end(), chunk.begin(), chunk.end());
        chunk.clear();
    }
    return all;
}

using Triple = std::tuple<double, VertexId, VertexId>;

std::set<Triple> as_set(const std::vector<GreedyCandidate>& cands) {
    std::set<Triple> out;
    for (const GreedyCandidate& c : cands) out.insert({c.weight, c.u, c.v});
    return out;
}

class GridSourceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridSourceTest, EmissionIsSortedDeduplicatedAndChunkInvariant) {
    Rng rng(GetParam());
    const EuclideanMetric pts = clustered_points(140, 2, 5, 80.0, 1.5, rng);
    GridCandidateSource source(pts, 9.0);

    std::vector<GreedyCandidate> full;
    source.materialize(full);
    ASSERT_FALSE(full.empty());
    for (std::size_t i = 1; i < full.size(); ++i) {
        EXPECT_GE(full[i].weight, full[i - 1].weight) << "at " << i;
        if (full[i].weight == full[i - 1].weight) {
            EXPECT_NE(std::tie(full[i].u, full[i].v),
                      std::tie(full[i - 1].u, full[i - 1].v))
                << "duplicate candidate at " << i;
        }
        EXPECT_LT(full[i].u, full[i].v) << "canonical endpoint order at " << i;
    }

    // The chunked stream is the same sequence at every soft cap.
    for (const std::size_t cap : {std::size_t{1}, std::size_t{7}, std::size_t{1000}}) {
        GridChunkSource chunks(source.grid());
        const std::vector<GreedyCandidate> streamed = drain(chunks, cap);
        ASSERT_EQ(streamed.size(), full.size()) << "soft_cap=" << cap;
        for (std::size_t i = 0; i < full.size(); ++i) {
            EXPECT_EQ(streamed[i].u, full[i].u) << "soft_cap=" << cap << " at " << i;
            EXPECT_EQ(streamed[i].v, full[i].v) << "soft_cap=" << cap << " at " << i;
            EXPECT_EQ(streamed[i].weight, full[i].weight)
                << "soft_cap=" << cap << " at " << i;
        }
    }
}

TEST_P(GridSourceTest, NearPairsAreExactAndEveryPairIsCovered) {
    Rng rng(GetParam() ^ 0x5a5a);
    const EuclideanMetric pts = uniform_points(120, 2, 50.0, rng);
    GridCandidateSource source(pts, 8.0);
    std::vector<GreedyCandidate> full;
    source.materialize(full);
    const std::set<Triple> emitted = as_set(full);
    const double cutoff = source.grid().near_cutoff();

    // Exact near enumeration: emitted-below-cutoff == brute force. (A
    // representative pair under the cutoff is itself a near pair, so the
    // ring emissions add nothing below it.)
    std::set<Triple> brute;
    for (VertexId i = 0; i < pts.size(); ++i) {
        for (VertexId j = i + 1; j < pts.size(); ++j) {
            const double d = pts.distance(i, j);
            if (d < cutoff) brute.insert({d, i, j});
        }
    }
    std::set<Triple> emitted_near;
    for (const Triple& t : emitted) {
        if (std::get<0>(t) < cutoff) emitted_near.insert(t);
    }
    EXPECT_EQ(emitted_near, brute);

    // Full coverage: the covering candidate of every pair is in the stream.
    for (VertexId i = 0; i < pts.size(); ++i) {
        for (VertexId j = i + 1; j < pts.size(); ++j) {
            const GreedyCandidate c = source.grid().covering_candidate(i, j);
            EXPECT_TRUE(emitted.count({c.weight, c.u, c.v}))
                << "pair (" << i << ", " << j << ") uncovered";
        }
    }
}

TEST_P(GridSourceTest, GreedyBuildAuditsWithinTheDumbbellBound) {
    Rng rng(GetParam() ^ 0x33cc);
    const EuclideanMetric pts = clustered_points(90, 2, 4, 60.0, 1.0, rng);
    const double t = 1.5;
    const double s = 10.0;
    GridCandidateSource source(pts, s);
    SpannerSession session;
    BuildOptions options;
    options.stretch = t;
    BuildReport report;
    const Graph h = session.build(source, options, &report);
    EXPECT_EQ(report.stretch_target, wspd_greedy_stretch_bound(t, s));
    EXPECT_LE(max_stretch_metric(pts, h), wspd_greedy_stretch_bound(t, s) + 1e-9);
    EXPECT_GT(report.candidates, 0u);
    EXPECT_EQ(report.candidates, report.stats.candidates_streamed);
    // The streaming path really streamed: the peak resident chunk stayed
    // under the full candidate list.
    EXPECT_LE(report.stats.candidate_buffer_peak_bytes,
              report.candidates * sizeof(GreedyCandidate));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridSourceTest, ::testing::Values(5u, 67u, 491u));

TEST(GridSourceTest, RegistryEntryBuildsAndValidates) {
    Rng rng(11);
    const EuclideanMetric pts = uniform_points(100, 2, 40.0, rng);
    SpannerSession session;
    BuildOptions options;
    options.stretch = 2.0;
    options.geometric.wspd_separation = 8.0;
    BuildReport report;
    const Graph h = AlgorithmRegistry::global().build("greedy-grid", session,
                                                      BuildInput::of(pts), options);
    EXPECT_GT(h.num_edges(), 0u);
    EXPECT_GE(h.num_edges(), pts.size() - 1);  // spans the point set
    const AlgorithmInfo* info = AlgorithmRegistry::global().find("greedy-grid");
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->input, InputKind::kEuclidean2D);
    EXPECT_TRUE(info->uses_engine);
}

TEST(GridSourceTest, RejectsBadSeparationAndNon2D) {
    Rng rng(29);
    const EuclideanMetric pts2 = uniform_points(10, 2, 5.0, rng);
    const EuclideanMetric pts3 = uniform_points(10, 3, 5.0, rng);
    EXPECT_THROW(GridCandidateSource(pts2, 4.0), std::invalid_argument);
    EXPECT_THROW(GridCandidateSource(pts2, -1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(GridCandidateSource(pts3, 8.0), std::invalid_argument);
    // Epsilon-derived separation (4 + 8/eps) is always in the finite regime.
    GridCandidateSource derived(pts2, 0.0, 0.5);
    EXPECT_DOUBLE_EQ(derived.separation(), 20.0);
}

TEST(GridSourceTest, DegenerateInputs) {
    // Empty and singleton point sets produce empty candidate streams;
    // duplicate points produce zero-weight candidates that still obey the
    // ordering contract.
    const std::vector<std::pair<double, double>> no_pts;
    const EuclideanMetric empty = make_euclidean_2d(no_pts);
    GridCandidateSource empty_source(empty, 8.0);
    std::vector<GreedyCandidate> cands;
    empty_source.materialize(cands);
    EXPECT_TRUE(cands.empty());

    const std::vector<std::pair<double, double>> dupe_pts = {
        {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {4.0, 5.0}};
    const EuclideanMetric dupes = make_euclidean_2d(dupe_pts);
    GridCandidateSource dupe_source(dupes, 8.0);
    cands.clear();
    dupe_source.materialize(cands);
    std::set<Triple> emitted = as_set(cands);
    for (VertexId i = 0; i < 4; ++i) {
        for (VertexId j = i + 1; j < 4; ++j) {
            const GreedyCandidate c = dupe_source.grid().covering_candidate(i, j);
            EXPECT_TRUE(emitted.count({c.weight, c.u, c.v}));
        }
    }
    EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end(),
                               [](const GreedyCandidate& a, const GreedyCandidate& b) {
                                   return a.weight < b.weight;
                               }));
}

}  // namespace
}  // namespace gsp
