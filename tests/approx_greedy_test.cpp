// Tests for Algorithm Approximate-Greedy (paper §5).
#include "core/approx_greedy.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/audit.hpp"
#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/greedy_metric.hpp"
#include "core/self_optimality.hpp"
#include "gen/hard_instances.hpp"
#include "gen/points.hpp"
#include "graph/traversal.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

/// Configured approximate-greedy through the unified API (one-shot
/// session).
ApproxGreedyResult approx_with(const MetricSpace& m, const ApproxParams& params,
                               std::size_t threads = 1, double bucket_ratio = 2.0) {
    SpannerSession session;
    BuildOptions options;
    options.approx = params;
    options.engine.num_threads = threads;
    options.engine.bucket_ratio = bucket_ratio;
    return approx_greedy_build(session, m, options);
}

class ApproxGreedyStretchTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(ApproxGreedyStretchTest, OverallStretchWithinOnePlusEps) {
    const auto [seed, n, eps] = GetParam();
    Rng rng(seed);
    const EuclideanMetric pts = uniform_points(n, 2, 100.0, rng);
    const ApproxGreedyResult r = approx_greedy_spanner(pts, eps);
    EXPECT_TRUE(is_connected(r.spanner));
    EXPECT_LE(max_stretch_metric(pts, r.spanner), 1.0 + eps + 1e-9);
    // The base's own budget must hold too.
    EXPECT_LE(max_stretch_metric(pts, r.base), r.t_base + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(UniformPoints, ApproxGreedyStretchTest,
                         ::testing::Combine(::testing::Values(2u, 31u),
                                            ::testing::Values(80u, 250u),
                                            ::testing::Values(0.3, 0.5, 1.0)));

TEST(ApproxGreedyTest, OracleOnAndOffProduceIdenticalSpanners) {
    // The cluster oracle only rejects edges whose witness path it has
    // actually exhibited, so it cannot change any decision -- the outputs
    // must be bit-identical, not merely equivalent.
    Rng rng(5);
    const EuclideanMetric pts = uniform_points(300, 2, 100.0, rng);
    const ApproxGreedyResult a =
        approx_with(pts, ApproxParams{.epsilon = 0.5, .use_cluster_oracle = true});
    const ApproxGreedyResult b =
        approx_with(pts, ApproxParams{.epsilon = 0.5, .use_cluster_oracle = false});
    EXPECT_TRUE(same_edge_set(a.spanner, b.spanner));
    EXPECT_GT(a.oracle_rejects, 0u);
    EXPECT_EQ(b.oracle_rejects, 0u);
    EXPECT_LT(a.exact_queries, b.exact_queries);
}

TEST(ApproxGreedyTest, ParallelPipelineMatchesSerialWithAndWithoutOracle) {
    // The engine's parallel prefilter stage (with the concurrent cluster
    // oracle, one QueryScratch per worker) must leave the simulation
    // bit-identical to the serial run.
    Rng rng(23);
    const EuclideanMetric pts = uniform_points(250, 2, 100.0, rng);
    const ApproxGreedyResult serial = approx_with(pts, ApproxParams{.epsilon = 0.5});
    for (const bool oracle : {false, true}) {
        for (const std::size_t threads : {2u, 4u}) {
            const ApproxGreedyResult par = approx_with(
                pts, ApproxParams{.epsilon = 0.5, .use_cluster_oracle = oracle},
                threads);
            EXPECT_TRUE(same_edge_set(par.spanner, serial.spanner))
                << "threads=" << threads << " oracle=" << oracle;
        }
    }
}

TEST(ApproxGreedyTest, Lemma11GapHoldsForNonLightEdges) {
    // Every kept edge outside E0 must have its second-shortest path heavier
    // than t_sim * w(e) -- the exact invariant Lemma 13's lightness proof
    // consumes. removable_edges() finds any edge violating it.
    Rng rng(7);
    const EuclideanMetric pts = uniform_points(200, 2, 100.0, rng);
    const ApproxGreedyResult r = approx_greedy_spanner(pts, 0.5);
    const auto removable = removable_edges(r.spanner, r.t_sim);
    // Light edges (E0) may be removable; they are the first `light_edges`
    // ids of the spanner by construction. Nothing else may be.
    for (EdgeId id : removable) {
        EXPECT_LT(id, r.light_edges)
            << "non-E0 edge " << id << " violates the Lemma-11 gap";
    }
}

TEST(ApproxGreedyTest, SpannerIsSubgraphOfBase) {
    Rng rng(11);
    const EuclideanMetric pts = uniform_points(150, 2, 50.0, rng);
    const ApproxGreedyResult r = approx_greedy_spanner(pts, 0.5);
    for (const Edge& e : r.spanner.edges()) {
        EXPECT_TRUE(r.base.has_edge(e.u, e.v));
    }
    EXPECT_LE(r.spanner.num_edges(), r.base.num_edges());
}

TEST(ApproxGreedyTest, LightnessIsCloseToGreedy) {
    // Theorem 6's point: the approximate greedy pays only a constant factor
    // over the exact greedy in weight.
    Rng rng(13);
    const EuclideanMetric pts = uniform_points(250, 2, 100.0, rng);
    const ApproxGreedyResult r = approx_greedy_spanner(pts, 0.5);
    const Graph exact = greedy_spanner_metric(pts, 1.5);
    const double ratio = r.spanner.total_weight() / exact.total_weight();
    EXPECT_LT(ratio, 4.0);
    EXPECT_GE(ratio, 1.0 - 1e-9);  // approximate can't beat the optimal-ish greedy much
}

TEST(ApproxGreedyTest, GenericDoublingMetricPath) {
    // Non-Euclidean input exercises the net-spanner base (the paper's
    // doubling-metric extension -- its Theorem 6).
    const MatrixMetric star = geometric_star_metric(64, 1.6);
    const ApproxGreedyResult r =
        approx_with(star, ApproxParams{.epsilon = 0.5, .net_degree_cap = 16});
    EXPECT_LE(max_stretch_metric(star, r.spanner), 1.5 + 1e-9);
    // The greedy spanner's hub degree is n-1 = 63 here; approximate-greedy
    // inherits the base's bounded degree.
    const Graph exact = greedy_spanner_metric(star, 1.5);
    EXPECT_EQ(exact.max_degree(), star.size() - 1);
    EXPECT_LT(r.spanner.max_degree(), star.size() / 2);
}

TEST(ApproxGreedyTest, InputValidation) {
    Rng rng(1);
    const EuclideanMetric pts = uniform_points(10, 2, 1.0, rng);
    EXPECT_THROW(approx_greedy_spanner(pts, 0.0), std::invalid_argument);
    EXPECT_THROW(approx_greedy_spanner(pts, 1.5), std::invalid_argument);
    // A degenerate bucket ratio now fails BuildOptions::validate.
    EXPECT_THROW(approx_with(pts, ApproxParams{.epsilon = 0.5}, 1, /*bucket_ratio=*/1.0),
                 std::invalid_argument);
}

TEST(ApproxGreedyTest, TrivialInputs) {
    const EuclideanMetric one(2, {0.0, 0.0});
    EXPECT_EQ(approx_greedy_spanner(one, 0.5).spanner.num_edges(), 0u);
    const EuclideanMetric two(2, {0.0, 0.0, 3.0, 0.0});
    const ApproxGreedyResult r = approx_greedy_spanner(two, 0.5);
    EXPECT_EQ(r.spanner.num_edges(), 1u);
}

TEST(ApproxGreedyTest, StatsAreCoherent) {
    Rng rng(19);
    const EuclideanMetric pts = uniform_points(200, 2, 100.0, rng);
    const ApproxGreedyResult r = approx_greedy_spanner(pts, 0.5);
    EXPECT_GT(r.buckets, 0u);
    EXPECT_EQ(r.oracle_rejects + r.exact_queries + r.light_edges,
              r.base.num_edges());
    EXPECT_GE(r.seconds_total, r.seconds_base);
    EXPECT_NEAR(r.t_base * r.t_sim, 1.5, 1e-12);
}

}  // namespace
}  // namespace gsp
