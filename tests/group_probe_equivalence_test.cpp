// Multi-target group-probe bit-identity: a build with
// EngineTuning::GroupProbing::kOn (one batched-relaxation traversal
// deciding a whole source group against per-member radii) must return the
// same edge set and the same decision stats as the per-candidate path
// (kOff), across the sources that opt in ({graph, metric, wspd}), thread
// counts {1, 2, 4, hardware}, and chunking {chunked, materialized}. Every
// kernel verdict is an exact distance or a sound far certificate against
// the same view the point probes query, so decisions -- not just the
// spanner -- must be preserved bit for bit.
#include "api/session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include <vector>

#include "api/build_options.hpp"
#include "api/candidate_source.hpp"
#include "gen/graphs.hpp"
#include "graph/batched_probe.hpp"
#include "gen/points.hpp"
#include "graph/graph.hpp"
#include "metric/euclidean.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 4, 0};
const BuildOptions::Chunking kChunkings[] = {BuildOptions::Chunking::kChunked,
                                             BuildOptions::Chunking::kMaterialize};

const char* chunking_name(BuildOptions::Chunking c) {
    return c == BuildOptions::Chunking::kChunked ? "chunked" : "materialize";
}

/// Schedule-independent decision counters must match exactly between the
/// batched-probe and per-candidate paths; probe-strategy counters
/// (dijkstra runs, cache hits, group probes) legitimately differ.
void expect_decisions_equal(const GreedyStats& a, const GreedyStats& b,
                            const std::string& label) {
    EXPECT_EQ(a.edges_examined, b.edges_examined) << label;
    EXPECT_EQ(a.edges_added, b.edges_added) << label;
    EXPECT_EQ(a.candidates_streamed, b.candidates_streamed) << label;
}

/// Reference build: per-candidate probing (kOff), single thread,
/// materialized. Every group-probe variant must reproduce its decisions.
void check_source(const std::function<std::unique_ptr<CandidateSource>()>& make_source,
                  double stretch, const std::string& what) {
    BuildOptions options;
    options.stretch = stretch;
    options.chunking = BuildOptions::Chunking::kMaterialize;
    options.engine.group_probing = EngineTuning::GroupProbing::kOff;

    SpannerSession reference_session;
    BuildReport reference_report;
    const auto reference_source = make_source();
    const Graph reference =
        reference_session.build(*reference_source, options, &reference_report);
    EXPECT_EQ(reference_report.stats.group_probes, 0u) << what;

    for (const std::size_t threads : kThreadCounts) {
        for (const BuildOptions::Chunking chunking : kChunkings) {
            const std::string label = what + " threads=" + std::to_string(threads) +
                                      " chunking=" + chunking_name(chunking);
            BuildOptions probed = options;
            probed.chunking = chunking;
            probed.engine.num_threads = threads;
            probed.engine.group_probing = EngineTuning::GroupProbing::kOn;
            const auto source = make_source();
            SpannerSession session;
            BuildReport report;
            const Graph h = session.build(*source, probed, &report);
            EXPECT_TRUE(same_edge_set(h, reference)) << label;
            expect_decisions_equal(report.stats, reference_report.stats, label);
            EXPECT_EQ(report.edges, reference_report.edges) << label;
            EXPECT_EQ(report.weight, reference_report.weight) << label;
        }
    }
}

class GroupProbeEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupProbeEquivalenceTest, GraphEdgesDecideIdentically) {
    Rng rng(GetParam());
    const Graph g = erdos_renyi(150, 0.12, {.lo = 0.5, .hi = 3.0}, rng);
    check_source([&] { return std::make_unique<GraphCandidateSource>(g); }, 1.8,
                 "graph");
}

TEST_P(GroupProbeEquivalenceTest, MetricPairsDecideIdentically) {
    Rng rng(GetParam() ^ 0xbeef);
    const EuclideanMetric pts = uniform_points(70, 2, 70.0, rng);
    check_source([&] { return std::make_unique<MetricCandidateSource>(pts); }, 1.5,
                 "metric");
}

TEST_P(GroupProbeEquivalenceTest, WspdPairsDecideIdentically) {
    Rng rng(GetParam() ^ 0x2468);
    const EuclideanMetric pts = uniform_points(110, 2, 90.0, rng);
    check_source([&] { return std::make_unique<WspdCandidateSource>(pts, 9.0); }, 1.5,
                 "wspd");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupProbeEquivalenceTest,
                         ::testing::Values(7u, 521u, 4242u));

TEST(GroupProbeEquivalenceTest, OptInSourcesDefaultToGroupProbing) {
    // kAuto + a graph/metric/wspd source flips to kOn via
    // configure_engine: the batched kernel must actually engage (probes
    // run, decisions amortize) while the decisions match an explicit kOff
    // build.
    Rng rng(55);
    const EuclideanMetric pts = uniform_points(90, 2, 80.0, rng);

    BuildOptions off;
    off.stretch = 1.5;
    off.engine.group_probing = EngineTuning::GroupProbing::kOff;
    MetricCandidateSource off_source(pts);
    SpannerSession off_session;
    BuildReport off_report;
    const Graph reference = off_session.build(off_source, off, &off_report);
    EXPECT_EQ(off_report.stats.group_probes, 0u);
    EXPECT_EQ(off_report.stats.group_probe_decisions, 0u);

    BuildOptions auto_opts;
    auto_opts.stretch = 1.5;
    ASSERT_EQ(auto_opts.engine.group_probing, EngineTuning::GroupProbing::kAuto);
    MetricCandidateSource source(pts);
    SpannerSession session;
    BuildReport report;
    const Graph h = session.build(source, auto_opts, &report);
    EXPECT_TRUE(same_edge_set(h, reference));
    EXPECT_EQ(report.stats.edges_added, off_report.stats.edges_added);
    EXPECT_GT(report.stats.group_probes, 0u);
    EXPECT_GE(report.stats.group_probe_decisions, report.stats.group_probes);
}

TEST(GroupProbeEquivalenceTest, GroupProbeCountersAreThreadCountInvariant) {
    // Stage-2 groups are task-owned and the kernel's verdicts are pure
    // functions of (view, source, targets, radii), so the group-probe
    // counters -- not just the decisions -- are a pure function of the
    // input at every *parallel* worker count. (The serial path gates
    // probes on its own cost model, so thread count 1 is covered by the
    // decision-identity sweeps above, not by counter equality.)
    Rng rng(909);
    const Graph g = erdos_renyi(170, 0.12, {.lo = 0.5, .hi = 3.0}, rng);

    BuildOptions options;
    options.stretch = 1.8;
    options.engine.num_threads = 2;
    GraphCandidateSource first_source(g);
    SpannerSession first_session;
    BuildReport first;
    const Graph reference = first_session.build(first_source, options, &first);
    EXPECT_GT(first.stats.group_probes, 0u);

    for (const std::size_t threads : {std::size_t{3}, std::size_t{4}, std::size_t{8}}) {
        options.engine.num_threads = threads;
        GraphCandidateSource source(g);
        SpannerSession session;
        BuildReport report;
        const Graph h = session.build(source, options, &report);
        const std::string label = "threads=" + std::to_string(threads);
        EXPECT_TRUE(same_edge_set(h, reference)) << label;
        EXPECT_EQ(report.stats.group_probes, first.stats.group_probes) << label;
        EXPECT_EQ(report.stats.group_probe_decisions,
                  first.stats.group_probe_decisions)
            << label;
        EXPECT_EQ(report.stats.group_probe_early_exits,
                  first.stats.group_probe_early_exits)
            << label;
        EXPECT_EQ(report.stats.certs_published, first.stats.certs_published) << label;
        EXPECT_EQ(report.stats.certs_two_sided, first.stats.certs_two_sided) << label;
    }
}

TEST(GroupProbeEquivalenceTest, GoalDirectedRunMatchesPlainVerdicts) {
    // run_goal's pruning drops relaxations that cannot serve any live
    // target, but every verdict-bearing path survives its own target's
    // test -- so far bits and settled target distances must be identical
    // to the plain run, while the certified/exact radii may only shrink
    // and the surviving exact prefix must agree with the plain frontier.
    Rng rng(1717);
    const EuclideanMetric pts = uniform_points(120, 2, 60.0, rng);

    // A metric-weighted graph: greedy spanner of the points (every edge
    // weight is the metric distance of its endpoints, so the metric is a
    // sound lower bound on graph distances).
    MetricCandidateSource source(pts);
    SpannerSession session;
    BuildOptions options;
    options.stretch = 1.6;
    const Graph g = session.build(source, options);

    BatchedProbe plain;
    BatchedProbe goal;
    const auto lb = [&pts](VertexId x, VertexId t) { return pts.distance(x, t); };
    for (const VertexId source_v : {VertexId{0}, VertexId{17}, VertexId{63}}) {
        // Targets with spread radii: some settle, some certify far, and
        // the nondecreasing-radii invariant mirrors the engine's groups.
        std::vector<VertexId> targets;
        std::vector<Weight> radii;
        for (VertexId t = 1; t < 40; ++t) {
            if (t == source_v) continue;
            targets.push_back(t);
            radii.push_back(0.4 * static_cast<Weight>(targets.size()));
        }
        plain.run(g, source_v, targets, radii);
        goal.run_goal(g, source_v, targets, radii, kInfiniteWeight, lb);

        EXPECT_EQ(plain.settled_exact_radius(), kInfiniteWeight);
        EXPECT_LE(goal.certified_radius(), plain.certified_radius());
        for (std::size_t i = 0; i < targets.size(); ++i) {
            EXPECT_EQ(goal.target_far(i), plain.target_far(i)) << i;
            EXPECT_EQ(goal.target_undecided(i), plain.target_undecided(i)) << i;
            EXPECT_EQ(goal.target_bound(i), plain.target_bound(i)) << i;
        }
        // The goal run's exact prefix must match the plain frontier
        // distance for distance; beyond it entries are upper bounds.
        const Weight exact_r = goal.settled_exact_radius();
        for (const auto& [x, d] : goal.settled()) {
            if (d <= exact_r) {
                EXPECT_EQ(d, plain.label_bound(x)) << "vertex " << x;
            } else {
                EXPECT_GE(d, plain.label_bound(x)) << "vertex " << x;
            }
        }
    }
}

TEST(GroupProbeEquivalenceTest, ProbeGoalOracleBuildsDecideIdentically) {
    // The probe_goal_bound override routes the serial kernel's probes
    // through run_goal; decisions (edge set, decision counters) must be
    // bit-identical to the un-goaled kOn build and the kOff reference.
    Rng rng(31337);
    const EuclideanMetric pts = uniform_points(90, 2, 80.0, rng);

    BuildOptions off;
    off.stretch = 1.5;
    off.engine.group_probing = EngineTuning::GroupProbing::kOff;
    MetricCandidateSource off_source(pts);
    SpannerSession off_session;
    BuildReport off_report;
    const Graph reference = off_session.build(off_source, off, &off_report);

    BuildOptions goaled;
    goaled.stretch = 1.5;
    goaled.engine.group_probing = EngineTuning::GroupProbing::kOn;
    goaled.engine.probe_goal_bound = &pts;
    MetricCandidateSource source(pts);
    SpannerSession session;
    BuildReport report;
    const Graph h = session.build(source, goaled, &report);
    EXPECT_TRUE(same_edge_set(h, reference));
    EXPECT_EQ(report.stats.edges_examined, off_report.stats.edges_examined);
    EXPECT_EQ(report.stats.edges_added, off_report.stats.edges_added);
    EXPECT_EQ(report.stats.candidates_streamed, off_report.stats.candidates_streamed);
    EXPECT_GT(report.stats.group_probes, 0u);
}

}  // namespace
}  // namespace gsp
