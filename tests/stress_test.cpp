// Stress instances: shapes chosen to break naive implementations --
// enormous aspect ratios, co-circular degeneracies, structured graphs,
// higher dimension. Every algorithm must keep its guarantee on all of them.
#include <gtest/gtest.h>

#include "analysis/audit.hpp"
#include "core/approx_greedy.hpp"
#include "core/greedy.hpp"
#include "core/greedy_metric.hpp"
#include "core/self_optimality.hpp"
#include "gen/graphs.hpp"
#include "gen/named_graphs.hpp"
#include "gen/points.hpp"
#include "graph/traversal.hpp"
#include "nets/net_hierarchy.hpp"
#include "spanners/baswana_sen.hpp"
#include "spanners/wspd_spanner.hpp"
#include "util/random.hpp"
#include "wspd/quadtree.hpp"
#include "wspd/wspd.hpp"

namespace gsp {
namespace {

TEST(StressTest, ExponentialSpiralFullPipeline) {
    // Aspect ratio ~1.5^25: buckets, nets and quadtrees all see dozens of
    // scales with mostly-empty levels.
    const EuclideanMetric spiral = exponential_spiral(100, 1.5);

    const Graph greedy = greedy_spanner_metric(spiral, 1.5);
    EXPECT_LE(max_stretch_metric(spiral, greedy), 1.5 + 1e-9);
    EXPECT_TRUE(removable_edges(greedy, 1.5).empty());

    const ApproxGreedyResult approx = approx_greedy_spanner(spiral, 0.5);
    EXPECT_LE(max_stretch_metric(spiral, approx.spanner), 1.5 + 1e-9);
    EXPECT_GT(approx.buckets, 5u);  // the aspect ratio actually exercised bucketing

    const NetHierarchy nets(spiral);
    EXPECT_TRUE(nets.check_invariants());

    const QuadTree tree(spiral);
    EXPECT_TRUE(tree.check_invariants());
    const auto pairs = well_separated_pairs(tree, 2.0);
    EXPECT_TRUE(check_unique_coverage(tree, pairs));
}

TEST(StressTest, CocircularPointsEverywhere) {
    // All points on one circle: ties and collinearities abound.
    const EuclideanMetric circ = circle_points(96, 50.0);
    const Graph greedy = greedy_spanner_metric(circ, 1.2);
    EXPECT_LE(max_stretch_metric(circ, greedy), 1.2 + 1e-9);
    const ApproxGreedyResult approx = approx_greedy_spanner(circ, 0.5);
    EXPECT_LE(max_stretch_metric(circ, approx.spanner), 1.5 + 1e-9);
    const Graph w = wspd_spanner(circ, 0.5);
    EXPECT_LE(max_stretch_metric(circ, w), 1.5 + 1e-9);
}

TEST(StressTest, GridPointsExactDuplicatedDistances) {
    // Integer grid: massive weight ties in the sorted pair list.
    const EuclideanMetric grid = grid_points(12, 12);
    const Graph h = greedy_spanner_metric(grid, 1.5);
    EXPECT_LE(max_stretch_metric(grid, h), 1.5 + 1e-9);
    // Fixpoint even with all the ties (deterministic tie-breaking).
    EXPECT_TRUE(same_edge_set(h, greedy_spanner(h, 1.5)));
}

TEST(StressTest, ThreeDimensionalDoublingBehaviour) {
    Rng rng(3);
    const EuclideanMetric pts = uniform_points(300, 3, 60.0, rng);
    const Graph h = greedy_spanner_metric(pts, 1.5);
    EXPECT_LE(max_stretch_metric(pts, h), 1.5 + 1e-9);
    // 3D constant is bigger than 2D's but still "a constant": edges/n well
    // below the complete graph's (n-1)/2.
    EXPECT_LT(static_cast<double>(h.num_edges()) / 300.0, 8.0);
    // Approximate-greedy must take the generic (net-spanner) base path in 3D.
    const ApproxGreedyResult r = approx_greedy_spanner(pts, 1.0);
    EXPECT_LE(max_stretch_metric(pts, r.spanner), 2.0 + 1e-9);
}

TEST(StressTest, BaswanaSenOnStructuredGraphs) {
    Rng rng(5);
    // Structured inputs have pathological clusterings; stretch must hold.
    const Graph grid = grid_graph(12, 12, {.lo = 1.0, .hi = 1.0}, rng);
    const Graph cube = hypercube_graph(7, {.lo = 1.0, .hi = 2.0}, rng);
    for (std::uint64_t seed : {1u, 2u}) {
        EXPECT_LE(max_stretch_over_edges(grid, baswana_sen_spanner(grid, 2, seed)),
                  3.0 + 1e-9);
        EXPECT_LE(max_stretch_over_edges(cube, baswana_sen_spanner(cube, 3, seed)),
                  5.0 + 1e-9);
    }
}

TEST(StressTest, GreedyOnHeavyTailWeights) {
    // Weights spanning six orders of magnitude: limit-based Dijkstra and
    // MST interplay under extreme scale mixes.
    Rng rng(7);
    Graph g(80);
    for (VertexId v = 1; v < 80; ++v) {
        g.add_edge(static_cast<VertexId>(rng.index(v)), v,
                   std::pow(10.0, rng.uniform(-3.0, 3.0)));
    }
    for (int extra = 0; extra < 400; ++extra) {
        const auto u = static_cast<VertexId>(rng.index(80));
        const auto v = static_cast<VertexId>(rng.index(80));
        if (u != v && !g.has_edge(u, v)) {
            g.add_edge(u, v, std::pow(10.0, rng.uniform(-3.0, 3.0)));
        }
    }
    for (double t : {1.5, 4.0}) {
        const Graph h = greedy_spanner(g, t);
        EXPECT_LE(max_stretch_over_edges(g, h), t + 1e-9);
        EXPECT_TRUE(contains_kruskal_mst(g, h));
        EXPECT_TRUE(removable_edges(h, t).empty());
    }
}

TEST(StressTest, ClusteredPointsApproxGreedy) {
    // Dense blobs with wide gaps: cluster-graph radii straddle the two
    // scales; E0 and the oracle both get exercised.
    Rng rng(11);
    const EuclideanMetric pts = clustered_points(400, 2, 5, 1000.0, 0.5, rng);
    const ApproxGreedyResult r = approx_greedy_spanner(pts, 0.5);
    EXPECT_LE(max_stretch_metric(pts, r.spanner), 1.5 + 1e-9);
    EXPECT_TRUE(is_connected(r.spanner));
}

TEST(StressTest, PetersenFamilyGreedyAcrossStretches) {
    // Unit-weight named graphs at the girth boundary: t just below girth-1
    // keeps everything, t just above starts pruning.
    const Graph p = petersen_graph();  // girth 5
    EXPECT_EQ(greedy_spanner(p, 3.9).num_edges(), 15u);
    EXPECT_LT(greedy_spanner(p, 4.0).num_edges(), 15u);
}

}  // namespace
}  // namespace gsp
