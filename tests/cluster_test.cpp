#include "cluster/cluster_graph.hpp"

#include <gtest/gtest.h>

#include "core/greedy_metric.hpp"
#include "gen/points.hpp"
#include "graph/dijkstra.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

Graph spanner_fixture(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    const EuclideanMetric pts = uniform_points(n, 2, 100.0, rng);
    return greedy_spanner_metric(pts, 1.5);
}

TEST(ClusterGraphTest, InvariantsHold) {
    const Graph h = spanner_fixture(120, 3);
    for (double radius : {1.0, 5.0, 25.0}) {
        const ClusterGraph cg(h, radius);
        EXPECT_TRUE(cg.check_invariants(h)) << "radius=" << radius;
        EXPECT_GE(cg.num_clusters(), 1u);
        EXPECT_LE(cg.num_clusters(), h.num_vertices());
    }
}

TEST(ClusterGraphTest, RadiusMonotonicity) {
    const Graph h = spanner_fixture(150, 7);
    const ClusterGraph fine(h, 1.0);
    const ClusterGraph coarse(h, 50.0);
    EXPECT_GE(fine.num_clusters(), coarse.num_clusters());
}

TEST(ClusterGraphTest, DirectEdgeFastPathFiresAndStaysSound) {
    // The query path's direct coarse-edge scan: adjacent (or shared)
    // clusters answer without the coarse Dijkstra. The scratch counters
    // make the hit rate observable, and every fast-path answer must still
    // dominate the true spanner distance.
    const Graph h = spanner_fixture(120, 19);
    const ClusterGraph cg(h, 6.0);
    DijkstraWorkspace ws(h.num_vertices());
    ClusterGraph::QueryScratch scratch;
    Rng rng(23);
    std::size_t calls = 0;
    for (int i = 0; i < 400; ++i) {
        const auto u = static_cast<VertexId>(rng.index(h.num_vertices()));
        const auto v = static_cast<VertexId>(rng.index(h.num_vertices()));
        if (u == v) continue;
        const Weight bound = cg.upper_bound_distance(u, v, kInfiniteWeight, scratch);
        ++calls;
        if (bound != kInfiniteWeight) {
            EXPECT_GE(bound, ws.distance(h, u, v, kInfiniteWeight) - 1e-9)
                << "u=" << u << " v=" << v;
        }
    }
    EXPECT_EQ(scratch.queries, calls);
    EXPECT_GT(scratch.direct_hits, 0u);
    EXPECT_LE(scratch.direct_hits, scratch.queries);
}

TEST(ClusterGraphTest, UpperBoundDominatesTrueDistance) {
    const Graph h = spanner_fixture(100, 11);
    const ClusterGraph cg(h, 8.0);
    DijkstraWorkspace ws(h.num_vertices());
    Rng rng(13);
    for (int trial = 0; trial < 200; ++trial) {
        const auto u = static_cast<VertexId>(rng.index(h.num_vertices()));
        const auto v = static_cast<VertexId>(rng.index(h.num_vertices()));
        if (u == v) continue;
        const Weight bound = cg.upper_bound_distance(u, v, kInfiniteWeight);
        const Weight truth = ws.distance(h, u, v, kInfiniteWeight);
        if (bound != kInfiniteWeight) {
            EXPECT_GE(bound, truth - 1e-9) << "u=" << u << " v=" << v;
        }
    }
}

TEST(ClusterGraphTest, LimitIsHonored) {
    const Graph h = spanner_fixture(100, 17);
    const ClusterGraph cg(h, 5.0);
    // With a tiny limit, answers are either within-cluster or infinite.
    const Weight bound = cg.upper_bound_distance(0, 1, 1e-6);
    if (bound != kInfiniteWeight && cg.cluster_of(0) != cg.cluster_of(1)) {
        FAIL() << "cross-cluster answer below an impossible limit";
    }
}

TEST(ClusterGraphTest, SameClusterShortcut) {
    const Graph h = spanner_fixture(80, 19);
    const ClusterGraph cg(h, 1e9);  // one giant cluster
    EXPECT_EQ(cg.num_clusters(), 1u);
    DijkstraWorkspace ws(h.num_vertices());
    for (VertexId v = 1; v < 10; ++v) {
        const Weight bound = cg.upper_bound_distance(0, v, kInfiniteWeight);
        const Weight truth = ws.distance(h, 0, v, kInfiniteWeight);
        EXPECT_GE(bound, truth - 1e-9);
    }
}

TEST(ClusterGraphTest, RejectsNonPositiveRadius) {
    const Graph h = spanner_fixture(20, 23);
    EXPECT_THROW(ClusterGraph(h, 0.0), std::invalid_argument);
    EXPECT_THROW(ClusterGraph(h, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace gsp
