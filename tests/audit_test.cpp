#include "analysis/audit.hpp"

#include <gtest/gtest.h>

#include "core/greedy_metric.hpp"
#include "graph/graph.hpp"
#include "metric/euclidean.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(AuditTest, HandComputedGraphAudit) {
    // G: triangle 0-1-2 (unit weights) + pendant 3.
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(0, 2, 1.0);
    g.add_edge(2, 3, 2.0);
    // H: drop the (0,2) edge.
    Graph h(4);
    h.add_edge(0, 1, 1.0);
    h.add_edge(1, 2, 1.0);
    h.add_edge(2, 3, 2.0);

    const SpannerAudit a = audit_graph_spanner(g, h);
    EXPECT_EQ(a.vertices, 4u);
    EXPECT_EQ(a.edges, 3u);
    EXPECT_DOUBLE_EQ(a.weight, 4.0);
    // MST(G) = {(0,1), (1,2), (2,3)} with weight 4.
    EXPECT_DOUBLE_EQ(a.lightness, 1.0);
    EXPECT_EQ(a.max_degree, 2u);
    EXPECT_DOUBLE_EQ(a.avg_degree, 1.5);
    // The only stretched pair is edge (0,2): path 0-1-2 of weight 2 vs 1.
    EXPECT_DOUBLE_EQ(a.max_stretch, 2.0);
}

TEST(AuditTest, StretchInfinityWhenSpannerDisconnects) {
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    Graph h(3);
    h.add_edge(0, 1, 1.0);
    EXPECT_EQ(max_stretch_over_edges(g, h), kInfiniteWeight);
}

TEST(AuditTest, VertexCountMismatchThrows) {
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    Graph h(2);
    EXPECT_THROW(max_stretch_over_edges(g, h), std::invalid_argument);
    const EuclideanMetric m(1, {0.0, 1.0, 2.0});
    EXPECT_THROW(max_stretch_metric(m, h), std::invalid_argument);
}

TEST(AuditTest, MetricAuditOnUnitSquare) {
    // Four corners of the unit square; H = the 4 sides.
    const EuclideanMetric m(2, {0, 0, 1, 0, 1, 1, 0, 1});
    Graph h(4);
    h.add_edge(0, 1, 1.0);
    h.add_edge(1, 2, 1.0);
    h.add_edge(2, 3, 1.0);
    h.add_edge(3, 0, 1.0);
    const SpannerAudit a = audit_metric_spanner(m, h);
    EXPECT_EQ(a.edges, 4u);
    // MST of the square = 3 sides.
    EXPECT_DOUBLE_EQ(a.lightness, 4.0 / 3.0);
    // Worst pair: a diagonal (dist sqrt(2), path 2).
    EXPECT_NEAR(a.max_stretch, 2.0 / std::sqrt(2.0), 1e-12);
}

TEST(AuditTest, IdenticalSpannerHasUnitStretch) {
    Rng rng(5);
    Graph g(15);
    for (VertexId v = 1; v < 15; ++v) {
        g.add_edge(static_cast<VertexId>(rng.index(v)), v, rng.uniform(0.5, 2.0));
    }
    EXPECT_DOUBLE_EQ(max_stretch_over_edges(g, g), 1.0);
}

TEST(AuditTest, GreedySpannerAuditRespectsRequestedStretch) {
    Rng rng(9);
    std::vector<double> coords;
    for (int i = 0; i < 60; ++i) coords.push_back(rng.uniform(0.0, 50.0));
    const EuclideanMetric m(2, std::move(coords));
    const Graph h = greedy_spanner_metric(m, 1.5);
    const SpannerAudit a = audit_metric_spanner(m, h);
    EXPECT_LE(a.max_stretch, 1.5 + 1e-9);
    EXPECT_GE(a.max_stretch, 1.0);
    EXPECT_GE(a.lightness, 1.0);  // can't be lighter than the MST
}

}  // namespace
}  // namespace gsp
