#!/usr/bin/env python3
"""Self-test for scripts/lint/gsp_lint.py, run as a CTest entry.

Three layers:
  1. golden bad fixtures under tests/lint_fixtures/ -- each must trigger
     EXACTLY its own check (right file, right check name, nothing else);
  2. the clean and suppressed fixtures must be silent (exit 0, no findings);
  3. the real tree at head (src/) must lint at zero findings, so a
     regression in either the code or the linter fails the suite.

Runs the dependency-free textual engine explicitly: it is what CI gates
on, so it is what the fixtures pin down.
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
LINTER = REPO_ROOT / "scripts" / "lint" / "gsp_lint.py"
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

# fixture file(s) -> the one check expected to fire there. The
# epoch-guarded rule is cross-file by construction (declaring stem vs
# accessing stem), so its fixture is a two-file batch; the finding must
# land in the accessing file.
BAD_CASES = [
    (["bad_hot_path_alloc.cpp"], "gsp-hot-path-alloc", "bad_hot_path_alloc.cpp"),
    (["bad_decision_pure.cpp"], "gsp-decision-pure", "bad_decision_pure.cpp"),
    (["bad_serial_only.cpp"], "gsp-serial-only", "bad_serial_only.cpp"),
    (["bad_epoch_guarded_decl.hpp", "bad_epoch_guarded.cpp"],
     "gsp-epoch-guarded", "bad_epoch_guarded.cpp"),
    (["bad_relaxed_atomic.cpp"], "gsp-relaxed-atomic", "bad_relaxed_atomic.cpp"),
    (["bad_no_fma.cpp"], "gsp-no-fma", "bad_no_fma.cpp"),
]

SILENT_CASES = [["clean.cpp"], ["suppressed.cpp"]]

FINDING_RE = re.compile(r"^(?P<path>\S+?):(?P<line>\d+): \[(?P<check>[a-z\-]+)\]")

failures = []


def run_linter(args):
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--engine", "textual", "-q", *args],
        capture_output=True, text=True, cwd=REPO_ROOT)
    findings = [m.groupdict() for line in proc.stdout.splitlines()
                if (m := FINDING_RE.match(line.strip()))]
    return proc, findings


def check(cond, label):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {label}")
    if not cond:
        failures.append(label)


def main():
    if not LINTER.exists():
        print(f"lint_test: missing {LINTER}", file=sys.stderr)
        return 1

    print("== golden bad fixtures: each triggers exactly its check ==")
    for files, expect_check, expect_file in BAD_CASES:
        proc, findings = run_linter([str(FIXTURES / f) for f in files])
        label = f"{'+'.join(files)} -> [{expect_check}]"
        wrong = [f for f in findings
                 if f["check"] != expect_check
                 or Path(f["path"]).name != expect_file]
        check(proc.returncode == 1 and len(findings) >= 1 and not wrong,
              f"{label} (rc={proc.returncode}, findings={len(findings)}, "
              f"offtarget={len(wrong)})")
        if wrong:
            for f in wrong:
                print(f"    off-target: {f['path']}:{f['line']} "
                      f"[{f['check']}]")

    print("== clean / suppressed fixtures: silent ==")
    for files in SILENT_CASES:
        proc, findings = run_linter([str(FIXTURES / f) for f in files])
        check(proc.returncode == 0 and not findings,
              f"{'+'.join(files)} silent (rc={proc.returncode}, "
              f"findings={len(findings)})")

    print("== baseline round-trip: recorded findings stop counting ==")
    with tempfile.TemporaryDirectory() as tmp:
        baseline = Path(tmp) / "baseline.json"
        bad = str(FIXTURES / "bad_relaxed_atomic.cpp")
        proc, _ = run_linter([bad, "--write-baseline", str(baseline)])
        keys = json.loads(baseline.read_text()) if baseline.exists() else []
        check(proc.returncode == 0 and len(keys) == 1,
              f"--write-baseline records 1 key (rc={proc.returncode}, "
              f"keys={len(keys)})")
        proc, findings = run_linter([bad, "--baseline", str(baseline)])
        check(proc.returncode == 0 and not findings,
              f"--baseline suppresses it (rc={proc.returncode}, "
              f"findings={len(findings)})")

    print("== tree at head: src/ lints at zero findings ==")
    proc, findings = run_linter([str(REPO_ROOT / "src")])
    check(proc.returncode == 0 and not findings,
          f"src/ clean (rc={proc.returncode}, findings={len(findings)})")
    for f in findings[:20]:
        print(f"    {f['path']}:{f['line']} [{f['check']}]")

    if failures:
        print(f"lint_test: {len(failures)} FAILURE(S)")
        return 1
    print("lint_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
