#include "core/greedy.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/audit.hpp"
#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/greedy_engine.hpp"
#include "graph/girth.hpp"
#include "graph/graph.hpp"
#include "graph/mst.hpp"
#include "graph/traversal.hpp"
#include "core/self_optimality.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

Graph random_connected_graph(std::size_t n, double extra_p, Rng& rng) {
    Graph g(n);
    for (VertexId v = 1; v < n; ++v) {
        g.add_edge(static_cast<VertexId>(rng.index(v)), v, rng.uniform(0.1, 10.0));
    }
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            if (!g.has_edge(i, j) && rng.chance(extra_p)) {
                g.add_edge(i, j, rng.uniform(0.1, 10.0));
            }
        }
    }
    return g;
}

TEST(GreedyTest, RejectsStretchBelowOne) {
    Graph g(2);
    g.add_edge(0, 1, 1.0);
    EXPECT_THROW(greedy_spanner(g, 0.5), std::invalid_argument);
}

TEST(GreedyTest, EmptyAndTrivialGraphs) {
    EXPECT_EQ(greedy_spanner(Graph(0), 2.0).num_edges(), 0u);
    EXPECT_EQ(greedy_spanner(Graph(5), 2.0).num_edges(), 0u);
    Graph single(2);
    single.add_edge(0, 1, 3.0);
    const Graph h = greedy_spanner(single, 2.0);
    EXPECT_EQ(h.num_edges(), 1u);
}

TEST(GreedyTest, TriangleStretchDecidesChord) {
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(0, 2, 1.5);
    // Path 0-1-2 has weight 2.0; edge (0,2) has weight 1.5.
    // t = 1.2: 2.0 > 1.8, chord kept. t = 1.5: 2.0 <= 2.25, chord dropped.
    EXPECT_EQ(greedy_spanner(g, 1.2).num_edges(), 3u);
    EXPECT_EQ(greedy_spanner(g, 1.5).num_edges(), 2u);
}

TEST(GreedyTest, HugeStretchYieldsExactlyTheMst) {
    Rng rng(42);
    const Graph g = random_connected_graph(30, 0.3, rng);
    const Graph h = greedy_spanner(g, 1e12);
    const MstResult mst = kruskal_mst(g);
    EXPECT_EQ(h.num_edges(), mst.edges.size());
    EXPECT_TRUE(same_edge_set(h, g.edge_subgraph(mst.edges)));
}

TEST(GreedyTest, StretchOneKeepsAllUniqueShortestEdges) {
    // t = 1: an edge is dropped only if an equally light path exists.
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(0, 2, 2.0);  // exactly equals the path weight -> dropped
    const Graph h = greedy_spanner(g, 1.0);
    EXPECT_EQ(h.num_edges(), 2u);
    EXPECT_FALSE(h.has_edge(0, 2));
}

TEST(GreedyTest, ParallelEdgesSecondCopyDropped) {
    Graph g(2);
    g.add_edge(0, 1, 1.0);
    g.add_edge(0, 1, 1.0);
    g.add_edge(0, 1, 5.0);
    const Graph h = greedy_spanner(g, 1.0);
    EXPECT_EQ(h.num_edges(), 1u);
}

TEST(GreedyTest, DisconnectedInputSpansComponents) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(2, 3, 1.0);
    g.add_edge(3, 2, 4.0);  // parallel, must be dropped
    const Graph h = greedy_spanner(g, 2.0);
    EXPECT_EQ(h.num_edges(), 2u);
    EXPECT_EQ(connected_components(h), connected_components(g));
}

TEST(GreedyTest, StatsAreConsistent) {
    Rng rng(1);
    const Graph g = random_connected_graph(25, 0.4, rng);
    GreedyStats stats;
    const Graph h = greedy_spanner(g, 2.0, &stats);
    EXPECT_EQ(stats.edges_examined, g.num_edges());
    EXPECT_EQ(stats.edges_added, h.num_edges());
    // The full engine decides every candidate with at most one query, and
    // the shared-ball cache decides some with none at all.
    EXPECT_LE(stats.dijkstra_runs, g.num_edges());
    EXPECT_GT(stats.dijkstra_runs, 0u);
    EXPECT_LE(stats.cache_hits + stats.dijkstra_runs, g.num_edges());
    EXPECT_GT(stats.buckets, 0u);
    // The incremental store builds once per run; bucket boundaries are
    // free no-ops, not refreezes.
    EXPECT_EQ(stats.csr_rebuilds, 1u);
    EXPECT_GE(stats.seconds, 0.0);
}

TEST(GreedyTest, NaiveEngineConfigurationCountsOneQueryPerEdge) {
    Rng rng(1);
    const Graph g = random_connected_graph(25, 0.4, rng);
    SpannerSession session;
    BuildOptions options;
    options.stretch = 2.0;
    options.engine = EngineTuning::naive();  // all optimisations off
    GraphCandidateSource source(g);
    BuildReport report;
    const Graph h = session.build(source, options, &report);
    EXPECT_EQ(report.stats.dijkstra_runs, g.num_edges());
    EXPECT_EQ(report.stats.cache_hits, 0u);
    EXPECT_EQ(report.stats.csr_rebuilds, 0u);
    EXPECT_EQ(report.stats.balls_computed, 0u);
    EXPECT_TRUE(same_edge_set(h, greedy_spanner(g, 2.0)));
}

// ---------------------------------------------------------------------------
// Property suite over random instances.

class GreedyPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double, double>> {
};

TEST_P(GreedyPropertyTest, StretchIsRespected) {
    const auto [seed, n, p, t] = GetParam();
    Rng rng(seed);
    const Graph g = random_connected_graph(n, p, rng);
    const Graph h = greedy_spanner(g, t);
    EXPECT_LE(max_stretch_over_edges(g, h), t + 1e-9);
}

TEST_P(GreedyPropertyTest, ContainsKruskalMst) {
    const auto [seed, n, p, t] = GetParam();
    Rng rng(seed ^ 0x5555);
    const Graph g = random_connected_graph(n, p, rng);
    const Graph h = greedy_spanner(g, t);
    EXPECT_TRUE(contains_kruskal_mst(g, h));  // Observation 2
}

TEST_P(GreedyPropertyTest, SpannerIsSubgraphWithSameWeights) {
    const auto [seed, n, p, t] = GetParam();
    Rng rng(seed ^ 0xaaaa);
    const Graph g = random_connected_graph(n, p, rng);
    const Graph h = greedy_spanner(g, t);
    EXPECT_LE(h.num_edges(), g.num_edges());
    for (const Edge& e : h.edges()) {
        EXPECT_TRUE(g.has_edge(e.u, e.v));
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, GreedyPropertyTest,
                         ::testing::Combine(::testing::Values(3u, 7u, 19u),
                                            ::testing::Values(16u, 40u),
                                            ::testing::Values(0.15, 0.5),
                                            ::testing::Values(1.1, 2.0, 3.0, 5.0)));

// The classic girth certificate: in a unit-weight graph the greedy
// t-spanner has girth > t + 1 (any shorter cycle would have had its last
// examined edge rejected).
class GreedyGirthTest : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(GreedyGirthTest, UnitWeightGirthExceedsStretchPlusOne) {
    const auto [seed, t] = GetParam();
    Rng rng(seed);
    Graph g(30);
    for (VertexId i = 0; i < 30; ++i) {
        for (VertexId j = i + 1; j < 30; ++j) {
            if (rng.chance(0.3)) g.add_edge(i, j, 1.0);
        }
    }
    const Graph h = greedy_spanner(g, t);
    const auto girth = unweighted_girth(h);
    if (girth != std::numeric_limits<std::uint32_t>::max()) {
        EXPECT_GT(static_cast<double>(girth), t + 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Stretches, GreedyGirthTest,
                         ::testing::Combine(::testing::Values(2u, 6u, 12u),
                                            ::testing::Values(1.5, 2.0, 3.0, 4.0)));

}  // namespace
}  // namespace gsp
