#include "graph/mst.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "graph/graph.hpp"
#include "graph/union_find.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

Graph random_connected_graph(std::size_t n, double extra_p, Rng& rng) {
    Graph g(n);
    // Random spanning tree first (guarantees connectivity), then extras.
    for (VertexId v = 1; v < n; ++v) {
        const auto parent = static_cast<VertexId>(rng.index(v));
        g.add_edge(parent, v, rng.uniform(0.1, 10.0));
    }
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            if (!g.has_edge(i, j) && rng.chance(extra_p)) {
                g.add_edge(i, j, rng.uniform(0.1, 10.0));
            }
        }
    }
    return g;
}

TEST(UnionFindTest, Basics) {
    UnionFind uf(5);
    EXPECT_EQ(uf.components(), 5u);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_FALSE(uf.unite(1, 0));
    EXPECT_TRUE(uf.connected(0, 1));
    EXPECT_FALSE(uf.connected(0, 2));
    EXPECT_EQ(uf.components(), 4u);
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_TRUE(uf.unite(0, 3));
    EXPECT_TRUE(uf.connected(1, 2));
    EXPECT_EQ(uf.component_size(1), 4u);
    EXPECT_EQ(uf.components(), 2u);
}

TEST(MstTest, TriangleKeepsTwoLightestEdges) {
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(0, 2, 3.0);
    const MstResult mst = kruskal_mst(g);
    EXPECT_TRUE(mst.spanning);
    EXPECT_EQ(mst.edges.size(), 2u);
    EXPECT_DOUBLE_EQ(mst.weight, 3.0);
}

TEST(MstTest, DisconnectedGraphYieldsForest) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(2, 3, 2.0);
    const MstResult mst = kruskal_mst(g);
    EXPECT_FALSE(mst.spanning);
    EXPECT_EQ(mst.edges.size(), 2u);
    EXPECT_DOUBLE_EQ(mst.weight, 3.0);
    EXPECT_THROW(mst_weight(g), std::invalid_argument);
}

TEST(MstTest, MstWeightOfConnectedGraph) {
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(0, 2, 3.0);
    EXPECT_DOUBLE_EQ(mst_weight(g), 3.0);
}

TEST(MstTest, EmptyAndSingletonGraphs) {
    EXPECT_TRUE(kruskal_mst(Graph(0)).spanning);
    EXPECT_TRUE(kruskal_mst(Graph(1)).spanning);
    EXPECT_TRUE(prim_mst(Graph(1)).spanning);
    EXPECT_EQ(kruskal_mst(Graph(1)).edges.size(), 0u);
}

TEST(MstTest, KruskalTieBreakIsDeterministic) {
    // All weights equal: the deterministic MST is the one Kruskal picks by
    // canonical endpoint order -- the "star from low ids" shape below.
    Graph g(4);
    for (VertexId i = 0; i < 4; ++i) {
        for (VertexId j = i + 1; j < 4; ++j) g.add_edge(i, j, 1.0);
    }
    const MstResult a = kruskal_mst(g);
    const MstResult b = kruskal_mst(g);
    EXPECT_EQ(a.edges, b.edges);
    // (0,1), (0,2), (0,3) by the canonical ordering.
    EXPECT_EQ(a.edges.size(), 3u);
    for (EdgeId id : a.edges) EXPECT_EQ(std::min(g.edge(id).u, g.edge(id).v), 0u);
}

class MstPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(MstPropertyTest, KruskalEqualsPrimWeight) {
    const auto [seed, n, p] = GetParam();
    Rng rng(seed);
    const Graph g = random_connected_graph(n, p, rng);
    const MstResult k = kruskal_mst(g);
    const MstResult pr = prim_mst(g);
    EXPECT_TRUE(k.spanning);
    EXPECT_TRUE(pr.spanning);
    EXPECT_EQ(k.edges.size(), n - 1);
    EXPECT_EQ(pr.edges.size(), n - 1);
    EXPECT_NEAR(k.weight, pr.weight, 1e-9);
}

TEST_P(MstPropertyTest, CutPropertyHolds) {
    // Every non-MST edge closes a cycle where it is a heaviest edge: removing
    // any MST edge and reconnecting with a cheaper non-tree edge must fail.
    const auto [seed, n, p] = GetParam();
    Rng rng(seed ^ 0xabcdef);
    const Graph g = random_connected_graph(n, p, rng);
    const MstResult k = kruskal_mst(g);
    std::vector<bool> in_mst(g.num_edges(), false);
    for (EdgeId id : k.edges) in_mst[id] = true;

    for (EdgeId removed : k.edges) {
        // Components of MST minus `removed`.
        UnionFind uf(g.num_vertices());
        for (EdgeId id : k.edges) {
            if (id != removed) uf.unite(g.edge(id).u, g.edge(id).v);
        }
        // The cheapest edge crossing the cut must be (a tie of) the removed one.
        Weight cheapest_cross = kInfiniteWeight;
        for (EdgeId id = 0; id < g.num_edges(); ++id) {
            const Edge& e = g.edge(id);
            if (!uf.connected(e.u, e.v)) cheapest_cross = std::min(cheapest_cross, e.weight);
        }
        EXPECT_GE(cheapest_cross, g.edge(removed).weight - 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MstPropertyTest,
                         ::testing::Combine(::testing::Values(1u, 4u, 9u, 16u),
                                            ::testing::Values(8u, 20u, 45u),
                                            ::testing::Values(0.05, 0.3)));

}  // namespace
}  // namespace gsp
