#include "spanners/net_spanner.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/audit.hpp"
#include "gen/hard_instances.hpp"
#include "gen/points.hpp"
#include "graph/traversal.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

class NetSpannerStretchTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(NetSpannerStretchTest, StretchWithinBudget) {
    const auto [seed, n, eps] = GetParam();
    Rng rng(seed);
    const EuclideanMetric pts = uniform_points(n, 2, 100.0, rng);
    const Graph h = net_spanner(pts, eps);
    EXPECT_TRUE(is_connected(h));
    EXPECT_LE(max_stretch_metric(pts, h), 1.0 + eps + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(UniformPoints, NetSpannerStretchTest,
                         ::testing::Combine(::testing::Values(1u, 5u),
                                            ::testing::Values(60u, 200u),
                                            ::testing::Values(0.25, 0.5, 1.0)));

TEST(NetSpannerTest, RejectsBadEpsilon) {
    Rng rng(1);
    const EuclideanMetric pts = uniform_points(10, 2, 1.0, rng);
    EXPECT_THROW(net_spanner(pts, 0.0), std::invalid_argument);
    EXPECT_THROW(net_spanner(pts, 1.5), std::invalid_argument);
}

TEST(NetSpannerTest, TrivialSizes) {
    const EuclideanMetric one(2, {0.0, 0.0});
    EXPECT_EQ(net_spanner(one, 0.5).num_edges(), 0u);
    const EuclideanMetric two(2, {0.0, 0.0, 1.0, 0.0});
    const Graph h = net_spanner(two, 0.5);
    EXPECT_EQ(h.num_edges(), 1u);
}

TEST(NetSpannerTest, MaxDegreeIsIndependentOfN) {
    // "Bounded degree" in Theorem 2 means eps^{-O(ddim)} -- a constant in n.
    // With the guaranteed worst-case gamma the constant is so large that its
    // n-independence only becomes visible past laptop scale, so this check
    // runs with a practical gamma (and still verifies the measured stretch).
    Rng rng(23);
    const EuclideanMetric small = uniform_points(200, 2, 70.0, rng);
    const EuclideanMetric big = uniform_points(800, 2, 140.0, rng);
    const NetSpannerOptions opt{.epsilon = 0.5, .degree_cap = 24, .gamma_override = 9.0};
    const Graph hs = net_spanner(small, opt);
    const Graph hb = net_spanner(big, opt);
    EXPECT_LE(max_stretch_metric(small, hs), 1.5 + 1e-9);
    EXPECT_LE(max_stretch_metric(big, hb), 1.5 + 1e-9);
    // 4x the points must not proportionally inflate the hub degree
    // (sublinear saturation; 1.8x slack absorbs the finite-size transient).
    EXPECT_LE(static_cast<double>(hb.max_degree()),
              1.8 * static_cast<double>(hs.max_degree()) + 8.0);
}

TEST(NetSpannerTest, GeometricStarHubIsTamed) {
    // On the geometric-star metric the *greedy* spanner has degree n-1
    // (hub connected to every arm). The net spanner's delegation must keep
    // the hub's degree far below that while preserving the stretch.
    const std::size_t n = 128;
    const MatrixMetric star = geometric_star_metric(n, 1.7);
    const Graph h = net_spanner(star, NetSpannerOptions{.epsilon = 0.5, .degree_cap = 16});
    EXPECT_LE(max_stretch_metric(star, h), 1.5 + 1e-9);
    EXPECT_LT(h.max_degree(), n / 4);
}

TEST(NetSpannerTest, DegreeCapZeroDisablesDelegation) {
    Rng rng(29);
    const EuclideanMetric pts = uniform_points(120, 2, 50.0, rng);
    const Graph raw = net_spanner(pts, NetSpannerOptions{.epsilon = 0.5, .degree_cap = 0});
    EXPECT_LE(max_stretch_metric(pts, raw), 1.5 + 1e-9);
}

TEST(NetSpannerTest, SizeIsLinearish) {
    // O(n) edges with an eps-dependent constant: doubling n should roughly
    // double the edge count, not quadruple it.
    Rng rng(31);
    const EuclideanMetric small = uniform_points(250, 2, 100.0, rng);
    const EuclideanMetric big = uniform_points(1000, 2, 200.0, rng);
    const double per_small =
        static_cast<double>(net_spanner(small, 0.5).num_edges()) / 250.0;
    const double per_big =
        static_cast<double>(net_spanner(big, 0.5).num_edges()) / 1000.0;
    EXPECT_LT(per_big, per_small * 2.0);
}

}  // namespace
}  // namespace gsp
