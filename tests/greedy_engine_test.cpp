// Kernel-equivalence suite for the unified GreedyEngine: every combination
// of the three optimisations (bidirectional, ball sharing, CSR snapshots)
// must return exactly the same edge set as the naive kernel, on every
// instance family -- that is the engine's core contract, and what lets
// bench_ablation attribute speed differences purely to the optimisations.
#include "core/greedy_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/greedy.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

GreedyEngineOptions config_from_mask(double t, unsigned mask) {
    GreedyEngineOptions options;
    options.stretch = t;
    options.bidirectional = (mask & 1u) != 0;
    options.ball_sharing = (mask & 2u) != 0;
    options.csr_snapshot = (mask & 4u) != 0;
    options.bound_sketch = (mask & 8u) != 0;
    return options;
}

std::string mask_name(unsigned mask) {
    std::string s;
    if (mask & 1u) s += "+bidirectional";
    if (mask & 2u) s += "+ball_sharing";
    if (mask & 4u) s += "+csr_snapshot";
    if (mask & 8u) s += "+bound_sketch";
    return s.empty() ? "naive" : s;
}

/// Run a configured engine over a graph's sorted edge candidates -- the
/// engine-layer equivalent of the deprecated greedy_spanner_with wrapper
/// (this suite tests the engine itself, not the front doors).
Graph run_with(const Graph& g, const GreedyEngineOptions& options,
               GreedyStats* stats = nullptr) {
    GreedyEngine engine(g.num_vertices(), options);
    return engine.run(Graph(g.num_vertices()), sorted_graph_candidates(g), stats);
}

/// The instance families named by the issue: Erdos-Renyi, grid, Euclidean
/// (random geometric, with Euclidean edge weights).
std::vector<std::pair<std::string, Graph>> instance_family(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::pair<std::string, Graph>> out;
    out.emplace_back("erdos_renyi", erdos_renyi(60, 0.15, {.lo = 0.5, .hi = 3.0}, rng));
    out.emplace_back("grid", grid_graph(8, 9, {.lo = 1.0, .hi = 2.0}, rng));
    out.emplace_back("euclidean", random_geometric(70, 0.25, rng));
    return out;
}

class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(EngineEquivalenceTest, EveryConfigurationMatchesTheNaiveKernel) {
    const auto [seed, t] = GetParam();
    for (const auto& [name, g] : instance_family(seed)) {
        GreedyStats naive_stats;
        const Graph naive = run_with(g, config_from_mask(t, 0), &naive_stats);
        EXPECT_EQ(naive_stats.dijkstra_runs, g.num_edges()) << name;
        for (unsigned mask = 1; mask <= 15; ++mask) {
            GreedyStats stats;
            const Graph h = run_with(g, config_from_mask(t, mask), &stats);
            EXPECT_TRUE(same_edge_set(h, naive))
                << name << " diverges under " << mask_name(mask) << " at t=" << t;
            EXPECT_EQ(stats.edges_examined, g.num_edges());
            // No configuration may run *more* queries than the naive loop.
            EXPECT_LE(stats.dijkstra_runs, naive_stats.dijkstra_runs)
                << name << " " << mask_name(mask);
            if ((mask & 4u) != 0) {
                // The incremental store builds once per run; no per-bucket
                // refreeze.
                EXPECT_EQ(stats.csr_rebuilds, 1u);
            } else {
                EXPECT_EQ(stats.csr_rebuilds, 0u);
            }
            if ((mask & 2u) == 0) {
                EXPECT_EQ(stats.balls_computed, 0u);
            }
            if ((mask & 8u) == 0) {
                EXPECT_EQ(stats.sketch_hits, 0u) << mask_name(mask);
                EXPECT_EQ(stats.sketch_accepts, 0u) << mask_name(mask);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EngineEquivalenceTest,
                         ::testing::Combine(::testing::Values(3u, 17u, 101u),
                                            ::testing::Values(1.1, 1.5, 2.0, 4.0)));

TEST(GreedyEngineTest, DeterministicAcrossRuns) {
    Rng rng(9);
    const Graph g = erdos_renyi(80, 0.2, {.lo = 0.5, .hi = 4.0}, rng);
    GreedyEngineOptions options;  // full engine
    options.stretch = 2.0;
    const Graph a = run_with(g, options);
    const Graph b = run_with(g, options);
    // Stronger than same_edge_set: identical insertion sequence.
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (EdgeId id = 0; id < a.num_edges(); ++id) {
        EXPECT_EQ(a.edge(id), b.edge(id));
    }
}

TEST(GreedyEngineTest, ReusedEngineInstanceIsStateless) {
    // One engine, two runs over different candidate lists: the scratch
    // (bounds, groups, epochs) must fully reset between runs.
    Rng rng(21);
    const Graph g1 = erdos_renyi(40, 0.3, {.lo = 1.0, .hi = 2.0}, rng);
    const Graph g2 = grid_graph(5, 8, {.lo = 1.0, .hi = 2.0}, rng);
    GreedyEngineOptions options;
    options.stretch = 1.5;
    // Same vertex count keeps one engine valid for both.
    ASSERT_EQ(g1.num_vertices(), g2.num_vertices());
    GreedyEngine engine(g1.num_vertices(), options);
    const Graph a1 = engine.run(Graph(g1.num_vertices()), sorted_graph_candidates(g1));
    const Graph a2 = engine.run(Graph(g2.num_vertices()), sorted_graph_candidates(g2));
    EXPECT_TRUE(same_edge_set(a1, greedy_spanner(g1, 1.5)));
    EXPECT_TRUE(same_edge_set(a2, greedy_spanner(g2, 1.5)));
}

TEST(GreedyEngineTest, RejectsUnsortedCandidates) {
    GreedyEngineOptions opts;
    opts.stretch = 2.0;
    GreedyEngine engine(3, opts);
    const std::vector<GreedyCandidate> unsorted = {{0, 1, 2.0}, {1, 2, 1.0}};
    EXPECT_THROW(engine.run(Graph(3), unsorted), std::invalid_argument);
}

TEST(GreedyEngineTest, RejectsBadOptions) {
    GreedyEngineOptions bad_stretch;
    bad_stretch.stretch = 0.5;
    EXPECT_THROW(GreedyEngine(3, bad_stretch), std::invalid_argument);
    GreedyEngineOptions bad_ratio;
    bad_ratio.bucket_ratio = 1.0;
    EXPECT_THROW(GreedyEngine(3, bad_ratio), std::invalid_argument);
}

TEST(GreedyEngineTest, PrefilterOnlyShortCircuitsNeverChangesOutput) {
    // A sound reject-only prefilter (here: exact distances on the live
    // spanner, computed independently) must not change any decision.
    Rng rng(33);
    const Graph g = erdos_renyi(50, 0.25, {.lo = 0.5, .hi = 3.0}, rng);
    const double t = 1.8;

    std::size_t rejects = 0;
    const Graph* live = nullptr;
    GreedyEngineOptions options;
    options.stretch = t;
    options.on_bucket = [&](const Graph& h, Weight) { live = &h; };
    options.prefilter = [&](VertexId u, VertexId v, Weight threshold) {
        DijkstraWorkspace ws(live->num_vertices());
        // NOTE: `live` lags intra-bucket insertions, so distances measured
        // on it are upper bounds on the current spanner distance - sound.
        if (ws.distance(*live, u, v, threshold) <= threshold) {
            ++rejects;
            return true;
        }
        return false;
    };
    GreedyStats stats;
    const Graph h = run_with(g, options, &stats);
    EXPECT_TRUE(same_edge_set(h, greedy_spanner(g, t)));
    EXPECT_EQ(stats.prefilter_rejects, rejects);
    EXPECT_GT(rejects, 0u);
}

/// Thread counts the issue names: serial, small, oversubscribed, hardware
/// (0 resolves to std::thread::hardware_concurrency).
const std::size_t kThreadCounts[] = {1, 2, 4, 0};

TEST(ParallelEngineTest, EdgeSetMatchesNaiveAtEveryThreadCount) {
    // The core contract of the three-stage pipeline: stage-2 facts are
    // sound and stage 3 re-verifies every surviving accept in tie order,
    // so the edge set is identical to the naive kernel no matter how many
    // workers prefilter the buckets.
    for (const std::uint64_t seed : {3u, 101u}) {
        for (const auto& [name, g] : instance_family(seed)) {
            const Graph naive = run_with(g, config_from_mask(2.0, 0));
            for (const std::size_t threads : kThreadCounts) {
                for (const bool sharing : {true, false}) {
                    for (const bool sketch : {true, false}) {
                        for (const double accept_gate : {0.25, 1.0}) {
                            for (const bool repair : {true, false}) {
                                GreedyEngineOptions options;
                                options.stretch = 2.0;
                                options.ball_sharing = sharing;
                                options.bound_sketch = sketch;
                                options.num_threads = threads;
                                options.parallel_accept_gate = accept_gate;
                                options.speculative_repair = repair;
                                GreedyStats stats;
                                const Graph h = run_with(g, options, &stats);
                                EXPECT_TRUE(same_edge_set(h, naive))
                                    << name << " diverges at num_threads=" << threads
                                    << " sharing=" << sharing << " sketch=" << sketch
                                    << " gate=" << accept_gate << " repair=" << repair;
                                EXPECT_EQ(stats.edges_examined, g.num_edges());
                                if (!sharing) {
                                    EXPECT_EQ(stats.balls_computed, 0u);
                                }
                                if (!repair) {
                                    EXPECT_EQ(stats.repairs, 0u);
                                    EXPECT_EQ(stats.repair_fallbacks, 0u);
                                    EXPECT_EQ(stats.certs_published, 0u);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

TEST(ParallelEngineTest, StatsAreScheduleIndependent) {
    // Stage-2 decisions (which probes run, what they record) are pure
    // functions of the bucket-start snapshot, so even the *counters* must
    // be reproducible run to run at any fixed thread count.
    Rng rng(55);
    const Graph g = erdos_renyi(90, 0.15, {.lo = 0.5, .hi = 4.0}, rng);
    GreedyEngineOptions options;
    options.stretch = 1.8;
    options.num_threads = 4;
    GreedyStats a;
    GreedyStats b;
    const Graph ha = run_with(g, options, &a);
    const Graph hb = run_with(g, options, &b);
    EXPECT_TRUE(same_edge_set(ha, hb));
    EXPECT_EQ(a.dijkstra_runs, b.dijkstra_runs);
    EXPECT_EQ(a.balls_computed, b.balls_computed);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.snapshot_accepts, b.snapshot_accepts);
    EXPECT_EQ(a.sketch_hits, b.sketch_hits);
    EXPECT_EQ(a.sketch_accepts, b.sketch_accepts);
    EXPECT_EQ(a.csr_rebuilds, b.csr_rebuilds);
    EXPECT_EQ(a.csr_compactions, b.csr_compactions);
    EXPECT_EQ(a.handoff_peak_bytes, b.handoff_peak_bytes);
    EXPECT_EQ(a.edges_added, b.edges_added);
    EXPECT_EQ(a.repairs, b.repairs);
    EXPECT_EQ(a.repair_reprobes, b.repair_reprobes);
    EXPECT_EQ(a.repair_fallbacks, b.repair_fallbacks);
    EXPECT_EQ(a.certs_published, b.certs_published);
    EXPECT_EQ(a.cert_ball_aborts, b.cert_ball_aborts);
}

TEST(ParallelEngineTest, RepairCountersAreWorkerCountIndependent) {
    // The two-phase path's decisions (certificate mode, ball budgets and
    // aborts, which candidates repair vs fall back) are pure functions of
    // the greedy decisions -- so the counters must agree between 2- and
    // 4-worker runs, not just between repeated runs at one width.
    Rng rng(81);
    const Graph g = clustered_geometric(500, 8, 40.0, 1.0, 0.7, rng);
    GreedyStats by_threads[2];
    Graph results[2] = {Graph(0), Graph(0)};
    const std::size_t counts[2] = {2, 4};
    for (int i = 0; i < 2; ++i) {
        GreedyEngineOptions options;
        options.stretch = 1.5;
        options.num_threads = counts[i];
        results[i] = run_with(g, options, &by_threads[i]);
    }
    EXPECT_TRUE(same_edge_set(results[0], results[1]));
    EXPECT_EQ(by_threads[0].repairs, by_threads[1].repairs);
    EXPECT_EQ(by_threads[0].repair_reprobes, by_threads[1].repair_reprobes);
    EXPECT_EQ(by_threads[0].repair_fallbacks, by_threads[1].repair_fallbacks);
    EXPECT_EQ(by_threads[0].certs_published, by_threads[1].certs_published);
    EXPECT_EQ(by_threads[0].cert_ball_aborts, by_threads[1].cert_ball_aborts);
    EXPECT_EQ(by_threads[0].dijkstra_runs, by_threads[1].dijkstra_runs);
    EXPECT_EQ(by_threads[0].snapshot_accepts, by_threads[1].snapshot_accepts);
}

TEST(ParallelEngineTest, AcceptHeavyRunsResolveTentativeAcceptsByRepair) {
    // The tentpole's acceptance shape: on an accept-heavy clustered
    // instance (accept rate > 30%), the two-phase path must resolve the
    // bulk of tentative accepts by certificate repair -- not by falling
    // back to full exact queries -- while staying bit-identical to naive.
    Rng rng(7);
    const Graph g = clustered_geometric(1u << 10, 12, 60.0, 1.0, 0.6, rng);
    GreedyEngineOptions options;
    options.stretch = 1.5;
    options.num_threads = 2;
    GreedyStats stats;
    const Graph h = run_with(g, options, &stats);
    EXPECT_TRUE(same_edge_set(h, greedy_spanner(g, 1.5)));
    const double accept_rate =
        static_cast<double>(h.num_edges()) / static_cast<double>(g.num_edges());
    EXPECT_GT(accept_rate, 0.30);
    EXPECT_GT(stats.repairs, 0u);
    EXPECT_GT(stats.certs_published, 0u);
    // Most repairs stand without even the seeded probe (no insertion
    // touched the certified ball).
    EXPECT_GT(stats.repairs, stats.repair_reprobes);
    const double resolved = static_cast<double>(stats.snapshot_accepts + stats.repairs);
    const double tentative = resolved + static_cast<double>(stats.repair_fallbacks);
    EXPECT_GE(resolved / tentative, 0.70)
        << "repairs=" << stats.repairs << " fallbacks=" << stats.repair_fallbacks;
}

TEST(ParallelEngineTest, RepairedRejectsMatchExactDistances) {
    // A repair that *refutes* a certificate (the seeded probe found a
    // <= threshold path through an inserted edge) is a reject the naive
    // kernel must agree with. Unit weights + tiny batches manufacture
    // exactly that: accepts early in the batch shorten later candidates'
    // pairs below their thresholds.
    for (const std::uint64_t seed : {5u, 23u, 77u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(80, 0.3, {.lo = 1.0, .hi = 1.0}, rng);
        const Graph naive_h = run_with(g, config_from_mask(2.5, 0));
        for (const std::size_t batch : {8u, 64u}) {
            GreedyEngineOptions options;
            options.stretch = 2.5;
            options.num_threads = 2;
            options.parallel_batch = batch;
            options.ball_share_min_group = 2;
            GreedyStats stats;
            const Graph h = run_with(g, options, &stats);
            EXPECT_TRUE(same_edge_set(h, naive_h)) << "seed " << seed
                                                   << " batch " << batch;
        }
    }
}

TEST(ParallelEngineTest, AcceptHeavyBatchesForceNoFullRefreeze) {
    // The acceptance criterion of the incremental store: an accept-heavy
    // parallel run used to refreeze the CSR once per bucket *plus* once
    // per stage-2 batch that followed an insertion -- O(m) each. The
    // gap-buffered view mirrors insertions at O(degree), so the whole run
    // pays exactly one full build no matter how many batches insert.
    Rng rng(12);
    const Graph g = random_graph_nm(600, 4800, {.lo = 1.0, .hi = 2.0}, rng);
    GreedyEngineOptions options;
    options.stretch = 2.0;          // accept-heavy regime (MST-ish phases)
    options.num_threads = 2;
    options.parallel_batch = 64;    // many batches per bucket
    options.parallel_accept_gate = 1.0;  // force stage 2 for every batch
    GreedyStats stats;
    const Graph h = run_with(g, options, &stats);
    EXPECT_TRUE(same_edge_set(h, greedy_spanner(g, 2.0)));
    EXPECT_GT(stats.edges_added, 100u);  // genuinely accept-heavy
    EXPECT_EQ(stats.csr_rebuilds, 1u);   // one build, zero refreezes
    // Amortized merge-on-threshold keeps compactions rare: a run that
    // inserts k edges performs O(k / threshold) compactions, not O(k).
    EXPECT_LE(stats.csr_compactions, 8u);
}

TEST(ParallelEngineTest, SnapshotCertificatesAreConsumed) {
    // On a reject-heavy instance most accepts happen with no insertion
    // since the bucket snapshot, so the insertion loop should be consuming
    // stage-2 "far at snapshot" certificates instead of re-querying.
    Rng rng(8);
    const Graph g = erdos_renyi(120, 0.2, {.lo = 1.0, .hi = 8.0}, rng);
    GreedyEngineOptions options;
    options.stretch = 3.0;  // deep rejection regime
    options.num_threads = 2;
    options.ball_sharing = false;      // route everything through point probes
    options.parallel_accept_gate = 1.0;  // prefilter every batch
    GreedyStats stats;
    const Graph h = run_with(g, options, &stats);
    EXPECT_TRUE(same_edge_set(h, greedy_spanner(g, 3.0)));
    EXPECT_GT(stats.snapshot_accepts, 0u);
}

TEST(ParallelEngineTest, BallsNeverLeakAcrossBatchBoundaries) {
    // Regression guard: a ball's harvest only writes bounds for its own
    // batch-scoped group, so ball reuse must be keyed to the *batch*
    // sequence, not the bucket -- a bucket-keyed ball can be revalidated
    // by a tie-weight same-source candidate of the next batch whose bound
    // was never harvested, and accept an edge the naive kernel rejects.
    //
    // Deterministic trigger (unit weights, one bucket, parallel_batch = 4,
    // t = 2.5, seed edge 3-0): batch 1 accepts 0-1 and 1-2, then source
    // 3's group {(3,1), (3,0)} grows a serial ball (radius 2.5, epoch
    // unchanged afterwards -- both candidates reject), and its 50% accept
    // rate makes stage 2 skip batch 2. Batch 2 holds a duplicate (3,1):
    // its bound was never harvested (different batch group), no insertion
    // happened since the ball, and the radius covers the tie threshold --
    // the buggy bucket-keyed guard accepts it even though the spanner
    // distance is 2 <= 2.5.
    const std::vector<GreedyCandidate> cands = {
        {0, 1, 1.0}, {1, 2, 1.0}, {3, 1, 1.0}, {3, 0, 1.0},  // batch 1
        {3, 1, 1.0},                                         // batch 2
    };
    const auto seeded = [] {
        Graph h(4);
        h.add_edge(3, 0, 1.0);
        return h;
    };
    GreedyEngineOptions naive_options;
    naive_options.stretch = 2.5;
    naive_options.bidirectional = false;
    naive_options.ball_sharing = false;
    naive_options.csr_snapshot = false;
    GreedyEngine naive(4, naive_options);
    const Graph want = naive.run(seeded(), cands);
    ASSERT_EQ(want.num_edges(), 3u);  // seed + 0-1 + 1-2; both (3,1) and (3,0) reject

    GreedyEngineOptions options;
    options.stretch = 2.5;
    options.num_threads = 2;
    options.parallel_batch = 4;
    options.parallel_accept_gate = 0.25;
    options.ball_share_min_group = 2;
    GreedyEngine parallel(4, options);
    const Graph got = parallel.run(seeded(), cands);
    EXPECT_TRUE(same_edge_set(got, want));

    // Broader randomized sweep over the same hazard: unit weights (one
    // bucket, constant tie thresholds) with tiny batches and mixed
    // accept/reject phases at t = 2.5.
    for (const std::uint64_t seed : {4u, 42u, 99u, 7u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(80, 0.3, {.lo = 1.0, .hi = 1.0}, rng);
        const Graph naive_h = run_with(g, config_from_mask(2.5, 0));
        for (const std::size_t batch : {4u, 8u, 32u}) {
            GreedyEngineOptions sweep;
            sweep.stretch = 2.5;
            sweep.num_threads = 2;
            sweep.parallel_batch = batch;
            sweep.parallel_accept_gate = 0.25;
            sweep.ball_share_min_group = 2;
            const Graph h = run_with(g, sweep);
            EXPECT_TRUE(same_edge_set(h, naive_h))
                << "seed " << seed << " batch " << batch;
        }
    }
}

TEST(ParallelEngineTest, ConcurrentPrefilterRejectsSoundly) {
    // A sound concurrent oracle (exact distances on a copy of the
    // bucket-start spanner, one workspace per worker) must not change any
    // decision, and its rejects must be counted deterministically.
    Rng rng(33);
    const Graph g = erdos_renyi(60, 0.25, {.lo = 0.5, .hi = 3.0}, rng);
    const double t = 1.8;

    GreedyEngineOptions options;
    options.stretch = t;
    options.num_threads = 3;
    options.parallel_accept_gate = 1.0;  // stage 2 (and its oracle) every batch
    options.prefilter_gate = GreedyEngineOptions::PrefilterGate::kAlways;
    auto frozen = std::make_shared<Graph>(0);
    options.on_bucket = [frozen](const Graph& h, Weight) { *frozen = h; };
    auto oracle_ws = std::make_shared<std::vector<DijkstraWorkspace>>(3);
    options.concurrent_prefilter = [frozen, oracle_ws](std::size_t worker, VertexId u,
                                                       VertexId v, Weight threshold) {
        // `frozen` lags intra-bucket insertions, so its distances are upper
        // bounds on the current spanner distance -- sound reject evidence.
        return (*oracle_ws)[worker].distance(*frozen, u, v, threshold) <= threshold;
    };
    GreedyStats stats;
    const Graph h = run_with(g, options, &stats);
    EXPECT_TRUE(same_edge_set(h, greedy_spanner(g, t)));
    EXPECT_GT(stats.prefilter_rejects, 0u);

    GreedyStats again;
    (void)run_with(g, options, &again);
    EXPECT_EQ(stats.prefilter_rejects, again.prefilter_rejects);
}

TEST(ParallelEngineTest, AdaptiveGateDisablesAWastefulPrefilter) {
    // A prefilter that never rejects anything is pure overhead; the
    // measured-cost gate must switch it off mid-run (and must not change
    // the output, since a never-rejecting filter decides nothing).
    Rng rng(19);
    const Graph g = random_graph_nm(400, 4000, {.lo = 1.0, .hi = 2.0}, rng);
    std::size_t calls = 0;
    GreedyEngineOptions options;
    options.stretch = 2.0;
    options.prefilter = [&calls](VertexId, VertexId, Weight) {
        ++calls;
        // Burn enough work that the gate's timing window sees a real cost.
        volatile double sink = 0.0;
        for (int i = 0; i < 2000; ++i) sink = sink + static_cast<double>(i);
        return false;
    };
    GreedyStats stats;
    const Graph h = run_with(g, options, &stats);
    EXPECT_TRUE(same_edge_set(h, greedy_spanner(g, 2.0)));
    EXPECT_EQ(stats.prefilter_gated_off, 1u);
    EXPECT_LT(calls, g.num_edges());  // stopped consulting it mid-run

    // kAlways is the explicit opt-in that bypasses the gate.
    calls = 0;
    options.prefilter_gate = GreedyEngineOptions::PrefilterGate::kAlways;
    GreedyStats always_stats;
    (void)run_with(g, options, &always_stats);
    EXPECT_EQ(always_stats.prefilter_gated_off, 0u);
    EXPECT_EQ(calls, g.num_edges());
}

TEST(GreedyEngineTest, SeededSpannerEdgesAreRespected) {
    // Pre-seeded edges (the approximate-greedy E0 set) participate in
    // distance queries from the first bucket on.
    Graph seed(4);
    seed.add_edge(0, 1, 1.0);
    seed.add_edge(1, 2, 1.0);
    GreedyEngineOptions opts;
    opts.stretch = 2.0;
    GreedyEngine engine(4, opts);
    // Candidate (0, 2) has witness path 0-1-2 of weight 2 <= 2 * 1.5.
    const std::vector<GreedyCandidate> cands = {{0, 2, 1.5}, {2, 3, 2.0}};
    const Graph h = engine.run(std::move(seed), cands);
    EXPECT_EQ(h.num_edges(), 3u);
    EXPECT_FALSE(h.has_edge(0, 2));
    EXPECT_TRUE(h.has_edge(2, 3));
}

}  // namespace
}  // namespace gsp
