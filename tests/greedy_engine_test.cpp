// Kernel-equivalence suite for the unified GreedyEngine: every combination
// of the three optimisations (bidirectional, ball sharing, CSR snapshots)
// must return exactly the same edge set as the naive kernel, on every
// instance family -- that is the engine's core contract, and what lets
// bench_ablation attribute speed differences purely to the optimisations.
#include "core/greedy_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/greedy.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

GreedyEngineOptions config_from_mask(double t, unsigned mask) {
    GreedyEngineOptions options;
    options.stretch = t;
    options.bidirectional = (mask & 1u) != 0;
    options.ball_sharing = (mask & 2u) != 0;
    options.csr_snapshot = (mask & 4u) != 0;
    return options;
}

std::string mask_name(unsigned mask) {
    std::string s;
    if (mask & 1u) s += "+bidirectional";
    if (mask & 2u) s += "+ball_sharing";
    if (mask & 4u) s += "+csr_snapshot";
    return s.empty() ? "naive" : s;
}

/// The instance families named by the issue: Erdos-Renyi, grid, Euclidean
/// (random geometric, with Euclidean edge weights).
std::vector<std::pair<std::string, Graph>> instance_family(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::pair<std::string, Graph>> out;
    out.emplace_back("erdos_renyi", erdos_renyi(60, 0.15, {.lo = 0.5, .hi = 3.0}, rng));
    out.emplace_back("grid", grid_graph(8, 9, {.lo = 1.0, .hi = 2.0}, rng));
    out.emplace_back("euclidean", random_geometric(70, 0.25, rng));
    return out;
}

class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(EngineEquivalenceTest, EveryConfigurationMatchesTheNaiveKernel) {
    const auto [seed, t] = GetParam();
    for (const auto& [name, g] : instance_family(seed)) {
        GreedyStats naive_stats;
        const Graph naive = greedy_spanner_with(g, config_from_mask(t, 0), &naive_stats);
        EXPECT_EQ(naive_stats.dijkstra_runs, g.num_edges()) << name;
        for (unsigned mask = 1; mask <= 7; ++mask) {
            GreedyStats stats;
            const Graph h = greedy_spanner_with(g, config_from_mask(t, mask), &stats);
            EXPECT_TRUE(same_edge_set(h, naive))
                << name << " diverges under " << mask_name(mask) << " at t=" << t;
            EXPECT_EQ(stats.edges_examined, g.num_edges());
            // No configuration may run *more* queries than the naive loop.
            EXPECT_LE(stats.dijkstra_runs, naive_stats.dijkstra_runs)
                << name << " " << mask_name(mask);
            if ((mask & 4u) != 0) {
                EXPECT_EQ(stats.csr_rebuilds, stats.buckets);
            } else {
                EXPECT_EQ(stats.csr_rebuilds, 0u);
            }
            if ((mask & 2u) == 0) EXPECT_EQ(stats.balls_computed, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EngineEquivalenceTest,
                         ::testing::Combine(::testing::Values(3u, 17u, 101u),
                                            ::testing::Values(1.1, 1.5, 2.0, 4.0)));

TEST(GreedyEngineTest, DeterministicAcrossRuns) {
    Rng rng(9);
    const Graph g = erdos_renyi(80, 0.2, {.lo = 0.5, .hi = 4.0}, rng);
    GreedyEngineOptions options;  // full engine
    options.stretch = 2.0;
    const Graph a = greedy_spanner_with(g, options);
    const Graph b = greedy_spanner_with(g, options);
    // Stronger than same_edge_set: identical insertion sequence.
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (EdgeId id = 0; id < a.num_edges(); ++id) {
        EXPECT_EQ(a.edge(id), b.edge(id));
    }
}

TEST(GreedyEngineTest, ReusedEngineInstanceIsStateless) {
    // One engine, two runs over different candidate lists: the scratch
    // (bounds, groups, epochs) must fully reset between runs.
    Rng rng(21);
    const Graph g1 = erdos_renyi(40, 0.3, {.lo = 1.0, .hi = 2.0}, rng);
    const Graph g2 = grid_graph(5, 8, {.lo = 1.0, .hi = 2.0}, rng);
    GreedyEngineOptions options;
    options.stretch = 1.5;
    // Same vertex count keeps one engine valid for both.
    ASSERT_EQ(g1.num_vertices(), g2.num_vertices());
    GreedyEngine engine(g1.num_vertices(), options);
    const Graph a1 = engine.run(Graph(g1.num_vertices()), sorted_graph_candidates(g1));
    const Graph a2 = engine.run(Graph(g2.num_vertices()), sorted_graph_candidates(g2));
    EXPECT_TRUE(same_edge_set(a1, greedy_spanner(g1, 1.5)));
    EXPECT_TRUE(same_edge_set(a2, greedy_spanner(g2, 1.5)));
}

TEST(GreedyEngineTest, RejectsUnsortedCandidates) {
    GreedyEngine engine(3, GreedyEngineOptions{.stretch = 2.0});
    const std::vector<GreedyCandidate> unsorted = {{0, 1, 2.0}, {1, 2, 1.0}};
    EXPECT_THROW(engine.run(Graph(3), unsorted), std::invalid_argument);
}

TEST(GreedyEngineTest, RejectsBadOptions) {
    EXPECT_THROW(GreedyEngine(3, GreedyEngineOptions{.stretch = 0.5}),
                 std::invalid_argument);
    GreedyEngineOptions bad_ratio;
    bad_ratio.bucket_ratio = 1.0;
    EXPECT_THROW(GreedyEngine(3, bad_ratio), std::invalid_argument);
}

TEST(GreedyEngineTest, PrefilterOnlyShortCircuitsNeverChangesOutput) {
    // A sound reject-only prefilter (here: exact distances on the live
    // spanner, computed independently) must not change any decision.
    Rng rng(33);
    const Graph g = erdos_renyi(50, 0.25, {.lo = 0.5, .hi = 3.0}, rng);
    const double t = 1.8;

    std::size_t rejects = 0;
    const Graph* live = nullptr;
    GreedyEngineOptions options;
    options.stretch = t;
    options.on_bucket = [&](const Graph& h, Weight) { live = &h; };
    options.prefilter = [&](VertexId u, VertexId v, Weight threshold) {
        DijkstraWorkspace ws(live->num_vertices());
        // NOTE: `live` lags intra-bucket insertions, so distances measured
        // on it are upper bounds on the current spanner distance - sound.
        if (ws.distance(*live, u, v, threshold) <= threshold) {
            ++rejects;
            return true;
        }
        return false;
    };
    GreedyStats stats;
    const Graph h = greedy_spanner_with(g, options, &stats);
    EXPECT_TRUE(same_edge_set(h, greedy_spanner(g, t)));
    EXPECT_EQ(stats.prefilter_rejects, rejects);
    EXPECT_GT(rejects, 0u);
}

TEST(GreedyEngineTest, SeededSpannerEdgesAreRespected) {
    // Pre-seeded edges (the approximate-greedy E0 set) participate in
    // distance queries from the first bucket on.
    Graph seed(4);
    seed.add_edge(0, 1, 1.0);
    seed.add_edge(1, 2, 1.0);
    GreedyEngine engine(4, GreedyEngineOptions{.stretch = 2.0});
    // Candidate (0, 2) has witness path 0-1-2 of weight 2 <= 2 * 1.5.
    const std::vector<GreedyCandidate> cands = {{0, 2, 1.5}, {2, 3, 2.0}};
    const Graph h = engine.run(std::move(seed), cands);
    EXPECT_EQ(h.num_edges(), 3u);
    EXPECT_FALSE(h.has_edge(0, 2));
    EXPECT_TRUE(h.has_edge(2, 3));
}

}  // namespace
}  // namespace gsp
