#include "io/graph_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(GraphIoTest, RoundTripPreservesEverything) {
    Rng rng(3);
    const Graph g = erdos_renyi(40, 0.2, {.lo = 0.1, .hi = 9.0}, rng);
    std::stringstream ss;
    write_graph(ss, g);
    const Graph back = read_graph(ss);
    EXPECT_TRUE(same_edge_set(g, back));
}

TEST(GraphIoTest, RoundTripFullPrecisionWeights) {
    Graph g(2);
    g.add_edge(0, 1, 0.1 + 0.2);  // a value that truncates badly at low precision
    std::stringstream ss;
    write_graph(ss, g);
    const Graph back = read_graph(ss);
    EXPECT_EQ(back.edge(0).weight, g.edge(0).weight);  // bitwise round-trip
}

TEST(GraphIoTest, MalformedInputsThrow) {
    {
        std::stringstream ss("");
        EXPECT_THROW((void)read_graph(ss), std::invalid_argument);
    }
    {
        std::stringstream ss("3 2\n0 1 1.0\n");  // promises 2 edges, has 1
        EXPECT_THROW((void)read_graph(ss), std::invalid_argument);
    }
    {
        std::stringstream ss("2 1\n0 5 1.0\n");  // endpoint out of range
        EXPECT_THROW((void)read_graph(ss), std::out_of_range);
    }
    {
        std::stringstream ss("2 1\n0 1 -1.0\n");  // bad weight
        EXPECT_THROW((void)read_graph(ss), std::invalid_argument);
    }
}

TEST(PointIoTest, RoundTrip) {
    Rng rng(7);
    const EuclideanMetric pts = uniform_points(30, 3, 100.0, rng);
    std::stringstream ss;
    write_points(ss, pts);
    const EuclideanMetric back = read_points(ss);
    ASSERT_EQ(back.size(), pts.size());
    ASSERT_EQ(back.dim(), pts.dim());
    for (VertexId i = 0; i < pts.size(); ++i) {
        for (std::size_t k = 0; k < pts.dim(); ++k) {
            EXPECT_EQ(back.point(i)[k], pts.point(i)[k]);
        }
    }
}

TEST(PointIoTest, MalformedInputsThrow) {
    {
        std::stringstream ss("5 0\n");
        EXPECT_THROW((void)read_points(ss), std::invalid_argument);
    }
    {
        std::stringstream ss("2 2\n1.0 2.0\n");  // truncated
        EXPECT_THROW((void)read_points(ss), std::invalid_argument);
    }
}

TEST(DotTest, EmitsAllEdges) {
    Graph g(3);
    g.add_edge(0, 1, 1.5);
    g.add_edge(1, 2, 2.5);
    std::stringstream ss;
    write_dot(ss, g, "demo");
    const std::string out = ss.str();
    EXPECT_NE(out.find("graph demo {"), std::string::npos);
    EXPECT_NE(out.find("0 -- 1"), std::string::npos);
    EXPECT_NE(out.find("1 -- 2"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace gsp
