// Old-vs-new API equivalence: every registry entry built through a
// SpannerSession must be bit-identical to its legacy entry point
// (property-tested across {graph, metric, euclidean} inputs and thread
// counts {1, 2, 4, hardware}), and a session reused across heterogeneous
// builds must match fresh sessions exactly -- edge sets *and* stats.
//
// The deprecated-wrapper comparisons compile only without
// GSP_NO_DEPRECATED; the session-vs-convenience and session-vs-baseline
// comparisons run in both configurations.
#include "api/session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/build_options.hpp"
#include "api/candidate_source.hpp"
#include "api/registry.hpp"
#include "core/approx_greedy.hpp"
#include "core/greedy.hpp"
#include "core/greedy_metric.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "graph/graph.hpp"
#include "spanners/baswana_sen.hpp"
#include "spanners/net_spanner.hpp"
#include "spanners/theta_graph.hpp"
#include "spanners/wspd_spanner.hpp"
#include "spanners/yao_graph.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

/// Thread counts the issue names (0 = hardware concurrency).
const std::size_t kThreadCounts[] = {1, 2, 4, 0};

/// Field-by-field stats equality, seconds excluded (wall clock is the one
/// legitimately nondeterministic field).
void expect_stats_equal(const GreedyStats& a, const GreedyStats& b,
                        const std::string& label) {
    EXPECT_EQ(a.edges_examined, b.edges_examined) << label;
    EXPECT_EQ(a.edges_added, b.edges_added) << label;
    EXPECT_EQ(a.dijkstra_runs, b.dijkstra_runs) << label;
    EXPECT_EQ(a.balls_computed, b.balls_computed) << label;
    EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
    EXPECT_EQ(a.csr_rebuilds, b.csr_rebuilds) << label;
    EXPECT_EQ(a.csr_compactions, b.csr_compactions) << label;
    EXPECT_EQ(a.bidirectional_meets, b.bidirectional_meets) << label;
    EXPECT_EQ(a.prefilter_rejects, b.prefilter_rejects) << label;
    EXPECT_EQ(a.buckets, b.buckets) << label;
    EXPECT_EQ(a.snapshot_accepts, b.snapshot_accepts) << label;
    EXPECT_EQ(a.repairs, b.repairs) << label;
    EXPECT_EQ(a.repair_reprobes, b.repair_reprobes) << label;
    EXPECT_EQ(a.repair_fallbacks, b.repair_fallbacks) << label;
    EXPECT_EQ(a.certs_published, b.certs_published) << label;
    EXPECT_EQ(a.cert_ball_aborts, b.cert_ball_aborts) << label;
    EXPECT_EQ(a.sketch_hits, b.sketch_hits) << label;
    EXPECT_EQ(a.sketch_accepts, b.sketch_accepts) << label;
    EXPECT_EQ(a.handoff_peak_bytes, b.handoff_peak_bytes) << label;
}

class ApiEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApiEquivalenceTest, GreedyRegistryEntryMatchesConvenienceAtEveryThreadCount) {
    Rng rng(GetParam());
    const Graph g = erdos_renyi(70, 0.2, {.lo = 0.5, .hi = 3.0}, rng);
    const double t = 1.8;
    const Graph legacy = greedy_spanner(g, t);
    for (const std::size_t threads : kThreadCounts) {
        SpannerSession session;
        BuildOptions options;
        options.stretch = t;
        options.engine.num_threads = threads;
        const Graph h = AlgorithmRegistry::global().build("greedy", session,
                                                          BuildInput::of(g), options);
        EXPECT_TRUE(same_edge_set(h, legacy)) << "threads=" << threads;
    }
}

TEST_P(ApiEquivalenceTest, MetricRegistryEntryMatchesConvenienceAtEveryThreadCount) {
    Rng rng(GetParam() ^ 0xabcd);
    const EuclideanMetric pts = uniform_points(45, 2, 60.0, rng);
    const double t = 1.4;
    const Graph legacy = greedy_spanner_metric(pts, t);
    for (const std::size_t threads : kThreadCounts) {
        SpannerSession session;
        BuildOptions options;
        options.stretch = t;
        options.engine.num_threads = threads;
        const Graph h = AlgorithmRegistry::global().build(
            "greedy-metric", session, BuildInput::of(pts), options);
        EXPECT_TRUE(same_edge_set(h, legacy)) << "threads=" << threads;
    }
}

TEST_P(ApiEquivalenceTest, ApproxRegistryEntryMatchesConvenienceAtEveryThreadCount) {
    Rng rng(GetParam() ^ 0x7777);
    const EuclideanMetric pts = uniform_points(120, 2, 80.0, rng);
    const ApproxGreedyResult legacy = approx_greedy_spanner(pts, 0.5);
    for (const std::size_t threads : kThreadCounts) {
        SpannerSession session;
        BuildOptions options;
        options.approx.epsilon = 0.5;
        options.engine.num_threads = threads;
        const Graph h = AlgorithmRegistry::global().build(
            "greedy-approx", session, BuildInput::of(pts), options);
        EXPECT_TRUE(same_edge_set(h, legacy.spanner)) << "threads=" << threads;
    }
}

TEST_P(ApiEquivalenceTest, BaselineRegistryEntriesMatchTheirDirectConstructors) {
    Rng rng(GetParam() ^ 0x1357);
    const std::size_t n = 60;
    const Graph g = erdos_renyi(n, 0.25, {.lo = 1.0, .hi = 2.0}, rng);
    const EuclideanMetric pts = uniform_points(n, 2, 50.0, rng);
    SpannerSession session;
    BuildOptions options;
    options.geometric.cones = 10;
    options.geometric.epsilon = 0.5;
    options.geometric.net_degree_cap = 16;
    options.baswana_sen.k = 2;
    options.baswana_sen.seed = GetParam();
    const AlgorithmRegistry& registry = AlgorithmRegistry::global();

    EXPECT_TRUE(same_edge_set(
        registry.build("theta", session, BuildInput::of(pts), options),
        theta_graph_sweep(pts, 10)));
    EXPECT_TRUE(same_edge_set(
        registry.build("yao", session, BuildInput::of(pts), options),
        yao_graph(pts, 10)));
    EXPECT_TRUE(same_edge_set(
        registry.build("wspd", session, BuildInput::of(pts), options),
        wspd_spanner(pts, 0.5)));
    EXPECT_TRUE(same_edge_set(
        registry.build("net", session, BuildInput::of(pts), options),
        net_spanner(pts, NetSpannerOptions{.epsilon = 0.5, .degree_cap = 16})));
    EXPECT_TRUE(same_edge_set(
        registry.build("baswana-sen", session, BuildInput::of(g), options),
        baswana_sen_spanner(g, 2, GetParam())));
}

TEST_P(ApiEquivalenceTest, WspdGreedyIsDeterministicAndThreadCountInvariant) {
    // greedy-wspd is new with this API (no legacy entry point): pin down
    // determinism and thread-count invariance instead.
    Rng rng(GetParam() ^ 0x2468);
    const EuclideanMetric pts = uniform_points(80, 2, 70.0, rng);
    BuildOptions options;
    options.stretch = 1.5;
    options.geometric.wspd_separation = 10.0;
    SpannerSession reference_session;
    const Graph reference = AlgorithmRegistry::global().build(
        "greedy-wspd", reference_session, BuildInput::of(pts), options);
    for (const std::size_t threads : kThreadCounts) {
        SpannerSession session;
        options.engine.num_threads = threads;
        const Graph h = AlgorithmRegistry::global().build(
            "greedy-wspd", session, BuildInput::of(pts), options);
        EXPECT_TRUE(same_edge_set(h, reference)) << "threads=" << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApiEquivalenceTest, ::testing::Values(3u, 41u, 907u));

TEST(SessionReuseTest, ThreeHeterogeneousBuildsMatchThreeFreshSessions) {
    // The session-reuse contract, stats included: warm arenas must never
    // leak one build's state into the next.
    Rng rng(77);
    const Graph g = erdos_renyi(64, 0.2, {.lo = 0.5, .hi = 3.0}, rng);
    const EuclideanMetric pts = uniform_points(40, 2, 50.0, rng);
    const EuclideanMetric pts_big = uniform_points(52, 2, 80.0, rng);

    BuildOptions graph_options;
    graph_options.stretch = 2.0;
    graph_options.engine.num_threads = 2;
    BuildOptions metric_options;
    metric_options.stretch = 1.4;
    BuildOptions wspd_options;
    wspd_options.stretch = 1.5;
    wspd_options.engine.num_threads = 2;
    wspd_options.geometric.wspd_separation = 9.0;

    GraphCandidateSource graph_source(g);
    MetricCandidateSource metric_source(pts);
    WspdCandidateSource wspd_source(pts_big, 9.0);

    // One session, three heterogeneous builds (different sources, vertex
    // counts, thread counts).
    SpannerSession reused;
    BuildReport r1, r2, r3;
    const Graph h1 = reused.build(graph_source, graph_options, &r1);
    const Graph h2 = reused.build(metric_source, metric_options, &r2);
    const Graph h3 = reused.build(wspd_source, wspd_options, &r3);

    // Three fresh sessions.
    SpannerSession f1, f2, f3;
    BuildReport s1, s2, s3;
    const Graph k1 = f1.build(graph_source, graph_options, &s1);
    const Graph k2 = f2.build(metric_source, metric_options, &s2);
    const Graph k3 = f3.build(wspd_source, wspd_options, &s3);

    EXPECT_TRUE(same_edge_set(h1, k1));
    EXPECT_TRUE(same_edge_set(h2, k2));
    EXPECT_TRUE(same_edge_set(h3, k3));
    expect_stats_equal(r1.stats, s1.stats, "graph build");
    expect_stats_equal(r2.stats, s2.stats, "metric build");
    expect_stats_equal(r3.stats, s3.stats, "wspd build");
    // And the warm session really was warm where shapes repeated.
    EXPECT_EQ(r3.pools_constructed, 0u);  // the mt2 pool came from build 1
}

TEST(SessionReuseTest, ApproxThroughOneSessionMatchesFreshSessions) {
    Rng rng(91);
    const EuclideanMetric pts = uniform_points(150, 2, 90.0, rng);
    BuildOptions options;
    options.approx.epsilon = 0.5;
    options.engine.num_threads = 2;

    SpannerSession reused;
    const ApproxGreedyResult a = approx_greedy_build(reused, pts, options);
    const ApproxGreedyResult b = approx_greedy_build(reused, pts, options);
    SpannerSession fresh;
    const ApproxGreedyResult c = approx_greedy_build(fresh, pts, options);
    EXPECT_TRUE(same_edge_set(a.spanner, b.spanner));
    EXPECT_TRUE(same_edge_set(a.spanner, c.spanner));
    EXPECT_EQ(a.oracle_rejects, c.oracle_rejects);
    EXPECT_EQ(a.exact_queries, c.exact_queries);
    EXPECT_EQ(a.light_edges, c.light_edges);
}

#ifndef GSP_NO_DEPRECATED
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(DeprecatedWrapperTest, GreedySpannerWithMatchesSession) {
    Rng rng(13);
    const Graph g = erdos_renyi(60, 0.25, {.lo = 0.5, .hi = 3.0}, rng);
    for (const std::size_t threads : kThreadCounts) {
        GreedyEngineOptions legacy_options;
        legacy_options.stretch = 1.7;
        legacy_options.num_threads = threads;
        GreedyStats legacy_stats;
        const Graph legacy = greedy_spanner_with(g, legacy_options, &legacy_stats);

        SpannerSession session;
        BuildOptions options;
        options.stretch = 1.7;
        options.engine.num_threads = threads;
        GraphCandidateSource source(g);
        BuildReport report;
        const Graph h = session.build(source, options, &report);
        EXPECT_TRUE(same_edge_set(h, legacy)) << "threads=" << threads;
        expect_stats_equal(report.stats, legacy_stats,
                           "threads=" + std::to_string(threads));
    }
}

TEST(DeprecatedWrapperTest, MetricGreedyOptionsMatchesSessionIncludingNaiveMode) {
    Rng rng(17);
    const EuclideanMetric pts = uniform_points(40, 2, 40.0, rng);
    for (const bool cached : {false, true}) {
        MetricGreedyOptions legacy_options;
        legacy_options.stretch = 1.3;
        legacy_options.use_distance_cache = cached;
        GreedyStats legacy_stats;
        const Graph legacy = greedy_spanner_metric(pts, legacy_options, &legacy_stats);

        SpannerSession session;
        BuildOptions options;
        options.stretch = 1.3;
        if (!cached) options.engine = EngineTuning::naive();
        MetricCandidateSource source(pts);
        BuildReport report;
        const Graph h = session.build(source, options, &report);
        EXPECT_TRUE(same_edge_set(h, legacy)) << "cached=" << cached;
        expect_stats_equal(report.stats, legacy_stats,
                           cached ? "cached" : "naive");
    }
}

TEST(DeprecatedWrapperTest, ApproxGreedyOptionsMatchesBuild) {
    Rng rng(19);
    const EuclideanMetric pts = uniform_points(130, 2, 70.0, rng);
    ApproxGreedyOptions legacy_options;
    legacy_options.epsilon = 0.5;
    legacy_options.theta_cones_override = 12;
    legacy_options.engine.num_threads = 2;
    const ApproxGreedyResult legacy = approx_greedy_spanner(pts, legacy_options);

    SpannerSession session;
    BuildOptions options;
    options.approx.epsilon = 0.5;
    options.approx.theta_cones_override = 12;
    options.engine.num_threads = 2;
    const ApproxGreedyResult fresh = approx_greedy_build(session, pts, options);
    EXPECT_TRUE(same_edge_set(legacy.spanner, fresh.spanner));
    EXPECT_TRUE(same_edge_set(legacy.base, fresh.base));
    EXPECT_EQ(legacy.light_edges, fresh.light_edges);
    EXPECT_EQ(legacy.oracle_rejects, fresh.oracle_rejects);
}

TEST(DeprecatedWrapperTest, WrappersZeroTheirStatsOutParam) {
    Rng rng(23);
    const Graph g = erdos_renyi(30, 0.4, {.lo = 1.0, .hi = 2.0}, rng);
    GreedyStats stats;
    GreedyEngineOptions options;
    options.stretch = 2.0;
    (void)greedy_spanner_with(g, options, &stats);
    ASSERT_GT(stats.edges_examined, 0u);
    options.stretch = 0.2;  // invalid: the wrapper must zero, then throw
    EXPECT_THROW((void)greedy_spanner_with(g, options, &stats), std::invalid_argument);
    EXPECT_EQ(stats.edges_examined, 0u);

    const EuclideanMetric pts = uniform_points(20, 2, 10.0, rng);
    GreedyStats metric_stats;
    MetricGreedyOptions metric_opts;
    metric_opts.stretch = 1.5;
    (void)greedy_spanner_metric(pts, metric_opts, &metric_stats);
    ASSERT_GT(metric_stats.edges_examined, 0u);
    MetricGreedyOptions bad_metric_opts;
    bad_metric_opts.stretch = 0.1;
    EXPECT_THROW((void)greedy_spanner_metric(pts, bad_metric_opts, &metric_stats),
                 std::invalid_argument);
    EXPECT_EQ(metric_stats.edges_examined, 0u);
}

#pragma GCC diagnostic pop
#endif  // GSP_NO_DEPRECATED

}  // namespace
}  // namespace gsp
