// Tests for the unified API layer (src/api): BuildOptions validation, the
// candidate-source seam, SpannerSession warm-start counters, BuildReport
// (reset-per-run + JSON), and the algorithm registry.
#include "api/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>

#include "analysis/audit.hpp"
#include "api/build_options.hpp"
#include "api/build_report.hpp"
#include "api/candidate_source.hpp"
#include "api/registry.hpp"
#include "core/greedy.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "metric/matrix_metric.hpp"
#include "spanners/reroute.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(BuildOptionsTest, ValidatesTheSharedFields) {
    BuildOptions ok;
    EXPECT_NO_THROW(ok.validate());

    BuildOptions bad_stretch;
    bad_stretch.stretch = 0.5;
    EXPECT_THROW(bad_stretch.validate(), std::invalid_argument);

    BuildOptions bad_ratio;
    bad_ratio.engine.bucket_ratio = 1.0;
    EXPECT_THROW(bad_ratio.validate(), std::invalid_argument);

    BuildOptions bad_ways;
    bad_ways.engine.sketch_ways = 3;
    EXPECT_THROW(bad_ways.validate(), std::invalid_argument);

    BuildOptions bad_batch;
    bad_batch.engine.parallel_batch = 0;
    EXPECT_THROW(bad_batch.validate(), std::invalid_argument);
}

TEST(BuildOptionsTest, SectionsAreValidatedOnlyByTheirConsumers) {
    // A build must never be vetoed by a section it does not consume: a
    // theta build with a nonsense approx section goes through, while the
    // same options fail on the algorithm that actually reads the section.
    Rng rng(4);
    const EuclideanMetric pts = uniform_points(24, 2, 10.0, rng);
    const Graph g = erdos_renyi(24, 0.3, {.lo = 1.0, .hi = 2.0}, rng);
    SpannerSession session;
    const AlgorithmRegistry& registry = AlgorithmRegistry::global();

    BuildOptions options;
    options.approx.epsilon = 2.0;   // invalid for greedy-approx only
    options.baswana_sen.k = 0;      // invalid for baswana-sen only
    EXPECT_NO_THROW(registry.build("theta", session, BuildInput::of(pts), options));
    EXPECT_NO_THROW(registry.build("greedy", session, BuildInput::of(g), options));
    EXPECT_THROW(registry.build("greedy-approx", session, BuildInput::of(pts), options),
                 std::invalid_argument);
    EXPECT_THROW(registry.build("baswana-sen", session, BuildInput::of(g), options),
                 std::invalid_argument);
    BuildOptions theta_opts;
    theta_opts.geometric.cones = 3;
    EXPECT_THROW(registry.build("theta", session, BuildInput::of(pts), theta_opts),
                 std::invalid_argument);
}

TEST(RegistryTest, CoversTheAdvertisedAlgorithms) {
    const AlgorithmRegistry& registry = AlgorithmRegistry::global();
    std::set<std::string> names;
    for (const AlgorithmInfo* info : registry.algorithms()) {
        names.insert(std::string(info->name));
        EXPECT_EQ(registry.find(info->name), info);
    }
    for (const char* expected :
         {"greedy", "greedy-metric", "greedy-approx", "greedy-wspd", "theta", "yao",
          "wspd", "net", "baswana-sen"}) {
        EXPECT_TRUE(names.count(expected)) << expected << " missing from the registry";
    }
    EXPECT_EQ(registry.find("no-such-algorithm"), nullptr);
}

TEST(RegistryTest, RejectsUnknownNamesAndInputMismatches) {
    Rng rng(3);
    const Graph g = erdos_renyi(20, 0.3, {.lo = 1.0, .hi = 2.0}, rng);
    const EuclideanMetric pts = uniform_points(20, 3, 10.0, rng);  // 3D on purpose
    const MatrixMetric mat({{0, 1, 2}, {1, 0, 1}, {2, 1, 0}}, true);
    SpannerSession session;
    const BuildOptions options;
    const AlgorithmRegistry& registry = AlgorithmRegistry::global();

    EXPECT_THROW(registry.build("nope", session, BuildInput::of(g), options),
                 std::invalid_argument);
    // greedy needs a graph; theta needs a *2D* Euclidean metric; greedy-wspd
    // accepts any-dimension Euclidean but not a matrix metric.
    EXPECT_THROW(registry.build("greedy", session, BuildInput::of(pts), options),
                 std::invalid_argument);
    EXPECT_THROW(registry.build("theta", session, BuildInput::of(pts), options),
                 std::invalid_argument);
    EXPECT_THROW(registry.build("greedy-wspd", session, BuildInput::of(mat), options),
                 std::invalid_argument);
    EXPECT_NO_THROW(registry.build("greedy-wspd", session, BuildInput::of(pts), options));
}

TEST(SpannerSessionTest, WarmBuildsConstructNoPoolsOrWorkspaces) {
    Rng rng(5);
    const Graph g = erdos_renyi(60, 0.2, {.lo = 1.0, .hi = 2.0}, rng);
    SpannerSession session;
    BuildOptions options;
    options.stretch = 2.0;
    options.engine.num_threads = 2;
    GraphCandidateSource source(g);

    BuildReport first;
    (void)session.build(source, options, &first);
    EXPECT_GT(first.pools_constructed, 0u);
    EXPECT_GT(first.workspaces_constructed, 0u);

    for (int i = 0; i < 3; ++i) {
        BuildReport warm;
        (void)session.build(source, options, &warm);
        EXPECT_EQ(warm.pools_constructed, 0u) << "warm build " << i;
        EXPECT_EQ(warm.workspaces_constructed, 0u) << "warm build " << i;
    }
    EXPECT_EQ(session.builds(), 4u);
}

TEST(SpannerSessionTest, DistinctThreadCountsEachWarmUpOnce) {
    Rng rng(6);
    const Graph g = erdos_renyi(50, 0.25, {.lo = 1.0, .hi = 2.0}, rng);
    SpannerSession session;
    GraphCandidateSource source(g);
    BuildOptions options;
    options.stretch = 2.0;

    for (const std::size_t threads : {2u, 4u}) {
        options.engine.num_threads = threads;
        BuildReport cold;
        (void)session.build(source, options, &cold);
        EXPECT_EQ(cold.pools_constructed, 1u) << threads;
        BuildReport warm;
        (void)session.build(source, options, &warm);
        EXPECT_EQ(warm.pools_constructed, 0u) << threads;
    }
}

TEST(BuildReportTest, ResetEveryBuildAndOnFailure) {
    Rng rng(7);
    const Graph g = erdos_renyi(40, 0.3, {.lo = 1.0, .hi = 2.0}, rng);
    SpannerSession session;
    GraphCandidateSource source(g);
    BuildOptions options;
    options.stretch = 2.0;

    BuildReport report;
    (void)session.build(source, options, &report);
    const std::size_t first_examined = report.stats.edges_examined;
    EXPECT_GT(first_examined, 0u);

    // Reusing the same report must overwrite, never accumulate.
    (void)session.build(source, options, &report);
    EXPECT_EQ(report.stats.edges_examined, first_examined);

    // A failed build zeroes the report before throwing.
    options.stretch = 0.0;
    EXPECT_THROW(session.build(source, options, &report), std::invalid_argument);
    EXPECT_EQ(report.stats.edges_examined, 0u);
    EXPECT_EQ(report.edges, 0u);

    // Same contract on the approx pipeline, whose source constructor can
    // throw before the session is ever reached.
    Rng rng2(70);
    const EuclideanMetric pts = uniform_points(40, 2, 30.0, rng2);
    BuildOptions approx_options;
    approx_options.approx.epsilon = 0.5;
    (void)approx_greedy_build(session, pts, approx_options, &report);
    ASSERT_GT(report.stats.edges_examined, 0u);
    approx_options.approx.epsilon = 2.0;
    EXPECT_THROW(approx_greedy_build(session, pts, approx_options, &report),
                 std::invalid_argument);
    EXPECT_EQ(report.stats.edges_examined, 0u);
}

TEST(BuildReportTest, LegacyStatsOutParamsAreZeroedBeforeWork) {
    // The stats-footgun regression (satellite): a reused GreedyStats must
    // never carry a previous run's counters into a failed call.
    Rng rng(8);
    const Graph g = erdos_renyi(30, 0.4, {.lo = 1.0, .hi = 2.0}, rng);
    GreedyStats stats;
    (void)greedy_spanner(g, 2.0, &stats);
    ASSERT_GT(stats.edges_examined, 0u);
    EXPECT_THROW((void)greedy_spanner(g, 0.5, &stats), std::invalid_argument);
    EXPECT_EQ(stats.edges_examined, 0u);  // zeroed, not stale
    EXPECT_EQ(stats.dijkstra_runs, 0u);
}

TEST(BuildReportTest, JsonCarriesTheWholeReport) {
    Rng rng(9);
    const Graph g = erdos_renyi(30, 0.3, {.lo = 1.0, .hi = 2.0}, rng);
    SpannerSession session;
    BuildOptions options;
    options.stretch = 2.0;
    BuildReport report;
    (void)AlgorithmRegistry::global().build("greedy", session, BuildInput::of(g),
                                            options, &report);
    EXPECT_EQ(report.algorithm, "greedy");
    EXPECT_EQ(report.source, "graph-edges");
    const std::string json = report.to_json();
    for (const char* key :
         {"\"algorithm\": \"greedy\"", "\"source\": \"graph-edges\"", "\"vertices\"",
          "\"candidates\"", "\"edges\"", "\"weight\"", "\"max_degree\"", "\"seconds\"",
          "\"pools_constructed\"", "\"workspaces_constructed\"", "\"stats\"",
          "\"edges_examined\"", "\"repairs\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
    }
    // Structurally balanced (the writer's brace discipline).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(WspdSourceTest, StretchStaysUnderTheDumbbellBound) {
    for (const std::uint64_t seed : {2u, 19u}) {
        Rng rng(seed);
        const EuclideanMetric pts = uniform_points(90, 2, 100.0, rng);
        const double t = 1.5;
        const double separation = 12.0;  // bound: t * 16 / 8 = 2t
        const double bound = wspd_greedy_stretch_bound(t, separation);
        ASSERT_LT(bound, 1e9);

        SpannerSession session;
        BuildOptions options;
        options.stretch = t;
        WspdCandidateSource source(pts, separation);
        const Graph h = session.build(source, options);
        EXPECT_LE(max_stretch_metric(pts, h, session.workspace_pool()), bound + 1e-9)
            << "seed " << seed;
    }
}

TEST(WspdSourceTest, BoundAndSeparationRules) {
    EXPECT_TRUE(std::isinf(wspd_greedy_stretch_bound(1.5, 4.0)));
    EXPECT_NEAR(wspd_greedy_stretch_bound(1.0, 12.0), 2.0, 1e-12);
    const EuclideanMetric pts(2, {0.0, 0.0, 1.0, 0.0});
    // separation <= 0 derives 4 + 8/eps.
    WspdCandidateSource derived(pts, 0.0, 0.5);
    EXPECT_DOUBLE_EQ(derived.separation(), 20.0);
    WspdCandidateSource explicit_sep(pts, 9.0);
    EXPECT_DOUBLE_EQ(explicit_sep.separation(), 9.0);
    // A separation without a finite dumbbell bound is refused up front
    // (it would poison stretch_target with infinity downstream).
    EXPECT_THROW(WspdCandidateSource(pts, 3.0), std::invalid_argument);
    EXPECT_THROW(WspdCandidateSource(pts, 0.0, -1.0), std::invalid_argument);
}

TEST(WspdSourceTest, FarFewerCandidatesThanAllPairsAtScale) {
    // The linear-space seam's point: n * s^O(d) pairs, not n^2.
    Rng rng(23);
    const EuclideanMetric pts = uniform_points(600, 2, 400.0, rng);
    std::vector<GreedyCandidate> wspd_pairs;
    WspdCandidateSource source(pts, 8.0);
    source.materialize(wspd_pairs);
    const std::size_t all_pairs = pts.size() * (pts.size() - 1) / 2;
    EXPECT_LT(wspd_pairs.size(), all_pairs / 2);
    EXPECT_GE(wspd_pairs.size(), pts.size() - 1);
}

TEST(SessionAuditTest, PoolOverloadsMatchPlainAuditors) {
    Rng rng(31);
    const Graph g = erdos_renyi(40, 0.3, {.lo = 1.0, .hi = 2.0}, rng);
    SpannerSession session;
    BuildOptions options;
    options.stretch = 2.0;
    GraphCandidateSource source(g);
    const Graph h = session.build(source, options);

    // Audits and reroutes through the session's pool equal the ad-hoc
    // workspace versions exactly (same algorithm, reused arena).
    EXPECT_DOUBLE_EQ(max_stretch_over_edges(g, h, session.workspace_pool()),
                     max_stretch_over_edges(g, h));
    const SpannerAudit pooled = audit_graph_spanner(g, h, session.workspace_pool());
    const SpannerAudit plain = audit_graph_spanner(g, h);
    EXPECT_DOUBLE_EQ(pooled.max_stretch, plain.max_stretch);
    EXPECT_DOUBLE_EQ(pooled.lightness, plain.lightness);
    EXPECT_TRUE(
        same_edge_set(reroute_through(h, g, session.workspace_pool()),
                      reroute_through(h, g)));
}

TEST(CandidateSourceTest, KindsAreStable) {
    Rng rng(1);
    const Graph g = erdos_renyi(10, 0.5, {.lo = 1.0, .hi = 2.0}, rng);
    const EuclideanMetric pts = uniform_points(10, 2, 5.0, rng);
    BuildOptions options;
    EXPECT_STREQ(GraphCandidateSource(g).kind(), "graph-edges");
    EXPECT_STREQ(MetricCandidateSource(pts).kind(), "metric-pairs");
    EXPECT_STREQ(WspdCandidateSource(pts, 8.0).kind(), "wspd-pairs");
    EXPECT_STREQ(BaseSpannerCandidateSource(pts, options).kind(), "base-spanner-edges");
}

}  // namespace
}  // namespace gsp
