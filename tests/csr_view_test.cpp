// CsrView / CsrOverlayView: the frozen adjacency snapshots behind the
// greedy engine's csr_snapshot optimisation. The contract is exactness --
// a snapshot plus its overlay must describe the same multigraph as the
// Graph it was taken from, and Dijkstra answers on either must agree.
#include "graph/csr_view.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "gen/graphs.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

/// Canonical (to, weight, edge-id) multiset of a vertex's neighbors.
template <class View>
std::vector<std::tuple<VertexId, Weight, EdgeId>> adjacency_of(const View& v,
                                                               VertexId u) {
    std::vector<std::tuple<VertexId, Weight, EdgeId>> out;
    for (const HalfEdge& h : v.neighbors(u)) {
        out.emplace_back(h.to, h.weight, h.edge);
    }
    std::sort(out.begin(), out.end());
    return out;
}

TEST(CsrViewTest, MatchesGraphAdjacency) {
    Rng rng(5);
    const Graph g = erdos_renyi(40, 0.2, {.lo = 0.5, .hi = 2.0}, rng);
    const CsrView csr(g);
    ASSERT_EQ(csr.num_vertices(), g.num_vertices());
    EXPECT_EQ(csr.num_half_edges(), 2 * g.num_edges());
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
        EXPECT_EQ(adjacency_of(csr, u), adjacency_of(g, u)) << "vertex " << u;
    }
}

TEST(CsrViewTest, EmptyAndEdgelessGraphs) {
    const CsrView empty(Graph(0));
    EXPECT_EQ(empty.num_vertices(), 0u);
    const CsrView edgeless(Graph(7));
    EXPECT_EQ(edgeless.num_vertices(), 7u);
    EXPECT_EQ(edgeless.num_half_edges(), 0u);
    EXPECT_TRUE(edgeless.neighbors(3).empty());
}

TEST(CsrViewTest, ParallelEdgesAreKept) {
    Graph g(2);
    g.add_edge(0, 1, 1.0);
    g.add_edge(0, 1, 2.0);
    const CsrView csr(g);
    EXPECT_EQ(csr.neighbors(0).size(), 2u);
    EXPECT_EQ(csr.neighbors(1).size(), 2u);
}

TEST(CsrOverlayViewTest, OverlayChainsAfterFrozenRun) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    CsrOverlayView view;
    view.snapshot(g);
    // Grow the graph past the snapshot; mirror into the overlay.
    const EdgeId e1 = g.add_edge(1, 3, 2.0);
    view.add_edge(1, 3, 2.0, e1);
    const EdgeId e2 = g.add_edge(0, 3, 5.0);
    view.add_edge(0, 3, 5.0, e2);

    ASSERT_EQ(view.num_vertices(), 4u);
    EXPECT_EQ(view.overlay_edges(), 2u);
    for (VertexId u = 0; u < 4; ++u) {
        EXPECT_EQ(adjacency_of(view, u), adjacency_of(g, u)) << "vertex " << u;
    }

    // Re-snapshot folds the overlay into the frozen run.
    view.snapshot(g);
    EXPECT_EQ(view.overlay_edges(), 0u);
    for (VertexId u = 0; u < 4; ++u) {
        EXPECT_EQ(adjacency_of(view, u), adjacency_of(g, u)) << "vertex " << u;
    }
}

TEST(CsrOverlayViewTest, NoInsertionSnapshotIsANoOp) {
    // Regression guard for the refreeze fast path: a snapshot taken when
    // the overlay is empty and the graph kept its frozen shape must not
    // rebuild (phases that end a batch with zero insertions used to pay a
    // full O(n + m) refreeze anyway).
    Rng rng(3);
    Graph g = erdos_renyi(30, 0.2, {.lo = 0.5, .hi = 2.0}, rng);
    CsrOverlayView view;
    view.snapshot(g);
    EXPECT_EQ(view.rebuilds(), 1u);
    view.snapshot(g);  // nothing inserted: explicit no-op
    view.snapshot(g);
    EXPECT_EQ(view.rebuilds(), 1u);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
        EXPECT_EQ(adjacency_of(view, u), adjacency_of(g, u)) << "vertex " << u;
    }

    // An overlay entry re-arms the rebuild...
    const EdgeId id = g.add_edge(0, 1, 0.25);
    view.add_edge(0, 1, 0.25, id);
    view.snapshot(g);
    EXPECT_EQ(view.rebuilds(), 2u);
    // ...and folding it in restores the fast path.
    view.snapshot(g);
    EXPECT_EQ(view.rebuilds(), 2u);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
        EXPECT_EQ(adjacency_of(view, u), adjacency_of(g, u)) << "vertex " << u;
    }

    // A graph that changed shape without overlay mirroring (a different
    // run) must still rebuild.
    Graph g2(30);
    view.snapshot(g2);
    EXPECT_EQ(view.rebuilds(), 3u);
    EXPECT_TRUE(view.neighbors(0).begin() == view.neighbors(0).end());
}

TEST(CsrOverlayViewTest, FastPathRejectsDifferentGraphWithEqualCounts) {
    // The last-edge fingerprint: a *different* graph whose vertex/edge
    // counts coincide with the frozen shape must rebuild, not be served
    // the stale adjacency.
    Graph g1(5);
    g1.add_edge(0, 1, 1.0);
    g1.add_edge(2, 3, 2.0);
    CsrOverlayView view;
    view.snapshot(g1);
    Graph g2(5);
    g2.add_edge(0, 1, 1.0);
    g2.add_edge(2, 4, 5.0);  // same n, same m, different newest edge
    view.snapshot(g2);
    EXPECT_EQ(view.rebuilds(), 2u);
    for (VertexId u = 0; u < 5; ++u) {
        EXPECT_EQ(adjacency_of(view, u), adjacency_of(g2, u)) << "vertex " << u;
    }
}

TEST(CsrOverlayViewTest, DijkstraAgreesWithGraph) {
    Rng rng(11);
    Graph g = erdos_renyi(50, 0.12, {.lo = 0.5, .hi = 3.0}, rng);
    CsrOverlayView view;
    view.snapshot(g);
    // Insert a batch of shortcut edges after the snapshot.
    for (int i = 0; i < 12; ++i) {
        const auto u = static_cast<VertexId>(rng.index(50));
        const auto v = static_cast<VertexId>(rng.index(50));
        if (u == v) continue;
        const EdgeId id = g.add_edge(u, v, rng.uniform(0.1, 1.0));
        view.add_edge(u, v, g.edge(id).weight, id);
    }
    DijkstraWorkspace ws_graph(50);
    DijkstraWorkspace ws_view(50);
    for (VertexId s = 0; s < 10; ++s) {
        for (VertexId t = 10; t < 20; ++t) {
            for (const Weight limit : {2.0, 5.0, kInfiniteWeight}) {
                EXPECT_DOUBLE_EQ(ws_view.distance(view, s, t, limit),
                                 ws_graph.distance(g, s, t, limit))
                    << s << "->" << t << " limit " << limit;
            }
        }
    }
}

}  // namespace
}  // namespace gsp
