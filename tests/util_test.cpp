#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/dary_heap.hpp"
#include "util/fit.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace gsp {
namespace {

TEST(RngTest, Deterministic) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    }
}

TEST(RngTest, UniformIntBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto x = rng.uniform_int(-3, 5);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 5);
    }
    EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
    EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(RngTest, ChanceExtremes) {
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ForkProducesIndependentStreams) {
    Rng a(5);
    Rng fork = a.fork();
    // Forked stream should not replay the parent's draws.
    bool any_diff = false;
    for (int i = 0; i < 20; ++i) {
        if (a.uniform_int(0, 1 << 30) != fork.uniform_int(0, 1 << 30)) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(TableTest, AlignedOutput) {
    Table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvOutput) {
    Table t({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RowArityChecked) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(FmtTest, TrimsTrailingZeros) {
    EXPECT_EQ(fmt(1.5, 3), "1.5");
    EXPECT_EQ(fmt(2.0, 3), "2");
    EXPECT_EQ(fmt(0.125, 3), "0.125");
    EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "inf");
    EXPECT_EQ(fmt_ratio(12.339, 2), "12.34x");
}

TEST(FitTest, RecoversExactPowerLaw) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (double x : {10.0, 20.0, 40.0, 80.0, 160.0}) {
        xs.push_back(x);
        ys.push_back(3.0 * std::pow(x, 1.5));
    }
    const PowerFit fit = fit_power_law(xs, ys);
    EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
    EXPECT_NEAR(fit.coefficient, 3.0, 1e-6);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitTest, NoisyPowerLawStillClose) {
    Rng rng(3);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 1; i <= 12; ++i) {
        const double x = 100.0 * i;
        xs.push_back(x);
        ys.push_back(2.0 * std::pow(x, 2.0) * rng.uniform(0.9, 1.1));
    }
    const PowerFit fit = fit_power_law(xs, ys);
    EXPECT_NEAR(fit.exponent, 2.0, 0.1);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitTest, InputValidation) {
    const std::vector<double> one = {1.0};
    EXPECT_THROW((void)fit_power_law(one, one), std::invalid_argument);
    const std::vector<double> xs = {1.0, 2.0};
    const std::vector<double> bad = {1.0, -2.0};
    EXPECT_THROW((void)fit_power_law(xs, bad), std::invalid_argument);
    const std::vector<double> same_x = {2.0, 2.0};
    EXPECT_THROW((void)fit_slope(same_x, xs), std::invalid_argument);
}

TEST(FitTest, SlopeOfLine) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
    EXPECT_NEAR(fit_slope(xs, ys), 2.0, 1e-12);
}

struct HeapItem {
    double key;
    int payload;
    friend bool operator>(const HeapItem& a, const HeapItem& b) { return a.key > b.key; }
};

template <std::size_t Arity>
void heap_sorts_random_input() {
    Rng rng(11);
    DaryHeap<HeapItem, Arity> heap;
    std::vector<double> keys;
    for (int round = 0; round < 3; ++round) {
        // Mixed pushes and pops, like a Dijkstra frontier.
        for (int i = 0; i < 500; ++i) {
            const double k = rng.uniform(0.0, 100.0);
            keys.push_back(k);
            heap.push({k, i});
            if (i % 3 == 0 && !heap.empty()) {
                const HeapItem out = heap.pop_min();
                const auto it = std::min_element(keys.begin(), keys.end());
                EXPECT_EQ(out.key, *it);
                keys.erase(it);
            }
        }
        double prev = -1.0;
        while (!heap.empty()) {
            const HeapItem out = heap.pop_min();
            EXPECT_GE(out.key, prev);
            prev = out.key;
        }
        keys.clear();
        EXPECT_TRUE(heap.empty());
    }
}

TEST(DaryHeapTest, QuaternarySortsRandomInput) { heap_sorts_random_input<4>(); }
TEST(DaryHeapTest, BinarySortsRandomInput) { heap_sorts_random_input<2>(); }

TEST(DaryHeapTest, ClearKeepsCapacity) {
    DaryHeap<HeapItem, 4> heap;
    heap.reserve(64);
    for (int i = 0; i < 50; ++i) heap.push({static_cast<double>(i), i});
    const std::size_t cap = heap.capacity();
    heap.clear();
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(heap.capacity(), cap);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        EXPECT_EQ(pool.num_workers(), workers);
        constexpr std::size_t kTasks = 257;
        std::vector<std::atomic<int>> hits(kTasks);
        pool.run(kTasks, [&](std::size_t worker, std::size_t task) {
            EXPECT_LT(worker, workers);
            hits[task].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
    ThreadPool pool(3);
    std::atomic<std::size_t> total{0};
    for (int round = 0; round < 20; ++round) {
        pool.run(64, [&](std::size_t, std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), 20u * 64u);
}

TEST(ThreadPoolTest, PropagatesTaskExceptions) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.run(32,
                          [&](std::size_t, std::size_t task) {
                              if (task == 7) throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The pool survives a throwing job.
    std::atomic<std::size_t> total{0};
    pool.run(8, [&](std::size_t, std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 8u);
}

TEST(ThreadPoolTest, RejectsZeroWorkers) {
    EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, WorkStealingDrainsPathologicallySkewedTasks) {
    // Tasks are dealt as contiguous per-worker ranges; the first range is
    // loaded with tasks ~1000x the cost of the rest (the phase-A shape:
    // one source's ball dwarfs its neighbors'). Exhausted workers must
    // steal from the loaded range rather than idle: every task runs
    // exactly once, and the slow block is retired by more than one worker.
    constexpr std::size_t kWorkers = 4;
    constexpr std::size_t kTasks = 256;
    constexpr std::size_t kSlowBlock = kTasks / kWorkers;  // worker 0's deal
    ThreadPool pool(kWorkers);
    const std::size_t steals_before = pool.steal_count();
    std::vector<std::atomic<int>> hits(kTasks);
    std::array<std::atomic<std::size_t>, kWorkers> slow_by_worker{};
    pool.run(kTasks, [&](std::size_t worker, std::size_t task) {
        hits[task].fetch_add(1, std::memory_order_relaxed);
        if (task < kSlowBlock) {
            slow_by_worker[worker].fetch_add(1, std::memory_order_relaxed);
            volatile double sink = 0.0;
            for (int i = 0; i < 200000; ++i) sink = sink + static_cast<double>(i);
        }
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    std::size_t workers_on_slow_block = 0;
    std::size_t slow_total = 0;
    for (const auto& c : slow_by_worker) {
        if (c.load() > 0) ++workers_on_slow_block;
        slow_total += c.load();
    }
    EXPECT_EQ(slow_total, kSlowBlock);
    // The whole point of stealing: the initial owner does not drain the
    // slow block alone while three workers idle.
    EXPECT_GE(workers_on_slow_block, 2u);
    EXPECT_GT(pool.steal_count(), steals_before);
}

TEST(ThreadPoolTest, StealingPreservesTaskIndexedResults) {
    // Results land in task-indexed slots, so the outcome must be
    // independent of which worker ran what -- run the same job twice and
    // compare.
    ThreadPool pool(3);
    auto run_once = [&] {
        std::vector<std::size_t> out(512, 0);
        pool.run(out.size(), [&](std::size_t, std::size_t task) {
            out[task] = 3 * task + 1;  // task-owned slot
        });
        return out;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(ThreadPoolTest, ResolveWorkersHonorsExplicitRequest) {
    EXPECT_EQ(ThreadPool::resolve_workers(3), 3u);
    EXPECT_GE(ThreadPool::resolve_workers(0), 1u);  // hardware concurrency
}

}  // namespace
}  // namespace gsp
