#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/fit.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace gsp {
namespace {

TEST(RngTest, Deterministic) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    }
}

TEST(RngTest, UniformIntBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto x = rng.uniform_int(-3, 5);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 5);
    }
    EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
    EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(RngTest, ChanceExtremes) {
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ForkProducesIndependentStreams) {
    Rng a(5);
    Rng fork = a.fork();
    // Forked stream should not replay the parent's draws.
    bool any_diff = false;
    for (int i = 0; i < 20; ++i) {
        if (a.uniform_int(0, 1 << 30) != fork.uniform_int(0, 1 << 30)) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(TableTest, AlignedOutput) {
    Table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvOutput) {
    Table t({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RowArityChecked) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(FmtTest, TrimsTrailingZeros) {
    EXPECT_EQ(fmt(1.5, 3), "1.5");
    EXPECT_EQ(fmt(2.0, 3), "2");
    EXPECT_EQ(fmt(0.125, 3), "0.125");
    EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "inf");
    EXPECT_EQ(fmt_ratio(12.339, 2), "12.34x");
}

TEST(FitTest, RecoversExactPowerLaw) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (double x : {10.0, 20.0, 40.0, 80.0, 160.0}) {
        xs.push_back(x);
        ys.push_back(3.0 * std::pow(x, 1.5));
    }
    const PowerFit fit = fit_power_law(xs, ys);
    EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
    EXPECT_NEAR(fit.coefficient, 3.0, 1e-6);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitTest, NoisyPowerLawStillClose) {
    Rng rng(3);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 1; i <= 12; ++i) {
        const double x = 100.0 * i;
        xs.push_back(x);
        ys.push_back(2.0 * std::pow(x, 2.0) * rng.uniform(0.9, 1.1));
    }
    const PowerFit fit = fit_power_law(xs, ys);
    EXPECT_NEAR(fit.exponent, 2.0, 0.1);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitTest, InputValidation) {
    const std::vector<double> one = {1.0};
    EXPECT_THROW(fit_power_law(one, one), std::invalid_argument);
    const std::vector<double> xs = {1.0, 2.0};
    const std::vector<double> bad = {1.0, -2.0};
    EXPECT_THROW(fit_power_law(xs, bad), std::invalid_argument);
    const std::vector<double> same_x = {2.0, 2.0};
    EXPECT_THROW(fit_slope(same_x, xs), std::invalid_argument);
}

TEST(FitTest, SlopeOfLine) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
    EXPECT_NEAR(fit_slope(xs, ys), 2.0, 1e-12);
}

}  // namespace
}  // namespace gsp
