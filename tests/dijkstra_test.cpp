#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

Graph random_graph(std::size_t n, double p, Rng& rng) {
    Graph g(n);
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            if (rng.chance(p)) g.add_edge(i, j, rng.uniform(0.1, 10.0));
        }
    }
    return g;
}

TEST(DijkstraTest, PathGraphDistances) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(2, 3, 4.0);
    EXPECT_DOUBLE_EQ(dijkstra_distance(g, 0, 3), 7.0);
    EXPECT_DOUBLE_EQ(dijkstra_distance(g, 3, 0), 7.0);
    EXPECT_DOUBLE_EQ(dijkstra_distance(g, 1, 1), 0.0);
}

TEST(DijkstraTest, PicksCheaperOfTwoRoutes) {
    Graph g(3);
    g.add_edge(0, 1, 5.0);
    g.add_edge(0, 2, 1.0);
    g.add_edge(2, 1, 1.0);
    EXPECT_DOUBLE_EQ(dijkstra_distance(g, 0, 1), 2.0);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(2, 3, 1.0);
    EXPECT_EQ(dijkstra_distance(g, 0, 3), kInfiniteWeight);
}

TEST(DijkstraTest, LimitCutsOffSearch) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    EXPECT_DOUBLE_EQ(dijkstra_distance(g, 0, 3, 3.0), 3.0);   // exactly at limit
    EXPECT_EQ(dijkstra_distance(g, 0, 3, 2.999), kInfiniteWeight);
}

TEST(DijkstraTest, AllDistancesMatchSingleQueries) {
    Rng rng(7);
    const Graph g = random_graph(40, 0.2, rng);
    DijkstraWorkspace ws(g.num_vertices());
    const auto dist = dijkstra_all(g, 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_DOUBLE_EQ(dist[v], ws.distance(g, 0, v, kInfiniteWeight)) << "v=" << v;
    }
}

TEST(DijkstraTest, PredecessorsFormShortestPathTree) {
    Rng rng(11);
    const Graph g = random_graph(30, 0.3, rng);
    DijkstraWorkspace ws(g.num_vertices());
    const auto& dist = ws.all_distances(g, 0, kInfiniteWeight);
    const auto& pred = ws.predecessors();
    for (VertexId v = 1; v < g.num_vertices(); ++v) {
        if (dist[v] == kInfiniteWeight) {
            EXPECT_EQ(pred[v], kNoVertex);
            continue;
        }
        ASSERT_NE(pred[v], kNoVertex);
        // Tree edge consistency: dist[v] = dist[pred[v]] + w(pred[v], v).
        const EdgeId eid = ws.predecessor_edges()[v];
        ASSERT_NE(eid, kNoEdge);
        const Edge& e = g.edge(eid);
        EXPECT_TRUE((e.u == pred[v] && e.v == v) || (e.v == pred[v] && e.u == v));
        EXPECT_NEAR(dist[v], dist[pred[v]] + e.weight, 1e-12);
    }
}

TEST(DijkstraTest, ShortestPathEndpointsAndWeight) {
    Graph g(5);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(0, 2, 5.0);
    g.add_edge(2, 3, 1.0);
    const auto path = shortest_path(g, 0, 3);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 3u);
    EXPECT_EQ(path[1], 1u);
    EXPECT_EQ(path[2], 2u);
    EXPECT_TRUE(shortest_path(g, 0, 4).empty());
}

TEST(DijkstraTest, BallContainsExactlyTheLimitedNeighborhood) {
    Graph g(5);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    g.add_edge(3, 4, 1.0);
    DijkstraWorkspace ws(5);
    const auto& ball = ws.ball(g, 0, 2.0);
    ASSERT_EQ(ball.size(), 3u);  // vertices 0, 1, 2
    EXPECT_EQ(ball[0].first, 0u);
    EXPECT_DOUBLE_EQ(ball[0].second, 0.0);
    EXPECT_EQ(ball[1].first, 1u);
    EXPECT_DOUBLE_EQ(ball[1].second, 1.0);
    EXPECT_EQ(ball[2].first, 2u);
    EXPECT_DOUBLE_EQ(ball[2].second, 2.0);
}

TEST(DijkstraTest, BallDistancesAreExact) {
    Rng rng(3);
    const Graph g = random_graph(50, 0.15, rng);
    DijkstraWorkspace ws(g.num_vertices());
    const auto reference = dijkstra_all(g, 5);
    const auto& ball = ws.ball(g, 5, 8.0);
    for (const auto& [v, d] : ball) {
        EXPECT_DOUBLE_EQ(d, reference[v]);
        EXPECT_LE(d, 8.0);
    }
}

TEST(DijkstraTest, WorkspaceReuseAcrossGrowingGraph) {
    // The greedy algorithm's pattern: query, insert an edge, query again.
    Graph g(3);
    DijkstraWorkspace ws(3);
    EXPECT_EQ(ws.distance(g, 0, 2, kInfiniteWeight), kInfiniteWeight);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    EXPECT_DOUBLE_EQ(ws.distance(g, 0, 2, kInfiniteWeight), 2.0);
    g.add_edge(0, 2, 0.5);
    EXPECT_DOUBLE_EQ(ws.distance(g, 0, 2, kInfiniteWeight), 0.5);
}

TEST(DijkstraTest, OutOfRangeThrows) {
    Graph g(2);
    g.add_edge(0, 1, 1.0);
    DijkstraWorkspace ws(2);
    EXPECT_THROW(ws.distance(g, 0, 9, kInfiniteWeight), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Bidirectional bounded search (the greedy engine's point-query kernel).

TEST(BidirectionalTest, PathGraphDistancesAndLimits) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    DijkstraWorkspace ws(4);
    EXPECT_DOUBLE_EQ(ws.distance_bidirectional(g, 0, 3, kInfiniteWeight), 3.0);
    EXPECT_DOUBLE_EQ(ws.distance_bidirectional(g, 1, 1, 5.0), 0.0);
    // Inclusive limit semantics, like the one-sided search.
    EXPECT_DOUBLE_EQ(ws.distance_bidirectional(g, 0, 3, 3.0), 3.0);
    EXPECT_EQ(ws.distance_bidirectional(g, 0, 3, 2.999), kInfiniteWeight);
}

TEST(BidirectionalTest, UnreachableAndOutOfRange) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(2, 3, 1.0);
    DijkstraWorkspace ws(4);
    EXPECT_EQ(ws.distance_bidirectional(g, 0, 3, kInfiniteWeight), kInfiniteWeight);
    EXPECT_THROW(ws.distance_bidirectional(g, 0, 9, 1.0), std::out_of_range);
}

TEST(BidirectionalTest, MeetEventsAccumulate) {
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    DijkstraWorkspace ws(3);
    EXPECT_EQ(ws.meet_events(), 0u);
    EXPECT_DOUBLE_EQ(ws.distance_bidirectional(g, 0, 2, kInfiniteWeight), 2.0);
    EXPECT_GT(ws.meet_events(), 0u);
}

// ---------------------------------------------------------------------------
// Repair-scoped seeded probe (phase B of the speculative accept path).

TEST(SeededProbeTest, MinimizesOverSeedsAndRespectsLimit) {
    // 0-1-2-3 path; seeds carry externally-known prefix lengths.
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    DijkstraWorkspace ws(4);
    const std::vector<RepairSeed> seeds = {{1, 5.0}, {2, 5.5}};
    // Best route to 3: through seed at 2 (5.5 + 1.0), not seed at 1 (5 + 2).
    EXPECT_DOUBLE_EQ(ws.distance_seeded(g, seeds, 3, 10.0), 6.5);
    // A seeded target returns its own key when nothing beats it.
    EXPECT_DOUBLE_EQ(ws.distance_seeded(g, seeds, 2, 10.0), 5.5);
    // Seeds above the limit are discarded; unreachable within it.
    EXPECT_EQ(ws.distance_seeded(g, seeds, 3, 6.0), kInfiniteWeight);
    const std::vector<RepairSeed> none;
    EXPECT_EQ(ws.distance_seeded(g, none, 3, 10.0), kInfiniteWeight);
    const std::vector<RepairSeed> bad = {{9, 0.0}};
    EXPECT_THROW(ws.distance_seeded(g, bad, 3, 1.0), std::out_of_range);
}

TEST(SeededProbeTest, MatchesPlainDijkstraWithVirtualSource) {
    // Seeding {(v, key_v)} is the same as one-sided Dijkstra from a
    // virtual source wired to each seed by an edge of weight key_v.
    Rng rng(17);
    const Graph g = random_graph(40, 0.15, rng);
    Graph aug(41);  // vertex 40 is the virtual source
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const Edge& ed = g.edge(e);
        aug.add_edge(ed.u, ed.v, ed.weight);
    }
    std::vector<RepairSeed> seeds;
    for (VertexId v : {3u, 11u, 27u}) {
        const Weight key = 0.5 + 0.25 * v;
        seeds.push_back({v, key});
        aug.add_edge(40, v, key);
    }
    DijkstraWorkspace seeded(40);
    DijkstraWorkspace plain(41);
    for (VertexId t = 0; t < 40; ++t) {
        for (const Weight limit : {2.0, 5.0, kInfiniteWeight}) {
            const Weight want = plain.distance(aug, 40, t, limit);
            const Weight got = seeded.distance_seeded(g, seeds, t, limit);
            if (want == kInfiniteWeight) {
                EXPECT_EQ(got, kInfiniteWeight) << "t=" << t << " limit=" << limit;
            } else {
                EXPECT_NEAR(got, want, 1e-12) << "t=" << t << " limit=" << limit;
            }
        }
    }
}

class BidirectionalPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(BidirectionalPropertyTest, AgreesWithOneSidedSearch) {
    const auto [seed, n, p] = GetParam();
    Rng rng(seed ^ 0xb1d1);
    const Graph g = random_graph(n, p, rng);
    DijkstraWorkspace one(n);
    DijkstraWorkspace two(n);
    for (VertexId s = 0; s < std::min<std::size_t>(n, 6); ++s) {
        for (VertexId t = 0; t < n; ++t) {
            for (const Weight limit : {3.0, 8.0, kInfiniteWeight}) {
                const Weight d1 = one.distance(g, s, t, limit);
                const Weight d2 = two.distance_bidirectional(g, s, t, limit);
                if (d1 == kInfiniteWeight) {
                    EXPECT_EQ(d2, kInfiniteWeight) << s << "->" << t;
                } else {
                    EXPECT_NEAR(d2, d1, 1e-9) << s << "->" << t << " limit " << limit;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BidirectionalPropertyTest,
                         ::testing::Combine(::testing::Values(2u, 9u, 31u),
                                            ::testing::Values(20u, 45u),
                                            ::testing::Values(0.08, 0.3)));

// Property suite: Dijkstra agrees with Bellman-Ford and Floyd-Warshall on
// random graphs of varied density.
class DijkstraPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(DijkstraPropertyTest, AgreesWithReferences) {
    const auto [seed, n, p] = GetParam();
    Rng rng(seed);
    const Graph g = random_graph(n, p, rng);
    const auto fw = floyd_warshall(g);
    for (VertexId s = 0; s < std::min<std::size_t>(n, 8); ++s) {
        const auto dd = dijkstra_all(g, s);
        const auto bf = bellman_ford(g, s);
        for (VertexId v = 0; v < n; ++v) {
            if (fw[s][v] == kInfiniteWeight) {
                EXPECT_EQ(dd[v], kInfiniteWeight);
                EXPECT_EQ(bf[v], kInfiniteWeight);
            } else {
                EXPECT_NEAR(dd[v], fw[s][v], 1e-9);
                EXPECT_NEAR(bf[v], fw[s][v], 1e-9);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DijkstraPropertyTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u),
                                            ::testing::Values(12u, 25u, 40u),
                                            ::testing::Values(0.08, 0.25, 0.6)));

/// EXPECT_NEAR chokes on inf - inf; unreachable-vs-unreachable is a match.
void expect_same_weight(Weight got, Weight want, int round) {
    if (want == kInfiniteWeight || got == kInfiniteWeight) {
        EXPECT_EQ(got, want) << "round " << round;
    } else {
        EXPECT_NEAR(got, want, 1e-9) << "round " << round;
    }
}

TEST(DijkstraWorkspaceTest, InterleavedQueryKindsNeverSeeStaleState) {
    // Regression guard for the consolidated begin_query reset: a pooled
    // per-thread workspace alternates freely between ball(), one-sided and
    // bidirectional point queries; each query kind used to clear only its
    // own subset of the scratch. Every interleaved result must match a
    // fresh single-purpose workspace.
    Rng rng(77);
    const Graph g = random_graph(40, 0.2, rng);
    DijkstraWorkspace shared(g.num_vertices());
    for (int round = 0; round < 25; ++round) {
        const auto s = static_cast<VertexId>(rng.index(g.num_vertices()));
        const auto t = static_cast<VertexId>(rng.index(g.num_vertices()));
        const Weight limit = rng.uniform(0.5, 25.0);
        const int kind = round % 3;
        if (kind == 0) {
            const Weight got = shared.distance_bidirectional(g, s, t, limit);
            DijkstraWorkspace fresh(g.num_vertices());
            expect_same_weight(got, fresh.distance_bidirectional(g, s, t, limit), round);
        } else if (kind == 1) {
            const auto& ball = shared.ball(g, s, limit);
            DijkstraWorkspace fresh(g.num_vertices());
            const auto fresh_ball = fresh.ball(g, s, limit);
            ASSERT_EQ(ball.size(), fresh_ball.size()) << "round " << round;
            for (std::size_t i = 0; i < ball.size(); ++i) {
                EXPECT_EQ(ball[i].first, fresh_ball[i].first);
                EXPECT_NEAR(ball[i].second, fresh_ball[i].second, 1e-12);
            }
        } else {
            const Weight got = shared.distance(g, s, t, limit);
            DijkstraWorkspace fresh(g.num_vertices());
            expect_same_weight(got, fresh.distance(g, s, t, limit), round);
        }
    }
}

TEST(DijkstraWorkspacePoolTest, WorkspacesAreStableAndIndependent) {
    Rng rng(13);
    const Graph g = random_graph(30, 0.25, rng);
    DijkstraWorkspacePool pool;
    pool.configure(3, g.num_vertices());
    ASSERT_EQ(pool.size(), 3u);
    DijkstraWorkspace* first = &pool.at(0);
    // Growing the pool must not invalidate existing workspaces.
    pool.configure(5, g.num_vertices());
    ASSERT_EQ(pool.size(), 5u);
    EXPECT_EQ(&pool.at(0), first);
    // Each workspace answers independently.
    const Weight a = pool.at(1).distance(g, 0, 5, kInfiniteWeight);
    const Weight b = pool.at(4).distance(g, 0, 5, kInfiniteWeight);
    DijkstraWorkspace fresh(g.num_vertices());
    EXPECT_NEAR(a, fresh.distance(g, 0, 5, kInfiniteWeight), 1e-12);
    EXPECT_NEAR(b, a, 1e-12);
}

}  // namespace
}  // namespace gsp
