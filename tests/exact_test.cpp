#include "exact/optimal_spanner.hpp"

#include <gtest/gtest.h>

#include "analysis/audit.hpp"
#include "core/greedy.hpp"
#include "gen/graphs.hpp"
#include "gen/named_graphs.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(OptimalSpannerTest, TriangleMinEdges) {
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(0, 2, 1.0);
    // t = 2: dropping one edge leaves a 2-path of weight 2 <= 2 -> optimal
    // 2-spanner has 2 edges.
    const auto r = optimal_spanner(g, 2.0);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.spanner.num_edges(), 2u);
    // t = 1.5: every edge is forced.
    const auto r2 = optimal_spanner(g, 1.5);
    EXPECT_TRUE(r2.proven_optimal);
    EXPECT_EQ(r2.spanner.num_edges(), 3u);
}

TEST(OptimalSpannerTest, HighGirthForcesEverything) {
    // 5-cycle, t = 3: removing any edge leaves a 4-path (weight 4 > 3).
    const Graph c5 = cycle_graph(5);
    const auto r = optimal_spanner(c5, 3.0);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.spanner.num_edges(), 5u);
    // t = 4 allows dropping exactly one edge.
    const auto r2 = optimal_spanner(c5, 4.0);
    EXPECT_TRUE(r2.proven_optimal);
    EXPECT_EQ(r2.spanner.num_edges(), 4u);
}

TEST(OptimalSpannerTest, ResultIsAlwaysAValidSpanner) {
    Rng rng(3);
    for (int trial = 0; trial < 10; ++trial) {
        const Graph g = random_graph_nm(8, 6, {.lo = 0.5, .hi = 3.0}, rng, true);
        for (double t : {1.5, 2.5}) {
            const auto r = optimal_spanner(g, t);
            EXPECT_TRUE(r.proven_optimal);
            EXPECT_LE(max_stretch_over_edges(g, r.spanner), t + 1e-9);
        }
    }
}

TEST(OptimalSpannerTest, MatchesBruteForceOnTinyInstances) {
    Rng rng(7);
    for (int trial = 0; trial < 8; ++trial) {
        const Graph g = random_graph_nm(6, 5, {.lo = 0.5, .hi = 2.0}, rng, true);
        ASSERT_LE(g.num_edges(), 20u);
        for (const auto objective : {SpannerObjective::kMinEdges, SpannerObjective::kMinWeight}) {
            const auto bb = optimal_spanner(g, 2.0, objective);
            const auto bf = optimal_spanner_bruteforce(g, 2.0, objective);
            ASSERT_TRUE(bb.proven_optimal);
            if (objective == SpannerObjective::kMinEdges) {
                EXPECT_EQ(bb.spanner.num_edges(), bf.spanner.num_edges()) << trial;
            } else {
                EXPECT_NEAR(bb.spanner.total_weight(), bf.spanner.total_weight(), 1e-9)
                    << trial;
            }
        }
    }
}

TEST(OptimalSpannerTest, OptimumNeverExceedsGreedy) {
    Rng rng(11);
    for (int trial = 0; trial < 6; ++trial) {
        const Graph g = random_graph_nm(8, 8, {.lo = 0.5, .hi = 4.0}, rng, true);
        const double t = 2.0;
        const Graph greedy = greedy_spanner(g, t);
        const auto opt_e = optimal_spanner(g, t, SpannerObjective::kMinEdges);
        const auto opt_w = optimal_spanner(g, t, SpannerObjective::kMinWeight);
        ASSERT_TRUE(opt_e.proven_optimal);
        ASSERT_TRUE(opt_w.proven_optimal);
        EXPECT_LE(opt_e.spanner.num_edges(), greedy.num_edges());
        EXPECT_LE(opt_w.spanner.total_weight(), greedy.total_weight() + 1e-9);
    }
}

TEST(OptimalSpannerTest, NodeLimitDegradesGracefully) {
    Rng rng(13);
    const Graph g = random_graph_nm(10, 20, {.lo = 0.5, .hi = 2.0}, rng, true);
    const auto r = optimal_spanner(g, 2.0, SpannerObjective::kMinEdges, /*node_limit=*/5);
    EXPECT_FALSE(r.proven_optimal);
    // Incumbent (possibly just G) must still be a valid spanner.
    EXPECT_LE(max_stretch_over_edges(g, r.spanner), 2.0 + 1e-9);
}

TEST(OptimalSpannerTest, StretchValidation) {
    Graph g(2);
    g.add_edge(0, 1, 1.0);
    EXPECT_THROW(optimal_spanner(g, 0.5), std::invalid_argument);
    Graph big(30);
    for (VertexId i = 0; i + 1 < 30; ++i) big.add_edge(i, i + 1, 1.0);
    EXPECT_THROW(optimal_spanner_bruteforce(big, 2.0), std::invalid_argument);
}

TEST(OptimalSpannerTest, MinWeightPrefersLightReplacements) {
    // Heavy chord with a light 2-path: min-weight drops the chord.
    Graph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(0, 2, 1.9);
    const auto r = optimal_spanner(g, 1.1, SpannerObjective::kMinWeight);
    // delta_G(0,2) = 1.9; path 0-1-2 weighs 2.0 <= 1.1 * 1.9 = 2.09 -> droppable.
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.spanner.num_edges(), 2u);
    EXPECT_NEAR(r.spanner.total_weight(), 2.0, 1e-12);
}

}  // namespace
}  // namespace gsp
