// Theta- and Yao-graph tests.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/audit.hpp"
#include "gen/points.hpp"
#include "graph/traversal.hpp"
#include "spanners/theta_graph.hpp"
#include "spanners/yao_graph.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(ThetaGraphTest, StretchBoundFormula) {
    // k = 8: theta = pi/4, cos - sin = 0 -> unbounded; k = 12 is finite.
    EXPECT_EQ(theta_graph_stretch_bound(8), kInfiniteWeight);
    EXPECT_GT(theta_graph_stretch_bound(12), 1.0);
    EXPECT_LT(theta_graph_stretch_bound(12), kInfiniteWeight);
    // More cones -> tighter bound.
    EXPECT_LT(theta_graph_stretch_bound(24), theta_graph_stretch_bound(12));
    EXPECT_LT(theta_graph_stretch_bound(48), theta_graph_stretch_bound(24));
}

TEST(YaoGraphTest, StretchBoundFormula) {
    EXPECT_EQ(yao_graph_stretch_bound(6), kInfiniteWeight);  // theta = pi/3
    EXPECT_LT(yao_graph_stretch_bound(12), kInfiniteWeight);
    EXPECT_LT(yao_graph_stretch_bound(24), yao_graph_stretch_bound(12));
}

TEST(ConeSpannerTest, InputValidation) {
    Rng rng(1);
    const EuclideanMetric pts3d = uniform_points(10, 3, 1.0, rng);
    EXPECT_THROW(theta_graph(pts3d, 8), std::invalid_argument);
    EXPECT_THROW(yao_graph(pts3d, 8), std::invalid_argument);
    const EuclideanMetric pts2d = uniform_points(10, 2, 1.0, rng);
    EXPECT_THROW(theta_graph(pts2d, 3), std::invalid_argument);
    EXPECT_THROW(yao_graph(pts2d, 2), std::invalid_argument);
}

TEST(ConeSpannerTest, SquareExample) {
    // Unit square corners: every cone construction must connect adjacent
    // corners; the graphs stay connected and small.
    const EuclideanMetric sq(2, {0, 0, 1, 0, 1, 1, 0, 1});
    const Graph th = theta_graph(sq, 8);
    const Graph ya = yao_graph(sq, 8);
    EXPECT_TRUE(is_connected(th));
    EXPECT_TRUE(is_connected(ya));
    EXPECT_LE(th.num_edges(), 6u);
    EXPECT_LE(ya.num_edges(), 6u);
}

TEST(ConeSpannerTest, EdgeBudgetIsAtMostKnPerDirection) {
    Rng rng(5);
    const EuclideanMetric pts = uniform_points(300, 2, 10.0, rng);
    for (std::size_t k : {8u, 12u, 16u}) {
        EXPECT_LE(theta_graph(pts, k).num_edges(), k * pts.size());
        EXPECT_LE(yao_graph(pts, k).num_edges(), k * pts.size());
    }
}

class ConeStretchTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, std::size_t>> {};

TEST_P(ConeStretchTest, MeasuredStretchWithinGuarantee) {
    const auto [seed, n, k] = GetParam();
    Rng rng(seed);
    const EuclideanMetric pts = uniform_points(n, 2, 100.0, rng);
    const Graph th = theta_graph(pts, k);
    const Graph ya = yao_graph(pts, k);
    EXPECT_TRUE(is_connected(th));
    EXPECT_TRUE(is_connected(ya));
    EXPECT_LE(max_stretch_metric(pts, th), theta_graph_stretch_bound(k) + 1e-9);
    EXPECT_LE(max_stretch_metric(pts, ya), yao_graph_stretch_bound(k) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(UniformPoints, ConeStretchTest,
                         ::testing::Combine(::testing::Values(2u, 9u, 77u),
                                            ::testing::Values(50u, 150u),
                                            ::testing::Values(12u, 16u, 24u)));

class SweepEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, std::size_t>> {
};

TEST_P(SweepEquivalenceTest, SweepMatchesNaiveExactly) {
    const auto [seed, n, k] = GetParam();
    Rng rng(seed);
    const EuclideanMetric pts = uniform_points(n, 2, 100.0, rng);
    const Graph naive = theta_graph(pts, k);
    const Graph sweep = theta_graph_sweep(pts, k);
    EXPECT_TRUE(same_edge_set(naive, sweep))
        << "naive m=" << naive.num_edges() << " sweep m=" << sweep.num_edges();
}

INSTANTIATE_TEST_SUITE_P(RandomSets, SweepEquivalenceTest,
                         ::testing::Combine(::testing::Values(1u, 17u, 133u),
                                            ::testing::Values(30u, 120u, 400u),
                                            ::testing::Values(8u, 12u, 16u)));

TEST(ConeSpannerTest, SweepStretchOnLargeInstance) {
    Rng rng(7);
    const EuclideanMetric pts = uniform_points(3000, 2, 500.0, rng);
    const Graph sweep = theta_graph_sweep(pts, 16);
    EXPECT_TRUE(is_connected(sweep));
    EXPECT_LE(max_stretch_metric_sampled(pts, sweep, 32, 5),
              theta_graph_stretch_bound(16) + 1e-9);
}

TEST(ConeSpannerTest, CirclePointsAreHandled) {
    // Co-circular points exercise the cone-boundary cases.
    const EuclideanMetric circ = circle_points(64, 10.0);
    const Graph th = theta_graph(circ, 12);
    EXPECT_TRUE(is_connected(th));
    EXPECT_LE(max_stretch_metric(circ, th), theta_graph_stretch_bound(12) + 1e-9);
}

TEST(ConeSpannerTest, YaoPicksNearestInCone) {
    // Three collinear points: Yao from the left point must go to the middle
    // one, not the far one (same cone, nearer).
    const EuclideanMetric line(2, {0, 0, 1, 0, 5, 0});
    const Graph ya = yao_graph(line, 8);
    EXPECT_TRUE(ya.has_edge(0, 1));
    EXPECT_FALSE(ya.has_edge(0, 2));
}

}  // namespace
}  // namespace gsp
