// The SIMD backend's bit-exactness contract, tested at both levels.
//
// Lane level: every kernel in every table the machine can run (sse4.2 /
// avx2 when the CPU has them, scalar always) must return bitwise the
// scalar reference's outputs -- on randomized inputs and on the
// adversarial ones vector code gets wrong first: denormals, exact ties
// with the comparison bound, +/-0.0, infinities, and block sizes that
// exercise every tail length. The radix sorter must reproduce
// std::stable_sort byte for byte (memcmp), including tie-heavy and
// signed-zero weights.
//
// Pipeline level: a build with EngineTuning::SimdBackend::kForced must
// return the same edge set AND the same decision counters -- the full
// GreedyStats serialization -- as kScalar, across the sources
// {graph, metric, wspd, grid} and thread counts {1, 2, 4, hardware}.
// That is the property the whole backend rests on: set_kernels only ever
// trades nanoseconds.
#include "simd/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "api/build_options.hpp"
#include "api/build_report.hpp"
#include "api/candidate_source.hpp"
#include "api/grid_source.hpp"
#include "api/session.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "graph/graph.hpp"
#include "metric/euclidean.hpp"
#include "simd/radix_sort.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

/// Every kernel table this machine can actually execute (scalar always;
/// the x86 tables only up to what cpuid reports).
std::vector<simd::Backend> runnable_backends() {
    std::vector<simd::Backend> out{simd::Backend::kScalar};
    const auto have = static_cast<int>(simd::detect());
    if (have >= static_cast<int>(simd::Backend::kSSE42)) {
        out.push_back(simd::Backend::kSSE42);
    }
    if (have >= static_cast<int>(simd::Backend::kAVX2)) {
        out.push_back(simd::Backend::kAVX2);
    }
    return out;
}

/// Bitwise double equality (EXPECT_EQ would conflate +0.0 and -0.0).
::testing::AssertionResult bits_equal(double a, double b) {
    if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
        return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << a << " != " << b << " (bits " << std::hex
           << std::bit_cast<std::uint64_t>(a) << " vs "
           << std::bit_cast<std::uint64_t>(b) << ")";
}

constexpr double kDenormal = std::numeric_limits<double>::denorm_min();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SimdKernelTest, SweepLowerBoundMatchesScalarEverywhere) {
    const simd::Kernels& ref = simd::scalar_kernels();
    Rng rng(11);
    // Sorted keys with heavy ties, denormal gaps, and an infinite tail --
    // then probe every cursor position against bounds that sit exactly on,
    // just below, and just above the tie plateaus.
    std::vector<double> keys;
    double acc = 0.0;
    for (int i = 0; i < 97; ++i) {
        const int kind = static_cast<int>(rng.index(4));
        if (kind == 0) acc += 0.0;  // tie with the previous key
        if (kind == 1) acc += kDenormal;
        if (kind == 2) acc += rng.uniform01();
        if (kind == 3) acc += 1e-9;
        keys.push_back(acc);
    }
    keys.push_back(kInf);
    keys.push_back(kInf);

    std::vector<double> probes;
    for (const double k : keys) {
        probes.push_back(k);
        probes.push_back(std::nextafter(k, -kInf));
        probes.push_back(std::nextafter(k, kInf));
    }
    probes.push_back(-1.0);
    probes.push_back(kInf);

    for (const simd::Backend b : runnable_backends()) {
        const simd::Kernels& k = simd::kernels_for(b);
        for (std::size_t begin = 0; begin <= keys.size(); begin += 7) {
            for (const double d : probes) {
                if (std::isinf(d)) continue;  // contract: finite bound
                EXPECT_EQ(k.sweep_lower_bound(keys.data(), begin, keys.size(), d),
                          ref.sweep_lower_bound(keys.data(), begin, keys.size(), d))
                    << simd::backend_name(b) << " begin=" << begin << " d=" << d;
            }
        }
    }
}

TEST(SimdKernelTest, Distances2dBitwiseScalar) {
    const simd::Kernels& ref = simd::scalar_kernels();
    Rng rng(23);
    // Coordinates spanning coincident points, denormal offsets, huge
    // magnitudes, and negative zeros; every n in [0, 33] exercises each
    // vector tail.
    for (std::size_t n = 0; n <= 33; ++n) {
        std::vector<double> ax(n), ay(n), bx(n), by(n), got(n, -1.0), want(n, -1.0);
        for (std::size_t i = 0; i < n; ++i) {
            switch (i % 5) {
                case 0:
                    ax[i] = bx[i] = rng.uniform01() * 1e3;  // coincident
                    ay[i] = by[i] = -0.0;
                    break;
                case 1:
                    ax[i] = 0.0;
                    ay[i] = 0.0;
                    bx[i] = kDenormal;
                    by[i] = -kDenormal;
                    break;
                case 2:
                    ax[i] = rng.uniform01() * 1e155;  // squares near overflow
                    ay[i] = -rng.uniform01() * 1e155;
                    bx[i] = 0.0;
                    by[i] = 0.0;
                    break;
                default:
                    ax[i] = (rng.uniform01() - 0.5) * 2e3;
                    ay[i] = (rng.uniform01() - 0.5) * 2e3;
                    bx[i] = (rng.uniform01() - 0.5) * 2e3;
                    by[i] = (rng.uniform01() - 0.5) * 2e3;
            }
        }
        ref.distances2d(ax.data(), ay.data(), bx.data(), by.data(), n, want.data());
        for (const simd::Backend b : runnable_backends()) {
            std::fill(got.begin(), got.end(), -1.0);
            simd::kernels_for(b).distances2d(ax.data(), ay.data(), bx.data(), by.data(),
                                             n, got.data());
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_TRUE(bits_equal(got[i], want[i]))
                    << simd::backend_name(b) << " n=" << n << " lane " << i;
            }
        }
    }
}

TEST(SimdKernelTest, MatchPairsMatchesScalar) {
    const simd::Kernels& ref = simd::scalar_kernels();
    Rng rng(37);
    constexpr std::uint32_t kSkip = 0xffffffffu;
    for (std::size_t n = 0; n <= 32; ++n) {
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<std::uint32_t> a(n), b(n);
            for (std::size_t i = 0; i < n; ++i) {
                // Small value range => frequent matches; sprinkle skips on
                // either side and on both (the both-empty slot must NOT
                // report a match).
                a[i] = (rng.index(8) == 0) ? kSkip
                                                 : static_cast<std::uint32_t>(
                                                       rng.index(5));
                b[i] = (rng.index(8) == 0) ? kSkip
                                                 : static_cast<std::uint32_t>(
                                                       rng.index(5));
            }
            const std::uint32_t want = ref.match_pairs(a.data(), b.data(), n, kSkip);
            for (const simd::Backend bk : runnable_backends()) {
                EXPECT_EQ(simd::kernels_for(bk).match_pairs(a.data(), b.data(), n, kSkip),
                          want)
                    << simd::backend_name(bk) << " n=" << n << " trial=" << trial;
            }
        }
    }
}

TEST(SimdKernelTest, RelaxLanesBitwiseScalar) {
    const simd::Kernels& ref = simd::scalar_kernels();
    Rng rng(41);
    for (std::size_t n = 0; n <= 32; ++n) {
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<HalfEdge> edges(n);
            double limit = rng.uniform01() * 10.0;
            const double d = rng.uniform01() * 5.0;
            for (std::size_t i = 0; i < n; ++i) {
                edges[i].to = static_cast<VertexId>(rng.index(1000));
                edges[i].edge = static_cast<EdgeId>(i);
                switch (i % 6) {
                    case 0:
                        // Exactly on the limit: d + w == limit must pass
                        // (<=) in every lane.
                        edges[i].weight = limit - d;
                        break;
                    case 1:
                        edges[i].weight = kDenormal;
                        break;
                    case 2:
                        edges[i].weight = kInf;
                        break;
                    default:
                        edges[i].weight = rng.uniform01() * 12.0;
                }
            }
            std::vector<double> want(n, -1.0), got(n, -1.0);
            const std::uint32_t want_mask =
                ref.relax_lanes(edges.data(), n, d, limit, want.data());
            for (const simd::Backend b : runnable_backends()) {
                std::fill(got.begin(), got.end(), -1.0);
                const std::uint32_t mask = simd::kernels_for(b).relax_lanes(
                    edges.data(), n, d, limit, got.data());
                EXPECT_EQ(mask, want_mask)
                    << simd::backend_name(b) << " n=" << n << " trial=" << trial;
                for (std::size_t i = 0; i < n; ++i) {
                    if ((want_mask >> i) & 1u) {
                        EXPECT_TRUE(bits_equal(got[i], want[i]))
                            << simd::backend_name(b) << " lane " << i;
                    }
                }
            }
        }
    }
}

TEST(SimdKernelTest, RadixSortByteIdenticalToStableSort) {
    Rng rng(53);
    simd::CandidateRadixSorter sorter;
    const auto tie_less = [](const GreedyCandidate& a, const GreedyCandidate& b) {
        return std::tie(a.weight, a.u, a.v) < std::tie(b.weight, b.u, b.v);
    };
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{777},
          std::size_t{4096}}) {
        std::vector<GreedyCandidate> v(n);
        for (std::size_t i = 0; i < n; ++i) {
            v[i].u = static_cast<VertexId>(rng.index(200000));
            v[i].v = static_cast<VertexId>(rng.index(0x7fffffff));
            switch (i % 7) {
                case 0:
                    v[i].weight = 1.5;  // heavy tie plateau
                    break;
                case 1:
                    v[i].weight = 0.0;
                    break;
                case 2:
                    v[i].weight = -0.0;  // must interleave with +0.0 stably
                    break;
                case 3:
                    v[i].weight = kDenormal * static_cast<double>(1 + i % 3);
                    break;
                case 4:
                    v[i].weight = kInf;
                    break;
                default:
                    v[i].weight = rng.uniform01() * 1e6;
            }
        }
        std::vector<GreedyCandidate> want = v;
        std::stable_sort(want.begin(), want.end(), tie_less);
        sorter.sort(v);
        ASSERT_EQ(v.size(), want.size());
        EXPECT_EQ(0, std::memcmp(v.data(), want.data(), n * sizeof(GreedyCandidate)))
            << "n=" << n;
    }
    // A pre-sorted constant-digit input (the skip-pass path) must survive.
    std::vector<GreedyCandidate> flat(100, GreedyCandidate{3, 9, 2.25});
    std::vector<GreedyCandidate> flat_want = flat;
    sorter.sort(flat);
    EXPECT_EQ(0, std::memcmp(flat.data(), flat_want.data(),
                             flat.size() * sizeof(GreedyCandidate)));
}

/// The full decision record of one build: every GreedyStats counter,
/// serialized through the one shared serializer.
std::string stats_fingerprint(const GreedyStats& stats) {
    JsonWriter w;
    w.begin_object();
    append_greedy_stats(w, stats);
    w.end_object();
    return w.str();
}

void check_forced_equals_scalar(
    const std::function<std::unique_ptr<CandidateSource>()>& make_source,
    double stretch, const std::string& what) {
    BuildOptions scalar_opts;
    scalar_opts.stretch = stretch;
    scalar_opts.engine.simd_backend = EngineTuning::SimdBackend::kScalar;

    SpannerSession scalar_session;
    BuildReport scalar_report;
    const auto scalar_source = make_source();
    const Graph reference =
        scalar_session.build(*scalar_source, scalar_opts, &scalar_report);
    EXPECT_EQ(scalar_report.simd_backend, "scalar") << what;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                      std::size_t{0}}) {
        const std::string label = what + " threads=" + std::to_string(threads);
        BuildOptions forced = scalar_opts;
        forced.engine.num_threads = threads;
        forced.engine.simd_backend = EngineTuning::SimdBackend::kForced;
        const auto source = make_source();
        SpannerSession session;
        BuildReport report;
        const Graph h = session.build(*source, forced, &report);
        EXPECT_TRUE(same_edge_set(h, reference)) << label;
        EXPECT_EQ(report.edges, scalar_report.edges) << label;
        EXPECT_EQ(report.weight, scalar_report.weight) << label;
        EXPECT_EQ(report.simd_backend,
                  simd::backend_name(simd::detect()))
            << label;
        if (threads <= 1) {
            // Serial runs have fully deterministic counters; parallel
            // decision counters are covered by the edge set + the
            // schedule-free subset below.
            EXPECT_EQ(stats_fingerprint(report.stats),
                      stats_fingerprint(scalar_report.stats))
                << label;
        } else {
            EXPECT_EQ(report.stats.edges_examined, scalar_report.stats.edges_examined)
                << label;
            EXPECT_EQ(report.stats.edges_added, scalar_report.stats.edges_added)
                << label;
            EXPECT_EQ(report.stats.candidates_streamed,
                      scalar_report.stats.candidates_streamed)
                << label;
        }
    }
}

class SimdBackendEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdBackendEquivalenceTest, GraphEdges) {
    Rng rng(GetParam());
    const Graph g = erdos_renyi(150, 0.12, {.lo = 0.5, .hi = 3.0}, rng);
    check_forced_equals_scalar([&] { return std::make_unique<GraphCandidateSource>(g); },
                               1.8, "graph");
}

TEST_P(SimdBackendEquivalenceTest, MetricPairs) {
    Rng rng(GetParam() ^ 0xbeef);
    const EuclideanMetric pts = uniform_points(70, 2, 70.0, rng);
    check_forced_equals_scalar(
        [&] { return std::make_unique<MetricCandidateSource>(pts); }, 1.5, "metric");
}

TEST_P(SimdBackendEquivalenceTest, WspdPairs) {
    Rng rng(GetParam() ^ 0x2468);
    const EuclideanMetric pts = uniform_points(110, 2, 90.0, rng);
    check_forced_equals_scalar(
        [&] { return std::make_unique<WspdCandidateSource>(pts, 9.0); }, 1.5, "wspd");
}

TEST_P(SimdBackendEquivalenceTest, GridStream) {
    Rng rng(GetParam() ^ 0x1357);
    const EuclideanMetric pts = uniform_points(160, 2, 120.0, rng);
    check_forced_equals_scalar(
        [&] { return std::make_unique<GridCandidateSource>(pts, 9.0); }, 1.5, "grid");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdBackendEquivalenceTest,
                         ::testing::Values(7u, 521u, 4242u));

TEST(SimdBackendEquivalenceTest, AutoResolvesToDetectedBackend) {
    // kAuto is the default: the report must record the dispatch-resolved
    // table (never the knob), and on x86-64 hardware with vector support
    // it must not claim "scalar".
    Rng rng(99);
    const EuclideanMetric pts = uniform_points(60, 2, 60.0, rng);
    MetricCandidateSource source(pts);
    SpannerSession session;
    BuildOptions options;
    options.stretch = 1.5;
    BuildReport report;
    session.build(source, options, &report);
    EXPECT_EQ(report.simd_backend, simd::backend_name(simd::detect()));
}

}  // namespace
}  // namespace gsp
