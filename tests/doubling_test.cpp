#include "metric/doubling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "metric/euclidean.hpp"
#include "metric/matrix_metric.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

TEST(DoublingTest, LineMetricHasSmallConstant) {
    // Evenly spaced points on a line: doubling dimension 1 (constant ~2-4
    // for restricted-center covers).
    std::vector<double> coords;
    for (int i = 0; i < 64; ++i) coords.push_back(static_cast<double>(i));
    const EuclideanMetric line(1, std::move(coords));
    const DoublingEstimate est = estimate_doubling(line);
    EXPECT_LE(est.ddim_upper(), 3.0);
    EXPECT_GE(est.ddim_lower(), 0.9);
}

TEST(DoublingTest, UniformMetricHasLargeConstant) {
    // The uniform metric on n points needs n balls of half radius: its
    // doubling constant is n, ddim = log2(n).
    const std::size_t n = 32;
    std::vector<std::vector<Weight>> d(n, std::vector<Weight>(n, 1.0));
    for (std::size_t i = 0; i < n; ++i) d[i][i] = 0.0;
    const MatrixMetric uniform(std::move(d));
    const DoublingEstimate est = estimate_doubling(uniform);
    EXPECT_EQ(est.cover_upper, n);
    EXPECT_EQ(est.pack_lower, n);
    EXPECT_NEAR(est.ddim_upper(), std::log2(static_cast<double>(n)), 1e-9);
}

TEST(DoublingTest, PlaneBeatsUniformOrderings) {
    Rng rng(17);
    std::vector<double> coords;
    for (int i = 0; i < 200; ++i) coords.push_back(rng.uniform(0.0, 1.0));
    const EuclideanMetric plane(2, std::move(coords));
    const DoublingEstimate est = estimate_doubling(plane);
    // 2D point sets: doubling dimension O(1); the greedy-cover estimate must
    // stay far below log2(n) ~ 6.6.
    EXPECT_LE(est.ddim_upper(), 5.0);
    EXPECT_GE(est.ddim_lower(), 1.0);
    EXPECT_GE(est.cover_upper, est.pack_lower);  // cover bound dominates packing bound
}

TEST(DoublingTest, SingletonAndPairAreTrivial) {
    const EuclideanMetric one(1, {0.0});
    EXPECT_EQ(estimate_doubling(one).cover_upper, 1u);
    const EuclideanMetric two(1, {0.0, 1.0});
    const DoublingEstimate est = estimate_doubling(two);
    EXPECT_LE(est.ddim_upper(), 1.0);
}

TEST(DoublingTest, PackingLemmaExponentIsModest) {
    // Lemma 1: |S| <= (2R/r)^{O(ddim)}. For a 2D point set with
    // ddim estimate ~2, the observed exponent factor should be O(1).
    Rng rng(23);
    std::vector<double> coords;
    for (int i = 0; i < 150; ++i) coords.push_back(rng.uniform(0.0, 1.0));
    const EuclideanMetric plane(2, std::move(coords));
    const double c = packing_exponent(plane, /*ddim=*/2.0, /*samples=*/128, /*seed=*/3);
    EXPECT_GT(c, 0.0);
    EXPECT_LE(c, 3.0);
}

TEST(DoublingTest, ExponentialSpacingStillDoubling) {
    // Geometrically spaced points on a line (aspect ratio 2^20) remain
    // doubling dimension ~1: scale-invariance of the estimate.
    std::vector<double> coords;
    for (int i = 0; i < 21; ++i) coords.push_back(std::pow(2.0, i));
    const EuclideanMetric line(1, std::move(coords));
    const DoublingEstimate est = estimate_doubling(line, /*radii_per_center=*/16);
    EXPECT_LE(est.ddim_upper(), 3.0);
}

}  // namespace
}  // namespace gsp
