// Golden fixture for gsp-relaxed-atomic: memory_order_relaxed outside the
// commutative verdict-bitset whitelist, with no commutativity argument.
// Lint-only input; never compiled or linked into any target.
#include <atomic>

namespace gsp_fixture {

int fixture_relaxed(const std::atomic<int>& flag) {
    return flag.load(std::memory_order_relaxed);
}

}  // namespace gsp_fixture
