// Golden fixture (declaration half) for gsp-epoch-guarded: an epoch-tagged
// field whose raw value is meaningless without the tag check. The paired
// bad_epoch_guarded.cpp reads it from a different file stem, which the
// checker must flag. Lint-only input; never compiled into any target.
#pragma once

#include "util/annotations.hpp"

namespace gsp_fixture {

struct FixtureSketch {
    [[nodiscard]] unsigned checked_tag() const { return fixture_epoch_tag_; }

    GSP_EPOCH_GUARDED unsigned fixture_epoch_tag_ = 0;
};

}  // namespace gsp_fixture
