// Golden fixture for gsp-serial-only: a GSP_SERIAL_ONLY function invoked
// from inside a thread-pool task body.
// Lint-only input; never compiled or linked into any target.
#include <cstddef>

#include "util/annotations.hpp"
#include "util/thread_pool.hpp"

namespace gsp_fixture {

GSP_SERIAL_ONLY void fixture_record(int value);

void fixture_parallel(gsp::ThreadPool& pool) {
    pool.run(8, [&](std::size_t, std::size_t task) {
        fixture_record(static_cast<int>(task));
    });
}

}  // namespace gsp_fixture
