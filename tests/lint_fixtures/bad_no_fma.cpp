// Golden fixture for gsp-no-fma: an explicit fused multiply-add inside a
// GSP_DECISION_PURE function. A contracted arm rounds once where the
// scalar reference rounds twice, breaking kForced == kScalar bit-identity.
// Lint-only input; never compiled or linked into any target.
#include <cmath>

#include "util/annotations.hpp"

GSP_DECISION_PURE double fixture_kernel(double a, double b, double c) {
    return std::fma(a, b, c);
}
