// Golden fixture (access half) for gsp-epoch-guarded: reads the tagged
// field declared in bad_epoch_guarded_decl.hpp from a file with a
// different stem, bypassing the checked accessor.
// Lint-only input; never compiled or linked into any target.
#include "bad_epoch_guarded_decl.hpp"

namespace gsp_fixture {

unsigned fixture_peek(const FixtureSketch& sketch) {
    return sketch.fixture_epoch_tag_;
}

}  // namespace gsp_fixture
