// Golden fixture for gsp-decision-pure: a GSP_DECISION_PURE body that
// iterates an unordered container, whose order is run-dependent.
// Lint-only input; never compiled or linked into any target.
#include <unordered_set>

#include "util/annotations.hpp"

GSP_DECISION_PURE int fixture_decide(int n) {
    std::unordered_set<int> seen;
    int acc = 0;
    for (int i = 0; i < n; ++i) seen.insert(i % 7);
    for (int v : seen) acc += v;
    return acc;
}
