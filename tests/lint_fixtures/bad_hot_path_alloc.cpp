// Golden fixture for gsp-hot-path-alloc: a GSP_HOT_PATH body that heap
// allocates. Lint-only input; never compiled or linked into any target.
#include "util/annotations.hpp"

GSP_HOT_PATH int* fixture_hot_alloc(int n) {
    int* p = new int[static_cast<unsigned>(n)];
    return p;
}
