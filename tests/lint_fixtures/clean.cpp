// Golden fixture asserted SILENT: annotated functions and a guarded field
// that obey every contract, plus benign look-alikes (resize/assign are the
// sanctioned warm-capacity idiom, std::sort allocates nothing, an ordered
// map iterates deterministically).
// Lint-only input; never compiled or linked into any target.
#include <algorithm>
#include <map>
#include <vector>

#include "util/annotations.hpp"

namespace gsp_fixture {

GSP_DECISION_PURE GSP_HOT_PATH double fixture_clean_distance2(double ax,
                                                              double ay,
                                                              double bx,
                                                              double by) {
    const double dx = ax - bx;
    const double dy = ay - by;
    return dx * dx + dy * dy;
}

GSP_HOT_PATH inline void fixture_clean_warm(std::vector<int>& buf,
                                            std::size_t n) {
    buf.resize(n);
    buf.assign(n, 0);
    std::sort(buf.begin(), buf.end());
}

GSP_SERIAL_ONLY void fixture_clean_record(int value);

GSP_DECISION_PURE inline int fixture_clean_ordered(const std::map<int, int>& m) {
    int acc = 0;
    for (const auto& kv : m) acc += kv.second;
    return acc;
}

struct FixtureCleanSketch {
    [[nodiscard]] unsigned checked() const { return clean_tag_; }

    GSP_EPOCH_GUARDED unsigned clean_tag_ = 0;
};

}  // namespace gsp_fixture
