// Golden fixture asserted SILENT: the same violation as
// bad_relaxed_atomic.cpp, but carrying a suppression comment with a
// commutativity argument, which the linter must honor.
// Lint-only input; never compiled or linked into any target.
#include <atomic>

namespace gsp_fixture {

int fixture_suppressed(const std::atomic<int>& counter) {
    // gsp-lint: allow(gsp-relaxed-atomic) fixture: commutative counter read
    return counter.load(std::memory_order_relaxed);
}

}  // namespace gsp_fixture
