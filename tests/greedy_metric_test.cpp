#include "core/greedy_metric.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <tuple>

#include "analysis/audit.hpp"
#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/self_optimality.hpp"
#include "graph/graph.hpp"
#include "metric/euclidean.hpp"
#include "metric/matrix_metric.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

EuclideanMetric random_points(std::size_t n, std::size_t dim, Rng& rng) {
    std::vector<double> coords;
    coords.reserve(n * dim);
    for (std::size_t i = 0; i < n * dim; ++i) coords.push_back(rng.uniform(0.0, 100.0));
    return EuclideanMetric(dim, std::move(coords));
}

/// The unified-API spelling of the old use_distance_cache switch: cached =
/// the full engine (optionally parallel), naive = every optimisation off.
Graph metric_spanner_with(const MetricSpace& m, double t, bool cached,
                          std::size_t threads = 1, GreedyStats* stats = nullptr) {
    SpannerSession session;
    BuildOptions options;
    options.stretch = t;
    if (cached) {
        options.engine.num_threads = threads;
    } else {
        options.engine = EngineTuning::naive();
    }
    MetricCandidateSource source(m);
    BuildReport report;
    Graph h = session.build(source, options, &report);
    if (stats != nullptr) *stats = report.stats;
    return h;
}

TEST(GreedyMetricTest, RejectsStretchBelowOne) {
    const EuclideanMetric m(1, {0.0, 1.0});
    EXPECT_THROW(greedy_spanner_metric(m, 0.9), std::invalid_argument);
}

TEST(GreedyMetricTest, TrivialSizes) {
    const EuclideanMetric empty(1, {});
    EXPECT_EQ(greedy_spanner_metric(empty, 2.0).num_edges(), 0u);
    const EuclideanMetric one(1, {0.0});
    EXPECT_EQ(greedy_spanner_metric(one, 2.0).num_edges(), 0u);
    const EuclideanMetric two(1, {0.0, 5.0});
    const Graph h = greedy_spanner_metric(two, 2.0);
    EXPECT_EQ(h.num_edges(), 1u);
    EXPECT_DOUBLE_EQ(h.total_weight(), 5.0);
}

TEST(GreedyMetricTest, CollinearPointsLargeStretchGivesPath) {
    const EuclideanMetric line(1, {0.0, 1.0, 2.0, 3.0, 4.0});
    const Graph h = greedy_spanner_metric(line, 1.5);
    // On a line the path already has stretch exactly 1 -- nothing else enters.
    EXPECT_EQ(h.num_edges(), 4u);
    for (const Edge& e : h.edges()) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(GreedyMetricTest, StretchOneOnMetricGivesCompletePruning) {
    // Points 0, 1, 2 equally spaced: d(0,2) = 2 = d(0,1)+d(1,2), so the long
    // edge is redundant at t = 1 (witness path of equal weight exists).
    const EuclideanMetric line(1, {0.0, 1.0, 2.0});
    const Graph h = greedy_spanner_metric(line, 1.0);
    EXPECT_EQ(h.num_edges(), 2u);
}

// The heart of the Farshi-Gudmundsson acceleration claim: identical output.
class CacheEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, std::size_t, double>> {
};

TEST_P(CacheEquivalenceTest, CachedAndNaiveAgreeExactly) {
    const auto [seed, n, dim, t] = GetParam();
    Rng rng(seed);
    const EuclideanMetric m = random_points(n, dim, rng);
    GreedyStats cached_stats;
    GreedyStats naive_stats;
    const Graph cached = metric_spanner_with(m, t, /*cached=*/true, 1, &cached_stats);
    const Graph naive = metric_spanner_with(m, t, /*cached=*/false, 1, &naive_stats);
    EXPECT_TRUE(same_edge_set(cached, naive));
    // The cache must never run *more* Dijkstras than the naive loop.
    EXPECT_LE(cached_stats.dijkstra_runs, naive_stats.dijkstra_runs);
}

INSTANTIATE_TEST_SUITE_P(RandomPointSets, CacheEquivalenceTest,
                         ::testing::Combine(::testing::Values(2u, 13u, 77u),
                                            ::testing::Values(20u, 45u),
                                            ::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(1.1, 1.5, 2.0)));

TEST(GreedyMetricTest, ParallelCachedEngineMatchesNaiveAtEveryThreadCount) {
    // Acceptance criterion: greedy_spanner_metric with the incremental
    // store and bound sketch enabled is bit-identical to the naive kernel
    // at thread counts {1, 2, 4, hardware}.
    for (const std::uint64_t seed : {4u, 31u}) {
        Rng rng(seed);
        const EuclideanMetric m = random_points(48, 2, rng);
        const Graph naive = metric_spanner_with(m, 1.5, /*cached=*/false);
        for (const std::size_t threads : {1u, 2u, 4u, 0u}) {
            const Graph cached = metric_spanner_with(m, 1.5, /*cached=*/true, threads);
            EXPECT_TRUE(same_edge_set(cached, naive))
                << "seed " << seed << " num_threads=" << threads;
        }
    }
}

TEST(GreedyMetricTest, SketchRecoversCrossBucketHits) {
    // On metric inputs the candidate set is all pairs, so shared balls
    // settle far more vertices than their own bucket consumes: the bound
    // sketch must convert some of that into cross-bucket cache hits (the
    // n^2 DistanceCache behavior it replaces in O(n) memory).
    Rng rng(21);
    const EuclideanMetric m = random_points(60, 2, rng);
    GreedyStats stats;
    (void)metric_spanner_with(m, 1.5, /*cached=*/true, 1, &stats);
    EXPECT_GT(stats.sketch_hits + stats.sketch_accepts, 0u);
    EXPECT_GT(stats.buckets, 1u);  // the claim is *cross-bucket* reuse
}

class GreedyMetricPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(GreedyMetricPropertyTest, AllPairsStretchHolds) {
    const auto [seed, n, t] = GetParam();
    Rng rng(seed);
    const EuclideanMetric m = random_points(n, 2, rng);
    const Graph h = greedy_spanner_metric(m, t);
    EXPECT_LE(max_stretch_metric(m, h), t + 1e-9);
}

TEST_P(GreedyMetricPropertyTest, SharesMstWithMetric) {
    const auto [seed, n, t] = GetParam();
    Rng rng(seed ^ 0x1234);
    const EuclideanMetric m = random_points(n, 2, rng);
    const Graph h = greedy_spanner_metric(m, t);
    // Observations 2 + 6: H and M have a common MST, so equal MST weights.
    EXPECT_NEAR(metric_mst_gap(m, h), 0.0, 1e-9);
}

TEST_P(GreedyMetricPropertyTest, SpannerIsConnected) {
    const auto [seed, n, t] = GetParam();
    Rng rng(seed ^ 0x9999);
    const EuclideanMetric m = random_points(n, 2, rng);
    const Graph h = greedy_spanner_metric(m, t);
    EXPECT_GE(h.num_edges(), m.size() - 1);  // at least a spanning tree
}

INSTANTIATE_TEST_SUITE_P(RandomPointSets, GreedyMetricPropertyTest,
                         ::testing::Combine(::testing::Values(5u, 23u),
                                            ::testing::Values(15u, 40u),
                                            ::testing::Values(1.05, 1.25, 2.0)));

TEST(GreedyMetricTest, MatrixMetricInstanceWorks) {
    // A non-Euclidean metric: shortest-path closure of a weighted star plus
    // one heavy rim edge.
    const MatrixMetric m({{0, 1, 1, 1},
                          {1, 0, 1.8, 2},
                          {1, 1.8, 0, 2},
                          {1, 2, 2, 0}},
                         true);
    const Graph h = greedy_spanner_metric(m, 1.2);
    EXPECT_LE(max_stretch_metric(m, h), 1.2 + 1e-12);
}

}  // namespace
}  // namespace gsp
