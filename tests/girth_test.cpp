#include "graph/girth.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/graph.hpp"
#include "graph/traversal.hpp"
#include "util/random.hpp"

namespace gsp {
namespace {

Graph cycle_graph(std::size_t n, Weight w = 1.0) {
    Graph g(n);
    for (VertexId i = 0; i < n; ++i) {
        g.add_edge(i, static_cast<VertexId>((i + 1) % n), w);
    }
    return g;
}

/// The Petersen graph, built inline (the generator module has its own copy;
/// this test must not depend on it).
Graph petersen() {
    Graph g(10);
    for (VertexId i = 0; i < 5; ++i) {
        g.add_edge(i, (i + 1) % 5, 1.0);               // outer C5
        g.add_edge(5 + i, 5 + (i + 2) % 5, 1.0);       // inner pentagram
        g.add_edge(i, 5 + i, 1.0);                     // spokes
    }
    return g;
}

TEST(GirthTest, TreeIsAcyclic) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(1, 3, 1.0);
    EXPECT_EQ(unweighted_girth(g), std::numeric_limits<std::uint32_t>::max());
    EXPECT_EQ(weighted_girth(g), kInfiniteWeight);
}

TEST(GirthTest, CycleGirthEqualsLength) {
    for (std::size_t n : {3u, 4u, 5u, 9u}) {
        EXPECT_EQ(unweighted_girth(cycle_graph(n)), n) << "n=" << n;
        EXPECT_DOUBLE_EQ(weighted_girth(cycle_graph(n, 2.0)), 2.0 * static_cast<double>(n));
    }
}

TEST(GirthTest, PetersenHasGirthFive) {
    const Graph p = petersen();
    ASSERT_TRUE(is_connected(p));
    EXPECT_EQ(p.num_edges(), 15u);
    EXPECT_EQ(unweighted_girth(p), 5u);
    EXPECT_DOUBLE_EQ(weighted_girth(p), 5.0);
}

TEST(GirthTest, ParallelEdgesFormTwoCycle) {
    Graph g(2);
    g.add_edge(0, 1, 1.0);
    g.add_edge(0, 1, 3.0);
    EXPECT_EQ(unweighted_girth(g), 2u);
    EXPECT_DOUBLE_EQ(weighted_girth(g), 4.0);
}

TEST(GirthTest, TriangleWithHeavyChordlessCycle) {
    // Weighted girth need not live on the unweighted girth cycle.
    Graph g(5);
    // Triangle of heavy edges: total weight 30.
    g.add_edge(0, 1, 10.0);
    g.add_edge(1, 2, 10.0);
    g.add_edge(2, 0, 10.0);
    // 4-cycle of light edges: total weight 4.
    g.add_edge(1, 3, 1.0);
    g.add_edge(3, 4, 1.0);
    g.add_edge(4, 2, 1.0);
    g.add_edge(2, 1, 1.0);  // parallel to the heavy (1,2) edge
    EXPECT_EQ(unweighted_girth(g), 2u);  // parallel pair
    EXPECT_DOUBLE_EQ(weighted_girth(g), 4.0);
}

TEST(GirthTest, CompleteGraphGirthThree) {
    Graph g(5);
    for (VertexId i = 0; i < 5; ++i) {
        for (VertexId j = i + 1; j < 5; ++j) g.add_edge(i, j, 1.0);
    }
    EXPECT_EQ(unweighted_girth(g), 3u);
}

TEST(GirthTest, RandomGraphsWeightedGirthMatchesBruteForce) {
    // Brute force: enumerate all simple cycles up to length n via DFS.
    // Small n keeps this tractable; it validates the edge-removal method.
    Rng rng(21);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 7;
        Graph g(n);
        for (VertexId i = 0; i < n; ++i) {
            for (VertexId j = i + 1; j < n; ++j) {
                if (rng.chance(0.4)) g.add_edge(i, j, rng.uniform(0.5, 4.0));
            }
        }
        // Brute force minimal cycle weight via DFS from each start vertex.
        Weight best = kInfiniteWeight;
        std::vector<bool> visited(n, false);
        auto dfs = [&](auto&& self, VertexId start, VertexId cur, EdgeId in_edge,
                       Weight acc) -> void {
            for (const HalfEdge& h : g.neighbors(cur)) {
                if (h.edge == in_edge) continue;
                if (h.to == start) {
                    best = std::min(best, acc + h.weight);
                } else if (!visited[h.to] && h.to > start) {  // canonical start
                    visited[h.to] = true;
                    self(self, start, h.to, h.edge, acc + h.weight);
                    visited[h.to] = false;
                }
            }
        };
        for (VertexId s = 0; s < n; ++s) {
            visited[s] = true;
            dfs(dfs, s, s, kNoEdge, 0.0);
            visited[s] = false;
        }
        EXPECT_DOUBLE_EQ(weighted_girth(g), best) << "trial=" << trial;
    }
}

}  // namespace
}  // namespace gsp
