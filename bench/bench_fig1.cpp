// Figure 1 reproduction (paper §1.3).
//
// The instance: H = Petersen graph (girth 5, 15 unit edges) union the star
// S rooted at vertex 0, whose non-H edges weigh 1 + eps. Paper claims, for
// t = 3:
//   * the greedy 3-spanner keeps all 15 edges of H (and nothing else);
//   * the optimal 3-spanner is the 9-edge star S.
// We verify both exactly -- the optimum by branch and bound -- and then
// scale the construction up on generalized Petersen graphs GP(n, 2), where
// the exact optimum is replaced by the star upper bound.
#include <cstdio>
#include <iostream>

#include "analysis/audit.hpp"
#include "core/greedy.hpp"
#include "exact/optimal_spanner.hpp"
#include "gen/hard_instances.hpp"
#include "gen/named_graphs.hpp"
#include "graph/girth.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace gsp;

bool greedy_equals_h(const Figure1Instance& inst, const Graph& greedy) {
    if (greedy.num_edges() != inst.h_edges) return false;
    for (EdgeId id = 0; id < inst.h_edges; ++id) {
        const Edge& e = inst.graph.edge(id);
        if (!greedy.has_edge(e.u, e.v)) return false;
    }
    return true;
}

}  // namespace

int main() {
    const double t = 3.0;
    const double eps = 0.1;

    std::cout << "== Figure 1: greedy keeps the high-girth graph, the optimum is the star ==\n";
    std::cout << "instance G = H (unit weights) + star S (non-H edges of weight 1+eps), "
              << "eps = " << eps << ", stretch t = " << t << "\n\n";

    {
        const Figure1Instance inst = figure1_instance(petersen_graph(), eps);
        const Graph greedy = greedy_spanner(inst.graph, t);
        const auto opt_edges = optimal_spanner(inst.graph, t, SpannerObjective::kMinEdges);
        const auto opt_weight = optimal_spanner(inst.graph, t, SpannerObjective::kMinWeight);

        Table table({"spanner", "edges", "weight", "max stretch", "note"});
        const auto audit = [&](const Graph& h) { return audit_graph_spanner(inst.graph, h); };
        const SpannerAudit ga = audit(greedy);
        table.add_row({"greedy t=3", std::to_string(ga.edges), fmt(ga.weight),
                       fmt(ga.max_stretch),
                       greedy_equals_h(inst, greedy) ? "= all 15 edges of H (paper: yes)"
                                                     : "DIFFERS FROM PAPER"});
        const SpannerAudit oe = audit(opt_edges.spanner);
        table.add_row({"optimal (min edges)", std::to_string(oe.edges), fmt(oe.weight),
                       fmt(oe.max_stretch),
                       opt_edges.proven_optimal ? "exact B&B (paper: 9 star edges)"
                                                : "B&B node limit hit"});
        const SpannerAudit ow = audit(opt_weight.spanner);
        table.add_row({"optimal (min weight)", std::to_string(ow.edges), fmt(ow.weight),
                       fmt(ow.max_stretch),
                       opt_weight.proven_optimal ? "exact B&B" : "B&B node limit hit"});
        table.print(std::cout);
        std::cout << "\ngreedy/optimal size ratio: "
                  << fmt_ratio(static_cast<double>(ga.edges) / static_cast<double>(oe.edges))
                  << "   weight ratio: " << fmt_ratio(ga.weight / ow.weight) << "\n\n";
    }

    std::cout << "== Scale-up on GP(n, 2) (girth >= 5 for odd n >= 5) ==\n"
              << "(larger H has hop-diameter > t, so a few star edges legitimately "
                 "enter alongside ALL of H)\n";
    Table scale({"n(GP)", "vertices", "H edges", "girth(H)", "greedy edges",
                 "contains H", "extra star edges", "star UB on OPT", "size gap >="});
    for (std::size_t n : {5u, 7u, 9u, 11u, 13u}) {
        const Graph h = generalized_petersen(n, 2);
        const Figure1Instance inst = figure1_instance(h, eps);
        const Graph greedy = greedy_spanner(inst.graph, t);
        bool contains_h = true;
        for (EdgeId id = 0; id < inst.h_edges; ++id) {
            const Edge& e = inst.graph.edge(id);
            if (!greedy.has_edge(e.u, e.v)) contains_h = false;
        }
        const std::size_t star_edges = h.num_vertices() - 1;  // S spans everything
        scale.add_row({std::to_string(n), std::to_string(h.num_vertices()),
                       std::to_string(h.num_edges()),
                       std::to_string(unweighted_girth(h)),
                       std::to_string(greedy.num_edges()),
                       contains_h ? "yes" : "NO",
                       std::to_string(greedy.num_edges() - h.num_edges()),
                       std::to_string(star_edges),
                       fmt_ratio(static_cast<double>(greedy.num_edges()) /
                                 static_cast<double>(star_edges))});
    }
    scale.print(std::cout);
    std::cout << "\nShape check vs paper: greedy retains every edge of the high-girth "
                 "graph while a star-like\nspanner t-spans the instance with ~2n-1 edges; "
                 "the gap approaches 1.5x and the greedy is\nnonetheless un-improvable in "
                 "its own right (Lemma 3). Existential, not instance, optimality.\n";
    return 0;
}
