// Lemma 3 / Figure 2 experiment: the only t-spanner of the greedy t-spanner
// is itself.
//
// Two executable forms, over random graphs and metric completions:
//   * fixpoint:     greedy(greedy(G, t), t) == greedy(G, t)  (exact equality)
//   * criticality:  no spanner edge has an alternative path within t * w(e)
//                   (so no proper subgraph of H -- and by the paper's
//                   argument no other t-spanner of H at all -- exists).
#include <iostream>

#include "core/greedy.hpp"
#include "core/greedy_metric.hpp"
#include "core/self_optimality.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "metric/euclidean.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
    using namespace gsp;
    std::cout << "== Lemma 3: the greedy spanner is its own unique t-spanner ==\n"
              << "(seed-deterministic instances; every row must say fixpoint=yes, "
                 "removable=0)\n\n";

    Table table({"instance", "t", "|V|", "|E(G)|", "|E(H)|", "fixpoint", "removable",
                 "secs"});

    for (double t : {1.5, 2.0, 3.0, 5.0}) {
        Rng rng(1000 + static_cast<std::uint64_t>(t * 10));
        const Graph g = erdos_renyi(80, 0.25, {.lo = 0.5, .hi = 5.0}, rng);
        Timer timer;
        const Graph h = greedy_spanner(g, t);
        const bool fix = greedy_is_fixpoint(g, t);
        const auto removable = removable_edges(h, t);
        table.add_row({"ER(80, 0.25)", fmt(t), std::to_string(g.num_vertices()),
                       std::to_string(g.num_edges()), std::to_string(h.num_edges()),
                       fix ? "yes" : "NO", std::to_string(removable.size()),
                       fmt(timer.seconds(), 3)});
    }

    for (double t : {1.1, 1.5, 2.0}) {
        Rng rng(2000 + static_cast<std::uint64_t>(t * 10));
        const EuclideanMetric pts = uniform_points(64, 2, 100.0, rng);
        Timer timer;
        const Graph h = greedy_spanner_metric(pts, t);
        // Fixpoint on the metric side: re-run greedy on the spanner graph.
        const Graph h2 = greedy_spanner(h, t);
        const bool fix = same_edge_set(h, h2);
        const auto removable = removable_edges(h, t);
        table.add_row({"uniform 2D metric (64 pts)", fmt(t), std::to_string(pts.size()),
                       std::to_string(pts.size() * (pts.size() - 1) / 2),
                       std::to_string(h.num_edges()), fix ? "yes" : "NO",
                       std::to_string(removable.size()), fmt(timer.seconds(), 3)});
    }

    table.print(std::cout);
    std::cout << "\nPaper expectation: every greedy spanner is a fixpoint with zero "
                 "removable edges (Lemma 3);\nthis is the engine behind Theorem 4's "
                 "existential optimality.\n";
    return 0;
}
