// Degree blow-up experiment (paper §5 opening): there are doubling metrics
// on which the greedy (1+eps)-spanner has degree n-1 [HM06, Smi09], which
// is exactly why Theorem 6 (bounded-degree approximate-greedy) matters.
//
// Instance: the geometric-star metric (hub + arms of length base^i). The
// table shows the greedy hub degree growing as n-1 while approximate-greedy
// (with its net-tree base and delegation) stays bounded -- at the price of
// a slightly larger weight. The doubling estimate column certifies the
// instance really is a doubling metric (constant ddim as n grows).
#include <iostream>

#include "analysis/audit.hpp"
#include "api/candidate_source.hpp"
#include "api/session.hpp"
#include "core/approx_greedy.hpp"
#include "core/greedy_metric.hpp"
#include "gen/hard_instances.hpp"
#include "metric/doubling.hpp"
#include "util/table.hpp"

int main() {
    using namespace gsp;
    const double eps = 0.5;
    std::cout << "== Greedy degree blow-up vs approximate-greedy (geometric-star metric) ==\n"
              << "arms of length 1.7^i; eps = " << eps << "\n\n";

    Table table({"n", "ddim est (<=)", "greedy max deg", "greedy lightness",
                 "approx max deg", "approx lightness", "approx stretch"});
    for (std::size_t n : {32u, 64u, 128u, 256u}) {
        const MatrixMetric star = geometric_star_metric(n, 1.7);
        const DoublingEstimate ddim = estimate_doubling(star);
        const Graph greedy = greedy_spanner_metric(star, 1.0 + eps);
        SpannerSession session;
        BuildOptions options;
        options.approx.epsilon = eps;
        options.approx.net_degree_cap = 16;
        const ApproxGreedyResult approx = approx_greedy_build(session, star, options);
        const SpannerAudit ga = audit_metric_spanner(star, greedy);
        const SpannerAudit aa = audit_metric_spanner(star, approx.spanner);
        table.add_row({std::to_string(n), fmt(ddim.ddim_upper(), 2),
                       std::to_string(ga.max_degree), fmt(ga.lightness, 3),
                       std::to_string(aa.max_degree), fmt(aa.lightness, 3),
                       fmt(aa.max_stretch, 3)});
    }
    table.print(std::cout);
    std::cout << "\nPaper expectation: the instance's doubling dimension stays O(1), the "
                 "greedy degree column\nreads n-1 (unbounded), and the approximate-greedy "
                 "degree stays flat with stretch <= 1+eps.\n";
    return 0;
}
