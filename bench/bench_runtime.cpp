// Runtime scaling experiment (paper §1.2): the exact greedy costs
// ~O(n^2 log n) in metric spaces even with the cached implementation
// [BCF+10], while Algorithm Approximate-Greedy runs in O(n log n) [GLN02].
//
// We time three implementations on the same instances and fit exponents:
//   naive greedy        -- one limited Dijkstra per pair;
//   FG-cached greedy    -- the [BCF+10]-style practical variant;
//   approximate-greedy  -- Theorem 6's algorithm.
#include <cmath>
#include <iostream>
#include <vector>

#include "greedy_kernel_bench.hpp"
#include "core/approx_greedy.hpp"
#include "core/greedy_metric.hpp"
#include "gen/graphs.hpp"
#include "gen/points.hpp"
#include "util/fit.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

/// Graph-kernel ablation on the stock instance (n = 2^13, m = 16n, t = 2):
/// every GreedyEngine configuration against the naive kernel, edge sets
/// verified in-benchmark, timings dumped to BENCH_greedy.json so the perf
/// trajectory is tracked from this PR onward.
void graph_kernel_section() {
    using namespace gsp;
    const std::size_t n = 1u << 13;
    const std::size_t m = 16 * n;
    const double t = 2.0;
    Rng rng(42);
    const Graph g = random_graph_nm(n, m, {.lo = 1.0, .hi = 2.0}, rng);
    std::cout << "== Graph-kernel ablation: GreedyEngine configurations ==\n"
              << "instance: " << g.summary() << ", t = " << t << "\n\n";

    const auto runs = benchutil::run_kernel_sweep(g, t);
    Table table({"config", "seconds", "speedup", "|H|", "queries", "balls",
                 "cache hits", "meets", "same edges"});
    const double naive_s = runs.front().seconds;
    for (const auto& r : runs) {
        table.add_row({r.config.name, fmt(r.seconds, 3), fmt_ratio(naive_s / r.seconds),
                       std::to_string(r.edges), std::to_string(r.stats.dijkstra_runs),
                       std::to_string(r.stats.balls_computed),
                       std::to_string(r.stats.cache_hits),
                       std::to_string(r.stats.bidirectional_meets),
                       r.matches_naive ? "yes" : "NO"});
    }
    table.print(std::cout);

    bool all_match = true;
    for (const auto& r : runs) all_match = all_match && r.matches_naive;
    const double speedup = naive_s / runs.back().seconds;
    std::cout << "\nfull-engine speedup over naive: " << fmt_ratio(speedup)
              << (all_match ? " (all edge sets verified identical)"
                            : " (EDGE SET MISMATCH -- engine bug!)")
              << "\n";

    const std::string path = benchutil::bench_json_path();
    benchutil::write_bench_greedy_json(path, "bench_runtime", "random_nm", n,
                                       g.num_edges(), t, runs);
    std::cout << "wrote " << path << "\n\n";
}

}  // namespace

int main() {
    using namespace gsp;
    graph_kernel_section();

    const double eps = 0.5;
    std::cout << "== Runtime scaling: exact greedy vs approximate-greedy (eps = " << eps
              << ") ==\n\n";

    // Each implementation sweeps as far as its asymptotics allow in a few
    // seconds of wall clock: the naive loop is already ~n^3-ish, the cached
    // one ~n^2 log n, the approximate one ~n log n.
    Table table({"n", "naive greedy (s)", "FG-cached greedy (s)", "approx-greedy (s)",
                 "|H| cached", "|H| approx"});
    std::vector<double> n_naive, naive_s, n_cached, cached_s, n_approx, approx_s;
    for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
        Rng rng(3 * n);
        const double extent = std::sqrt(static_cast<double>(n)) * 10.0;
        const EuclideanMetric pts = uniform_points(n, 2, extent, rng);

        std::string naive_cell = "-";
        if (n <= 512) {
            GreedyStats naive_stats;
            (void)greedy_spanner_metric(
                pts,
                MetricGreedyOptions{.stretch = 1.0 + eps, .use_distance_cache = false},
                &naive_stats);
            n_naive.push_back(static_cast<double>(n));
            naive_s.push_back(naive_stats.seconds);
            naive_cell = fmt(naive_stats.seconds, 3);
        }

        std::string cached_cell = "-";
        std::string cached_size = "-";
        if (n <= 2048) {
            GreedyStats cached_stats;
            const Graph cached = greedy_spanner_metric(
                pts, MetricGreedyOptions{.stretch = 1.0 + eps, .use_distance_cache = true},
                &cached_stats);
            n_cached.push_back(static_cast<double>(n));
            cached_s.push_back(cached_stats.seconds);
            cached_cell = fmt(cached_stats.seconds, 3);
            cached_size = std::to_string(cached.num_edges());
        }

        const ApproxGreedyResult approx = approx_greedy_spanner(
            pts, ApproxGreedyOptions{.epsilon = eps, .theta_cones_override = 16});
        n_approx.push_back(static_cast<double>(n));
        approx_s.push_back(approx.seconds_total);

        table.add_row({std::to_string(n), naive_cell, cached_cell,
                       fmt(approx.seconds_total, 3), cached_size,
                       std::to_string(approx.spanner.num_edges())});
    }
    table.print(std::cout);

    std::cout << "\nfitted exponents: naive ~ n^"
              << fmt(fit_power_law(n_naive, naive_s).exponent, 2) << ", FG-cached ~ n^"
              << fmt(fit_power_law(n_cached, cached_s).exponent, 2) << ", approx ~ n^"
              << fmt(fit_power_law(n_approx, approx_s).exponent, 2)
              << "\npaper expectation: the naive pair loop is super-quadratic; the "
                 "FG-cached variant is the\n~O(n^2 log n) state of the art the paper cites "
                 "as [BCF+10]; approximate-greedy is\nnear-linear (O(n log n), "
                 "[GLN02]/Theorem 6). Cached |H| equals the naive |H| by construction\n"
                 "(identical algorithm; equality is asserted in the test suite).\n";
    return 0;
}
