// Runtime scaling experiment (paper §1.2): the exact greedy costs
// ~O(n^2 log n) in metric spaces even with the cached implementation
// [BCF+10], while Algorithm Approximate-Greedy runs in O(n log n) [GLN02].
//
// We time three implementations on the same instances and fit exponents:
//   naive greedy        -- one limited Dijkstra per pair;
//   FG-cached greedy    -- the [BCF+10]-style practical variant;
//   approximate-greedy  -- Theorem 6's algorithm.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/approx_greedy.hpp"
#include "core/greedy_metric.hpp"
#include "gen/points.hpp"
#include "util/fit.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
    using namespace gsp;
    const double eps = 0.5;
    std::cout << "== Runtime scaling: exact greedy vs approximate-greedy (eps = " << eps
              << ") ==\n\n";

    // Each implementation sweeps as far as its asymptotics allow in a few
    // seconds of wall clock: the naive loop is already ~n^3-ish, the cached
    // one ~n^2 log n, the approximate one ~n log n.
    Table table({"n", "naive greedy (s)", "FG-cached greedy (s)", "approx-greedy (s)",
                 "|H| cached", "|H| approx"});
    std::vector<double> n_naive, naive_s, n_cached, cached_s, n_approx, approx_s;
    for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
        Rng rng(3 * n);
        const double extent = std::sqrt(static_cast<double>(n)) * 10.0;
        const EuclideanMetric pts = uniform_points(n, 2, extent, rng);

        std::string naive_cell = "-";
        if (n <= 512) {
            GreedyStats naive_stats;
            (void)greedy_spanner_metric(
                pts,
                MetricGreedyOptions{.stretch = 1.0 + eps, .use_distance_cache = false},
                &naive_stats);
            n_naive.push_back(static_cast<double>(n));
            naive_s.push_back(naive_stats.seconds);
            naive_cell = fmt(naive_stats.seconds, 3);
        }

        std::string cached_cell = "-";
        std::string cached_size = "-";
        if (n <= 2048) {
            GreedyStats cached_stats;
            const Graph cached = greedy_spanner_metric(
                pts, MetricGreedyOptions{.stretch = 1.0 + eps, .use_distance_cache = true},
                &cached_stats);
            n_cached.push_back(static_cast<double>(n));
            cached_s.push_back(cached_stats.seconds);
            cached_cell = fmt(cached_stats.seconds, 3);
            cached_size = std::to_string(cached.num_edges());
        }

        const ApproxGreedyResult approx = approx_greedy_spanner(
            pts, ApproxGreedyOptions{.epsilon = eps, .theta_cones_override = 16});
        n_approx.push_back(static_cast<double>(n));
        approx_s.push_back(approx.seconds_total);

        table.add_row({std::to_string(n), naive_cell, cached_cell,
                       fmt(approx.seconds_total, 3), cached_size,
                       std::to_string(approx.spanner.num_edges())});
    }
    table.print(std::cout);

    std::cout << "\nfitted exponents: naive ~ n^"
              << fmt(fit_power_law(n_naive, naive_s).exponent, 2) << ", FG-cached ~ n^"
              << fmt(fit_power_law(n_cached, cached_s).exponent, 2) << ", approx ~ n^"
              << fmt(fit_power_law(n_approx, approx_s).exponent, 2)
              << "\npaper expectation: the naive pair loop is super-quadratic; the "
                 "FG-cached variant is the\n~O(n^2 log n) state of the art the paper cites "
                 "as [BCF+10]; approximate-greedy is\nnear-linear (O(n log n), "
                 "[GLN02]/Theorem 6). Cached |H| equals the naive |H| by construction\n"
                 "(identical algorithm; equality is asserted in the test suite).\n";
    return 0;
}
